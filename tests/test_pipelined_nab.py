"""Tests for the pipelined NAB executor (Figure 3 on the event kernel)."""

from __future__ import annotations

import json
from fractions import Fraction

import pytest

from repro.analysis import pipeline_gap_from_record
from repro.capacity.pipelining import pipelined_schedule
from repro.core.nab import NetworkAwareBroadcast
from repro.core.pipeline import run_pipelined
from repro.engine import dump_row, get_spec, run_cell, run_spec
from repro.engine.spec import FAULT_FREE, ExperimentSpec
from repro.exceptions import ConfigurationError, ProtocolError
from repro.transport.faults import FaultModel
from repro.workloads.scenarios import adversarial_scenario
from repro.workloads.topologies import topology

#: The headline grid's topologies plus the deep layered pipelines.
TOPOLOGIES = ("k4-fast", "bottleneck4", "ring7-chords", "pipeline-3x3", "pipeline-4x3")


def _inputs(count, length=8):
    return [bytes(((11 * index + offset) % 255) + 1 for offset in range(length)) for index in range(count)]


class TestFaultFreeSteadyState:
    @pytest.mark.parametrize("topology_name", TOPOLOGIES)
    def test_measured_time_equals_pipelined_schedule_exactly(self, topology_name):
        nab = NetworkAwareBroadcast(topology(topology_name), 1, 1)
        result = nab.run_pipelined(_inputs(8))
        assert result.analytic is not None
        assert result.round_overhead is not None
        # The event-simulated makespan equals the Figure 3 closed form as
        # exact rationals — no tolerance.
        assert result.total_elapsed == result.analytic.total_time
        # And the closed form is reproducible from first principles.
        parameters = result.instances[0].parameters
        rebuilt = pipelined_schedule(
            64,
            parameters.gamma,
            parameters.rho,
            result.depth,
            8,
            flag_overhead=result.round_overhead,
        )
        assert rebuilt.total_time == result.total_elapsed

    @pytest.mark.parametrize("topology_name", TOPOLOGIES)
    def test_semantics_identical_to_sequential_run(self, topology_name):
        inputs = _inputs(5)
        sequential = NetworkAwareBroadcast(topology(topology_name), 1, 1).run(inputs)
        pipelined = NetworkAwareBroadcast(topology(topology_name), 1, 1).run_pipelined(
            inputs
        )
        assert pipelined.outputs_per_instance() == sequential.outputs_per_instance()
        assert pipelined.total_bits == sequential.total_bits
        assert pipelined.dispute_control_executions == 0

    def test_stage_timeline_matches_round_recurrence(self):
        instances = 6
        nab = NetworkAwareBroadcast(topology("pipeline-3x3"), 1, 1)
        result = nab.run_pipelined(_inputs(instances))
        depth, round_length = result.depth, result.round_length
        assert depth == 3
        stages = {(stage.instance, stage.hop): stage for stage in result.stage_timeline}
        assert len(stages) == instances * depth
        for (q, h), stage in stages.items():
            assert stage.end == (q + h) * round_length
            assert stage.end - stage.start == round_length
        assert result.total_elapsed == (instances + depth - 1) * round_length

    def test_pipelining_beats_sequential_on_deep_topology(self):
        # 64-byte payloads on the depth-3 pipeline: the measured speedup is
        # an exact rational and deterministic, comfortably above 1.2x at 8
        # instances (the full >= 1.5x gate runs in BENCH_pipelined_nab at
        # 16 instances on the depth-4 pipeline).
        nab = NetworkAwareBroadcast(topology("pipeline-3x3"), 1, 1)
        result = nab.run_pipelined(_inputs(8, length=64))
        assert result.sequential_elapsed > result.total_elapsed
        assert result.speedup >= Fraction(13, 10)

    def test_speedup_grows_with_instances(self):
        speedups = []
        for count in (2, 8, 16):
            nab = NetworkAwareBroadcast(topology("pipeline-3x3"), 1, 1)
            speedups.append(nab.run_pipelined(_inputs(count)).speedup)
        assert speedups == sorted(speedups)

    def test_shallow_topology_gains_nothing(self):
        # Depth-1 broadcast (complete graph): (Q + 0) rounds — no overlap to
        # exploit, pipelined equals sequential exactly.
        nab = NetworkAwareBroadcast(topology("k4-fast"), 1, 1)
        result = nab.run_pipelined(_inputs(4))
        if result.depth == 1:
            assert result.total_elapsed == result.sequential_elapsed

    def test_empty_values_rejected(self):
        nab = NetworkAwareBroadcast(topology("k4-fast"), 1, 1)
        with pytest.raises(ProtocolError):
            nab.run_pipelined([])


class TestAdversarialPipeline:
    def test_dispute_control_stalls_but_preserves_agreement(self):
        scenario = adversarial_scenario(
            topology_name="ring7-chords",
            strategy_name="equality-garbage",
            faulty_nodes=(7,),
            instances=5,
            seed=3,
        )
        nab = NetworkAwareBroadcast(
            scenario.graph, scenario.source, scenario.max_faults,
            fault_model=scenario.fault_model,
        )
        result = nab.run_pipelined(list(scenario.inputs))
        assert result.dispute_control_executions >= 1
        # Heterogeneous rounds: no homogeneous closed form applies.
        assert result.analytic is None
        record = result.as_run_record(list(scenario.inputs), source_faulty=False)
        assert record.agreement_ok and record.validity_ok
        # The dispute stall is charged: the pipeline cannot be faster than
        # the widest single instance.
        assert result.total_elapsed >= max(r.elapsed for r in result.instances)

    def test_outputs_match_sequential_under_attack(self):
        scenario = adversarial_scenario(
            topology_name="k4-fast",
            strategy_name="phase1-relay",
            faulty_nodes=(4,),
            instances=4,
            seed=9,
        )
        sequential = NetworkAwareBroadcast(
            scenario.graph, scenario.source, scenario.max_faults,
            fault_model=scenario.fault_model,
        ).run(list(scenario.inputs))
        pipelined = NetworkAwareBroadcast(
            scenario.graph, scenario.source, scenario.max_faults,
            fault_model=scenario.fault_model,
        ).run_pipelined(list(scenario.inputs))
        assert pipelined.outputs_per_instance() == sequential.outputs_per_instance()
        assert (
            pipelined.dispute_control_executions
            == sequential.dispute_control_executions
        )


class TestPipelineRecordsAndAnalysis:
    def test_run_record_metadata_carries_event_timeline(self):
        nab = NetworkAwareBroadcast(topology("pipeline-3x3"), 1, 1)
        inputs = _inputs(4)
        record = nab.run_pipelined_record(inputs)
        metadata = record.metadata
        assert metadata["execution"] == "pipelined"
        assert metadata["matches_analytic"] is True
        assert len(metadata["stage_timeline"]) == 4 * metadata["pipeline_depth"]
        # The record is JSON-safe and round-trips canonically.
        dumped = json.dumps(record.to_jsonable(), sort_keys=True)
        assert json.loads(dumped)["metadata"]["stage_timeline"] == metadata[
            "stage_timeline"
        ]

    def test_pipeline_gap_from_record(self):
        nab = NetworkAwareBroadcast(topology("pipeline-3x3"), 1, 1)
        record = nab.run_pipelined_record(_inputs(6))
        gap = pipeline_gap_from_record(record)
        assert gap.exact is True
        assert gap.gap == 0
        assert gap.speedup == gap.sequential / gap.measured
        with pytest.raises(ProtocolError):
            pipeline_gap_from_record(
                NetworkAwareBroadcast(topology("k4-fast"), 1, 1).run_record(_inputs(1))
            )


class TestEngineIntegration:
    def test_pipelined_axis_expands_only_for_capable_protocols(self):
        spec = ExperimentSpec(
            name="unit_pipe",
            topologies=("k4-fast",),
            strategies=(FAULT_FREE,),
            payload_bytes=(4,),
            fault_counts=(1,),
            protocols=("nab", "classical-flooding"),
            executions=("sequential", "pipelined"),
            instances=2,
        )
        cells = spec.expand()
        modes = {(cell.protocol, cell.execution) for cell in cells}
        assert ("nab", "pipelined") in modes
        assert ("classical-flooding", "pipelined") not in modes
        assert ("classical-flooding", "sequential") in modes
        # Non-default axis values are stamped into the cell id; default cells
        # keep the historical id shape (stable seeds across releases).
        for cell in cells:
            assert ("exec=pipelined" in cell.cell_id) == (cell.execution == "pipelined")
            assert "lm=" not in cell.cell_id  # instant is the default

    def test_unknown_execution_or_link_model_rejected(self):
        base = dict(
            name="unit_bad",
            topologies=("k4-fast",),
            strategies=(FAULT_FREE,),
            payload_bytes=(4,),
            fault_counts=(1,),
            protocols=("nab",),
        )
        with pytest.raises(ConfigurationError):
            ExperimentSpec(executions=("warp",), **base).expand()
        with pytest.raises(ConfigurationError):
            ExperimentSpec(link_models=("wormhole",), **base).expand()

    def test_pipelined_cell_row_records_exact_match(self):
        spec = get_spec("pipelined_nab")
        cell = next(
            cell
            for cell in spec.expand()
            if cell.execution == "pipelined" and cell.topology == "pipeline-3x3"
        )
        row = run_cell(cell)
        assert row["error"] is None
        assert row["execution"] == "pipelined"
        metadata = row["record"]["metadata"]
        assert metadata["matches_analytic"] is True
        assert row["record"]["elapsed"] == metadata["analytic_total"]
        assert dump_row(json.loads(dump_row(row))) == dump_row(row)

    def test_non_capable_protocol_rejects_pipelined_params(self):
        from repro.engine import get_protocol

        with pytest.raises(ConfigurationError):
            get_protocol("classical-flooding").run(
                topology("k4-fast"), 1, [b"\x01"], FaultModel(),
                {"max_faults": 1, "execution": "pipelined"},
            )

    def test_default_cells_skip_the_scheduled_transport(self):
        # The "instant" default must not pay scheduling bookkeeping: run_cell
        # omits the link_model param, so no ScheduledNetwork is constructed.
        from repro.transport.scheduled import ScheduledNetwork

        spec = get_spec("nab_vs_classical_quick")
        cell = spec.expand()[0]
        assert cell.link_model == "instant"
        constructed = []
        original_init = ScheduledNetwork.__init__

        def capturing_init(self, *args, **kwargs):
            constructed.append(self)
            original_init(self, *args, **kwargs)

        try:
            ScheduledNetwork.__init__ = capturing_init
            row = run_cell(cell)
        finally:
            ScheduledNetwork.__init__ = original_init
        assert row["error"] is None
        assert constructed == []

    def test_report_marks_pipelined_rows_with_like_for_like_speedup(self):
        from repro.engine import render_comparison

        spec = ExperimentSpec(
            name="unit_pipe_report",
            topologies=("pipeline-3x3",),
            strategies=(FAULT_FREE,),
            payload_bytes=(4,),
            fault_counts=(1,),
            protocols=("nab",),
            executions=("sequential", "pipelined"),
            instances=3,
        )
        table = render_comparison(run_spec(spec, out_path=None, workers=1).rows)
        assert "x vs per-hop seq" in table

    def test_pipelined_spec_runs_end_to_end(self, tmp_path):
        spec = ExperimentSpec(
            name="unit_pipe_run",
            topologies=("k4-fast", "pipeline-3x3"),
            strategies=(FAULT_FREE,),
            payload_bytes=(4,),
            fault_counts=(1,),
            protocols=("nab",),
            executions=("sequential", "pipelined"),
            instances=3,
        )
        out = str(tmp_path / "rows.jsonl")
        summary = run_spec(spec, out_path=out, workers=1, resume=False)
        assert summary.computed_cells == 4
        by_mode = {}
        for row in summary.rows:
            assert row["error"] is None
            by_mode[(row["topology"], row["execution"])] = row
        piped = by_mode[("pipeline-3x3", "pipelined")]
        assert piped["record"]["metadata"]["matches_analytic"] is True
