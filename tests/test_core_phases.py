"""Tests for the individual NAB phases (1, 2 and 3)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.adversary.strategies import (
    DisputeLiarStrategy,
    EqualityGarbageStrategy,
    EquivocatingSourceStrategy,
    FalseFlagStrategy,
    Phase1CorruptingRelayStrategy,
)
from repro.coding.coding_matrix import generate_coding_scheme
from repro.core.dispute_state import DisputeState
from repro.core.parameters import compute_instance_parameters
from repro.core.phase1_broadcast import expected_forward_symbols, run_phase1
from repro.core.phase2_equality import run_phase2
from repro.core.phase3_dispute import claims_bit_size, honest_claims, run_phase3
from repro.exceptions import ProtocolError
from repro.gf.symbols import symbol_size_for
from repro.graph.generators import complete_graph, figure1a
from repro.graph.mincut import broadcast_mincut
from repro.transport.faults import FaultModel
from repro.transport.network import SynchronousNetwork

L_BITS = 32
INPUT = 0xDEADBEEF


def _phase1_setup(graph, faulty=(), strategy=None):
    network = SynchronousNetwork(graph, FaultModel(faulty, strategy))
    gamma = broadcast_mincut(graph, 1)
    return network, gamma


class TestParameters:
    def test_figure1b_parameters_match_paper(self):
        """Figure 1(b) with the 2-3 dispute: gamma = 2, U_k = 2, rho_k = 1."""
        from repro.graph.generators import figure1b

        state = DisputeState(1)
        state.add_dispute(2, 3)
        graph = state.instance_graph(figure1a())
        assert graph == figure1b()
        params = compute_instance_parameters(graph, 1, 4, 1, state)
        assert params.gamma == 2
        assert params.uk == 2
        assert params.rho == 1
        assert sorted(params.omega) == [(1, 2, 4), (1, 3, 4)]

    def test_complete_graph_parameters(self):
        graph = complete_graph(4, capacity=2)
        params = compute_instance_parameters(graph, 1, 4, 1, DisputeState(1))
        assert params.gamma == 6
        assert params.uk == 8
        assert params.rho == 4
        assert len(params.omega) == 4

    def test_source_missing_raises(self):
        graph = figure1a().remove_nodes([1])
        with pytest.raises(ProtocolError):
            compute_instance_parameters(graph, 1, 4, 1, DisputeState(1))


class TestPhase1:
    def test_honest_broadcast_delivers_input_everywhere(self):
        graph = figure1a()
        network, gamma = _phase1_setup(graph)
        transcript = run_phase1(network, graph, 1, INPUT, L_BITS, gamma)
        assert all(value == INPUT for value in transcript.values.values())

    def test_elapsed_time_is_L_over_gamma(self):
        graph = complete_graph(4, capacity=1)
        network, gamma = _phase1_setup(graph)
        run_phase1(network, graph, 1, 0xAB, 8, gamma, phase="p1")
        # gamma = 3 on K4 with unit capacities; ceil(8/3) = 3 bits per symbol.
        assert network.accountant.phase_elapsed("p1") == Fraction(symbol_size_for(8, gamma))

    def test_input_out_of_range_rejected(self):
        graph = figure1a()
        network, gamma = _phase1_setup(graph)
        with pytest.raises(ProtocolError):
            run_phase1(network, graph, 1, 1 << L_BITS, L_BITS, gamma)

    def test_bad_gamma_rejected(self):
        graph = figure1a()
        network, _ = _phase1_setup(graph)
        with pytest.raises(ProtocolError):
            run_phase1(network, graph, 1, INPUT, L_BITS, 0)

    def test_wrong_tree_count_rejected(self):
        graph = figure1a()
        network, gamma = _phase1_setup(graph)
        from repro.graph.spanning_trees import pack_arborescences

        trees = pack_arborescences(graph, 1, 1)
        with pytest.raises(ProtocolError):
            run_phase1(network, graph, 1, INPUT, L_BITS, 2, trees=trees)

    def test_corrupting_relay_pollutes_descendants_only(self):
        graph = figure1a()
        network, gamma = _phase1_setup(
            graph, faulty=[3], strategy=Phase1CorruptingRelayStrategy()
        )
        transcript = run_phase1(network, graph, 1, INPUT, L_BITS, gamma)
        assert transcript.values[1] == INPUT
        assert transcript.values[2] == INPUT  # node 2 is not downstream of 3 in any tree
        # At least one node downstream of node 3 got a corrupted value.
        corrupted = [node for node, value in transcript.values.items() if value != INPUT]
        assert corrupted  # node 4 receives (3,4) traffic in some packing

    def test_equivocating_source_creates_disagreement(self):
        # A star topology forces a single tree with three direct children of
        # the source, so per-child equivocation really does create divergence.
        from repro.graph.network_graph import NetworkGraph

        graph = NetworkGraph.from_edges({(1, 2): 1, (1, 3): 1, (1, 4): 1})
        network, gamma = _phase1_setup(
            graph, faulty=[1], strategy=EquivocatingSourceStrategy()
        )
        transcript = run_phase1(network, graph, 1, INPUT, L_BITS, gamma)
        received = {transcript.values[node] for node in (2, 3, 4)}
        assert len(received) > 1

    def test_transcript_records_sent_and_received(self):
        graph = figure1a()
        network, gamma = _phase1_setup(graph)
        transcript = run_phase1(network, graph, 1, INPUT, L_BITS, gamma)
        assert transcript.sent_symbols
        for (tree_index, child), symbol in transcript.received_symbols.items():
            parent = transcript.trees[tree_index].parents[child]
            assert transcript.sent_symbols[(tree_index, parent, child)] == symbol

    def test_expected_forward_symbols_for_honest_relay(self):
        graph = figure1a()
        network, gamma = _phase1_setup(graph)
        transcript = run_phase1(network, graph, 1, INPUT, L_BITS, gamma)
        for node in (2, 3, 4):
            for (tree_index, tail, child), symbol in expected_forward_symbols(
                transcript, node
            ).items():
                assert transcript.sent_symbols[(tree_index, tail, child)] == symbol


def _phase2_setup(graph, values, faulty=(), strategy=None, rho=None):
    network = SynchronousNetwork(graph, FaultModel(faulty, strategy))
    state = DisputeState(1)
    params = compute_instance_parameters(graph, 1, graph.node_count(), 1, state)
    rho = rho if rho is not None else params.rho
    scheme = generate_coding_scheme(graph, rho, symbol_size_for(L_BITS, rho), seed=3)
    return network, scheme, params


class TestPhase2:
    def test_no_mismatch_when_all_equal_and_honest(self):
        graph = complete_graph(4, capacity=2)
        values = {node: INPUT for node in graph.nodes()}
        network, scheme, params = _phase2_setup(graph, values)
        result = run_phase2(
            network, graph, values, L_BITS, scheme, graph.nodes(), 1, 1
        )
        assert not result.mismatch_announced
        assert all(flag is False for flag in result.announced_flags.values())

    def test_disagreement_is_announced(self):
        graph = complete_graph(4, capacity=2)
        values = {node: INPUT for node in graph.nodes()}
        values[3] = INPUT ^ 1
        network, scheme, params = _phase2_setup(graph, values)
        result = run_phase2(
            network, graph, values, L_BITS, scheme, graph.nodes(), 1, 1
        )
        assert result.mismatch_announced

    def test_false_flag_strategy_forces_phase3(self):
        graph = complete_graph(4, capacity=2)
        values = {node: INPUT for node in graph.nodes()}
        network, scheme, params = _phase2_setup(
            graph, values, faulty=[2], strategy=FalseFlagStrategy()
        )
        result = run_phase2(
            network, graph, values, L_BITS, scheme, graph.nodes(), 1, 1
        )
        assert result.mismatch_announced
        assert result.announced_flags[2] is True

    def test_garbage_coded_symbols_detected_by_neighbor(self):
        graph = complete_graph(4, capacity=2)
        values = {node: INPUT for node in graph.nodes()}
        network, scheme, params = _phase2_setup(
            graph, values, faulty=[2], strategy=EqualityGarbageStrategy()
        )
        result = run_phase2(
            network, graph, values, L_BITS, scheme, graph.nodes(), 1, 1
        )
        assert result.mismatch_announced
        # Some fault-free node (not node 2) must have raised the flag.
        assert any(result.announced_flags[node] for node in (1, 3, 4))

    def test_flag_agreement_across_fault_free_nodes(self):
        graph = complete_graph(4, capacity=2)
        values = {node: INPUT for node in graph.nodes()}
        network, scheme, params = _phase2_setup(
            graph, values, faulty=[4], strategy=FalseFlagStrategy()
        )
        result = run_phase2(
            network, graph, values, L_BITS, scheme, graph.nodes(), 1, 1
        )
        assert set(result.announced_flags) == {1, 2, 3, 4}


class TestPhase3:
    def _run_instance_through_phase3(self, graph, faulty, strategy):
        fault_model = FaultModel(faulty, strategy)
        network = SynchronousNetwork(graph, fault_model)
        state = DisputeState(1)
        params = compute_instance_parameters(graph, 1, graph.node_count(), 1, state)
        scheme = generate_coding_scheme(
            graph, params.rho, symbol_size_for(L_BITS, params.rho), seed=5
        )
        phase1 = run_phase1(network, graph, 1, INPUT, L_BITS, params.gamma)
        phase2 = run_phase2(
            network, graph, phase1.values, L_BITS, scheme, graph.nodes(), 1, 1
        )
        assert phase2.mismatch_announced
        result = run_phase3(
            network,
            graph,
            1,
            INPUT,
            L_BITS,
            phase1,
            phase2.check,
            phase2.announced_flags,
            scheme,
            graph.nodes(),
            1,
            1,
        )
        return result, fault_model

    def test_output_is_source_input_when_source_honest(self):
        graph = complete_graph(4, capacity=2)
        result, _ = self._run_instance_through_phase3(
            graph, [3], Phase1CorruptingRelayStrategy()
        )
        assert result.output_bits == INPUT

    def test_corrupting_relay_is_caught(self):
        graph = complete_graph(4, capacity=2)
        result, fault_model = self._run_instance_through_phase3(
            graph, [3], Phase1CorruptingRelayStrategy()
        )
        involved = set(result.identified_faulty)
        for pair in result.new_disputes:
            involved |= set(pair)
        assert 3 in involved
        # Fault-free nodes never end up accused together.
        for pair in result.new_disputes:
            assert any(fault_model.is_faulty(node) for node in pair)
        for node in result.identified_faulty:
            assert fault_model.is_faulty(node)

    def test_false_flag_node_identified_faulty(self):
        graph = complete_graph(4, capacity=2)
        result, _ = self._run_instance_through_phase3(graph, [2], FalseFlagStrategy())
        assert 2 in result.identified_faulty
        assert result.output_bits == INPUT

    def test_dispute_liar_creates_dispute_with_faulty_node(self):
        graph = complete_graph(4, capacity=2)
        result, fault_model = self._run_instance_through_phase3(
            graph, [3], DisputeLiarStrategy()
        )
        evidence = set(result.identified_faulty)
        for pair in result.new_disputes:
            evidence |= set(pair)
        assert 3 in evidence
        for pair in result.new_disputes:
            assert any(fault_model.is_faulty(node) for node in pair)

    def test_equivocating_source_output_still_agreed(self):
        graph = complete_graph(4, capacity=2)
        result, _ = self._run_instance_through_phase3(
            graph, [1], EquivocatingSourceStrategy()
        )
        # The adversarial source's broadcast input is adopted by everyone;
        # whatever it is, it is a single agreed value.
        assert isinstance(result.output_bits, int)

    def test_honest_claims_structure_and_size(self):
        graph = complete_graph(4, capacity=2)
        network = SynchronousNetwork(graph)
        state = DisputeState(1)
        params = compute_instance_parameters(graph, 1, 4, 1, state)
        scheme = generate_coding_scheme(
            graph, params.rho, symbol_size_for(L_BITS, params.rho), seed=1
        )
        phase1 = run_phase1(network, graph, 1, INPUT, L_BITS, params.gamma)
        phase2 = run_phase2(
            network, graph, phase1.values, L_BITS, scheme, graph.nodes(), 1, 1
        )
        claims = honest_claims(1, 1, INPUT, phase1, phase2.check, graph)
        assert claims["input"] == INPUT
        assert claims["phase1_sent"]
        assert claims_bit_size(claims, phase1.symbol_bits, scheme) > 0
