"""Tests for the composable adversary zoo and its spec integration.

Covers the PR 9 contracts:

* every registered strategy (hand-written and zoo) at ``f <= max_faults``
  preserves agreement and validity for NAB on the headline topologies,
* the committed ``adversary_zoo`` spec runs clean, replays deterministically,
  and its search-found ``composed`` cell forces strictly more dispute-control
  executions than any hand-written strategy on the same grid,
* strategy parameters thread through spec expansion (canonical ``|sp=``
  cell-id suffixes, placement overrides, validation of unknown keys),
* the chaos RNG stream is pinned: the literal draws below are embedded in
  committed result grids, so any drift in the derivation is a regression.
"""

from __future__ import annotations

import json

import pytest

from repro.adversary import (
    AdversaryLattice,
    ComposedStrategy,
    StageTimedStrategy,
    build_composed,
    chaos_stream,
)
from repro.adversary.zoo import zoo_strategy_factories
from repro.analysis import audit_rows
from repro.engine.spec import FAULT_FREE, ExperimentSpec, canonical_params
from repro.engine.specs import get_spec
from repro.engine.runner import run_cell
from repro.exceptions import ConfigurationError
from repro.workloads import make_strategy, named_strategies

HEADLINE_TOPOLOGIES = ("k4-fast", "bottleneck4", "ring7-chords")


# ------------------------------------------------------------------- property


def test_every_registered_strategy_preserves_agreement_and_validity():
    """The satellite property: no strategy at f <= max_faults breaks the spec.

    Expands a grid over every registered strategy (zoo strategies included)
    on the three headline topologies and runs each cell; agreement must hold
    everywhere and validity may be vacuous (None) only for source-attacking
    strategies.
    """
    spec = ExperimentSpec(
        name="zoo_property_probe",
        topologies=HEADLINE_TOPOLOGIES,
        strategies=tuple(named_strategies()),
        payload_bytes=(8,),
        fault_counts=(1,),
        protocols=("nab",),
        instances=2,
    )
    cells = spec.expand()
    assert len(cells) == len(named_strategies()) * len(HEADLINE_TOPOLOGIES)
    for cell in cells:
        row = run_cell(cell)
        assert row["error"] is None, (cell.cell_id, row["error"])
        record = row["record"]
        assert record["agreement_ok"] is True, cell.cell_id
        assert record["validity_ok"] is not False, cell.cell_id
    # The audit must also come back clean: no honest node identified, no
    # dispute between honest nodes.
    assert audit_rows([run_cell(cell) for cell in cells[:3]]) == []


# ------------------------------------------------------- adversary_zoo spec


@pytest.fixture(scope="module")
def zoo_rows():
    spec = get_spec("adversary_zoo")
    return [run_cell(cell) for cell in spec.expand()]


def test_adversary_zoo_spec_shape():
    spec = get_spec("adversary_zoo")
    cells = spec.expand()
    assert len(cells) == 12
    composed = [cell for cell in cells if cell.strategy == "composed"]
    assert len(composed) == 1
    # The search-found placement override and canonical parameters are
    # committed on the cell itself (and thus in its id and seed).
    assert composed[0].faulty_nodes == (4, 6)
    params = json.loads(composed[0].strategy_params)
    assert params["components"] == [
        {"kind": "adaptive-dodger", "targets": 1, "aggressors": 1}
    ]
    assert "|sp=" in composed[0].cell_id
    # Parameterless cells keep their historical ids.
    others = [cell for cell in cells if cell.strategy != "composed"]
    assert all("|sp=" not in cell.cell_id for cell in others)


def test_adversary_zoo_spec_runs_clean(zoo_rows):
    for row in zoo_rows:
        assert row["error"] is None, (row["cell_id"], row["error"])
        record = row["record"]
        assert record["agreement_ok"] is True, row["cell_id"]
        assert record["validity_ok"] is True, row["cell_id"]
    assert audit_rows(zoo_rows) == []


def test_search_found_cell_beats_every_hand_written_strategy(zoo_rows):
    """The headline acceptance: the committed search-found scenario forces
    strictly more dispute-control executions than any hand-written strategy."""
    hand_written = {
        "phase1-relay", "equality-garbage", "false-flag", "dispute-liar",
        "chaos", "crash", "sub-broadcast-liar",
    }
    by_strategy = {
        row["strategy"]: row["record"]["dispute_control_executions"]
        for row in zoo_rows
    }
    ceiling = max(by_strategy[name] for name in hand_written)
    assert by_strategy["composed"] > ceiling


def test_adversary_zoo_cells_replay_identically():
    """Identical cells (chaos included) must produce identical rows."""
    spec = get_spec("adversary_zoo")
    cells = [
        cell for cell in spec.expand() if cell.strategy in ("chaos", "composed")
    ]
    assert len(cells) == 2
    for cell in cells:
        assert run_cell(cell) == run_cell(cell)


# ------------------------------------------------------ parameter threading


def test_seed_threads_through_every_strategy_factory():
    for name in named_strategies():
        strategy = make_strategy(name, seed=5)
        if name == "composed":
            # Composed strategies give every component a seed *derived* from
            # the factory seed; thread-through here means determinism plus
            # sensitivity to the factory seed, not literal equality.
            again = make_strategy(name, seed=5)
            other = make_strategy(name, seed=6)
            assert getattr(strategy, "seed", None) == getattr(again, "seed", None)
            assert getattr(strategy, "seed", None) != getattr(other, "seed", None)
        else:
            assert getattr(strategy, "seed", 5) == 5, name


def test_strategy_factories_reject_unknown_params():
    with pytest.raises(ConfigurationError):
        make_strategy("equality-garbage", seed=0, params={"bogus": 1})
    with pytest.raises(ConfigurationError):
        make_strategy("adaptive-dodger", seed=0, params={"targets": 1, "oops": 2})


def test_spec_rejects_params_for_unknown_or_fault_free_strategies():
    base = dict(
        name="bad_params",
        topologies=("k4-fast",),
        strategies=(FAULT_FREE, "equality-garbage"),
        payload_bytes=(8,),
        fault_counts=(1,),
        protocols=("nab",),
    )
    with pytest.raises(ConfigurationError):
        ExperimentSpec(
            strategy_params={"equality-garbage": {"bogus": 3}}, **base
        ).expand()
    with pytest.raises(ConfigurationError):
        ExperimentSpec(
            strategy_params={FAULT_FREE: {"offset": 1}}, **base
        ).expand()


def test_spec_faulty_nodes_override_is_validated():
    base = dict(
        name="bad_placement",
        topologies=("k4-fast",),
        strategies=("equality-garbage",),
        payload_bytes=(8,),
        fault_counts=(1,),
        protocols=("nab",),
    )
    # More overridden faulty nodes than the fault count allows.
    with pytest.raises(ConfigurationError):
        ExperimentSpec(
            strategy_params={"equality-garbage": {"faulty_nodes": [2, 3]}}, **base
        ).expand()
    # Nodes that are not part of the topology.
    with pytest.raises(ConfigurationError):
        ExperimentSpec(
            strategy_params={"equality-garbage": {"faulty_nodes": [99]}}, **base
        ).expand()
    # A valid override lands on the cell and in its id.
    cells = ExperimentSpec(
        strategy_params={"equality-garbage": {"faulty_nodes": [3]}}, **base
    ).expand()
    assert cells[0].faulty_nodes == (3,)
    assert "|sp=" in cells[0].cell_id


# -------------------------------------------------------------- composition


def test_build_composed_validates_its_schema():
    with pytest.raises(ConfigurationError):
        build_composed(0, {"components": [{"kind": "no-such-kind"}]})
    with pytest.raises(ConfigurationError):
        build_composed(0, {"components": [{"kind": "crash", "extra": 1}]})
    with pytest.raises(ConfigurationError):
        build_composed(0, {"unknown_top_level": True})
    strategy = build_composed(
        0,
        {
            "components": [{"kind": "equality-garbage"}, {"kind": "false-flag"}],
            "rotate": True,
        },
    )
    assert strategy.name == "composed"


def test_stage_timed_rejects_malformed_stages():
    inner = make_strategy("equality-garbage", seed=0)
    with pytest.raises(ConfigurationError):
        StageTimedStrategy(inner, stages=())
    with pytest.raises(ConfigurationError):
        StageTimedStrategy(inner, stages=((0, 9),))  # no such phase
    with pytest.raises(ConfigurationError):
        StageTimedStrategy(inner, stages=((-1, 1),))


def test_composed_strategy_requires_components():
    with pytest.raises(ConfigurationError):
        ComposedStrategy(())


# ------------------------------------------------------------- pinned chaos


def test_chaos_stream_is_pinned():
    """The chaos RNG derivation is frozen: committed grids embed its draws.

    These literals were produced by ``chaos_stream`` at the time the
    ``adversary_zoo`` and ``nab_vs_classical`` result grids were committed.
    If this test fails, the chaos stream drifted and every committed
    chaos-strategy row would silently stop replaying byte-identically.
    """
    rng = chaos_stream(0, "chaos", "phase1_source_symbol")
    assert [rng.randrange(1, 256) for _ in range(4)] == [13, 225, 97, 84]
    rng = chaos_stream(7, "unit-test", ("tuple", 3))
    assert [rng.randrange(1 << 16) for _ in range(3)] == [62630, 47173, 16388]


def test_adversary_lattice_is_pinned():
    from fractions import Fraction

    lattice = AdversaryLattice(0, namespace="pin-test")
    assert lattice.point("a", 1) == Fraction(2183, 32768)
    assert lattice.randbits(8, "b", 2) == 144
    assert lattice.choice(["x", "y", "z"], "c", 3) == "x"


def test_zoo_factories_are_registered():
    factories = zoo_strategy_factories()
    assert set(factories) == {
        "stage-equivocator",
        "colluding-rotator",
        "adaptive-dodger",
        "relay-tamper",
        "composed",
    }
    assert set(factories) <= set(named_strategies())
