"""Tests for the classical Byzantine-broadcast substrate (relay, EIG, baseline)."""

from __future__ import annotations

import pytest

from repro.classical.broadcast_default import BroadcastDefault
from repro.classical.eig import EIGBroadcast, broadcast_bit_cost
from repro.classical.flooding import classical_full_value_broadcast
from repro.classical.relay import DisjointPathRelay, majority_value
from repro.exceptions import ProtocolError
from repro.graph.generators import complete_graph, heterogeneous_bottleneck, ring_with_chords
from repro.transport.faults import ByzantineStrategy, FaultModel
from repro.transport.network import SynchronousNetwork


class CorruptingRelayStrategy(ByzantineStrategy):
    """Faulty intermediate nodes flip every value they relay."""

    name = "corrupting-relay"

    def relay_value(self, instance, node, path, receiver, true_value):
        return ("corrupted", node)


class EquivocatingBroadcastStrategy(ByzantineStrategy):
    """A faulty broadcaster tells even-numbered receivers one thing and odd another."""

    name = "equivocating-broadcast"

    def broadcast_value(self, instance, node, receiver, context, true_value):
        return "even" if receiver % 2 == 0 else "odd"


class LyingRelayerStrategy(ByzantineStrategy):
    """A faulty EIG relayer reports a fixed bogus value in every relay round."""

    name = "lying-relayer"

    def broadcast_value(self, instance, node, receiver, context, true_value):
        return "bogus"


class TestMajorityValue:
    def test_empty_returns_default(self):
        assert majority_value([]) is None

    def test_strict_majority(self):
        assert majority_value([1, 1, 2]) == 1

    def test_no_strict_majority_returns_default(self):
        assert majority_value([1, 2]) is None

    def test_unhashable_payloads(self):
        assert majority_value([[1, 2], [1, 2], [3]]) == [1, 2]


class TestDisjointPathRelay:
    def test_paths_are_cached_and_disjoint(self):
        network = SynchronousNetwork(complete_graph(4))
        relay = DisjointPathRelay(network, max_faults=1)
        paths_first = relay.paths_between(1, 3)
        paths_second = relay.paths_between(1, 3)
        assert paths_first is paths_second
        assert len(paths_first) == 3

    def test_insufficient_connectivity_raises(self):
        graph = ring_with_chords(5, chord_span=0)  # plain ring, connectivity 2
        network = SynchronousNetwork(graph)
        relay = DisjointPathRelay(network, max_faults=1)
        with pytest.raises(ProtocolError):
            relay.paths_between(1, 3)

    def test_negative_faults_rejected(self):
        network = SynchronousNetwork(complete_graph(4))
        with pytest.raises(ProtocolError):
            DisjointPathRelay(network, max_faults=-1)

    def test_reliable_send_without_faults(self):
        network = SynchronousNetwork(complete_graph(4))
        relay = DisjointPathRelay(network, max_faults=1)
        assert relay.reliable_send(1, 3, "payload", 8, "p") == "payload"

    def test_reliable_send_to_self_is_identity(self):
        network = SynchronousNetwork(complete_graph(4))
        relay = DisjointPathRelay(network, max_faults=1)
        assert relay.reliable_send(2, 2, "x", 8, "p") == "x"
        assert network.total_bits() == 0

    def test_reliable_send_survives_corrupting_intermediate(self):
        fault_model = FaultModel([2], CorruptingRelayStrategy())
        network = SynchronousNetwork(complete_graph(4), fault_model)
        relay = DisjointPathRelay(network, max_faults=1)
        assert relay.reliable_send(1, 3, "payload", 8, "p") == "payload"

    def test_reliable_send_charges_bits(self):
        network = SynchronousNetwork(complete_graph(4))
        relay = DisjointPathRelay(network, max_faults=1)
        relay.reliable_send(1, 3, "payload", 10, "p")
        # 3 disjoint paths: one direct (1 hop) and two 2-hop paths -> 5 hops total.
        assert network.total_bits() == 5 * 10

    def test_faulty_sender_per_path_values(self):
        network = SynchronousNetwork(complete_graph(4), FaultModel([1]))
        relay = DisjointPathRelay(network, max_faults=1)
        received = relay.reliable_send_from_faulty(1, 3, ["a", "a", "b"], 8, "p")
        assert received == "a"

    def test_faulty_sender_per_path_values_wrong_length(self):
        network = SynchronousNetwork(complete_graph(4), FaultModel([1]))
        relay = DisjointPathRelay(network, max_faults=1)
        with pytest.raises(ProtocolError):
            relay.reliable_send_from_faulty(1, 3, ["a"], 8, "p")


class TestEIGBroadcast:
    def _make(self, node_count, faulty=(), strategy=None, max_faults=1):
        graph = complete_graph(node_count)
        network = SynchronousNetwork(graph, FaultModel(faulty, strategy))
        relay = DisjointPathRelay(network, max_faults)
        return network, EIGBroadcast(network, network.graph.nodes(), max_faults, relay)

    def test_requires_enough_participants(self):
        network = SynchronousNetwork(complete_graph(3))
        relay = DisjointPathRelay(network, 1)
        with pytest.raises(ProtocolError):
            EIGBroadcast(network, [1, 2, 3], 1, relay)

    def test_participants_must_be_graph_nodes(self):
        network = SynchronousNetwork(complete_graph(4))
        relay = DisjointPathRelay(network, 1)
        with pytest.raises(ProtocolError):
            EIGBroadcast(network, [1, 2, 3, 99], 1, relay)

    def test_source_must_be_participant(self):
        network, eig = self._make(4)
        with pytest.raises(ProtocolError):
            eig.broadcast(99, "v", 8, "p")

    def test_all_honest_agree_on_source_value(self):
        network, eig = self._make(4)
        outputs = eig.broadcast(1, "the-value", 16, "p")
        assert set(outputs) == {1, 2, 3, 4}
        assert all(value == "the-value" for value in outputs.values())

    def test_validity_with_faulty_non_source(self):
        network, eig = self._make(4, faulty=[3], strategy=LyingRelayerStrategy())
        outputs = eig.broadcast(1, 42, 8, "p")
        assert set(outputs) == {1, 2, 4}
        assert all(value == 42 for value in outputs.values())

    def test_agreement_with_equivocating_faulty_source(self):
        network, eig = self._make(4, faulty=[1], strategy=EquivocatingBroadcastStrategy())
        outputs = eig.broadcast(1, "never-sent", 8, "p")
        assert set(outputs) == {2, 3, 4}
        assert len(set(map(repr, outputs.values()))) == 1

    def test_agreement_and_validity_with_f2(self):
        graph = complete_graph(7)
        network = SynchronousNetwork(graph, FaultModel([3, 5], LyingRelayerStrategy()))
        relay = DisjointPathRelay(network, 2)
        eig = EIGBroadcast(network, graph.nodes(), 2, relay)
        outputs = eig.broadcast(1, "v7", 8, "p")
        assert set(outputs) == {1, 2, 4, 6, 7}
        assert all(value == "v7" for value in outputs.values())

    def test_agreement_with_faulty_source_f2(self):
        graph = complete_graph(7)
        network = SynchronousNetwork(graph, FaultModel([1, 4], EquivocatingBroadcastStrategy()))
        relay = DisjointPathRelay(network, 2)
        eig = EIGBroadcast(network, graph.nodes(), 2, relay)
        outputs = eig.broadcast(1, "x", 8, "p")
        assert len(set(map(repr, outputs.values()))) == 1

    def test_bits_are_charged(self):
        network, eig = self._make(4)
        eig.broadcast(1, "v", 8, "p")
        assert network.total_bits() > 0

    def test_broadcast_bit_cost_monotone_in_n(self):
        assert broadcast_bit_cost(5, 1) > broadcast_bit_cost(4, 1)
        assert broadcast_bit_cost(7, 2) > broadcast_bit_cost(7, 1)


class TestBroadcastDefault:
    def test_broadcast_from_all_agreement(self):
        graph = complete_graph(4)
        network = SynchronousNetwork(graph, FaultModel([2], EquivocatingBroadcastStrategy()))
        broadcaster = BroadcastDefault(network, graph.nodes(), 1)
        values = {node: f"flag-{node}" for node in graph.nodes()}
        outputs = broadcaster.broadcast_from_all(values, bit_size=1, phase="flags")
        fault_free = [1, 3, 4]
        assert sorted(outputs) == fault_free
        # All fault-free receivers agree on the whole vector.
        vectors = [repr(sorted(outputs[node].items(), key=lambda kv: kv[0])) for node in fault_free]
        assert len(set(vectors)) == 1
        # Validity for fault-free origins.
        for node in fault_free:
            for origin in fault_free:
                assert outputs[node][origin] == f"flag-{origin}"

    def test_broadcast_on_incomplete_network(self):
        graph = ring_with_chords(5, chord_span=2)
        network = SynchronousNetwork(graph)
        broadcaster = BroadcastDefault(network, graph.nodes(), 1)
        outputs = broadcaster.broadcast(2, "hello", 8, "p")
        assert all(value == "hello" for value in outputs.values())


class TestClassicalFloodingBaseline:
    def test_result_structure_and_validity(self):
        graph = complete_graph(4, capacity=4)
        result = classical_full_value_broadcast(graph, 1, b"payload-bytes", 1)
        assert result.agreed_value() == b"payload-bytes"
        assert result.elapsed > 0
        assert result.bits_sent > 0
        assert result.metadata["algorithm"] == "classical_eig_flooding"

    def test_slow_link_throttles_elapsed_time(self):
        value = b"x" * 64
        fast = heterogeneous_bottleneck(4, fast_capacity=8, slow_capacity=8)
        slow = heterogeneous_bottleneck(4, fast_capacity=8, slow_capacity=1)
        fast_result = classical_full_value_broadcast(fast, 1, value, 1)
        slow_result = classical_full_value_broadcast(slow, 1, value, 1)
        assert slow_result.elapsed > fast_result.elapsed

    def test_with_faulty_node_still_agrees(self):
        graph = complete_graph(4, capacity=2)
        fault_model = FaultModel([3], LyingRelayerStrategy())
        result = classical_full_value_broadcast(graph, 1, b"abc", 1, fault_model)
        assert sorted(result.outputs) == [1, 2, 4]
        assert result.agreed_value() == b"abc"
