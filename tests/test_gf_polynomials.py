"""Unit and property tests for GF(2) polynomial arithmetic and irreducibility."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FieldError
from repro.gf.polynomials import (
    irreducible_polynomial,
    is_irreducible,
    poly_degree,
    poly_divmod,
    poly_gcd,
    poly_mod,
    poly_mul,
    poly_mulmod,
    poly_powmod,
)


class TestPolyBasics:
    def test_degree_of_zero_is_minus_one(self):
        assert poly_degree(0) == -1

    def test_degree_of_one_is_zero(self):
        assert poly_degree(1) == 0

    def test_degree_counts_highest_set_bit(self):
        assert poly_degree(0b10011) == 4

    def test_mul_by_zero(self):
        assert poly_mul(0, 0b1011) == 0
        assert poly_mul(0b1011, 0) == 0

    def test_mul_by_one_is_identity(self):
        assert poly_mul(1, 0b1011) == 0b1011

    def test_mul_known_value(self):
        # (x + 1)(x + 1) = x^2 + 1 over GF(2) (cross terms cancel).
        assert poly_mul(0b11, 0b11) == 0b101

    def test_mul_x_times_x(self):
        assert poly_mul(0b10, 0b10) == 0b100

    def test_divmod_exact(self):
        quotient, remainder = poly_divmod(0b101, 0b11)
        assert remainder == 0
        assert poly_mul(quotient, 0b11) == 0b101

    def test_divmod_with_remainder_reconstructs(self):
        a, b = 0b110111, 0b1011
        quotient, remainder = poly_divmod(a, b)
        assert poly_degree(remainder) < poly_degree(b)
        assert poly_mul(quotient, b) ^ remainder == a

    def test_division_by_zero_raises(self):
        with pytest.raises(FieldError):
            poly_divmod(0b101, 0)

    def test_mod_smaller_than_modulus_unchanged(self):
        assert poly_mod(0b10, 0b1011) == 0b10

    def test_gcd_of_coprime_is_one(self):
        # x and x+1 are coprime.
        assert poly_gcd(0b10, 0b11) == 1

    def test_gcd_with_common_factor(self):
        # (x+1)^2 = x^2+1 shares factor (x+1) with x^2 + x = x(x+1).
        assert poly_gcd(0b101, 0b110) == 0b11

    def test_powmod_zero_exponent(self):
        assert poly_powmod(0b101, 0, 0b1011) == 1

    def test_powmod_matches_repeated_mulmod(self):
        modulus = 0b10011  # x^4 + x + 1, irreducible
        base = 0b101
        expected = 1
        for _ in range(7):
            expected = poly_mulmod(expected, base, modulus)
        assert poly_powmod(base, 7, modulus) == expected


class TestIrreducibility:
    def test_known_irreducible_degree4(self):
        assert is_irreducible(0b10011)  # x^4 + x + 1

    def test_known_reducible_degree4(self):
        # x^4 + 1 = (x+1)^4 over GF(2).
        assert not is_irreducible(0b10001)

    def test_degree_one_polynomials_are_irreducible(self):
        assert is_irreducible(0b10)
        assert is_irreducible(0b11)

    def test_constants_are_not_irreducible(self):
        assert not is_irreducible(0)
        assert not is_irreducible(1)

    def test_x_squared_plus_x_plus_one_irreducible(self):
        assert is_irreducible(0b111)

    def test_x_squared_plus_one_reducible(self):
        assert not is_irreducible(0b101)

    @pytest.mark.parametrize("degree", [1, 2, 3, 4, 5, 8, 13, 16, 32, 37, 64, 100, 128])
    def test_irreducible_polynomial_has_right_degree_and_is_irreducible(self, degree):
        poly = irreducible_polynomial(degree)
        assert poly_degree(poly) == degree
        assert is_irreducible(poly)

    def test_irreducible_polynomial_is_deterministic(self):
        assert irreducible_polynomial(24) == irreducible_polynomial(24)

    def test_invalid_degree_raises(self):
        with pytest.raises(FieldError):
            irreducible_polynomial(0)
        with pytest.raises(FieldError):
            irreducible_polynomial(-3)

    def test_brute_force_agreement_small_degrees(self):
        """Cross-check is_irreducible against trial division for degrees <= 6."""

        def divides(d, p):
            return poly_mod(p, d) == 0

        for poly in range(2, 1 << 7):
            degree = poly_degree(poly)
            has_factor = any(
                divides(d, poly)
                for d in range(2, 1 << degree)
                if 0 < poly_degree(d) < degree
            )
            assert is_irreducible(poly) == (not has_factor and degree >= 1)


@st.composite
def polynomials(draw, max_degree=48):
    return draw(st.integers(min_value=0, max_value=(1 << (max_degree + 1)) - 1))


class TestPolyProperties:
    @given(polynomials(), polynomials())
    @settings(max_examples=100, deadline=None)
    def test_multiplication_commutes(self, a, b):
        assert poly_mul(a, b) == poly_mul(b, a)

    @given(polynomials(16), polynomials(16), polynomials(16))
    @settings(max_examples=100, deadline=None)
    def test_multiplication_associates(self, a, b, c):
        assert poly_mul(poly_mul(a, b), c) == poly_mul(a, poly_mul(b, c))

    @given(polynomials(16), polynomials(16), polynomials(16))
    @settings(max_examples=100, deadline=None)
    def test_multiplication_distributes_over_xor(self, a, b, c):
        assert poly_mul(a, b ^ c) == poly_mul(a, b) ^ poly_mul(a, c)

    @given(polynomials(), st.integers(min_value=1, max_value=(1 << 20) - 1))
    @settings(max_examples=100, deadline=None)
    def test_divmod_roundtrip(self, a, b):
        quotient, remainder = poly_divmod(a, b)
        assert poly_mul(quotient, b) ^ remainder == a
        assert poly_degree(remainder) < poly_degree(b)

    @given(polynomials(20), polynomials(20))
    @settings(max_examples=100, deadline=None)
    def test_gcd_divides_both(self, a, b):
        gcd = poly_gcd(a, b)
        if gcd != 0:
            assert poly_mod(a, gcd) == 0
            assert poly_mod(b, gcd) == 0
