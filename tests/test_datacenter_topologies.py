"""Datacenter topology families, connectivity thresholds, bounds-only sweeps.

The generator invariants (node counts, symmetry, determinism, exact vertex
connectivity at small sizes) pin the PR 8 families; the spec/runner tests
cover the ``datacenter_scale`` bounds-only mode end to end.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.engine import (
    ExperimentSpec,
    FAULT_FREE,
    get_spec,
    render_comparison,
    run_spec,
    summarize_rows,
)
from repro.exceptions import GraphError
from repro.graph.connectivity import (
    has_vertex_connectivity_at_least,
    vertex_connectivity,
)
from repro.graph.generators import (
    fat_tree,
    octopus_pods,
    random_connected_network,
    ring_of_rings,
    torus_2d,
)
from repro.graph.gomory_hu import is_symmetric
from repro.workloads.topologies import named_topologies, topology


class TestGeneratorInvariants:
    @pytest.mark.parametrize("k,expected_nodes", [(4, 20), (8, 80)])
    def test_fat_tree_size_symmetry_determinism(self, k, expected_nodes):
        graph = fat_tree(k)
        # (k/2)^2 cores + k pods x (k/2 agg + k/2 edge) = 5 k^2 / 4 nodes.
        assert graph.node_count() == expected_nodes
        assert is_symmetric(graph)
        assert list(graph.edges()) == list(fat_tree(k).edges())

    def test_fat_tree_connectivity_is_half_k(self):
        assert vertex_connectivity(fat_tree(4)) == 2
        assert has_vertex_connectivity_at_least(fat_tree(8), 4)
        assert not has_vertex_connectivity_at_least(fat_tree(8), 5)

    def test_torus_size_symmetry_connectivity(self):
        graph = torus_2d(4, 5)
        assert graph.node_count() == 20
        assert is_symmetric(graph)
        assert vertex_connectivity(graph) == 4
        assert list(graph.edges()) == list(torus_2d(4, 5).edges())
        # Every node has exactly four neighbours on a torus.
        for node in graph.nodes():
            assert len(graph.successors(node)) == 4

    @pytest.mark.parametrize("uplinks,expected_kappa", [(2, 2), (3, 3)])
    def test_ring_of_rings_connectivity_tracks_uplinks(self, uplinks, expected_kappa):
        graph = ring_of_rings(4, 6, uplinks=uplinks)
        assert graph.node_count() == 24
        assert is_symmetric(graph)
        assert vertex_connectivity(graph) == expected_kappa
        assert list(graph.edges()) == list(ring_of_rings(4, 6, uplinks=uplinks).edges())

    @pytest.mark.parametrize("spine_width,expected_kappa", [(2, 2), (3, 3)])
    def test_octopus_connectivity_tracks_spine_width(self, spine_width, expected_kappa):
        graph = octopus_pods(4, 5, spine_width=spine_width)
        assert graph.node_count() == 20
        assert is_symmetric(graph)
        assert vertex_connectivity(graph) == expected_kappa
        assert list(graph.edges()) == list(
            octopus_pods(4, 5, spine_width=spine_width).edges()
        )

    def test_bad_parameters_rejected(self):
        with pytest.raises(GraphError):
            fat_tree(5)  # port counts must be even
        with pytest.raises(GraphError):
            fat_tree(2)
        with pytest.raises(GraphError):
            torus_2d(2, 8)
        with pytest.raises(GraphError):
            ring_of_rings(2, 8)
        with pytest.raises(GraphError):
            ring_of_rings(4, 2)
        with pytest.raises(GraphError):
            octopus_pods(2, 8)
        with pytest.raises(GraphError):
            octopus_pods(4, 1)

    def test_registered_datacenter_topologies_resolve(self):
        names = named_topologies()
        for name in (
            "fat-tree-8",
            "torus-8x8",
            "ring-rings-8x8",
            "octopus-8x8",
            "torus-32x32",
        ):
            assert name in names
            graph = topology(name)
            assert is_symmetric(graph)
            assert graph.node_count() >= 64

    def test_symmetric_random_network_has_equal_reverse_capacities(self):
        graph = random_connected_network(12, 2, random.Random(5), symmetric=True)
        assert is_symmetric(graph)
        # The default (asymmetric) draw stream is unchanged: same seed, no
        # symmetric flag, same node set.
        default = random_connected_network(12, 2, random.Random(5))
        assert default.node_count() == graph.node_count() == 12


class TestConnectivityThreshold:
    @pytest.mark.parametrize("seed", range(8))
    def test_threshold_agrees_with_exact_connectivity(self, seed):
        rng = random.Random(seed)
        graph = random_connected_network(
            rng.randint(5, 12), 1, rng, extra_edge_probability=0.2
        )
        exact = vertex_connectivity(graph)
        for k in range(0, exact + 3):
            assert has_vertex_connectivity_at_least(graph, k) == (exact >= k)

    def test_small_graph_edge_cases(self):
        single = torus_2d(3, 3).remove_nodes(range(2, 10))
        assert single.node_count() == 1
        assert has_vertex_connectivity_at_least(single, 1)
        assert not has_vertex_connectivity_at_least(single, 2)


class TestBoundsOnlySweeps:
    def test_datacenter_scale_expands_bounds_only_cells(self):
        spec = get_spec("datacenter_scale")
        cells = spec.expand()
        assert len(cells) == 11
        assert len({cell.topology for cell in cells}) == 11
        for cell in cells:
            assert cell.bounds_only
            assert cell.cell_id.endswith("|bounds")

    def test_datacenter_scale_f1_filters_to_feasible_families(self):
        spec = get_spec("datacenter_scale_f1")
        cells = spec.expand()
        # f = 1 requires vertex connectivity >= 3: all four 8-ish families
        # qualify (fat-tree-8 has kappa = 4, torus 4, ring-rings 3, octopus 3).
        assert {cell.topology for cell in cells} == {
            "fat-tree-8",
            "torus-8x8",
            "ring-rings-8x8",
            "octopus-8x8",
        }
        assert all(cell.bounds_only for cell in cells)

    def test_infeasible_family_drops_out_of_bounds_sweep(self):
        spec = ExperimentSpec(
            name="unit_bounds_infeasible",
            # f = 2 requires kappa >= 5; ring-rings-8x8 (kappa 3) and
            # torus-8x8 (kappa 4) both fail, so the sweep is empty rather
            # than erroring.
            topologies=("ring-rings-8x8", "torus-8x8"),
            strategies=(FAULT_FREE,),
            payload_bytes=(8,),
            fault_counts=(2,),
            protocols=("bounds",),
            instances=1,
            bounds_only=True,
        )
        assert spec.expand() == []

    def test_bounds_only_rows_have_bounds_and_no_record(self, tmp_path):
        spec = ExperimentSpec(
            name="unit_bounds_run",
            topologies=("torus-8x8",),
            strategies=(FAULT_FREE,),
            payload_bytes=(8,),
            fault_counts=(0,),
            protocols=("bounds",),
            instances=1,
            bounds_only=True,
        )
        out = str(tmp_path / "bounds.jsonl")
        summary = run_spec(spec, out_path=out, workers=1, resume=False)
        assert summary.total_cells == 1
        rows = summary.rows
        assert len(rows) == 1
        row = rows[0]
        assert row["record"] is None
        assert row["error"] is None
        assert row["bounds"]["gamma_star"] == 8  # degree 4, capacity 2 per link
        assert row["bounds"]["rho_star"] >= 1
        # Persisted as one JSONL row with the same shape.
        with open(out, "r", encoding="utf-8") as handle:
            persisted = [json.loads(line) for line in handle if line.strip()]
        assert len(persisted) == 1
        assert persisted[0]["record"] is None

        # Resume reuses the completed bounds-only row instead of recomputing.
        resumed = run_spec(spec, out_path=out, workers=1)
        assert resumed.computed_cells == 0
        assert resumed.skipped_cells == 1

    def test_reports_render_bounds_rows_without_crashing(self, tmp_path):
        spec = ExperimentSpec(
            name="unit_bounds_report",
            topologies=("torus-8x8",),
            strategies=(FAULT_FREE,),
            payload_bytes=(8,),
            fault_counts=(0,),
            protocols=("bounds",),
            instances=1,
            bounds_only=True,
        )
        summary = run_spec(spec, out_path=None, workers=1)
        text = render_comparison(summary.rows)
        assert "bounds" in text
        # summarize_rows skips record-less rows rather than crashing: the
        # bounds-only cell is counted but contributes no protocol tallies.
        summary_counts = summarize_rows(summary.rows)
        assert summary_counts["cells"] == 1
        assert summary_counts["errors"] == 0
