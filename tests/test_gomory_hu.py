"""Tests for the PR 8 Gomory–Hu layer: trees, caching, and decremental repair.

The per-pair Dinic solvers in ``repro.graph.maxflow`` are the frozen
correctness oracle: every property test here asserts the tree (or a repaired
tree) reproduces the oracle's values exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.core.dispute_state import DisputeState
from repro.engine import runner as engine_runner
from repro.exceptions import GraphError
from repro.graph import gomory_hu
from repro.graph.flow_cache import (
    cached_all_target_mincuts,
    cached_st_mincut,
    clear_mincut_cache,
    graph_signature,
    mincut_cache,
)
from repro.graph.generators import figure1a, random_connected_network, torus_2d
from repro.graph.gomory_hu import (
    cached_global_mincut,
    cached_gomory_hu,
    clear_gomory_hu_cache,
    derive_trees_after_pair_removals,
    gomory_hu_cache_stats,
    gomory_hu_tree,
    incremental_repair_stats,
    is_symmetric,
    repair_tree_after_pair_removal,
    tree_if_cached,
)
from repro.graph.maxflow import max_flow_value
from repro.graph.mincut import broadcast_mincut, min_pairwise_undirected_mincut
from repro.graph.network_graph import NetworkGraph


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_mincut_cache()
    clear_gomory_hu_cache()
    yield
    clear_mincut_cache()
    clear_gomory_hu_cache()


def _symmetric_random(node_count: int, seed: int, min_connectivity: int = 2) -> NetworkGraph:
    return random_connected_network(
        node_count,
        min_connectivity,
        random.Random(seed),
        max_capacity=6,
        symmetric=True,
    )


def _oracle_mincut(graph: NetworkGraph, a, b) -> int:
    return max_flow_value(graph, a, b)


class TestTreeVsOracle:
    @pytest.mark.parametrize("node_count,seed", [(4, 0), (8, 1), (16, 2), (32, 3), (64, 4)])
    def test_all_pairs_match_dinic_oracle(self, node_count, seed):
        graph = _symmetric_random(node_count, seed)
        tree = gomory_hu_tree(graph)
        nodes = graph.nodes()
        rng = random.Random(seed + 100)
        # Exhaustive below 16 nodes, sampled pairs above.
        if node_count <= 16:
            pairs = [(a, b) for i, a in enumerate(nodes) for b in nodes[i + 1 :]]
        else:
            pairs = [tuple(rng.sample(nodes, 2)) for _ in range(120)]
        for a, b in pairs:
            assert tree.mincut(a, b) == _oracle_mincut(graph, a, b)

    @pytest.mark.parametrize("seed", range(4))
    def test_all_target_walk_matches_oracle(self, seed):
        graph = _symmetric_random(10, seed, min_connectivity=3)
        tree = gomory_hu_tree(graph)
        for source in graph.nodes():
            values = tree.all_target_mincuts(source)
            assert sorted(values) == [n for n in graph.nodes() if n != source]
            for target, value in values.items():
                assert value == _oracle_mincut(graph, source, target)

    def test_tree_validity(self):
        graph = _symmetric_random(12, 7)
        tree = gomory_hu_tree(graph)
        edges = tree.tree_edges()
        # n - 1 edges, each an exact adjacent-pair min-cut, forming one tree.
        assert len(edges) == graph.node_count() - 1
        assert tree.flow_equivalent
        parents = {child for child, _, _ in edges}
        assert len(parents) == len(edges)
        for child, parent, weight in edges:
            assert weight == _oracle_mincut(graph, child, parent)
            side = tree.cut_side(child)
            assert child in side and parent not in side
        assert tree.min_weight() == min(weight for _, _, weight in edges)

    def test_global_min_equals_broadcast_mincut_everywhere(self):
        graph = _symmetric_random(9, 11, min_connectivity=3)
        tree = gomory_hu_tree(graph)
        for source in graph.nodes():
            oracle = min(
                _oracle_mincut(graph, source, j) for j in graph.nodes() if j != source
            )
            assert tree.min_weight() == oracle
            assert broadcast_mincut(graph, source) == oracle

    def test_asymmetric_graph_rejected_and_falls_back(self):
        graph = figure1a()  # genuinely directed: (1,2) has no reverse edge
        assert not is_symmetric(graph)
        with pytest.raises(GraphError):
            gomory_hu_tree(graph)
        assert cached_gomory_hu(graph) is None
        # The public min-cut entry points still answer via the Dinic oracle.
        oracle = min(_oracle_mincut(graph, 1, t) for t in graph.nodes() if t != 1)
        assert broadcast_mincut(graph, 1) == oracle == 2
        assert min_pairwise_undirected_mincut(graph) >= 1

    def test_repaired_tree_refuses_pairwise_queries(self):
        graph = _symmetric_random(8, 13)
        tree = gomory_hu_tree(graph)
        pair = frozenset(sorted({frozenset((t, h)) for t, h, _ in graph.edges()},
                                key=lambda p: tuple(sorted(p)))[0])
        a, b = sorted(pair)
        repaired = repair_tree_after_pair_removal(
            graph, tree, graph.remove_links_between([pair]), a, b
        )
        assert not repaired.flow_equivalent
        with pytest.raises(GraphError):
            repaired.mincut(a, b)
        with pytest.raises(GraphError):
            repaired.all_target_mincuts(a)


class TestDecrementalRepair:
    @pytest.mark.parametrize("seed", range(5))
    def test_single_removal_matches_full_resolve(self, seed):
        graph = _symmetric_random(10, seed, min_connectivity=3)
        tree = gomory_hu_tree(graph)
        pairs = sorted(
            {frozenset((t, h)) for t, h, _ in graph.edges()},
            key=lambda p: tuple(sorted(p)),
        )
        for pair in pairs:
            a, b = sorted(pair)
            smaller = graph.remove_links_between([pair])
            repaired = repair_tree_after_pair_removal(graph, tree, smaller, a, b)
            for child, parent, weight in repaired.tree_edges():
                assert weight == _oracle_mincut(smaller, child, parent)
            assert repaired.min_weight() == gomory_hu_tree(smaller).min_weight()

    def test_chained_removals_stay_exact(self):
        graph = torus_2d(4, 4)
        tree = gomory_hu_tree(graph)
        current = graph
        pairs = sorted(
            {frozenset((t, h)) for t, h, _ in graph.edges()},
            key=lambda p: tuple(sorted(p)),
        )[:6]
        for pair in pairs:
            a, b = sorted(pair)
            smaller = current.remove_links_between([pair])
            tree = repair_tree_after_pair_removal(current, tree, smaller, a, b)
            assert tree.min_weight() == gomory_hu_tree(smaller).min_weight()
            current = smaller

    def test_repair_counters_account_every_tree_edge(self):
        clear_gomory_hu_cache()
        graph = _symmetric_random(12, 21, min_connectivity=3)
        tree = gomory_hu_tree(graph)
        pair = sorted(
            {frozenset((t, h)) for t, h, _ in graph.edges()},
            key=lambda p: tuple(sorted(p)),
        )[0]
        a, b = sorted(pair)
        repair_tree_after_pair_removal(
            graph, tree, graph.remove_links_between([pair]), a, b
        )
        stats = incremental_repair_stats()
        assert stats["pairs"] == 1
        assert (
            stats["adjusted"] + stats["certified"] + stats["resolved"]
            == graph.node_count() - 1
        )
        # Epoch counters reset with the cache clear; lifetime counters survive.
        clear_gomory_hu_cache()
        after = incremental_repair_stats()
        assert after["pairs"] == 0
        assert after["lifetime_pairs"] == stats["lifetime_pairs"]

    def test_derive_seeds_global_min_for_final_graph(self):
        graph = torus_2d(3, 4)
        cached_gomory_hu(graph)
        pairs = [frozenset((1, 2)), frozenset((2, 3))]
        final = graph.remove_links_between(pairs)
        derived = derive_trees_after_pair_removals(graph, pairs, final)
        assert derived is not None and not derived.flow_equivalent
        assert derived.min_weight() == gomory_hu_tree(final).min_weight()
        # cached_global_mincut now answers from the seeded value.
        assert cached_global_mincut(final) == derived.min_weight()

    def test_derive_without_cached_tree_is_noop(self):
        graph = torus_2d(3, 3)
        pairs = [frozenset((1, 2))]
        final = graph.remove_links_between(pairs)
        assert derive_trees_after_pair_removals(graph, pairs, final) is None


class TestCaching:
    def test_cached_tree_hits_on_structural_equality(self):
        graph = torus_2d(3, 3)
        first = cached_gomory_hu(graph)
        stats = gomory_hu_cache_stats()
        assert stats["misses"] >= 1 and stats["hits"] == 0
        second = cached_gomory_hu(torus_2d(3, 3))  # fresh graph object
        assert second is first
        assert gomory_hu_cache_stats()["hits"] == 1

    def test_build_seeds_st_and_cut_keys_both_directions(self):
        graph = torus_2d(3, 3)
        signature = graph_signature(graph)
        tree = gomory_hu_tree(graph)
        cache = mincut_cache()
        for child, parent, weight in tree.tree_edges():
            for a, b in ((child, parent), (parent, child)):
                assert cache.peek(("st", signature, a, b)) == weight
                value, cut = cache.peek(("st-cut", signature, a, b))
                assert value == weight
                assert a in cut and b not in cut

    def test_st_query_uses_existing_tree_without_building_one(self):
        graph = torus_2d(3, 3)
        signature = graph_signature(graph)
        # No tree cached: a plain st query must NOT trigger a build.
        value = cached_st_mincut(graph, 1, 9)
        assert tree_if_cached(signature) is None
        assert value == _oracle_mincut(graph, 1, 9)
        # With a tree cached, a fresh st query is answered from the tree.
        cached_gomory_hu(graph)
        clear_mincut_cache()  # drop the seeded st keys, keep the tree
        assert cached_st_mincut(graph, 2, 8) == _oracle_mincut(graph, 2, 8)

    def test_all_targets_routes_through_tree_for_symmetric_graphs(self):
        graph = torus_2d(3, 3)
        values = cached_all_target_mincuts(graph, 1)
        assert gomory_hu_cache_stats()["entries"] >= 1
        for target, value in values.items():
            assert value == _oracle_mincut(graph, 1, target)

    def test_clear_hook_empties_cache(self):
        cached_gomory_hu(torus_2d(3, 3))
        assert gomory_hu_cache_stats()["entries"] >= 1
        clear_gomory_hu_cache()
        stats = gomory_hu_cache_stats()
        assert stats["entries"] == 0 and stats["hits"] == 0 and stats["misses"] == 0

    def test_peek_counts_nothing(self):
        cache = gomory_hu.gomory_hu_cache()
        before = gomory_hu_cache_stats()
        assert cache.peek(("tree", ("nope",))) is None
        after = gomory_hu_cache_stats()
        assert (after["hits"], after["misses"]) == (before["hits"], before["misses"])

    def test_runner_clears_gomory_hu_cache_between_topologies(self, monkeypatch):
        cached_gomory_hu(torus_2d(3, 3))
        assert gomory_hu_cache_stats()["entries"] >= 1
        monkeypatch.setattr(engine_runner, "_LAST_TOPOLOGY", None)
        monkeypatch.setattr(engine_runner, "run_cell", lambda cell: {"cell_id": "x"})

        class _FakeCell:
            topology = "k4-fast"

        engine_runner._execute_cell(_FakeCell())
        assert gomory_hu_cache_stats()["entries"] == 0


class TestDisputePathIntegration:
    def test_instance_graph_seeds_incremental_repair(self):
        graph = torus_2d(3, 4)
        state = DisputeState(max_faults=2)
        first = state.instance_graph(graph)
        assert first == graph
        # Analyse G_0 so its tree is cached (as gamma_k derivation would).
        assert broadcast_mincut(first, 1) == gomory_hu_tree(graph).min_weight()
        state.add_dispute(1, 2)
        before = incremental_repair_stats()["pairs"]
        second = state.instance_graph(graph)
        assert incremental_repair_stats()["pairs"] == before + 1
        # The repaired tree seeds the global-min used by gamma_{k+1}.
        expected = gomory_hu_tree(second).min_weight()
        assert broadcast_mincut(second, 1) == expected
        assert gomory_hu_cache_stats()["entries"] >= 2

    def test_incremental_values_match_full_analysis(self):
        graph = torus_2d(3, 4)
        incremental = DisputeState(max_faults=3)
        incremental.instance_graph(graph)
        disputes = [(1, 2), (2, 3), (5, 6)]
        for a, b in disputes:
            incremental.add_dispute(a, b)
            derived = incremental.instance_graph(graph)
            clear_mincut_cache()
            clear_gomory_hu_cache()
            fresh = DisputeState(max_faults=3)
            fresh.add_disputes([frozenset((x, y)) for x, y in disputes if (x, y) <= (a, b)])
            expected_graph = fresh.instance_graph(graph)
            assert derived == expected_graph
            for source in (1, 4, 8):
                assert broadcast_mincut(derived, source) == broadcast_mincut(
                    expected_graph, source
                )
