"""Tests for the discrete-event kernel and the link-model registry."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, SchedulerError
from repro.sched import (
    EventQueue,
    LinkModel,
    Task,
    link_model,
    named_link_models,
    register_link_model,
    simulate_tasks,
)


class TestEventQueue:
    def test_clock_starts_at_zero(self):
        queue = EventQueue()
        assert queue.now == 0
        assert len(queue) == 0

    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(Fraction(3), lambda: fired.append("late"))
        queue.schedule(Fraction(1), lambda: fired.append("early"))
        queue.schedule(Fraction(2), lambda: fired.append("middle"))
        assert queue.run() == Fraction(3)
        assert fired == ["early", "middle", "late"]

    def test_same_time_events_fire_in_schedule_order(self):
        queue = EventQueue()
        fired = []
        for tag in ("a", "b", "c"):
            queue.schedule(Fraction(1), lambda tag=tag: fired.append(tag))
        queue.run()
        assert fired == ["a", "b", "c"]

    def test_callbacks_may_schedule_more_events(self):
        queue = EventQueue()
        fired = []

        def chain():
            fired.append(queue.now)
            if queue.now < 3:
                queue.schedule_after(Fraction(1), chain)

        queue.schedule(Fraction(1), chain)
        assert queue.run() == Fraction(3)
        assert fired == [Fraction(1), Fraction(2), Fraction(3)]

    def test_scheduling_in_the_past_rejected(self):
        queue = EventQueue()
        queue.schedule(Fraction(5), None)
        queue.run()
        with pytest.raises(SchedulerError):
            queue.schedule(Fraction(4), None)
        with pytest.raises(SchedulerError):
            queue.schedule_after(Fraction(-1), None)

    def test_none_actions_advance_the_clock(self):
        queue = EventQueue()
        queue.schedule(Fraction(7, 2), None)
        assert queue.run() == Fraction(7, 2)


class TestSimulateTasks:
    def test_independent_tasks_run_in_parallel(self):
        timeline = simulate_tasks(
            [Task("a", Fraction(2)), Task("b", Fraction(5)), Task("c", Fraction(3))]
        )
        assert timeline.makespan == Fraction(5)
        assert timeline.start("a") == timeline.start("b") == Fraction(0)

    def test_dependencies_serialize(self):
        timeline = simulate_tasks(
            [
                Task("a", Fraction(2)),
                Task("b", Fraction(3), deps=("a",)),
                Task("c", Fraction(1), deps=("a", "b")),
            ]
        )
        assert timeline.start("b") == Fraction(2)
        assert timeline.start("c") == Fraction(5)
        assert timeline.makespan == Fraction(6)

    def test_figure3_pipeline_recurrence(self):
        # The canonical pipeline: (q, h) depends on (q, h-1) and (q-1, h),
        # every stage one round long => end(q, h) = (q + h) * round.
        round_length = Fraction(7, 3)
        instances, depth = 5, 4
        tasks = []
        for q in range(instances):
            for h in range(1, depth + 1):
                deps = []
                if h > 1:
                    deps.append((q, h - 1))
                if q > 0:
                    deps.append((q - 1, h))
                tasks.append(Task((q, h), round_length, tuple(deps)))
        timeline = simulate_tasks(tasks)
        for q in range(instances):
            for h in range(1, depth + 1):
                assert timeline.end((q, h)) == (q + h) * round_length
        assert timeline.makespan == (instances + depth - 1) * round_length

    def test_zero_duration_tasks_allowed(self):
        timeline = simulate_tasks([Task("a", Fraction(0)), Task("b", Fraction(0), ("a",))])
        assert timeline.makespan == Fraction(0)
        assert len(timeline) == 2

    def test_empty_graph(self):
        assert simulate_tasks([]).makespan == Fraction(0)

    def test_cycle_detected(self):
        with pytest.raises(SchedulerError, match="cycle"):
            simulate_tasks(
                [Task("a", Fraction(1), ("b",)), Task("b", Fraction(1), ("a",))]
            )

    def test_duplicate_and_unknown_names_rejected(self):
        with pytest.raises(SchedulerError, match="duplicate"):
            simulate_tasks([Task("a", Fraction(1)), Task("a", Fraction(2))])
        with pytest.raises(SchedulerError, match="unknown"):
            simulate_tasks([Task("a", Fraction(1), ("ghost",))])

    def test_negative_duration_rejected(self):
        with pytest.raises(SchedulerError, match="negative"):
            simulate_tasks([Task("a", Fraction(-1))])

    def test_unknown_task_lookup_rejected(self):
        timeline = simulate_tasks([Task("a", Fraction(1))])
        with pytest.raises(SchedulerError):
            timeline.end("ghost")

    @given(
        durations=st.lists(
            st.fractions(min_value=0, max_value=10), min_size=1, max_size=8
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_chain_makespan_is_sum_of_durations(self, durations):
        tasks = []
        for index, duration in enumerate(durations):
            deps = (index - 1,) if index else ()
            tasks.append(Task(index, duration, deps))
        timeline = simulate_tasks(tasks)
        assert timeline.makespan == sum(durations, Fraction(0))


class TestLinkModel:
    def test_instant_model(self):
        model = LinkModel()
        assert model.is_instant
        assert model.delay((1, 2), 0) == 0

    def test_uniform_latency(self):
        model = LinkModel(name="u", latency=Fraction(3, 2))
        assert not model.is_instant
        assert model.delay((1, 2), 5) == Fraction(3, 2)

    def test_per_link_overrides(self):
        model = LinkModel(
            name="hetero",
            latency=Fraction(1),
            per_link={(1, 2): Fraction(10)},
        )
        assert model.delay((1, 2), 0) == Fraction(10)
        assert model.delay((2, 1), 0) == Fraction(1)

    def test_jitter_is_deterministic_and_bounded(self):
        model = LinkModel(name="j", latency=Fraction(1), jitter=Fraction(2), seed=3)
        seen = set()
        for sequence in range(40):
            delay = model.delay((1, 2), sequence)
            assert Fraction(1) <= delay <= Fraction(3)
            assert delay == model.delay((1, 2), sequence)
            seen.add(delay)
        # A 40-message sample hits more than one lattice point.
        assert len(seen) > 1

    def test_jitter_differs_across_links_and_seeds(self):
        model = LinkModel(name="j", jitter=Fraction(1), seed=3)
        other_seed = LinkModel(name="j", jitter=Fraction(1), seed=4)
        delays_a = [model.delay((1, 2), s) for s in range(20)]
        delays_b = [model.delay((2, 1), s) for s in range(20)]
        delays_c = [other_seed.delay((1, 2), s) for s in range(20)]
        assert delays_a != delays_b
        assert delays_a != delays_c

    def test_negative_parameters_rejected(self):
        with pytest.raises(SchedulerError):
            LinkModel(latency=Fraction(-1))
        with pytest.raises(SchedulerError):
            LinkModel(jitter=Fraction(-1))
        with pytest.raises(SchedulerError):
            LinkModel(per_link={(1, 2): Fraction(-1)})


class TestLinkModelRegistry:
    def test_named_models_instantiable(self):
        names = named_link_models()
        assert "instant" in names
        assert "unit-latency" in names
        for name in names:
            model = link_model(name)
            assert model.name == name

    def test_instant_is_instant(self):
        assert link_model("instant").is_instant
        assert not link_model("unit-latency").is_instant
        assert not link_model("lan-wan").is_instant
        assert not link_model("jitter-mild").is_instant

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            link_model("definitely-not-a-model")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_link_model("instant", LinkModel)
