"""Tests for pod-style ledger forensics.

The accountability contract, property-tested across the whole adversary zoo:

* **Soundness** — no fault-free node is ever accused, whatever the adversary
  does (the headline guarantee; a forensic pass with false positives would be
  worse than none).
* **Completeness** — every recorded dispute touches at least one truly
  faulty node, and whenever the protocol ran dispute control at all, some
  truly faulty node appears among the suspects or accused.
* Strategies that forge flags or lie in dispute claims produce direct,
  evidence-backed accusations.
"""

from __future__ import annotations

import pytest

from repro.analysis import ForensicRecorder, analyze_records, audit_rows
from repro.core.nab import NetworkAwareBroadcast
from repro.workloads import adversarial_scenario, named_strategies

#: (strategy, faulty placement) pairs on k7-unit at f = 2.  The equivocating
#: source must actually be the source; every other strategy corrupts two
#: non-source nodes.
K7_PLACEMENTS = [
    (name, (1, 7) if name == "equivocating-source" else (6, 7))
    for name in sorted(named_strategies())
]


def _run_with_recorder(strategy_name, faulty, params=None, instances=3):
    scenario = adversarial_scenario(
        topology_name="k7-unit",
        strategy_name=strategy_name,
        faulty_nodes=faulty,
        instances=instances,
        value_bytes=8,
        max_faults=2,
        seed=11,
        source=1,
        strategy_params=params,
    )
    recorder = ForensicRecorder()
    protocol = NetworkAwareBroadcast(
        scenario.graph,
        scenario.source,
        scenario.max_faults,
        scenario.fault_model,
        coding_seed=scenario.seed,
        recorder=recorder,
    )
    record = protocol.run_record(list(scenario.inputs))
    return recorder, record


@pytest.mark.parametrize("strategy_name,faulty", K7_PLACEMENTS)
def test_soundness_no_honest_node_is_ever_accused(strategy_name, faulty):
    recorder, _ = _run_with_recorder(strategy_name, faulty)
    report = recorder.analyze()
    assert report.accused_nodes() <= set(faulty), (
        f"{strategy_name}: honest node accused: "
        f"{sorted(report.accused_nodes() - set(faulty))}"
    )


@pytest.mark.parametrize("strategy_name,faulty", K7_PLACEMENTS)
def test_completeness_every_dispute_touches_a_faulty_node(strategy_name, faulty):
    recorder, record = _run_with_recorder(strategy_name, faulty)
    report = recorder.analyze()
    for pair in report.disputes:
        assert set(pair) & set(faulty), (
            f"{strategy_name}: dispute {sorted(pair)} among honest nodes"
        )
    if record.dispute_control_executions > 0 and report.disputes:
        culprits = report.suspects | report.accused_nodes()
        assert culprits & set(faulty), (
            f"{strategy_name}: dispute control ran but no faulty node is "
            f"even suspected"
        )


def test_forgers_are_directly_accused():
    """Flag forgery and claim-table lies leave checkable evidence."""
    for strategy_name in ("false-flag", "equality-garbage", "dispute-liar"):
        recorder, record = _run_with_recorder(strategy_name, (6, 7))
        report = recorder.analyze()
        assert record.dispute_control_executions > 0
        accused = report.accused_nodes()
        assert accused, f"{strategy_name}: no accusation despite dispute control"
        assert accused <= {6, 7}
        # Every accusation carries human-readable evidence.
        for node, reasons in report.accused.items():
            assert reasons, node


def test_adaptive_dodger_is_caught_by_the_ledger():
    """The dodger survives DC3 by patching its claims — but the patched
    claims then contradict the public ledger, which is exactly rule 2."""
    recorder, _ = _run_with_recorder(
        "composed",
        (4, 6),
        params={
            "components": [
                {"kind": "adaptive-dodger", "targets": 1, "aggressors": 1}
            ],
            "rotate": True,
        },
        instances=8,
    )
    report = recorder.analyze()
    assert report.accused_nodes()
    assert report.accused_nodes() <= {4, 6}


def test_fault_free_run_accuses_nobody():
    recorder, record = _run_with_recorder("crash", (6, 7))
    # Crash faults are omissions; whatever happens, accusations must stay
    # within the faulty set — and an entirely fault-free run is silent.
    assert recorder.analyze().accused_nodes() <= {6, 7}
    assert analyze_records([]).accused == {}
    assert analyze_records([]).suspects == frozenset()


# ----------------------------------------------------------------- audit_rows


def _row(**overrides):
    row = {
        "cell_id": "test-cell",
        "faulty_nodes": [6, 7],
        "record": {
            "agreement_ok": True,
            "validity_ok": True,
            "metadata": {"disputes": [[2, 6]], "identified_faulty": [7]},
        },
    }
    row.update(overrides)
    return row


def test_audit_rows_passes_clean_rows():
    assert audit_rows([_row()]) == []


def test_audit_rows_skips_rows_without_records():
    assert audit_rows([_row(record=None)]) == []


def test_audit_rows_flags_false_identification():
    row = _row()
    row["record"]["metadata"]["identified_faulty"] = [2]
    violations = audit_rows([row])
    assert any("identified as faulty" in v for v in violations)


def test_audit_rows_flags_disputes_between_honest_nodes():
    row = _row()
    row["record"]["metadata"]["disputes"] = [[2, 3]]
    violations = audit_rows([row])
    assert any("between fault-free nodes" in v for v in violations)


def test_audit_rows_flags_spec_violations():
    row = _row()
    row["record"]["agreement_ok"] = False
    row["record"]["validity_ok"] = False
    violations = audit_rows([row])
    assert any("agreement_ok" in v for v in violations)
    assert any("validity_ok" in v for v in violations)
