"""Tests for max-flow, min-cut, undirected views and connectivity."""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph.connectivity import (
    local_connectivity,
    meets_connectivity_requirement,
    vertex_connectivity,
    vertex_disjoint_paths,
)
from repro.graph.generators import complete_graph, figure1a, figure1b, figure2a
from repro.graph.maxflow import max_flow_value, max_flow_with_cut
from repro.graph.mincut import all_target_mincuts, broadcast_mincut, st_mincut
from repro.graph.network_graph import NetworkGraph
from repro.graph.undirected import UndirectedView


class TestMaxFlow:
    def test_single_edge(self):
        graph = NetworkGraph.from_edges({(1, 2): 7})
        assert max_flow_value(graph, 1, 2) == 7

    def test_series_bottleneck(self):
        graph = NetworkGraph.from_edges({(1, 2): 5, (2, 3): 2})
        assert max_flow_value(graph, 1, 3) == 2

    def test_parallel_paths_add(self):
        graph = NetworkGraph.from_edges({(1, 2): 2, (2, 4): 2, (1, 3): 3, (3, 4): 3})
        assert max_flow_value(graph, 1, 4) == 5

    def test_no_path_gives_zero(self):
        graph = NetworkGraph.from_edges({(2, 1): 1})
        graph_with_sink = graph.copy()
        graph_with_sink.add_node(3)
        assert max_flow_value(graph_with_sink, 1, 3) == 0

    def test_missing_nodes_raise(self):
        graph = NetworkGraph.from_edges({(1, 2): 1})
        with pytest.raises(GraphError):
            max_flow_value(graph, 1, 99)

    def test_same_source_sink_raises(self):
        graph = NetworkGraph.from_edges({(1, 2): 1})
        with pytest.raises(GraphError):
            max_flow_value(graph, 1, 1)

    def test_classic_diamond_with_cross_edge(self):
        graph = NetworkGraph.from_edges(
            {(1, 2): 10, (1, 3): 10, (2, 3): 1, (2, 4): 10, (3, 4): 10}
        )
        assert max_flow_value(graph, 1, 4) == 20

    def test_cut_side_contains_source(self):
        graph = NetworkGraph.from_edges({(1, 2): 1, (2, 3): 5})
        value, cut = max_flow_with_cut(graph, 1, 3)
        assert value == 1
        assert 1 in cut and 3 not in cut

    def test_figure1a_mincuts_match_paper(self):
        graph = figure1a()
        assert st_mincut(graph, 1, 2) == 2
        assert st_mincut(graph, 1, 3) == 3
        assert st_mincut(graph, 1, 4) == 2

    def test_figure1a_gamma_is_two(self):
        assert broadcast_mincut(figure1a(), 1) == 2

    def test_all_target_mincuts(self):
        cuts = all_target_mincuts(figure1a(), 1)
        assert cuts == {2: 2, 3: 3, 4: 2}

    def test_broadcast_mincut_requires_other_nodes(self):
        graph = NetworkGraph()
        graph.add_node(1)
        with pytest.raises(GraphError):
            broadcast_mincut(graph, 1)

    def test_matches_networkx_on_random_graphs(self):
        rng = random.Random(42)
        for _ in range(10):
            node_count = rng.randint(4, 8)
            graph = NetworkGraph()
            nx_graph = nx.DiGraph()
            for node in range(1, node_count + 1):
                graph.add_node(node)
                nx_graph.add_node(node)
            for tail in range(1, node_count + 1):
                for head in range(1, node_count + 1):
                    if tail != head and rng.random() < 0.5:
                        capacity = rng.randint(1, 6)
                        graph.add_edge(tail, head, capacity)
                        nx_graph.add_edge(tail, head, capacity=capacity)
            source, sink = 1, node_count
            expected = nx.maximum_flow_value(nx_graph, source, sink)
            assert max_flow_value(graph, source, sink) == expected


class TestUndirectedView:
    def test_capacities_sum_both_directions(self):
        graph = NetworkGraph.from_edges({(1, 2): 2, (2, 1): 3, (2, 3): 1})
        view = UndirectedView(graph)
        assert view.capacity(1, 2) == 5
        assert view.capacity(2, 3) == 1

    def test_missing_edge_raises(self):
        view = UndirectedView(NetworkGraph.from_edges({(1, 2): 1}))
        with pytest.raises(GraphError):
            view.capacity(1, 3)

    def test_edges_listing(self):
        graph = NetworkGraph.from_edges({(2, 1): 3, (1, 3): 1})
        view = UndirectedView(graph)
        assert list(view.edges()) == [(1, 2, 3), (1, 3, 1)]

    def test_neighbors(self):
        view = UndirectedView(NetworkGraph.from_edges({(1, 2): 1, (3, 1): 1}))
        assert view.neighbors(1) == [2, 3]
        with pytest.raises(GraphError):
            view.neighbors(42)

    def test_is_connected(self):
        connected = UndirectedView(NetworkGraph.from_edges({(1, 2): 1, (3, 2): 1}))
        assert connected.is_connected()
        graph = NetworkGraph.from_edges({(1, 2): 1})
        graph.add_node(3)
        assert not UndirectedView(graph).is_connected()

    def test_mincut_simple_path(self):
        view = UndirectedView(NetworkGraph.from_edges({(1, 2): 2, (2, 3): 1}))
        assert view.mincut(1, 3) == 1
        assert view.mincut(1, 2) == 2

    def test_min_pairwise_mincut_requires_two_nodes(self):
        graph = NetworkGraph()
        graph.add_node(1)
        with pytest.raises(GraphError):
            UndirectedView(graph).min_pairwise_mincut()

    def test_min_pairwise_mincut_disconnected_is_zero(self):
        graph = NetworkGraph.from_edges({(1, 2): 1})
        graph.add_node(3)
        assert UndirectedView(graph).min_pairwise_mincut() == 0

    def test_figure1b_subgraph_pairwise_mincuts(self):
        """The Omega_k subgraphs of Figure 1(b) have pairwise min-cuts 2 and 3 -> U_k = 2."""
        graph = figure1b()
        sub_124 = UndirectedView(graph.induced_subgraph([1, 2, 4]))
        sub_134 = UndirectedView(graph.induced_subgraph([1, 3, 4]))
        assert sub_124.min_pairwise_mincut() == 2
        assert sub_134.min_pairwise_mincut() == 3

    def test_matches_networkx_global_mincut(self):
        rng = random.Random(7)
        for _ in range(8):
            node_count = rng.randint(4, 7)
            graph = NetworkGraph()
            nx_graph = nx.Graph()
            for node in range(1, node_count + 1):
                graph.add_node(node)
                nx_graph.add_node(node)
            for a in range(1, node_count + 1):
                for b in range(a + 1, node_count + 1):
                    if rng.random() < 0.7:
                        capacity = rng.randint(1, 5)
                        graph.add_edge(a, b, capacity)
                        nx_graph.add_edge(a, b, weight=capacity)
            if not nx.is_connected(nx_graph):
                continue
            expected = nx.stoer_wagner(nx_graph)[0]
            assert UndirectedView(graph).min_pairwise_mincut() == expected


class TestConnectivity:
    def test_complete_graph_connectivity(self):
        assert vertex_connectivity(complete_graph(4)) == 3
        assert vertex_connectivity(complete_graph(5)) == 4

    def test_path_graph_connectivity_one(self):
        graph = NetworkGraph.from_edges({(1, 2): 1, (2, 1): 1, (2, 3): 1, (3, 2): 1})
        assert vertex_connectivity(graph) == 1

    def test_local_connectivity_direct_edge_counts(self):
        graph = NetworkGraph.from_edges({(1, 2): 5})
        assert local_connectivity(graph, 1, 2) == 1

    def test_local_connectivity_requires_distinct(self):
        graph = NetworkGraph.from_edges({(1, 2): 1})
        with pytest.raises(GraphError):
            local_connectivity(graph, 1, 1)

    def test_local_connectivity_missing_node(self):
        graph = NetworkGraph.from_edges({(1, 2): 1})
        with pytest.raises(GraphError):
            local_connectivity(graph, 1, 9)

    def test_small_graph_connectivity(self):
        assert vertex_connectivity(NetworkGraph.from_edges({(1, 2): 1})) == 0

    def test_single_node_graph(self):
        graph = NetworkGraph()
        graph.add_node(1)
        assert vertex_connectivity(graph) == 1

    def test_meets_connectivity_requirement(self):
        assert meets_connectivity_requirement(complete_graph(4), 1)
        assert not meets_connectivity_requirement(complete_graph(4), 2)
        with pytest.raises(GraphError):
            meets_connectivity_requirement(complete_graph(4), -1)

    def test_matches_networkx_vertex_connectivity(self):
        rng = random.Random(13)
        compared = 0
        while compared < 6:
            node_count = rng.randint(4, 7)
            nx_graph = nx.DiGraph()
            graph = NetworkGraph()
            for node in range(1, node_count + 1):
                nx_graph.add_node(node)
                graph.add_node(node)
            for tail in range(1, node_count + 1):
                for head in range(1, node_count + 1):
                    if tail != head and rng.random() < 0.6:
                        nx_graph.add_edge(tail, head)
                        graph.add_edge(tail, head, rng.randint(1, 3))
            if not nx.is_strongly_connected(nx_graph):
                # networkx's global node_connectivity is only meaningful (and
                # comparable to ours) for strongly connected digraphs.
                continue
            expected = nx.node_connectivity(nx_graph)
            assert vertex_connectivity(graph) == expected
            compared += 1


class TestVertexDisjointPaths:
    def test_paths_in_complete_graph(self):
        graph = complete_graph(5)
        paths = vertex_disjoint_paths(graph, 1, 4, 3)
        assert len(paths) == 3
        self._assert_disjoint_and_valid(graph, paths, 1, 4)

    def test_paths_in_figure2a(self):
        graph = figure2a()
        paths = vertex_disjoint_paths(graph, 1, 3, 2)
        assert len(paths) == 2
        self._assert_disjoint_and_valid(graph, paths, 1, 3)

    def test_requesting_too_many_paths_raises(self):
        graph = NetworkGraph.from_edges({(1, 2): 1, (2, 3): 1})
        with pytest.raises(GraphError):
            vertex_disjoint_paths(graph, 1, 3, 2)

    def test_invalid_count_raises(self):
        graph = complete_graph(4)
        with pytest.raises(GraphError):
            vertex_disjoint_paths(graph, 1, 2, 0)

    def test_direct_edge_is_one_of_the_paths(self):
        graph = complete_graph(4)
        paths = vertex_disjoint_paths(graph, 1, 2, 3)
        assert [1, 2] in paths

    def test_paths_on_random_graphs_are_disjoint(self):
        rng = random.Random(99)
        for _ in range(5):
            graph = complete_graph(6)
            paths = vertex_disjoint_paths(graph, 1, 6, 5)
            self._assert_disjoint_and_valid(graph, paths, 1, 6)

    @staticmethod
    def _assert_disjoint_and_valid(graph, paths, source, target):
        internal_nodes = []
        for path in paths:
            assert path[0] == source and path[-1] == target
            for tail, head in zip(path, path[1:]):
                assert graph.has_edge(tail, head)
            internal_nodes.extend(path[1:-1])
        assert len(internal_nodes) == len(set(internal_nodes))


@st.composite
def random_capacitated_digraphs(draw):
    node_count = draw(st.integers(min_value=3, max_value=6))
    edges = {}
    for tail in range(1, node_count + 1):
        for head in range(1, node_count + 1):
            if tail != head and draw(st.booleans()):
                edges[(tail, head)] = draw(st.integers(min_value=1, max_value=5))
    # Guarantee a path from 1 to node_count exists so flows are interesting.
    for node in range(1, node_count):
        edges.setdefault((node, node + 1), draw(st.integers(min_value=1, max_value=5)))
    return NetworkGraph.from_edges(edges), node_count


class TestFlowProperties:
    @given(random_capacitated_digraphs())
    @settings(max_examples=40, deadline=None)
    def test_flow_bounded_by_degree_cuts(self, data):
        graph, node_count = data
        value = max_flow_value(graph, 1, node_count)
        assert value <= graph.out_capacity(1)
        assert value <= graph.in_capacity(node_count)

    @given(random_capacitated_digraphs())
    @settings(max_examples=40, deadline=None)
    def test_cut_capacity_equals_flow(self, data):
        graph, node_count = data
        value, cut = max_flow_with_cut(graph, 1, node_count)
        cut_capacity = sum(
            capacity
            for tail, head, capacity in graph.edges()
            if tail in cut and head not in cut
        )
        assert cut_capacity == value

    @given(random_capacitated_digraphs())
    @settings(max_examples=30, deadline=None)
    def test_broadcast_mincut_is_min_of_st_cuts(self, data):
        graph, _ = data
        gamma = broadcast_mincut(graph, 1)
        assert gamma == min(all_target_mincuts(graph, 1).values())
