"""End-to-end tests for the multi-instance NAB runner (agreement, validity, amortisation)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.strategies import (
    CrashStrategy,
    DisputeLiarStrategy,
    EqualityGarbageStrategy,
    EquivocatingSourceStrategy,
    FalseFlagStrategy,
    Phase1CorruptingRelayStrategy,
    RandomizedChaosStrategy,
)
from repro.core.nab import NetworkAwareBroadcast
from repro.exceptions import ProtocolError
from repro.graph.generators import complete_graph, heterogeneous_bottleneck, random_connected_network
from repro.transport.faults import ByzantineStrategy, FaultModel


def _values(count, length=4, seed=0):
    rng = random.Random(seed)
    return [bytes(rng.randrange(256) for _ in range(length)) for _ in range(count)]


class TestConstruction:
    def test_rejects_missing_source(self):
        with pytest.raises(ProtocolError):
            NetworkAwareBroadcast(complete_graph(4), 99, 1)

    def test_rejects_insufficient_nodes(self):
        with pytest.raises(ProtocolError):
            NetworkAwareBroadcast(complete_graph(3), 1, 1)

    def test_rejects_negative_faults(self):
        with pytest.raises(ProtocolError):
            NetworkAwareBroadcast(complete_graph(4), 1, -1)

    def test_rejects_low_connectivity(self):
        from repro.graph.network_graph import NetworkGraph

        graph = NetworkGraph.from_edges(
            {(1, 2): 1, (2, 1): 1, (2, 3): 1, (3, 2): 1, (3, 4): 1, (4, 3): 1, (4, 1): 1, (1, 4): 1}
        )
        with pytest.raises(ProtocolError):
            NetworkAwareBroadcast(graph, 1, 1)

    def test_rejects_too_many_actual_faults(self):
        with pytest.raises(ProtocolError):
            NetworkAwareBroadcast(
                complete_graph(4), 1, 1, fault_model=FaultModel([2, 3])
            )

    def test_rejects_empty_values(self):
        nab = NetworkAwareBroadcast(complete_graph(4), 1, 1)
        with pytest.raises(ProtocolError):
            nab.run([])
        with pytest.raises(ProtocolError):
            nab.run_instance(b"")


class TestFaultFreeRuns:
    def test_single_instance_validity(self):
        nab = NetworkAwareBroadcast(complete_graph(4, capacity=2), 1, 1)
        result = nab.run_instance(b"\x12\x34\x56\x78")
        assert result.agreed_value() == 0x12345678
        assert not result.dispute_control_ran
        assert result.elapsed > 0

    def test_multiple_instances_throughput_reported(self):
        nab = NetworkAwareBroadcast(complete_graph(4, capacity=2), 1, 1)
        run = nab.run(_values(5))
        assert run.throughput is not None and run.throughput > 0
        assert run.dispute_control_executions == 0
        assert len(run.instances) == 5
        assert nab.instances_run == 5

    def test_outputs_match_inputs_per_instance(self):
        values = _values(4, seed=3)
        nab = NetworkAwareBroadcast(complete_graph(5, capacity=3), 1, 1)
        run = nab.run(values)
        for value, result in zip(values, run.instances):
            assert result.agreed_value() == int.from_bytes(value, "big")

    def test_instance_graph_unchanged_without_faults(self):
        nab = NetworkAwareBroadcast(complete_graph(4), 1, 1)
        nab.run(_values(3))
        assert nab.current_instance_graph() == nab.graph


ATTACKS = [
    ("phase1-relay", Phase1CorruptingRelayStrategy()),
    ("equality-garbage", EqualityGarbageStrategy()),
    ("false-flag", FalseFlagStrategy()),
    ("dispute-liar", DisputeLiarStrategy()),
    ("crash", CrashStrategy()),
    ("chaos", RandomizedChaosStrategy(seed=7)),
]


class TestAdversarialRuns:
    @pytest.mark.parametrize("name,strategy", ATTACKS, ids=[name for name, _ in ATTACKS])
    def test_agreement_and_validity_with_faulty_relay(self, name, strategy):
        graph = complete_graph(4, capacity=2)
        fault_model = FaultModel([3], strategy)
        nab = NetworkAwareBroadcast(graph, 1, 1, fault_model=fault_model)
        values = _values(4, seed=11)
        run = nab.run(values)
        for value, result in zip(values, run.instances):
            # Source (node 1) is fault-free: validity must hold every instance.
            assert result.agreed_value() == int.from_bytes(value, "big")

    @pytest.mark.parametrize("name,strategy", ATTACKS, ids=[name for name, _ in ATTACKS])
    def test_agreement_with_faulty_source(self, name, strategy):
        graph = complete_graph(4, capacity=2)
        fault_model = FaultModel([1], strategy)
        nab = NetworkAwareBroadcast(graph, 1, 1, fault_model=fault_model)
        for value in _values(3, seed=13):
            result = nab.run_instance(value)
            # Agreement: all fault-free nodes output the same value.
            result.agreed_value()

    def test_equivocating_source_agreement(self):
        graph = complete_graph(4, capacity=2)
        nab = NetworkAwareBroadcast(
            graph, 1, 1, fault_model=FaultModel([1], EquivocatingSourceStrategy())
        )
        for value in _values(3, seed=17):
            result = nab.run_instance(value)
            result.agreed_value()

    def test_disputes_only_involve_faulty_nodes(self):
        graph = complete_graph(4, capacity=2)
        fault_model = FaultModel([2], DisputeLiarStrategy())
        nab = NetworkAwareBroadcast(graph, 1, 1, fault_model=fault_model)
        nab.run(_values(5, seed=19))
        for pair in nab.dispute_state.disputes():
            assert 2 in pair
        for node in nab.dispute_state.implied_faulty(graph.nodes()):
            assert node == 2

    def test_dispute_control_budget_respected(self):
        """Phase 3 runs at most f(f+1) times across many instances (paper Section 2)."""
        graph = complete_graph(4, capacity=2)
        fault_model = FaultModel([3], EqualityGarbageStrategy())
        nab = NetworkAwareBroadcast(graph, 1, 1, fault_model=fault_model)
        run = nab.run(_values(10, seed=23))
        assert run.dispute_control_executions <= 1 * (1 + 1)

    def test_misbehaving_node_eventually_neutralised(self):
        """After enough evidence the faulty node is cut out and later instances are clean."""
        graph = complete_graph(4, capacity=2)
        fault_model = FaultModel([3], EqualityGarbageStrategy())
        nab = NetworkAwareBroadcast(graph, 1, 1, fault_model=fault_model)
        run = nab.run(_values(12, seed=29))
        later = run.instances[-3:]
        assert all(not result.dispute_control_ran for result in later)
        for result, value in zip(run.instances, _values(12, seed=29)):
            assert result.agreed_value() == int.from_bytes(value, "big")

    def test_crashed_source_leads_to_default_or_agreed_output(self):
        graph = complete_graph(4, capacity=2)
        nab = NetworkAwareBroadcast(graph, 1, 1, fault_model=FaultModel([1], CrashStrategy()))
        for value in _values(4, seed=31):
            result = nab.run_instance(value)
            result.agreed_value()

    def test_two_faults_on_larger_network(self):
        graph = complete_graph(7, capacity=2)
        fault_model = FaultModel([3, 6], EqualityGarbageStrategy())
        nab = NetworkAwareBroadcast(graph, 1, 2, fault_model=fault_model)
        values = _values(3, length=2, seed=37)
        run = nab.run(values)
        for value, result in zip(values, run.instances):
            assert result.agreed_value() == int.from_bytes(value, "big")
        assert run.dispute_control_executions <= 2 * 3

    def test_random_topology_with_random_adversary(self):
        rng = random.Random(5)
        graph = random_connected_network(6, 3, rng, max_capacity=3)
        fault_model = FaultModel([4], RandomizedChaosStrategy(seed=2))
        nab = NetworkAwareBroadcast(graph, 1, 1, fault_model=fault_model)
        values = _values(4, length=2, seed=41)
        run = nab.run(values)
        for value, result in zip(values, run.instances):
            assert result.agreed_value() == int.from_bytes(value, "big")


class TestThroughputBehaviour:
    def test_faster_links_reduce_elapsed_time(self):
        """NAB's per-instance time scales down with link capacity (gamma and rho scale up)."""
        slow = complete_graph(4, capacity=1)
        fast = complete_graph(4, capacity=4)
        values = _values(3, length=8, seed=43)
        slow_run = NetworkAwareBroadcast(slow, 1, 1).run(values)
        fast_run = NetworkAwareBroadcast(fast, 1, 1).run(values)
        assert fast_run.total_elapsed < slow_run.total_elapsed

    def test_heterogeneous_network_no_worse_than_uniform_slow(self):
        """Extra capacity on non-bottleneck links never hurts NAB."""
        slow = heterogeneous_bottleneck(4, fast_capacity=1, slow_capacity=1)
        fast = heterogeneous_bottleneck(4, fast_capacity=8, slow_capacity=1)
        values = _values(2, length=8, seed=47)
        slow_run = NetworkAwareBroadcast(slow, 1, 1).run(values)
        fast_run = NetworkAwareBroadcast(fast, 1, 1).run(values)
        assert fast_run.total_elapsed <= slow_run.total_elapsed

    def test_larger_inputs_increase_elapsed_linearly_ish(self):
        graph = complete_graph(4, capacity=2)
        small = NetworkAwareBroadcast(graph, 1, 1).run_instance(b"\xaa" * 4)
        large = NetworkAwareBroadcast(graph, 1, 1).run_instance(b"\xaa" * 16)
        assert large.elapsed > small.elapsed


class TestPropertyBasedInvariants:
    @given(
        st.sampled_from([2, 3, 4]),
        st.binary(min_size=2, max_size=6),
        st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=15, deadline=None)
    def test_agreement_validity_under_chaos(self, faulty_node, value, seed):
        graph = complete_graph(4, capacity=2)
        fault_model = FaultModel([faulty_node], RandomizedChaosStrategy(seed=seed))
        nab = NetworkAwareBroadcast(graph, 1, 1, fault_model=fault_model)
        result = nab.run_instance(value)
        assert result.agreed_value() == int.from_bytes(value, "big")

    @given(st.binary(min_size=1, max_size=8))
    @settings(max_examples=15, deadline=None)
    def test_fault_free_runs_always_valid(self, value):
        nab = NetworkAwareBroadcast(complete_graph(4, capacity=3), 1, 1)
        result = nab.run_instance(value)
        assert result.agreed_value() == int.from_bytes(value, "big")
        assert not result.mismatch_announced
