"""Tests for the directed capacitated NetworkGraph."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graph.network_graph import NetworkGraph


@pytest.fixture()
def small_graph():
    return NetworkGraph.from_edges({(1, 2): 2, (2, 3): 1, (1, 3): 3, (3, 1): 1})


class TestConstruction:
    def test_from_edges_mapping(self, small_graph):
        assert small_graph.node_count() == 3
        assert small_graph.edge_count() == 4

    def test_from_edges_triples(self):
        graph = NetworkGraph.from_edges([(1, 2, 5), (2, 1, 7)])
        assert graph.capacity(1, 2) == 5
        assert graph.capacity(2, 1) == 7

    def test_add_node_idempotent(self):
        graph = NetworkGraph()
        graph.add_node(5)
        graph.add_node(5)
        assert graph.nodes() == [5]

    def test_self_loop_rejected(self):
        graph = NetworkGraph()
        with pytest.raises(GraphError):
            graph.add_edge(1, 1, 1)

    def test_nonpositive_capacity_rejected(self):
        graph = NetworkGraph()
        with pytest.raises(GraphError):
            graph.add_edge(1, 2, 0)
        with pytest.raises(GraphError):
            graph.add_edge(1, 2, -3)

    def test_non_integer_capacity_rejected(self):
        graph = NetworkGraph()
        with pytest.raises(GraphError):
            graph.add_edge(1, 2, 1.5)
        with pytest.raises(GraphError):
            graph.add_edge(1, 2, True)

    def test_duplicate_edge_rejected(self):
        graph = NetworkGraph()
        graph.add_edge(1, 2, 1)
        with pytest.raises(GraphError):
            graph.add_edge(1, 2, 2)

    def test_antiparallel_edges_allowed(self):
        graph = NetworkGraph()
        graph.add_edge(1, 2, 1)
        graph.add_edge(2, 1, 4)
        assert graph.capacity(2, 1) == 4

    def test_freeze_prevents_mutation(self, small_graph):
        small_graph.freeze()
        with pytest.raises(GraphError):
            small_graph.add_edge(5, 6, 1)

    def test_copy_is_mutable_and_equal(self, small_graph):
        small_graph.freeze()
        clone = small_graph.copy()
        assert clone == small_graph
        clone.add_edge(3, 2, 1)
        assert clone != small_graph


class TestAccessors:
    def test_nodes_sorted(self):
        graph = NetworkGraph.from_edges({(5, 1): 1, (3, 5): 2})
        assert graph.nodes() == [1, 3, 5]

    def test_capacity_missing_edge(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.capacity(2, 1)

    def test_has_edge(self, small_graph):
        assert small_graph.has_edge(1, 2)
        assert not small_graph.has_edge(2, 1)

    def test_edges_sorted_iteration(self, small_graph):
        assert list(small_graph.edges()) == [(1, 2, 2), (1, 3, 3), (2, 3, 1), (3, 1, 1)]

    def test_edge_set(self, small_graph):
        assert small_graph.edge_set() == {(1, 2), (1, 3), (2, 3), (3, 1)}

    def test_successors_predecessors(self, small_graph):
        assert small_graph.successors(1) == [2, 3]
        assert small_graph.predecessors(3) == [1, 2]

    def test_out_in_edges(self, small_graph):
        assert small_graph.out_edges(1) == [(1, 2, 2), (1, 3, 3)]
        assert small_graph.in_edges(3) == [(1, 3, 3), (2, 3, 1)]

    def test_out_in_capacity(self, small_graph):
        assert small_graph.out_capacity(1) == 5
        assert small_graph.in_capacity(3) == 4

    def test_total_capacity(self, small_graph):
        assert small_graph.total_capacity() == 7

    def test_neighbors_union_of_directions(self, small_graph):
        assert small_graph.neighbors(1) == [2, 3]
        assert small_graph.neighbors(2) == [1, 3]

    def test_missing_node_queries_raise(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.successors(99)
        with pytest.raises(GraphError):
            small_graph.in_edges(99)

    def test_contains(self, small_graph):
        assert 1 in small_graph
        assert 99 not in small_graph

    def test_repr(self, small_graph):
        assert "nodes=3" in repr(small_graph)


class TestSurgery:
    def test_induced_subgraph(self, small_graph):
        sub = small_graph.induced_subgraph([1, 3])
        assert sub.nodes() == [1, 3]
        assert sub.edge_set() == {(1, 3), (3, 1)}

    def test_induced_subgraph_missing_node(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.induced_subgraph([1, 42])

    def test_remove_nodes(self, small_graph):
        pruned = small_graph.remove_nodes([2])
        assert pruned.nodes() == [1, 3]
        assert not pruned.has_edge(1, 2)

    def test_remove_nodes_ignores_absent(self, small_graph):
        pruned = small_graph.remove_nodes([99])
        assert pruned == small_graph

    def test_remove_edges(self, small_graph):
        pruned = small_graph.remove_edges([(1, 3)])
        assert not pruned.has_edge(1, 3)
        assert pruned.has_edge(3, 1)
        assert pruned.node_count() == 3

    def test_remove_links_between(self, small_graph):
        pruned = small_graph.remove_links_between([frozenset((1, 3))])
        assert not pruned.has_edge(1, 3)
        assert not pruned.has_edge(3, 1)
        assert pruned.has_edge(1, 2)

    def test_surgery_preserves_original(self, small_graph):
        small_graph.remove_nodes([2])
        assert small_graph.has_node(2)


class TestTraversal:
    def test_reachable_from(self, small_graph):
        assert small_graph.reachable_from(1) == {1, 2, 3}
        assert small_graph.reachable_from(2) == {1, 2, 3}

    def test_is_spanning_from(self):
        graph = NetworkGraph.from_edges({(1, 2): 1, (3, 2): 1})
        assert not graph.is_spanning_from(1)
        assert graph.is_spanning_from(1) is False
        graph2 = NetworkGraph.from_edges({(1, 2): 1, (2, 3): 1})
        assert graph2.is_spanning_from(1)

    def test_weak_connectivity(self):
        connected = NetworkGraph.from_edges({(1, 2): 1, (3, 2): 1})
        assert connected.is_weakly_connected()
        disconnected = NetworkGraph()
        disconnected.add_edge(1, 2, 1)
        disconnected.add_node(3)
        assert not disconnected.is_weakly_connected()

    def test_empty_graph_weakly_connected(self):
        assert NetworkGraph().is_weakly_connected()


class TestEquality:
    def test_equal_graphs(self):
        a = NetworkGraph.from_edges({(1, 2): 1})
        b = NetworkGraph.from_edges({(1, 2): 1})
        assert a == b
        assert hash(a) == hash(b)

    def test_capacity_difference_breaks_equality(self):
        a = NetworkGraph.from_edges({(1, 2): 1})
        b = NetworkGraph.from_edges({(1, 2): 2})
        assert a != b

    def test_not_equal_to_other_types(self):
        assert NetworkGraph() != 5
