"""Tests for the dispute state and instance-graph evolution."""

from __future__ import annotations

import pytest

from repro.core.dispute_state import DisputeState
from repro.exceptions import ProtocolError
from repro.graph.generators import complete_graph, figure1a
from repro.types import node_pair


class TestDisputeRecording:
    def test_add_and_count(self):
        state = DisputeState(1)
        state.add_dispute(2, 3)
        state.add_dispute(3, 2)  # same pair
        assert state.dispute_count() == 1
        assert node_pair(2, 3) in state.disputes()

    def test_add_disputes_batch(self):
        state = DisputeState(2)
        state.add_disputes([node_pair(1, 2), node_pair(3, 4)])
        assert state.dispute_count() == 2

    def test_add_disputes_rejects_bad_pairs(self):
        state = DisputeState(1)
        with pytest.raises(ProtocolError):
            state.add_disputes([frozenset((1,))])

    def test_negative_fault_bound_rejected(self):
        with pytest.raises(ProtocolError):
            DisputeState(-1)

    def test_dispute_partners(self):
        state = DisputeState(2)
        state.add_dispute(1, 2)
        state.add_dispute(1, 3)
        assert state.dispute_partners(1) == {2, 3}
        assert state.dispute_partners(2) == {1}
        assert state.dispute_partners(4) == set()

    def test_snapshot_and_copy(self):
        state = DisputeState(1)
        state.add_dispute(2, 3)
        state.mark_faulty(4)
        clone = state.copy()
        clone.add_dispute(1, 2)
        assert state.dispute_count() == 1
        assert clone.dispute_count() == 2
        disputes, faulty = state.snapshot()
        assert faulty == frozenset({4})
        assert disputes == frozenset({node_pair(2, 3)})

    def test_repr(self):
        state = DisputeState(1)
        state.add_dispute(2, 3)
        assert "(2, 3)" in repr(state)


class TestFaultInference:
    def test_known_faulty_propagates(self):
        state = DisputeState(1)
        state.mark_faulty(3)
        assert state.implied_faulty([1, 2, 3, 4]) == {3}

    def test_node_in_dispute_with_more_than_f_nodes_is_faulty(self):
        state = DisputeState(1)
        state.add_dispute(2, 1)
        state.add_dispute(2, 3)
        assert 2 in state.implied_faulty([1, 2, 3, 4])

    def test_single_dispute_is_ambiguous(self):
        state = DisputeState(1)
        state.add_dispute(2, 3)
        assert state.implied_faulty([1, 2, 3, 4]) == set()

    def test_intersection_of_explaining_sets(self):
        # With f = 1 and disputes {2,3} and {2,4}, only {2} explains both.
        state = DisputeState(1)
        state.add_dispute(2, 3)
        state.add_dispute(2, 4)
        assert state.implied_faulty([1, 2, 3, 4]) == {2}

    def test_explaining_sets_enumeration(self):
        state = DisputeState(1)
        state.add_dispute(2, 3)
        explaining = state.explaining_sets([1, 2, 3, 4])
        assert frozenset({2}) in explaining
        assert frozenset({3}) in explaining
        assert frozenset() not in explaining

    def test_explaining_sets_without_disputes_include_empty_set(self):
        state = DisputeState(1)
        assert frozenset() in state.explaining_sets([1, 2, 3])

    def test_f2_requires_more_evidence(self):
        state = DisputeState(2)
        state.add_dispute(2, 3)
        state.add_dispute(2, 4)
        # With f = 2 the pair {3, 4} also explains everything, so node 2 is not
        # yet certainly faulty.
        assert state.implied_faulty([1, 2, 3, 4, 5, 6, 7]) == set()
        state.add_dispute(2, 5)
        assert state.implied_faulty([1, 2, 3, 4, 5, 6, 7]) == {2}


class TestInstanceGraph:
    def test_no_knowledge_returns_same_graph(self):
        state = DisputeState(1)
        graph = figure1a()
        assert state.instance_graph(graph) == graph

    def test_dispute_removes_links(self):
        state = DisputeState(1)
        state.add_dispute(2, 3)
        derived = state.instance_graph(figure1a())
        assert not derived.has_edge(2, 3)
        assert not derived.has_edge(3, 2)
        assert derived.has_node(2) and derived.has_node(3)

    def test_identified_faulty_removes_node(self):
        state = DisputeState(1)
        state.mark_faulty(4)
        derived = state.instance_graph(complete_graph(4))
        assert not derived.has_node(4)
        assert derived.node_count() == 3

    def test_excessive_disputes_remove_node(self):
        state = DisputeState(1)
        state.add_dispute(3, 1)
        state.add_dispute(3, 2)
        derived = state.instance_graph(complete_graph(4))
        assert not derived.has_node(3)
        # Links between the surviving disputed pairs are also dropped.
        assert derived.has_edge(1, 2)
