"""Bit-for-bit regression tests for the fast GFMatrix kernels.

The flat-row, table-bound kernels must return exactly the results the
straightforward per-element implementation produces: same echelon forms,
same pivots, same inverses, same solutions.  The reference implementations
below mirror the pre-optimisation algorithms using the polynomial-arithmetic
oracle of :class:`repro.gf.field.GF2m`.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.gf.field import GF2m
from repro.gf.matrix import GFMatrix

DEGREES = [4, 8, 20]  # 20 > table threshold: exercises the fallback kernels too
SIZES = [1, 2, 3, 5, 7]


def _reference_matmul(field: GF2m, left: List[List[int]], right: List[List[int]]):
    mul = field._mul_fallback
    rows, inner, cols = len(left), len(right), len(right[0])
    product = [[0] * cols for _ in range(rows)]
    for r in range(rows):
        for c in range(cols):
            accumulator = 0
            for k in range(inner):
                accumulator ^= mul(left[r][k], right[k][c])
            product[r][c] = accumulator
    return product


def _reference_eliminated(
    field: GF2m, data: List[List[int]]
) -> Tuple[List[List[int]], List[int], int]:
    work = [list(row) for row in data]
    rows, cols = len(work), len(work[0])
    mul, inv = field._mul_fallback, field._inv_fallback
    pivot_cols: List[int] = []
    swaps = 0
    pivot_row = 0
    for col in range(cols):
        pivot = None
        for r in range(pivot_row, rows):
            if work[r][col] != 0:
                pivot = r
                break
        if pivot is None:
            continue
        if pivot != pivot_row:
            work[pivot_row], work[pivot] = work[pivot], work[pivot_row]
            swaps += 1
        inv_pivot = inv(work[pivot_row][col])
        work[pivot_row] = [mul(inv_pivot, entry) for entry in work[pivot_row]]
        for r in range(rows):
            if r != pivot_row and work[r][col] != 0:
                factor = work[r][col]
                work[r] = [
                    entry ^ mul(factor, pivot_entry)
                    for entry, pivot_entry in zip(work[r], work[pivot_row])
                ]
        pivot_cols.append(col)
        pivot_row += 1
        if pivot_row == rows:
            break
    return work, pivot_cols, swaps


def _reference_determinant(field: GF2m, data: List[List[int]]) -> int:
    work = [list(row) for row in data]
    size = len(work)
    mul, inv = field._mul_fallback, field._inv_fallback
    det = 1
    for col in range(size):
        pivot = None
        for r in range(col, size):
            if work[r][col] != 0:
                pivot = r
                break
        if pivot is None:
            return 0
        if pivot != col:
            work[col], work[pivot] = work[pivot], work[col]
        pivot_value = work[col][col]
        det = mul(det, pivot_value)
        inv_pivot = inv(pivot_value)
        for r in range(col + 1, size):
            if work[r][col] != 0:
                factor = mul(work[r][col], inv_pivot)
                work[r] = [
                    entry ^ mul(factor, pivot_entry)
                    for entry, pivot_entry in zip(work[r], work[col])
                ]
    return det


def _reference_inverse(field: GF2m, data: List[List[int]]) -> List[List[int]]:
    size = len(data)
    augmented = [list(row) + [1 if r == c else 0 for c in range(size)] for r, row in enumerate(data)]
    reduced, pivot_cols, _ = _reference_eliminated(field, augmented)
    assert pivot_cols[:size] == list(range(size))
    return [row[size:] for row in reduced]


@pytest.mark.parametrize("degree", DEGREES)
class TestEliminationRegression:
    def test_eliminated_bit_for_bit(self, degree):
        field = GF2m(degree)
        rng = random.Random(1000 + degree)
        for size in SIZES:
            matrix = GFMatrix.random(field, size, size + 2, rng)
            fast = matrix._eliminated()
            reference = _reference_eliminated(field, matrix.to_lists())
            assert fast == reference

    def test_rank_and_determinant(self, degree):
        field = GF2m(degree)
        rng = random.Random(2000 + degree)
        for size in SIZES:
            matrix = GFMatrix.random(field, size, size, rng)
            data = matrix.to_lists()
            assert matrix.rank() == len(_reference_eliminated(field, data)[1])
            assert matrix.determinant() == _reference_determinant(field, data)

    def test_inverse_and_solve_bit_for_bit(self, degree):
        field = GF2m(degree)
        rng = random.Random(3000 + degree)
        for size in SIZES:
            matrix = GFMatrix.random(field, size, size, rng)
            while not matrix.is_invertible():
                matrix = GFMatrix.random(field, size, size, rng)
            reference_inverse = _reference_inverse(field, matrix.to_lists())
            assert matrix.inverse().to_lists() == reference_inverse
            rhs = GFMatrix.random(field, size, 2, rng)
            expected = _reference_matmul(field, reference_inverse, rhs.to_lists())
            assert matrix.solve(rhs).to_lists() == expected

    def test_matmul_bit_for_bit(self, degree):
        field = GF2m(degree)
        rng = random.Random(4000 + degree)
        for size in SIZES:
            left = GFMatrix.random(field, size, size + 1, rng)
            right = GFMatrix.random(field, size + 1, size, rng)
            assert left.matmul(right).to_lists() == _reference_matmul(
                field, left.to_lists(), right.to_lists()
            )

    def test_vecmat_matches_row_vector_matmul(self, degree):
        field = GF2m(degree)
        rng = random.Random(5000 + degree)
        for size in SIZES:
            matrix = GFMatrix.random(field, size, size + 3, rng)
            vector = field.random_vector(size, rng)
            via_matmul = GFMatrix.row_vector(field, vector).matmul(matrix).row(0)
            assert matrix.vecmat(vector) == via_matmul


class TestTrustedConstructionsKeepSemantics:
    def test_double_transpose_and_stacking_roundtrip(self):
        field = GF2m(8)
        rng = random.Random(6000)
        matrix = GFMatrix.random(field, 4, 6, rng)
        assert matrix.transpose().transpose() == matrix
        stacked = matrix.hstack(matrix).submatrix(range(4), range(6))
        assert stacked == matrix
        tall = matrix.vstack(matrix)
        assert tall.submatrix(range(4), range(6)) == matrix
        assert tall.submatrix(range(4, 8), range(6)) == matrix

    def test_operations_do_not_alias_inputs(self):
        field = GF2m(8)
        rng = random.Random(7000)
        matrix = GFMatrix.random(field, 3, 3, rng)
        original = matrix.to_lists()
        matrix.hstack(matrix)
        matrix.vstack(matrix)
        matrix.transpose()
        matrix.matmul(matrix)
        matrix._eliminated()
        matrix.inverse() if matrix.is_invertible() else None
        assert matrix.to_lists() == original
