"""Cached min-cut values must match fresh Dinic solves, and the capacity
layer's memoisation must be invisible to callers (same values, fresh dicts,
correct gamma*)."""

from __future__ import annotations

import random

import pytest

from repro.capacity.gamma_star import construct_gamma_family, gamma_star
from repro.exceptions import GraphError
from repro.graph.flow_cache import (
    cached_max_flow_with_cut,
    cached_st_mincut,
    clear_mincut_cache,
    graph_signature,
    mincut_cache_stats,
)
from repro.graph.generators import complete_graph, random_connected_network
from repro.graph.maxflow import all_max_flow_values, max_flow_value, max_flow_with_cut
from repro.graph.mincut import all_target_mincuts, broadcast_mincut, st_mincut
from repro.graph.network_graph import NetworkGraph
from repro.graph.undirected import UndirectedView


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_mincut_cache()
    yield
    clear_mincut_cache()


def _random_graphs():
    for seed in range(5):
        yield random_connected_network(6, 3, random.Random(seed), max_capacity=4)


class TestCachedValuesMatchFreshSolves:
    def test_st_mincut_matches_max_flow(self):
        for graph in _random_graphs():
            nodes = graph.nodes()
            for source in nodes[:2]:
                for sink in nodes:
                    if sink == source:
                        continue
                    expected = max_flow_value(graph, source, sink)
                    assert st_mincut(graph, source, sink) == expected
                    # Second query is a cache hit with the same value.
                    assert st_mincut(graph, source, sink) == expected

    def test_all_target_mincuts_matches_per_target_solves(self):
        for graph in _random_graphs():
            source = graph.nodes()[0]
            expected = {
                node: max_flow_value(graph, source, node)
                for node in graph.nodes()
                if node != source
            }
            assert all_target_mincuts(graph, source) == expected
            assert broadcast_mincut(graph, source) == min(expected.values())

    def test_solver_reuse_matches_fresh_builds(self):
        for graph in _random_graphs():
            source = graph.nodes()[0]
            sinks = [node for node in graph.nodes() if node != source]
            shared = all_max_flow_values(graph, source, sinks)
            fresh = {sink: max_flow_value(graph, source, sink) for sink in sinks}
            assert shared == fresh

    def test_undirected_pairwise_mincut_matches_naive(self):
        for graph in _random_graphs():
            view = UndirectedView(graph)
            digraph = view.as_symmetric_digraph()
            nodes = view.nodes()
            naive = min(
                max_flow_value(digraph, a, b)
                for index, a in enumerate(nodes)
                for b in nodes[index + 1 :]
            )
            assert view.min_pairwise_mincut() == naive


class TestCacheBehaviour:
    def test_hits_accumulate_on_identical_graphs(self):
        graph = complete_graph(4, capacity=2)
        st_mincut(graph, 1, 2)
        before = mincut_cache_stats()
        # A structurally identical but distinct object still hits.
        clone = graph.copy()
        st_mincut(clone, 1, 2)
        after = mincut_cache_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_returned_dict_mutation_does_not_poison_cache(self):
        graph = complete_graph(4, capacity=2)
        first = all_target_mincuts(graph, 1)
        first[2] = 999
        assert all_target_mincuts(graph, 1)[2] != 999

    def test_clear_resets_counters_and_entries(self):
        graph = complete_graph(4)
        st_mincut(graph, 1, 2)
        clear_mincut_cache()
        stats = mincut_cache_stats()
        assert stats == {"entries": 0, "hits": 0, "misses": 0}

    def test_cache_stats_lifetime_counters_survive_clear(self):
        from repro.graph.flow_cache import cache_stats

        graph = complete_graph(4, capacity=2)
        before = cache_stats()
        st_mincut(graph, 1, 2)
        st_mincut(graph.copy(), 1, 2)  # hit
        clear_mincut_cache()
        st_mincut(graph, 1, 2)  # miss again after the clear
        after = cache_stats()
        # Epoch counters were reset by the clear...
        assert after["hits"] == 0
        assert after["misses"] == 1
        # ...but the lifetime counters cover the whole sequence.
        assert after["lifetime_hits"] == before["lifetime_hits"] + 1
        assert after["lifetime_misses"] == before["lifetime_misses"] + 2
        assert after["lifetime_hit_rate"] is not None

    def test_signature_distinguishes_capacities_and_structure(self):
        base = complete_graph(4, capacity=2)
        assert graph_signature(base) == graph_signature(base.copy())
        assert graph_signature(base) != graph_signature(complete_graph(4, capacity=3))
        assert graph_signature(base) != graph_signature(complete_graph(5, capacity=2))


class TestCachedMaxFlowWithCut:
    def test_matches_uncached_solver(self):
        for graph in _random_graphs():
            nodes = graph.nodes()
            source = nodes[0]
            for sink in nodes[1:]:
                expected_value, expected_cut = max_flow_with_cut(graph, source, sink)
                value, cut = cached_max_flow_with_cut(graph, source, sink)
                assert value == expected_value
                assert cut == expected_cut
                # Second query is a hit and returns the same answer.
                value_again, cut_again = cached_max_flow_with_cut(graph, source, sink)
                assert (value_again, cut_again) == (expected_value, expected_cut)

    def test_second_query_hits_cache(self):
        graph = complete_graph(4, capacity=2)
        cached_max_flow_with_cut(graph, 1, 3)
        before = mincut_cache_stats()
        cached_max_flow_with_cut(graph.copy(), 1, 3)
        after = mincut_cache_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_seeds_plain_st_value(self):
        graph = complete_graph(4, capacity=2)
        cached_max_flow_with_cut(graph, 1, 2)
        before = mincut_cache_stats()
        value = cached_st_mincut(graph, 1, 2)
        after = mincut_cache_stats()
        assert value == max_flow_value(graph, 1, 2)
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_returned_cut_mutation_does_not_poison_cache(self):
        graph = complete_graph(4, capacity=2)
        _value, cut = cached_max_flow_with_cut(graph, 1, 4)
        cut.add(999)
        _value, fresh_cut = cached_max_flow_with_cut(graph, 1, 4)
        assert 999 not in fresh_cut

    def test_rejects_bad_endpoints(self):
        graph = complete_graph(4)
        with pytest.raises(GraphError):
            cached_max_flow_with_cut(graph, 1, 1)
        with pytest.raises(GraphError):
            cached_max_flow_with_cut(graph, 1, 99)


class TestGammaStarWithDeduplication:
    def _naive_gamma_star(self, graph: NetworkGraph, source, max_faults) -> int:
        family = construct_gamma_family(graph, source, max_faults)
        values = []
        for candidate in family.values():
            values.append(
                min(
                    max_flow_value(candidate, source, node)
                    for node in candidate.nodes()
                    if node != source
                )
            )
        return min(values)

    def test_gamma_star_equals_naive_per_candidate_solves(self):
        for graph in _random_graphs():
            source = graph.nodes()[0]
            assert gamma_star(graph, source, 1) == self._naive_gamma_star(graph, source, 1)

    def test_gamma_star_complete_graph_reference_value(self):
        assert gamma_star(complete_graph(4, capacity=2), 1, 1) == 4

    def test_empty_fault_set_maps_to_full_graph(self):
        graph = complete_graph(4, capacity=2)
        family = construct_gamma_family(graph, 1, 1)
        assert family[frozenset()] == graph
        # The family entry is a detached copy, not the caller's object.
        assert family[frozenset()] is not graph
