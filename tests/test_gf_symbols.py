"""Tests for bit/byte <-> symbol packing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FieldError
from repro.gf.symbols import (
    bits_to_symbols,
    bytes_to_symbols,
    symbol_size_for,
    symbols_to_bits,
    symbols_to_bytes,
)


class TestBitsToSymbols:
    def test_exact_split(self):
        assert bits_to_symbols(0xABCD, 16, 8) == [0xAB, 0xCD]

    def test_padding_when_not_divisible(self):
        # 10 bits split into 4-bit symbols -> 3 symbols with 2 bits of left padding.
        symbols = bits_to_symbols(0b11_1100_1010, 10, 4)
        assert symbols == [0b0011, 0b1100, 0b1010]

    def test_single_symbol(self):
        assert bits_to_symbols(5, 8, 8) == [5]

    def test_zero_value(self):
        assert bits_to_symbols(0, 12, 4) == [0, 0, 0]

    def test_value_out_of_range(self):
        with pytest.raises(FieldError):
            bits_to_symbols(256, 8, 4)

    def test_invalid_sizes(self):
        with pytest.raises(FieldError):
            bits_to_symbols(1, 0, 4)
        with pytest.raises(FieldError):
            bits_to_symbols(1, 8, 0)


class TestSymbolsToBits:
    def test_roundtrip_known(self):
        assert symbols_to_bits([0xAB, 0xCD], 8) == 0xABCD

    def test_symbol_out_of_range(self):
        with pytest.raises(FieldError):
            symbols_to_bits([16], 4)

    def test_invalid_symbol_bits(self):
        with pytest.raises(FieldError):
            symbols_to_bits([1], 0)


class TestByteConversions:
    def test_bytes_roundtrip(self):
        payload = b"\x12\x34\x56"
        symbols = bytes_to_symbols(payload, 24, 8)
        assert symbols == [0x12, 0x34, 0x56]
        assert symbols_to_bytes(symbols, 8, 24) == payload

    def test_bytes_with_nonbyte_symbols(self):
        payload = b"\xff\x00"
        symbols = bytes_to_symbols(payload, 16, 4)
        assert symbols == [0xF, 0xF, 0x0, 0x0]
        assert symbols_to_bytes(symbols, 4, 16) == payload

    def test_empty_payload(self):
        assert bytes_to_symbols(b"", 8, 4) == [0, 0]

    def test_payload_too_large(self):
        with pytest.raises(FieldError):
            bytes_to_symbols(b"\xff\xff", 8, 4)

    def test_symbols_insufficient_for_total_bits(self):
        with pytest.raises(FieldError):
            symbols_to_bytes([1], 4, 16)


class TestSymbolSizeFor:
    def test_exact(self):
        assert symbol_size_for(100, 4) == 25

    def test_ceiling(self):
        assert symbol_size_for(100, 3) == 34

    def test_invalid(self):
        with pytest.raises(FieldError):
            symbol_size_for(0, 3)
        with pytest.raises(FieldError):
            symbol_size_for(8, 0)


class TestRoundtripProperties:
    @given(
        st.integers(min_value=1, max_value=256),
        st.integers(min_value=1, max_value=64),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_bits_roundtrip(self, total_bits, symbol_bits, data):
        value = data.draw(st.integers(min_value=0, max_value=(1 << total_bits) - 1))
        symbols = bits_to_symbols(value, total_bits, symbol_bits)
        assert symbols_to_bits(symbols, symbol_bits) == value
        assert len(symbols) == -(-total_bits // symbol_bits)

    @given(st.binary(min_size=1, max_size=32), st.integers(min_value=1, max_value=40))
    @settings(max_examples=100, deadline=None)
    def test_bytes_roundtrip(self, payload, symbol_bits):
        total_bits = len(payload) * 8
        symbols = bytes_to_symbols(payload, total_bits, symbol_bits)
        assert symbols_to_bytes(symbols, symbol_bits, total_bits) == payload
