"""Unit and property tests for the GF(2^m) field implementation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FieldError
from repro.gf.field import GF2m


@pytest.fixture(scope="module")
def gf8():
    return GF2m(8)


@pytest.fixture(scope="module")
def gf16():
    return GF2m(16)


class TestFieldConstruction:
    def test_order_is_two_to_the_degree(self):
        assert GF2m(5).order == 32

    def test_invalid_degree_raises(self):
        with pytest.raises(FieldError):
            GF2m(0)

    def test_custom_modulus_accepted(self):
        field = GF2m(4, modulus=0b10011)
        assert field.modulus == 0b10011

    def test_reducible_modulus_rejected(self):
        with pytest.raises(FieldError):
            GF2m(4, modulus=0b10001)  # x^4 + 1 is reducible

    def test_wrong_degree_modulus_rejected(self):
        with pytest.raises(FieldError):
            GF2m(4, modulus=0b1011)  # degree 3

    def test_equality_depends_on_degree_and_modulus(self):
        assert GF2m(8) == GF2m(8)
        assert GF2m(8) != GF2m(9)

    def test_fields_are_hashable(self):
        assert len({GF2m(8), GF2m(8), GF2m(9)}) == 2

    def test_repr_mentions_degree(self):
        assert "degree=8" in repr(GF2m(8))


class TestFieldArithmetic:
    def test_add_is_xor(self, gf8):
        assert gf8.add(0b1010, 0b0110) == 0b1100

    def test_sub_equals_add(self, gf8):
        assert gf8.sub(37, 91) == gf8.add(37, 91)

    def test_neg_is_identity(self, gf8):
        assert gf8.neg(123) == 123

    def test_mul_zero_annihilates(self, gf8):
        assert gf8.mul(0, 200) == 0

    def test_mul_one_is_identity(self, gf8):
        assert gf8.mul(1, 200) == 200

    def test_gf2_is_boolean_arithmetic(self):
        field = GF2m(1)
        assert field.mul(1, 1) == 1
        assert field.add(1, 1) == 0
        assert field.inv(1) == 1

    def test_known_aes_style_reduction(self):
        # In GF(2^8) with modulus x^8+x^4+x^3+x+1 (the table entry), x^7 * x = reduction.
        field = GF2m(8)
        product = field.mul(0b10000000, 0b10)
        assert product == field.modulus ^ (1 << 8)

    def test_inverse_of_zero_raises(self, gf8):
        with pytest.raises(FieldError):
            gf8.inv(0)

    def test_div_by_zero_raises(self, gf8):
        with pytest.raises(FieldError):
            gf8.div(5, 0)

    def test_every_nonzero_element_has_inverse_gf16_elements(self):
        field = GF2m(4)
        for element in range(1, field.order):
            assert field.mul(element, field.inv(element)) == 1

    def test_pow_zero_exponent(self, gf8):
        assert gf8.pow(77, 0) == 1

    def test_pow_negative_exponent(self, gf8):
        assert gf8.mul(gf8.pow(77, -1), 77) == 1

    def test_pow_matches_repeated_multiplication(self, gf8):
        expected = 1
        for _ in range(9):
            expected = gf8.mul(expected, 0x53)
        assert gf8.pow(0x53, 9) == expected

    def test_fermat_little_theorem(self):
        field = GF2m(6)
        for element in (1, 5, 17, 44, 63):
            assert field.pow(element, field.order - 1) == 1

    def test_validate_rejects_out_of_range(self, gf8):
        with pytest.raises(FieldError):
            gf8.validate(256)
        with pytest.raises(FieldError):
            gf8.validate(-1)

    def test_validate_rejects_bool(self, gf8):
        with pytest.raises(FieldError):
            gf8.validate(True)

    def test_validate_returns_value(self, gf8):
        assert gf8.validate(200) == 200


class TestVectorHelpers:
    def test_dot_product(self, gf8):
        left = [1, 2, 3]
        right = [4, 5, 6]
        expected = gf8.mul(1, 4) ^ gf8.mul(2, 5) ^ gf8.mul(3, 6)
        assert gf8.dot(left, right) == expected

    def test_dot_length_mismatch_raises(self, gf8):
        with pytest.raises(FieldError):
            gf8.dot([1, 2], [1, 2, 3])

    def test_vector_add(self, gf8):
        assert gf8.vector_add([1, 2, 3], [3, 2, 1]) == [2, 0, 2]

    def test_vector_add_length_mismatch(self, gf8):
        with pytest.raises(FieldError):
            gf8.vector_add([1], [1, 2])

    def test_scalar_mul(self, gf8):
        scaled = gf8.scalar_mul(3, [1, 2])
        assert scaled == [gf8.mul(3, 1), gf8.mul(3, 2)]

    def test_random_element_in_range(self, gf16):
        rng = random.Random(7)
        for _ in range(50):
            assert 0 <= gf16.random_element(rng) < gf16.order

    def test_random_nonzero_never_zero(self, gf8):
        rng = random.Random(3)
        assert all(gf8.random_nonzero(rng) != 0 for _ in range(100))

    def test_random_vector_length(self, gf8):
        rng = random.Random(11)
        assert len(gf8.random_vector(13, rng)) == 13


FIELD_DEGREES = st.sampled_from([2, 3, 8, 13, 16, 32, 64])


@st.composite
def field_and_elements(draw, count=2):
    degree = draw(FIELD_DEGREES)
    field = GF2m(degree)
    elements = [draw(st.integers(min_value=0, max_value=field.order - 1)) for _ in range(count)]
    return field, elements


class TestFieldAxiomsProperty:
    @given(field_and_elements(count=3))
    @settings(max_examples=100, deadline=None)
    def test_multiplication_associativity(self, data):
        field, (a, b, c) = data
        assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))

    @given(field_and_elements(count=2))
    @settings(max_examples=100, deadline=None)
    def test_multiplication_commutativity(self, data):
        field, (a, b) = data
        assert field.mul(a, b) == field.mul(b, a)

    @given(field_and_elements(count=3))
    @settings(max_examples=100, deadline=None)
    def test_distributivity(self, data):
        field, (a, b, c) = data
        assert field.mul(a, field.add(b, c)) == field.add(field.mul(a, b), field.mul(a, c))

    @given(field_and_elements(count=1))
    @settings(max_examples=100, deadline=None)
    def test_additive_inverse(self, data):
        field, (a,) = data
        assert field.add(a, field.neg(a)) == 0

    @given(field_and_elements(count=1))
    @settings(max_examples=100, deadline=None)
    def test_multiplicative_inverse(self, data):
        field, (a,) = data
        if a != 0:
            assert field.mul(a, field.inv(a)) == 1

    @given(field_and_elements(count=2))
    @settings(max_examples=100, deadline=None)
    def test_division_inverts_multiplication(self, data):
        field, (a, b) = data
        if b != 0:
            assert field.div(field.mul(a, b), b) == a

    @given(field_and_elements(count=1))
    @settings(max_examples=50, deadline=None)
    def test_frobenius_square_is_additive(self, data):
        field, (a,) = data
        b = (a * 7 + 13) % field.order
        assert field.square(field.add(a, b)) == field.add(field.square(a), field.square(b))
