"""Tests for the synchronous network transport, time accounting and fault model."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError, ProtocolError
from repro.graph.generators import figure1a
from repro.graph.network_graph import NetworkGraph
from repro.transport.accounting import TimeAccountant
from repro.transport.faults import ByzantineStrategy, FaultModel
from repro.transport.message import Message
from repro.transport.network import SynchronousNetwork


@pytest.fixture()
def simple_graph():
    return NetworkGraph.from_edges({(1, 2): 2, (2, 3): 1, (1, 3): 4})


class TestMessage:
    def test_valid_message(self):
        message = Message(1, 2, "phase1", "symbol", b"abc", 24)
        assert message.bit_size == 24
        assert message.payload == b"abc"

    def test_rejects_nonpositive_bits(self):
        with pytest.raises(ProtocolError):
            Message(1, 2, "p", "k", None, 0)
        with pytest.raises(ProtocolError):
            Message(1, 2, "p", "k", None, -5)

    def test_rejects_non_integer_bits(self):
        with pytest.raises(ProtocolError):
            Message(1, 2, "p", "k", None, True)

    def test_rejects_self_message(self):
        with pytest.raises(ProtocolError):
            Message(1, 1, "p", "k", None, 8)

    def test_sequence_monotone(self):
        first = Message(1, 2, "p", "k", None, 1)
        second = Message(1, 2, "p", "k", None, 1)
        assert second.sequence > first.sequence

    def test_replace_payload(self):
        message = Message(1, 2, "p", "k", "original", 8)
        tampered = message.replace_payload("evil")
        assert tampered.payload == "evil"
        assert tampered.bit_size == 8
        assert tampered.sender == 1
        changed_size = message.replace_payload("evil", bit_size=16)
        assert changed_size.bit_size == 16


class TestTimeAccountant:
    def test_phase_elapsed_is_max_over_links(self, simple_graph):
        accountant = TimeAccountant(simple_graph)
        accountant.record_transmission("phase1", 1, 2, 10)  # 10 / 2 = 5
        accountant.record_transmission("phase1", 1, 3, 12)  # 12 / 4 = 3
        assert accountant.phase_elapsed("phase1") == Fraction(5)

    def test_usage_accumulates_per_link(self, simple_graph):
        accountant = TimeAccountant(simple_graph)
        accountant.record_transmission("p", 1, 2, 3)
        accountant.record_transmission("p", 1, 2, 5)
        assert accountant.link_bits("p") == {(1, 2): 8}
        assert accountant.phase_elapsed("p") == Fraction(8, 2)

    def test_missing_link_rejected(self, simple_graph):
        accountant = TimeAccountant(simple_graph)
        with pytest.raises(GraphError):
            accountant.record_transmission("p", 3, 1, 4)

    def test_invalid_bits_rejected(self, simple_graph):
        accountant = TimeAccountant(simple_graph)
        with pytest.raises(ProtocolError):
            accountant.record_transmission("p", 1, 2, 0)
        with pytest.raises(ProtocolError):
            accountant.record_transmission("p", 1, 2, 2.5)

    def test_fixed_overhead_added(self, simple_graph):
        accountant = TimeAccountant(simple_graph)
        accountant.record_transmission("p", 1, 2, 2)
        accountant.add_fixed_overhead("p", Fraction(3, 2))
        assert accountant.phase_elapsed("p") == Fraction(1) + Fraction(3, 2)

    def test_negative_overhead_rejected(self, simple_graph):
        accountant = TimeAccountant(simple_graph)
        with pytest.raises(ProtocolError):
            accountant.add_fixed_overhead("p", -1)

    def test_unknown_phase_is_zero(self, simple_graph):
        accountant = TimeAccountant(simple_graph)
        assert accountant.phase_elapsed("nope") == 0
        assert accountant.phase_bits("nope") == 0
        assert accountant.link_bits("nope") == {}

    def test_totals_and_order(self, simple_graph):
        accountant = TimeAccountant(simple_graph)
        accountant.record_transmission("a", 1, 2, 2)
        accountant.record_transmission("b", 2, 3, 3)
        assert accountant.phase_names() == ["a", "b"]
        assert accountant.total_bits() == 5
        assert accountant.total_elapsed() == Fraction(1) + Fraction(3)

    def test_phase_timings_structure(self, simple_graph):
        accountant = TimeAccountant(simple_graph)
        accountant.record_transmission("a", 1, 2, 4)
        timings = accountant.phase_timings()
        assert len(timings) == 1
        assert timings[0].name == "a"
        assert timings[0].time_units == Fraction(2)
        assert timings[0].bits_sent == 4

    def test_merge_from(self, simple_graph):
        main = TimeAccountant(simple_graph)
        sub = TimeAccountant(simple_graph)
        sub.record_transmission("sub_phase", 1, 3, 8)
        sub.add_fixed_overhead("sub_phase", 2)
        main.record_transmission("main_phase", 1, 2, 2)
        main.merge_from(sub)
        assert main.phase_bits("sub_phase") == 8
        assert main.phase_elapsed("sub_phase") == Fraction(8, 4) + 2
        assert main.total_bits() == 10


class TestFaultModel:
    def test_defaults_to_no_faults_honest_strategy(self):
        model = FaultModel()
        assert model.fault_count() == 0
        assert model.strategy.name == "honest"

    def test_faulty_membership(self):
        model = FaultModel([2, 4])
        assert model.is_faulty(2)
        assert not model.is_faulty(1)
        assert model.fault_free([1, 2, 3, 4]) == [1, 3]

    def test_duplicate_faulty_nodes_rejected(self):
        with pytest.raises(ProtocolError):
            FaultModel([2, 2])

    def test_validate_for_resilience(self):
        model = FaultModel([2])
        model.validate_for(node_count=4, max_faults=1)
        with pytest.raises(ProtocolError):
            model.validate_for(node_count=3, max_faults=1)
        with pytest.raises(ProtocolError):
            FaultModel([2, 3]).validate_for(node_count=7, max_faults=1)

    def test_repr_lists_nodes(self):
        assert "2" in repr(FaultModel([2]))

    def test_honest_strategy_hooks_are_identity(self):
        strategy = ByzantineStrategy()
        assert strategy.phase1_source_symbol(0, 0, 2, 17) == 17
        assert strategy.phase1_forward_symbol(0, 3, 1, 2, 17) == 17
        assert strategy.equality_check_vector(0, 3, 2, [1, 2]) == [1, 2]
        assert strategy.equality_check_flag(0, 3, False) is False
        assert strategy.broadcast_value(0, 3, 2, "flag", 1) == 1
        assert strategy.relay_value(0, 3, [1, 3, 2], 2, "v") == "v"
        assert strategy.dispute_claims(0, 3, {"sent": []}) == {"sent": []}


class TestSynchronousNetwork:
    def test_send_charges_link_and_delivers(self, simple_graph):
        network = SynchronousNetwork(simple_graph)
        message = network.send(1, 2, "hello", 6, "phase1")
        assert message.payload == "hello"
        assert network.accountant.phase_bits("phase1") == 6
        assert network.elapsed_time() == Fraction(3)

    def test_send_on_missing_link_raises(self, simple_graph):
        network = SynchronousNetwork(simple_graph)
        with pytest.raises(GraphError):
            network.send(2, 1, "x", 1, "p")

    def test_send_round_inboxes(self, simple_graph):
        network = SynchronousNetwork(simple_graph)
        inboxes = network.send_round(
            [(1, 2, "a", 1), (1, 3, "b", 2), (2, 3, "c", 1)], phase="p"
        )
        assert [m.payload for m in inboxes[3]] == ["b", "c"]
        assert [m.payload for m in inboxes[2]] == ["a"]

    def test_messages_received_by_filters(self, simple_graph):
        network = SynchronousNetwork(simple_graph)
        network.send(1, 2, "a", 1, "p1")
        network.send(1, 2, "b", 1, "p2")
        network.send(1, 3, "c", 1, "p1")
        assert [m.payload for m in network.messages_received_by(2)] == ["a", "b"]
        assert [m.payload for m in network.messages_received_by(2, phase="p2")] == ["b"]

    def test_fault_free_nodes(self, simple_graph):
        network = SynchronousNetwork(simple_graph, FaultModel([2]))
        assert network.fault_free_nodes() == [1, 3]

    def test_link_queries(self, simple_graph):
        network = SynchronousNetwork(simple_graph)
        assert network.has_link(1, 2)
        assert not network.has_link(2, 1)
        assert network.link_capacity(1, 3) == 4

    def test_figure1a_phase_time_matches_formula(self):
        """Sending L/gamma bits down each of gamma trees takes L/gamma time on figure1a."""
        graph = figure1a()
        network = SynchronousNetwork(graph)
        total_bits = 120
        gamma = 2
        per_tree = total_bits // gamma
        # Tree 1 uses (1,2),(2,3),(3,4); tree 2 uses (1,3),(1,4) -> wait (1,4) capacity 1.
        for tail, head in [(1, 2), (2, 3), (3, 4)]:
            network.send(tail, head, "sym", per_tree, "phase1")
        for tail, head in [(1, 3), (1, 4), (3, 4)]:
            network.send(tail, head, "sym", per_tree, "phase1")
        # Link (3,4) carries both trees: 2 * 60 bits over capacity 1 -> 120 time units.
        assert network.accountant.phase_elapsed("phase1") == Fraction(120)


class TestAccountingProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from([(1, 2), (1, 3), (2, 3)]),
                st.integers(min_value=1, max_value=50),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_elapsed_time_is_max_over_links(self, transmissions):
        graph = NetworkGraph.from_edges({(1, 2): 2, (2, 3): 1, (1, 3): 4})
        accountant = TimeAccountant(graph)
        per_link = {}
        for (tail, head), bits in transmissions:
            accountant.record_transmission("p", tail, head, bits)
            per_link[(tail, head)] = per_link.get((tail, head), 0) + bits
        expected = max(
            Fraction(bits, graph.capacity(tail, head))
            for (tail, head), bits in per_link.items()
        )
        assert accountant.phase_elapsed("p") == expected

    @given(st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_total_bits_is_sum(self, bit_amounts):
        graph = NetworkGraph.from_edges({(1, 2): 3})
        accountant = TimeAccountant(graph)
        for bits in bit_amounts:
            accountant.record_transmission("p", 1, 2, bits)
        assert accountant.total_bits() == sum(bit_amounts)
