"""Tests for the adversarial search driver.

The driver's contracts: deterministic trajectories (kill + resume is
byte-identical to an uninterrupted run), pluggable objectives, per-row
forensic auditing that escalates any specification violation to a loud
:class:`repro.exceptions.ReproductionFinding`, and a resumable JSONL
persistence format shared with the experiment engine.
"""

from __future__ import annotations

import json
import os
from fractions import Fraction

import pytest

import repro.adversary.search as search_module
from repro.adversary.search import OBJECTIVES, main, run_search
from repro.exceptions import ConfigurationError, ReproductionFinding

TOPOLOGY = "k7-unit"


def _read(path):
    with open(path, "rb") as handle:
        return handle.read()


def test_search_persists_a_deterministic_trajectory(tmp_path):
    out = tmp_path / "search.jsonl"
    summary = run_search(
        TOPOLOGY, budget=3, seed=0, out_path=str(out), max_faults=2, resume=False
    )
    assert summary.iterations == 3
    assert summary.resumed_rows == 0
    rows = [json.loads(line) for line in out.read_text().splitlines()]
    assert [row["iteration"] for row in rows] == [0, 1, 2]
    for row in rows:
        assert row["spec"] == "adversary_search"
        assert row["strategy"] == "composed"
        assert row["objective"] == "dispute-control"
        # The objective value is stored as an exact fraction string.
        Fraction(row["objective_value"])
    assert summary.best_score == max(Fraction(r["objective_value"]) for r in rows)
    assert summary.best_candidate is not None
    assert summary.best_candidate.params


def test_kill_and_resume_is_byte_identical_to_uninterrupted(tmp_path):
    reference = tmp_path / "reference.jsonl"
    resumed = tmp_path / "resumed.jsonl"
    run_search(
        TOPOLOGY, budget=4, seed=0, out_path=str(reference), max_faults=2,
        resume=False,
    )
    # Simulate a mid-run kill: stop after 2 candidates, then resume to 4.
    partial = run_search(
        TOPOLOGY, budget=2, seed=0, out_path=str(resumed), max_faults=2,
        resume=False,
    )
    assert partial.iterations == 2
    # A truncated final line (the crash case _write_rows_atomically guards
    # against upstream) must also be absorbed by the resume path.
    with open(resumed, "ab") as handle:
        handle.write(b'{"truncated')
    final = run_search(
        TOPOLOGY, budget=4, seed=0, out_path=str(resumed), max_faults=2,
        resume=True,
    )
    assert final.resumed_rows == 2
    assert final.iterations == 4
    assert _read(str(reference)) == _read(str(resumed))


def test_resume_ignores_rows_from_a_different_search(tmp_path):
    out = tmp_path / "search.jsonl"
    run_search(TOPOLOGY, budget=1, seed=0, out_path=str(out), max_faults=2,
               resume=False)
    row = json.loads(out.read_text())
    row["seed"] = row["seed"] + 1  # belongs to some other base seed now
    out.write_text(json.dumps(row) + "\n")
    summary = run_search(
        TOPOLOGY, budget=1, seed=0, out_path=str(out), max_faults=2, resume=True
    )
    assert summary.resumed_rows == 0
    assert summary.iterations == 1


def test_unknown_objective_is_rejected():
    with pytest.raises(ConfigurationError):
        run_search(TOPOLOGY, objective="no-such-objective", budget=1)


def test_throughput_degradation_objective():
    summary = run_search(
        TOPOLOGY, objective="throughput-degradation", budget=2, seed=0,
        max_faults=2,
    )
    assert summary.best_score is not None
    # Degradation is 1 - throughput/capacity: inside [0, 1) for a run that
    # completes below the Theorem 2 bound.
    assert Fraction(0) <= summary.best_score < Fraction(1)


def test_objective_registry_scores_rows_exactly():
    row = {
        "record": {"dispute_control_executions": 3, "throughput": "1/2"},
        "bounds": {"capacity_upper_bound": "2"},
    }
    assert OBJECTIVES["dispute-control"](row) == Fraction(3)
    assert OBJECTIVES["throughput-degradation"](row) == Fraction(3, 4)
    # Rows that never produced a record score as worst-possible.
    assert OBJECTIVES["dispute-control"]({"record": None}) == Fraction(-1)


def test_specification_violation_aborts_loudly(tmp_path, monkeypatch):
    out = tmp_path / "search.jsonl"
    monkeypatch.setattr(
        search_module, "audit_rows", lambda rows: ["synthetic violation"]
    )
    with pytest.raises(ReproductionFinding, match="synthetic violation"):
        run_search(
            TOPOLOGY, budget=1, seed=0, out_path=str(out), max_faults=2,
            resume=False,
        )
    # The offending row must have been persisted before the abort.
    assert os.path.exists(out)
    assert len(out.read_text().splitlines()) == 1


def test_cli_entry_point(tmp_path, capsys):
    out = tmp_path / "cli.jsonl"
    status = main(
        ["--topology", TOPOLOGY, "--budget", "1", "--seed", "0",
         "--out", str(out), "--max-faults", "2"]
    )
    assert status == 0
    captured = capsys.readouterr().out
    assert "1 candidate(s) explored" in captured
    assert "best score" in captured
    assert out.exists()
