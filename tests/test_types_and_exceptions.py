"""Tests for the shared value objects and the exception hierarchy."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro import exceptions
from repro.types import BroadcastResult, PhaseTiming, node_pair


class TestNodePair:
    def test_canonical_and_unordered(self):
        assert node_pair(3, 5) == node_pair(5, 3)
        assert node_pair(3, 5) == frozenset({3, 5})

    def test_rejects_identical_nodes(self):
        with pytest.raises(ValueError):
            node_pair(4, 4)


class TestPhaseTiming:
    def test_fields(self):
        timing = PhaseTiming(name="phase1", time_units=Fraction(3, 2), bits_sent=12)
        assert timing.name == "phase1"
        assert timing.time_units == Fraction(3, 2)
        assert timing.bits_sent == 12

    def test_frozen(self):
        timing = PhaseTiming(name="p", time_units=Fraction(1))
        with pytest.raises(AttributeError):
            timing.name = "other"  # type: ignore[misc]


class TestBroadcastResult:
    def test_agreed_value_when_unanimous(self):
        result = BroadcastResult(outputs={2: b"x", 3: b"x"}, elapsed=Fraction(5))
        assert result.agreed_value() == b"x"

    def test_agreed_value_rejects_disagreement(self):
        result = BroadcastResult(outputs={2: b"x", 3: b"y"}, elapsed=Fraction(5))
        with pytest.raises(ValueError):
            result.agreed_value()

    def test_agreed_value_rejects_empty(self):
        result = BroadcastResult(outputs={}, elapsed=Fraction(0))
        with pytest.raises(ValueError):
            result.agreed_value()

    def test_metadata_defaults_to_empty_dict(self):
        result = BroadcastResult(outputs={1: b"a"}, elapsed=Fraction(1))
        assert result.metadata == {}


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            exceptions.FieldError,
            exceptions.MatrixError,
            exceptions.GraphError,
            exceptions.InfeasibleError,
            exceptions.CapacityViolationError,
            exceptions.ProtocolError,
            exceptions.AgreementViolationError,
            exceptions.ConfigurationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, exceptions.ReproError)
        with pytest.raises(exceptions.ReproError):
            raise exception_type("boom")

    def test_repro_error_is_exception(self):
        assert issubclass(exceptions.ReproError, Exception)
