"""Property tests for the stacked GF vector kernels (PR 5).

Every vector-API kernel is pitted against its frozen per-symbol oracle —
``poly_mul`` / ``GF2m.scalar_mul`` / ``GF2m.dot`` / ``GFMatrix.vecmat_loop`` /
``GFMatrix.matmul_loop`` — across small table-driven degrees and big stacked
degrees (17..2048), batch sizes 1..64, ragged window tails and zero-heavy
inputs.  A byte-identity regression replays a committed ``nab_vs_classical``
sample cell and compares the persisted row byte for byte.
"""

from __future__ import annotations

import json
import os
import random
from contextlib import contextmanager

import pytest

from repro.classical.relay import majority_value
from repro.coding.coding_matrix import (
    CodingScheme,
    encode_on_edges,
    encode_value,
    generate_coding_scheme,
)
from repro.coding.equality_check import run_equality_check
from repro.coding.verification import (
    clear_verification_cache,
    subgraph_is_constrained,
    verification_cache_stats,
)
from repro.gf.field import GF2m, get_field
from repro.gf.matrix import GFMatrix
from repro.gf.polynomials import (
    irreducible_polynomial,
    poly_mul,
    poly_mul_stacked,
    poly_reduce,
    poly_reduce_stacked,
    reduction_table,
    stack_slots,
    stack_stride,
    unstack_slots,
)
from repro.graph.generators import figure1a
from repro.transport.network import SynchronousNetwork

#: Degrees spanning the table-driven (<= 16) and stacked (> 16) regimes; the
#: big degrees match the ISSUE contract range 17..2048.
SMALL_DEGREES = (4, 8, 16)
BIG_DEGREES = (17, 31, 64, 256, 821, 1093, 2048)

#: Batch sizes 1..64, chosen to hit singletons, tiny batches and window-cap
#: boundaries (the ragged-tail test additionally shrinks the cap).
BATCH_SIZES = (1, 2, 3, 16, 37, 64)


def _vectors(field: GF2m, rng: random.Random, count: int, zero_heavy: bool = False):
    if zero_heavy:
        return [
            0 if rng.random() < 0.6 else field.random_element(rng)
            for _ in range(count)
        ]
    return [field.random_element(rng) for _ in range(count)]


@contextmanager
def _slot_cap(field: GF2m, cap: int):
    """Temporarily shrink the field's stacking window to force ragged tails."""
    original = field._slot_cap
    field._slot_cap = cap
    try:
        yield
    finally:
        field._slot_cap = original


class TestStackedPolynomials:
    def test_stack_roundtrip(self):
        rng = random.Random(11)
        for degree in (1, 17, 256, 2048):
            stride = stack_stride(degree, degree)
            for count in BATCH_SIZES:
                values = [rng.getrandbits(degree) for _ in range(count)]
                stacked = stack_slots(values, stride)
                assert unstack_slots(stacked, stride, count) == values

    def test_poly_mul_stacked_matches_bit_serial_oracle(self):
        rng = random.Random(23)
        for degree in BIG_DEGREES:
            stride = stack_stride(degree, degree)
            for count in (1, 2, 16, 64):
                values = [rng.getrandbits(degree) for _ in range(count)]
                if count >= 3:
                    values[0], values[1], values[2] = 0, 1, values[2]
                factor = rng.getrandbits(degree)
                assert poly_mul_stacked(values, factor, stride) == [
                    poly_mul(value, factor) for value in values
                ]

    def test_poly_mul_stacked_zero_factor_and_empty(self):
        stride = stack_stride(17, 17)
        assert poly_mul_stacked([], 3, stride) == []
        assert poly_mul_stacked([1, 2, 3], 0, stride) == [0, 0, 0]

    def test_poly_reduce_stacked_matches_per_slot_reduce(self):
        rng = random.Random(37)
        for degree in BIG_DEGREES:
            modulus = irreducible_polynomial(degree)
            table = reduction_table(modulus)
            assert table is not None, "tabulated moduli are low weight"
            stride = stack_stride(degree, degree)
            for count in (1, 3, 16, 64):
                raws = [rng.getrandbits(2 * degree - 1) for _ in range(count)]
                raws[0] = 0
                stacked = stack_slots(raws, stride)
                reduced = poly_reduce_stacked(stacked, table, stride, count)
                assert unstack_slots(reduced, stride, count) == [
                    poly_reduce(raw, table) for raw in raws
                ]


class TestFieldVectorAPI:
    @pytest.mark.parametrize("degree", SMALL_DEGREES + BIG_DEGREES)
    def test_scale_vec_matches_scalar_mul_oracle(self, degree):
        field = get_field(degree)
        rng = random.Random(100 + degree)
        for count in BATCH_SIZES:
            for zero_heavy in (False, True):
                vector = _vectors(field, rng, count, zero_heavy)
                for scalar in (0, 1, field.random_nonzero(rng)):
                    assert field.scale_vec(scalar, vector) == field.scalar_mul(
                        scalar, vector
                    )

    @pytest.mark.parametrize("degree", SMALL_DEGREES + BIG_DEGREES)
    def test_mul_vec_matches_per_symbol_oracle(self, degree):
        field = get_field(degree)
        rng = random.Random(200 + degree)
        for count in BATCH_SIZES:
            left = _vectors(field, rng, count, zero_heavy=True)
            right = _vectors(field, rng, count)
            assert field.mul_vec(left, right) == [
                field.mul(a, b) for a, b in zip(left, right)
            ]

    @pytest.mark.parametrize("degree", SMALL_DEGREES + BIG_DEGREES)
    def test_dot_vec_matches_dot_oracle(self, degree):
        field = get_field(degree)
        rng = random.Random(300 + degree)
        for count in BATCH_SIZES:
            left = _vectors(field, rng, count, zero_heavy=True)
            right = _vectors(field, rng, count, zero_heavy=True)
            assert field.dot_vec(left, right) == field.dot(left, right)

    def test_vector_api_length_mismatches(self):
        field = get_field(17)
        from repro.exceptions import FieldError

        with pytest.raises(FieldError):
            field.mul_vec([1, 2], [1])
        with pytest.raises(FieldError):
            field.dot_vec([1], [1, 2])

    def test_ragged_window_tails(self):
        """Batches that do not divide the slot cap split into ragged windows."""
        field = get_field(256)
        rng = random.Random(404)
        with _slot_cap(field, 5):
            for count in (1, 4, 5, 6, 11, 13):
                vector = _vectors(field, rng, count)
                scalar = field.random_nonzero(rng)
                assert field.scale_vec(scalar, vector) == field.scalar_mul(
                    scalar, vector
                )

    def test_full_windows_stay_cacheable_at_gate_degrees(self):
        """The slot cap must not exceed the cache's per-entry budget where a
        cacheable window is still a useful batch (>= 8 slots)."""
        from repro.gf.field import _STACK_CACHE_BYTES

        for degree in (256, 821, 1024, 2048):
            field = get_field(degree)
            width = field._stride // 8
            if (_STACK_CACHE_BYTES // 4) // (256 * width) >= 8:
                assert 256 * field._slot_cap * width <= _STACK_CACHE_BYTES // 4
        # A full-window stacked row of a gate-sized matrix is retained.
        field = GF2m(1024)
        rng = random.Random(5)
        matrix = GFMatrix.random(field, 2, field._slot_cap, rng)
        vector = _vectors(field, rng, 2)
        matrix.vecmat(vector)
        cached_before = set(field._swtab)
        matrix.vecmat(_vectors(field, rng, 2))
        assert set(field._swtab) == cached_before, "full windows must stay cached"

    def test_stacked_table_cache_is_bounded(self):
        field = GF2m(31)
        rng = random.Random(9)
        vector = _vectors(field, rng, 8)
        field.scale_vec(field.random_nonzero(rng), vector)
        assert field._swtab_bytes <= 8 << 20
        # Repeating the same vector must reuse the cached stacked table.
        before = dict(field._swtab)
        field.scale_vec(field.random_nonzero(rng), vector)
        assert set(field._swtab) >= set(before)


class TestMatrixVectorKernels:
    @pytest.mark.parametrize("degree", (8, 17, 256, 1093))
    def test_vecmat_matches_frozen_loop_oracle(self, degree):
        field = get_field(degree)
        rng = random.Random(500 + degree)
        for rows, cols in ((1, 1), (2, 3), (4, 16), (5, 33), (3, 64)):
            matrix = GFMatrix.random(field, rows, cols, rng)
            vector = _vectors(field, rng, rows, zero_heavy=True)
            assert matrix.vecmat(vector) == matrix.vecmat_loop(vector)

    @pytest.mark.parametrize("degree", (8, 17, 256, 1093))
    def test_matmul_matches_frozen_loop_oracle(self, degree):
        field = get_field(degree)
        rng = random.Random(600 + degree)
        for rows, inner, cols in ((1, 1, 1), (2, 3, 4), (4, 5, 16)):
            left = GFMatrix.random(field, rows, inner, rng)
            right = GFMatrix.random(field, inner, cols, rng)
            assert left.matmul(right) == left.matmul_loop(right)

    @pytest.mark.parametrize("degree", (8, 17, 256))
    def test_matvec_batch_matches_per_vector_oracle(self, degree):
        field = get_field(degree)
        rng = random.Random(700 + degree)
        matrix = GFMatrix.random(field, 4, 6, rng)
        for batch in (1, 2, 16, 64):
            vectors = [
                _vectors(field, rng, 6, zero_heavy=True) for _ in range(batch)
            ]
            expected = [
                [field.dot(row, vector) for row in matrix.to_lists()]
                for vector in vectors
            ]
            assert matrix.matvec_batch(vectors) == expected

    @pytest.mark.parametrize("degree", (8, 17, 256))
    def test_vecmat_batch_matches_frozen_loop_oracle(self, degree):
        field = get_field(degree)
        rng = random.Random(800 + degree)
        matrix = GFMatrix.random(field, 5, 7, rng)
        for batch in (1, 3, 16, 64):
            vectors = [
                _vectors(field, rng, 5, zero_heavy=True) for _ in range(batch)
            ]
            assert matrix.vecmat_batch(vectors) == [
                matrix.vecmat_loop(vector) for vector in vectors
            ]

    def test_batch_ragged_windows(self):
        field = get_field(821)
        rng = random.Random(901)
        matrix = GFMatrix.random(field, 3, 9, rng)
        with _slot_cap(field, 4):
            matrix_small = GFMatrix.random(field, 3, 9, rng)
            vector = _vectors(field, rng, 3)
            assert matrix_small.vecmat(vector) == matrix_small.vecmat_loop(vector)
            vectors = [_vectors(field, rng, 3) for _ in range(7)]
            assert matrix_small.vecmat_batch(vectors) == [
                matrix_small.vecmat_loop(v) for v in vectors
            ]
        # A matrix whose stacked rows were built under a different cap is
        # unaffected (the packing is cached per matrix, not per field).
        vector = _vectors(field, rng, 3)
        assert matrix.vecmat(vector) == matrix.vecmat_loop(vector)

    def test_empty_batches(self):
        field = get_field(17)
        matrix = GFMatrix.identity(field, 3)
        assert matrix.matvec_batch([]) == []
        assert matrix.vecmat_batch([]) == []


class TestEncodeBatching:
    def _scheme(self, symbol_bits: int):
        graph = figure1a()
        return graph, generate_coding_scheme(graph, 2, symbol_bits, seed=3)

    @pytest.mark.parametrize("symbol_bits", (8, 64))
    def test_encode_on_edges_matches_per_edge_encode(self, symbol_bits):
        graph, scheme = self._scheme(symbol_bits)
        rng = random.Random(42)
        symbols = [scheme.field.random_element(rng) for _ in range(scheme.rho)]
        edges = sorted(scheme.matrices)
        batched = encode_on_edges(scheme, symbols, edges)
        assert set(batched) == set(edges)
        for edge in edges:
            assert batched[edge] == encode_value(scheme, symbols, edge)

    def test_encode_on_edges_empty_and_single(self):
        graph, scheme = self._scheme(8)
        symbols = [1, 2]
        assert encode_on_edges(scheme, symbols, []) == {}
        edge = next(iter(sorted(scheme.matrices)))
        assert encode_on_edges(scheme, symbols, [edge]) == {
            edge: encode_value(scheme, symbols, edge)
        }

    def test_combined_matrix_is_cached(self):
        _graph, scheme = self._scheme(8)
        edges = tuple(sorted(scheme.matrices))[:3]
        first = scheme.combined_matrix(edges)
        assert scheme.combined_matrix(edges) is first

    @pytest.mark.parametrize("symbol_bits", (8, 40))
    def test_equality_check_unchanged_by_batched_encode(self, symbol_bits):
        """The batched memoised encode must reproduce the per-edge outcome."""
        graph = figure1a()
        scheme = generate_coding_scheme(graph, 2, symbol_bits, seed=5)
        total_bits = 2 * symbol_bits
        rng = random.Random(77)
        values = {node: rng.getrandbits(total_bits) for node in graph.nodes()}
        outcome = run_equality_check(
            SynchronousNetwork(graph), graph, values, total_bits, scheme
        )
        for (tail, head), sent in outcome.sent_vectors.items():
            symbols = [
                (values[tail] >> shift) & ((1 << symbol_bits) - 1)
                for shift in (symbol_bits, 0)
            ]
            assert list(sent) == encode_value(scheme, symbols, (tail, head))
        equal = {node: 123 for node in graph.nodes()}
        assert not run_equality_check(
            SynchronousNetwork(graph), graph, equal, total_bits, scheme
        ).mismatch_detected()


class TestVerificationRankMemo:
    def test_rank_results_are_memoised_with_stats(self):
        clear_verification_cache()
        graph = figure1a()
        scheme = generate_coding_scheme(graph, 2, 16, seed=9)
        nodes = [1, 2, 3, 4]
        baseline = verification_cache_stats()
        first = subgraph_is_constrained(graph, nodes, scheme)
        after_miss = verification_cache_stats()
        assert after_miss["misses"] == baseline["misses"] + 1
        second = subgraph_is_constrained(graph, nodes, scheme)
        after_hit = verification_cache_stats()
        assert second == first
        assert after_hit["hits"] == after_miss["hits"] + 1
        clear_verification_cache()
        assert verification_cache_stats()["entries"] == 0

    def test_distinct_instances_do_not_share_entries(self):
        clear_verification_cache()
        graph = figure1a()
        nodes = [1, 2, 3, 4]
        for instance in (0, 1):
            scheme = generate_coding_scheme(graph, 2, 16, seed=9, instance=instance)
            subgraph_is_constrained(graph, nodes, scheme)
        assert verification_cache_stats()["entries"] == 2
        clear_verification_cache()

    def test_capacity_mismatch_fails_loudly(self):
        """Row slice assembly must reject matrices narrower/wider than the edge."""
        from repro.coding.verification import build_check_matrix
        from repro.exceptions import ProtocolError

        graph = figure1a()
        derived = generate_coding_scheme(graph, 2, 16, seed=1)
        bad_matrices = dict(derived.matrices)
        edge = next(iter(sorted(bad_matrices)))
        bad_matrices[edge] = GFMatrix.zeros(
            derived.field, 2, graph.capacity(*edge) + 1
        )
        bad_scheme = CodingScheme(
            field=derived.field, rho=2, symbol_bits=16, matrices=bad_matrices, seed=1
        )
        with pytest.raises(ProtocolError, match="capacity"):
            build_check_matrix(graph, graph.nodes(), bad_scheme)

    def test_hand_built_schemes_bypass_the_cache(self):
        """A zero scheme must not alias a derived scheme with equal key fields."""
        clear_verification_cache()
        graph = figure1a()
        derived = generate_coding_scheme(graph, 2, 16, seed=0)
        nodes = [1, 2, 3, 4]
        assert subgraph_is_constrained(graph, nodes, derived)
        zero_scheme = CodingScheme(
            field=derived.field,
            rho=2,
            symbol_bits=16,
            matrices={
                edge: GFMatrix.zeros(derived.field, 2, graph.capacity(*edge))
                for edge in graph.edge_set()
            },
            seed=0,
        )
        assert not subgraph_is_constrained(graph, nodes, zero_scheme)
        clear_verification_cache()


class TestMajorityFastPath:
    def test_identical_scalar_copies_take_the_fast_path(self):
        assert majority_value([b"x", b"x", b"x"]) == b"x"
        assert majority_value([None, None, None]) is None

    def test_mixed_bool_int_copies_still_use_repr_keys(self):
        # 1 == True but their reprs differ; the keyed path must decide, so
        # [True, 1, 1] resolves to the repr-majority value 1, not True.
        assert majority_value([True, 1, 1]) == 1
        assert repr(majority_value([True, 1, 1])) == "1"
        assert majority_value([True, 1]) is None


class TestByteIdentityRegression:
    def test_nab_vs_classical_sample_cell_matches_committed_row(self):
        """One committed grid row must reproduce byte for byte."""
        from repro.engine.runner import dump_row, run_cell
        from repro.engine.specs import get_spec

        results_path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "results",
            "nab_vs_classical_quick.jsonl",
        )
        if not os.path.exists(results_path):
            pytest.skip("committed results file not present")
        with open(results_path, "r", encoding="utf-8") as handle:
            committed = {
                json.loads(line)["cell_id"]: line.rstrip("\n")
                for line in handle
                if line.strip()
            }
        cells = get_spec("nab_vs_classical_quick").expand()
        # One NAB cell and one classical cell, adversarial where available.
        sampled = 0
        for cell in cells:
            if cell.cell_id not in committed:
                continue
            if cell.strategy == "equality-garbage" or sampled == 0:
                assert dump_row(run_cell(cell)) == committed[cell.cell_id], (
                    f"cell {cell.cell_id} diverged from the committed row"
                )
                sampled += 1
            if sampled >= 3:
                break
        assert sampled, "no committed cells found to replay"
