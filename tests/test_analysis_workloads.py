"""Tests for the analysis helpers, reporting, workloads and the public package API."""

from __future__ import annotations

from fractions import Fraction

import pytest

import repro
from repro.analysis.reporting import format_table
from repro.analysis.throughput import (
    amortization_curve,
    measure_nab_throughput,
    verify_agreement_and_validity,
)
from repro.adversary.strategies import EqualityGarbageStrategy
from repro.exceptions import AgreementViolationError, ConfigurationError
from repro.graph.generators import complete_graph
from repro.transport.faults import FaultModel
from repro.workloads.scenarios import adversarial_scenario, fault_free_scenario
from repro.workloads.topologies import named_topologies, topology


class TestPublicApi:
    def test_version_and_exports(self):
        assert repro.__version__ == "1.0.0"
        assert hasattr(repro, "NetworkAwareBroadcast")
        assert hasattr(repro, "FaultModel")
        assert hasattr(repro, "analyse_network")

    def test_quickstart_flow(self):
        nab = repro.NetworkAwareBroadcast(complete_graph(4, capacity=2), 1, 1)
        result = nab.run_instance(b"hi")
        assert result.agreed_value() == int.from_bytes(b"hi", "big")


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["longer", Fraction(1, 3)]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "0.3333" in lines[3]

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_table_floats(self):
        assert "1.5" in format_table(["x"], [[1.5]])


class TestThroughputMeasurement:
    def test_measurement_reports_bounds(self):
        graph = complete_graph(4, capacity=2)
        inputs = [bytes([i] * 8) for i in range(3)]
        measurement = measure_nab_throughput(graph, 1, 1, inputs)
        assert measurement.instances == 3
        assert measurement.payload_bits == 3 * 64
        assert measurement.throughput > 0
        assert measurement.fraction_of_upper_bound() <= 1
        assert measurement.analysis.capacity_upper_bound >= measurement.analysis.nab_lower_bound

    def test_measurement_with_adversary_counts_dispute_control(self):
        graph = complete_graph(4, capacity=2)
        inputs = [bytes([i] * 4) for i in range(6)]
        fault_model = FaultModel([3], EqualityGarbageStrategy())
        measurement = measure_nab_throughput(graph, 1, 1, inputs, fault_model=fault_model)
        assert measurement.dispute_control_executions >= 1
        assert measurement.dispute_control_executions <= 2

    def test_amortization_curve_improves_with_q(self):
        graph = complete_graph(4, capacity=2)
        fault_model = FaultModel([3], EqualityGarbageStrategy())
        curve = amortization_curve(
            graph, 1, 1, instance_counts=[1, 6], value_length=4, fault_model=fault_model
        )
        assert len(curve) == 2
        assert curve[1].throughput > curve[0].throughput

    def test_verify_agreement_detects_disagreement(self):
        graph = complete_graph(4, capacity=2)
        nab = repro.NetworkAwareBroadcast(graph, 1, 1)
        run = nab.run([b"\x01\x02"])
        # Tamper with the result to simulate a disagreement.
        tampered_outputs = dict(run.instances[0].outputs)
        first = next(iter(tampered_outputs))
        tampered_outputs[first] ^= 1
        from dataclasses import replace

        tampered_instance = replace(run.instances[0], outputs=tampered_outputs)
        tampered_run = replace(run, instances=(tampered_instance,))
        with pytest.raises(AgreementViolationError):
            verify_agreement_and_validity(tampered_run, [b"\x01\x02"], source_faulty=False)

    def test_verify_validity_detects_wrong_value(self):
        graph = complete_graph(4, capacity=2)
        nab = repro.NetworkAwareBroadcast(graph, 1, 1)
        run = nab.run([b"\x01\x02"])
        with pytest.raises(AgreementViolationError):
            verify_agreement_and_validity(run, [b"\xff\xff"], source_faulty=False)
        # With a faulty source validity is not required, so no exception.
        verify_agreement_and_validity(run, [b"\xff\xff"], source_faulty=True)


class TestWorkloads:
    def test_named_topologies_buildable(self):
        names = named_topologies()
        assert "figure1a" in names and "k4-fast" in names
        for name in names:
            graph = topology(name)
            assert graph.node_count() >= 3

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            topology("does-not-exist")

    def test_fault_free_scenario(self):
        scenario = fault_free_scenario(instances=3, value_bytes=4, seed=1)
        assert len(scenario.inputs) == 3
        assert all(len(value) == 4 for value in scenario.inputs)
        assert scenario.fault_model.fault_count() == 0

    def test_adversarial_scenario_by_name(self):
        scenario = adversarial_scenario(strategy_name="false-flag", faulty_nodes=[2])
        assert scenario.fault_model.is_faulty(2)
        assert scenario.fault_model.strategy.name == "false-flag"

    def test_adversarial_scenario_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            adversarial_scenario(strategy_name="nope")

    def test_scenarios_are_reproducible(self):
        first = fault_free_scenario(seed=7)
        second = fault_free_scenario(seed=7)
        assert list(first.inputs) == list(second.inputs)

    def test_scenario_runs_end_to_end(self):
        scenario = adversarial_scenario(
            topology_name="k4-fast",
            strategy_name="equality-garbage",
            faulty_nodes=[3],
            instances=3,
            value_bytes=4,
        )
        nab = repro.NetworkAwareBroadcast(
            scenario.graph, scenario.source, scenario.max_faults, fault_model=scenario.fault_model
        )
        run = nab.run(list(scenario.inputs))
        for value, result in zip(scenario.inputs, run.instances):
            assert result.agreed_value() == int.from_bytes(value, "big")
