"""Seeded link faults and ARQ reliable delivery.

Pins the PR 6 reliability contract: fault plans decide deterministically per
``(seed, edge, attempt)``; the ARQ transport over a *clean* plan is
bit-identical to the plain scheduled transport (and a zero-rate shadow of
every registered plan reproduces the quick-grid rows byte-for-byte with
``retransmit_bits == 0``); under loss, retransmission preserves delivery and
the measured clock keeps equalling the analytical oracle; a link dead after
the retry budget surfaces as an omission, never as a crash.
"""

from __future__ import annotations

import random
from dataclasses import replace
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import get_protocol, get_spec
from repro.engine.runner import dump_row, run_cell
from repro.exceptions import ConfigurationError, SchedulerError
from repro.graph.network_graph import NetworkGraph
from repro.sched.faults import (
    CORRUPT,
    DELIVER,
    DROP,
    DUPLICATE,
    EdgeFaultRates,
    LinkFaultPlan,
    fault_plan,
    named_fault_plans,
    register_fault_plan,
)
from repro.transport import FaultModel, ReliableNetwork, ScheduledNetwork
from repro.workloads.scenarios import input_stream
from repro.workloads.topologies import topology


@pytest.fixture()
def graph():
    return NetworkGraph.from_edges({(1, 2): 2, (2, 3): 1, (1, 3): 4})


#: A plan that drops every attempt on every link: the degradation worst case.
ALWAYS_DROP = LinkFaultPlan(name="always-drop", rates=EdgeFaultRates(drop=Fraction(1)))


class TestFaultPlans:
    def test_registry_contains_the_named_plans(self):
        for name in (
            "none",
            "drop-1pct",
            "drop-10pct",
            "drop-10pct-one-edge",
            "dup-mild",
            "corrupt-1pct",
            "lossy-mix",
        ):
            assert name in named_fault_plans()
            assert fault_plan(name).name == name

    def test_unknown_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            fault_plan("no-such-plan")

    def test_register_rejects_duplicates_unless_replacing(self):
        with pytest.raises(ConfigurationError):
            register_fault_plan("none", LinkFaultPlan)

    def test_rates_validated(self):
        with pytest.raises(SchedulerError):
            EdgeFaultRates(drop=Fraction(-1, 10))
        with pytest.raises(SchedulerError):
            EdgeFaultRates(drop=Fraction(3, 5), duplicate=Fraction(3, 5))

    def test_decisions_are_deterministic_and_edge_local(self):
        plan = fault_plan("lossy-mix")
        first = [plan.decide((1, 2), attempt) for attempt in range(500)]
        second = [plan.decide((1, 2), attempt) for attempt in range(500)]
        assert first == second
        # A different edge sees an independent decision stream.
        other = [plan.decide((2, 1), attempt) for attempt in range(500)]
        assert first != other

    def test_decision_frequencies_track_the_rates(self):
        plan = fault_plan("drop-10pct")
        outcomes = [plan.decide((1, 2), attempt) for attempt in range(2000)]
        drops = outcomes.count(DROP)
        assert outcomes.count(DELIVER) == 2000 - drops
        # 10% +- a loose tolerance over 2000 lattice points.
        assert 120 <= drops <= 280

    def test_per_edge_overrides(self):
        plan = fault_plan("drop-10pct-one-edge")
        assert not plan.is_clean
        assert plan.edge_rates((1, 2)).drop == Fraction(1, 10)
        assert plan.edge_rates((3, 4)).is_clean
        assert all(plan.decide((3, 4), k) == DELIVER for k in range(100))

    def test_scaled_zero_is_clean_for_every_registered_plan(self):
        for name in named_fault_plans():
            shadow = fault_plan(name).scaled(0)
            assert shadow.is_clean
            assert all(shadow.decide((1, 2), k) == DELIVER for k in range(20))

    def test_every_outcome_reachable(self):
        plan = LinkFaultPlan(
            name="thirds",
            rates=EdgeFaultRates(
                drop=Fraction(1, 4), duplicate=Fraction(1, 4), corrupt=Fraction(1, 4)
            ),
            seed=3,
        )
        outcomes = {plan.decide((1, 2), attempt) for attempt in range(200)}
        assert outcomes == {DELIVER, DROP, DUPLICATE, CORRUPT}


class TestReliableNetworkCleanPath:
    def test_clean_plan_is_bit_identical_to_scheduled(self, graph):
        scheduled = ScheduledNetwork(graph)
        reliable = ReliableNetwork(graph, fault_plan=LinkFaultPlan())
        for network in (scheduled, reliable):
            network.send(1, 2, b"a", 10, "p1")
            network.send(1, 3, b"b", 12, "p1")
            network.send(2, 3, b"c", 3, "p2")
        assert reliable.elapsed_time() == scheduled.elapsed_time()
        assert reliable.accountant.total_elapsed() == scheduled.accountant.total_elapsed()
        assert reliable.delivery_timeline() == scheduled.delivery_timeline()
        assert reliable.phase_segments() == scheduled.phase_segments()
        assert reliable.total_bits() == scheduled.total_bits()
        assert reliable.reliability_stats() == {
            "retransmit_bits": 0,
            "retransmissions": 0,
            "duplicated_messages": 0,
            "corrupted_attempts": 0,
            "dropped_messages": 0,
            "timeout_time": "0",
        }

    def test_constructor_validation(self, graph):
        with pytest.raises(SchedulerError):
            ReliableNetwork(graph, timeout=Fraction(-1))
        with pytest.raises(SchedulerError):
            ReliableNetwork(graph, backoff=Fraction(1, 2))
        with pytest.raises(SchedulerError):
            ReliableNetwork(graph, max_attempts=0)


class TestReliableNetworkArq:
    def test_lost_attempts_charge_bits_and_backoff(self, graph):
        # Attempts 0 and 1 drop, attempt 2 delivers (a plan with drop=1 on
        # the first two ordinals only, via a crafted per-edge schedule).
        class TwoDrops(LinkFaultPlan):
            def decide(self, edge, attempt):
                return DROP if attempt < 2 else DELIVER

        plan = TwoDrops(name="two-drops", rates=EdgeFaultRates(drop=Fraction(1, 2)))
        network = ReliableNetwork(
            graph, fault_plan=plan, timeout=Fraction(1), backoff=Fraction(2)
        )
        network.send(1, 2, b"x", 10, "p")
        stats = network.reliability_stats()
        assert stats["retransmissions"] == 2
        assert stats["retransmit_bits"] == 20
        assert stats["dropped_messages"] == 0
        # Timeouts: 1 * 2**0 + 1 * 2**1 = 3 units of backoff.
        assert stats["timeout_time"] == "3"
        # All three copies drained the link (15 units at capacity 2) plus the
        # 3 timeout units; measured equals analytical throughout.
        assert network.elapsed_time() == Fraction(30, 2) + 3
        assert network.elapsed_time() == network.accountant.total_elapsed()
        # Exactly one delivery reached the inbox.
        assert len(network.messages_received_by(2, "p")) == 1

    def test_duplicate_delivers_once_but_drains_twice(self, graph):
        class AlwaysDuplicate(LinkFaultPlan):
            def decide(self, edge, attempt):
                return DUPLICATE

        plan = AlwaysDuplicate(
            name="always-dup", rates=EdgeFaultRates(duplicate=Fraction(1))
        )
        network = ReliableNetwork(graph, fault_plan=plan)
        network.send(1, 2, b"x", 10, "p")
        stats = network.reliability_stats()
        assert stats["duplicated_messages"] == 1
        assert stats["retransmit_bits"] == 10
        assert stats["retransmissions"] == 0
        assert stats["timeout_time"] == "0"
        assert len(network.messages_received_by(2, "p")) == 1
        # Two copies on the wire: 20 bits over capacity 2.
        assert network.elapsed_time() == Fraction(20, 2)
        assert network.elapsed_time() == network.accountant.total_elapsed()

    def test_dead_link_surfaces_as_omission_not_exception(self, graph):
        network = ReliableNetwork(
            graph, fault_plan=ALWAYS_DROP, max_attempts=3, timeout=Fraction(1)
        )
        message = network.send(1, 2, b"x", 10, "p")
        # The caller gets a message object, but nothing was delivered.
        assert message.receiver == 2
        assert network.delivered_messages() == []
        assert network.messages_received_by(2, "p") == []
        stats = network.reliability_stats()
        assert stats["dropped_messages"] == 1
        assert stats["retransmissions"] == 2  # attempts 2 and 3 were retries
        assert stats["retransmit_bits"] == 30  # all 3 attempts drained
        letters = network.dead_letters()
        assert len(letters) == 1
        assert letters[0].edge == (1, 2)
        assert letters[0].attempts == 3
        # 1 + 2 + 4 timeout units; clocks still agree.
        assert stats["timeout_time"] == "7"
        assert network.elapsed_time() == network.accountant.total_elapsed()

    def test_corrupt_costs_exactly_what_drop_costs(self, graph):
        class AlwaysCorrupt(LinkFaultPlan):
            def decide(self, edge, attempt):
                return CORRUPT if attempt == 0 else DELIVER

        class OneDrop(LinkFaultPlan):
            def decide(self, edge, attempt):
                return DROP if attempt == 0 else DELIVER

        rates = EdgeFaultRates(corrupt=Fraction(1, 2))
        corrupt_net = ReliableNetwork(
            graph, fault_plan=AlwaysCorrupt(name="c", rates=rates)
        )
        drop_net = ReliableNetwork(graph, fault_plan=OneDrop(name="d", rates=rates))
        corrupt_net.send(1, 2, b"x", 10, "p")
        drop_net.send(1, 2, b"x", 10, "p")
        assert corrupt_net.elapsed_time() == drop_net.elapsed_time()
        corrupt_stats = corrupt_net.reliability_stats()
        assert corrupt_stats["corrupted_attempts"] == 1
        assert corrupt_stats["retransmit_bits"] == 10
        assert (
            corrupt_stats["timeout_time"]
            == drop_net.reliability_stats()["timeout_time"]
        )

    def test_faulty_sends_validate_like_clean_ones(self, graph):
        from repro.exceptions import GraphError, ProtocolError

        network = ReliableNetwork(graph, fault_plan=ALWAYS_DROP)
        with pytest.raises(GraphError):
            network.send(3, 1, b"x", 4, "p")  # no such link
        with pytest.raises(ProtocolError):
            network.send(1, 2, b"x", 0, "p")

    def test_seeded_arq_runs_are_reproducible(self, graph):
        def run():
            network = ReliableNetwork(graph, fault_plan=fault_plan("lossy-mix"))
            for _ in range(100):
                network.send(1, 2, b"x", 4, "p")
            return (network.elapsed_time(), network.reliability_stats())

        assert run() == run()

    @pytest.mark.parametrize("plan_name", ["drop-10pct", "dup-mild", "lossy-mix"])
    def test_measured_clock_equals_oracle_under_faults(self, graph, plan_name):
        # Every phantom copy charges both clocks identically, so the
        # zero-latency scheduler contract survives arbitrary fault activity.
        network = ReliableNetwork(graph, fault_plan=fault_plan(plan_name))
        rng = random.Random(7)
        for index in range(150):
            edge = rng.choice([(1, 2), (1, 3), (2, 3)])
            network.send(edge[0], edge[1], b"x", rng.randint(1, 16), f"p{index % 3}")
        assert network.elapsed_time() == network.accountant.total_elapsed()


class TestProtocolsOverLossyLinks:
    @pytest.mark.parametrize("protocol_name", ["nab", "classical-flooding"])
    @pytest.mark.parametrize("plan_name", ["drop-1pct", "drop-10pct", "dup-mild"])
    def test_agreement_and_validity_survive_loss(self, protocol_name, plan_name):
        graph = topology("k4-fast")
        protocol = get_protocol(protocol_name)
        inputs = input_stream(random.Random(3), 2, 8)
        lossy = protocol.run(
            graph, 1, inputs, FaultModel(),
            {"max_faults": 1, "fault_plan": plan_name},
        )
        assert lossy.agreement_ok and lossy.validity_ok
        reliability = lossy.metadata["reliability"]
        assert reliability["dropped_messages"] == 0
        if plan_name == "drop-10pct":
            # At 10% loss a run of this size cannot plausibly stay clean;
            # the milder plans may legitimately see zero fault events.
            assert reliability["retransmit_bits"] > 0
        # The ARQ overhead extends exactly the clock and the bit ledger.
        clean = protocol.run(
            graph, 1, inputs, FaultModel(), {"max_faults": 1}
        )
        assert lossy.outputs == clean.outputs
        assert lossy.bits_sent == clean.bits_sent + reliability["retransmit_bits"]
        if reliability["retransmit_bits"]:
            assert lossy.elapsed > clean.elapsed
        else:
            assert lossy.elapsed == clean.elapsed

    def test_unknown_fault_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            get_protocol("nab").run(
                topology("k4-fast"), 1, [b"\x01"], FaultModel(),
                {"max_faults": 1, "fault_plan": "no-such-plan"},
            )


class TestZeroFaultByteIdentity:
    """The PR 6 zero-fault contract, end to end through the engine."""

    @pytest.fixture(scope="class")
    def baseline_rows(self):
        cells = get_spec("nab_vs_classical_quick").expand()
        return cells, [dump_row(run_cell(cell)) for cell in cells]

    def test_every_plan_at_rate_zero_reproduces_the_quick_grid(
        self, baseline_rows, monkeypatch
    ):
        import repro.sched.faults as faults_module

        cells, baseline = baseline_rows
        for name in named_fault_plans():
            shadow = fault_plan(name).scaled(0)
            shadow_name = f"{name}@zero"
            monkeypatch.setitem(
                faults_module._FAULT_PLAN_FACTORIES, shadow_name, lambda s=shadow: s
            )
            # Same cell identity (id and seed), only the transport re-routed
            # through the ARQ layer over the zero-rate plan.
            rows = [
                dump_row(run_cell(replace(cell, fault_plan=shadow_name)))
                for cell in cells
            ]
            assert rows == baseline, f"plan {name} at rate 0 changed the grid"

    def test_zero_rate_plan_reports_zero_retransmit_bits(self, monkeypatch):
        # Transport-level confirmation that byte-identity is not vacuous:
        # the run really goes through ReliableNetwork and really measures 0.
        import repro.sched.faults as faults_module

        graph = topology("k4-fast")
        for name in named_fault_plans():
            shadow = fault_plan(name).scaled(0)
            shadow_name = f"{name}@zero"
            monkeypatch.setitem(
                faults_module._FAULT_PLAN_FACTORIES, shadow_name, lambda s=shadow: s
            )
            captured = []
            original_init = ReliableNetwork.__init__

            def capturing_init(self, *args, _init=original_init, **kwargs):
                _init(self, *args, **kwargs)
                captured.append(self)

            try:
                ReliableNetwork.__init__ = capturing_init
                record = get_protocol("nab").run(
                    graph, 1, [b"\x01" * 8], FaultModel(),
                    {"max_faults": 1, "fault_plan": shadow_name},
                )
            finally:
                ReliableNetwork.__init__ = original_init
            assert captured, "the fault_plan param must route through ReliableNetwork"
            for network in captured:
                stats = network.reliability_stats()
                assert stats["retransmit_bits"] == 0
                assert stats["dropped_messages"] == 0
            assert "reliability" not in record.metadata


class TestLossyLinksSpec:
    def test_spec_grid_shape(self):
        spec = get_spec("lossy_links")
        cells = spec.expand()
        assert len(cells) == 30
        plans = {cell.fault_plan for cell in cells}
        assert plans == {
            "none", "drop-1pct", "drop-10pct", "drop-10pct-one-edge", "dup-mild"
        }
        for cell in cells:
            if cell.fault_plan == "none":
                assert "|fp=" not in cell.cell_id
            else:
                assert cell.cell_id.endswith(f"|fp={cell.fault_plan}")

    @given(data=st.data())
    @settings(max_examples=5, deadline=None)
    def test_sampled_lossy_cells_satisfy_the_spec(self, data):
        cells = [
            cell for cell in get_spec("lossy_links").expand()
            if cell.fault_plan != "none"
        ]
        cell = data.draw(st.sampled_from(cells), label="cell")
        row = run_cell(cell)
        assert row["error"] is None
        record = row["record"]
        assert record["agreement_ok"] and record["validity_ok"]
        assert row["fault_plan"] == cell.fault_plan
        reliability = record["metadata"]["reliability"]
        assert set(reliability) >= {
            "retransmit_bits", "retransmissions", "dropped_messages", "timeout_time"
        }
        assert reliability["retransmit_bits"] >= 0
