"""Property tests: table-driven GF(2^m) arithmetic vs the polynomial oracle.

The table path (log/antilog lookups, degree <= 16) and the polynomial path
(carry-less multiply + reduce, kept as the fallback for large degrees) must
compute identical field values; these tests compare them on random samples
and pin down the shared-table / shared-field cache contracts.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.exceptions import FieldError
from repro.gf.field import _TABLE_MAX_DEGREE, GF2m, get_field
from repro.gf.polynomials import (
    _LOW_WEIGHT_EXPONENTS,
    _has_small_degree_factor,
    _poly_from_exponents,
    is_irreducible,
)

TABLE_DEGREES = [1, 4, 8, 12]
SAMPLES = 200


@pytest.mark.parametrize("degree", TABLE_DEGREES)
class TestTableMatchesPolynomialOracle:
    def test_mul(self, degree):
        field = GF2m(degree)
        rng = random.Random(100 + degree)
        assert field.tables() is not None
        for _ in range(SAMPLES):
            a = field.random_element(rng)
            b = field.random_element(rng)
            assert field.mul(a, b) == field._mul_fallback(a, b)

    def test_inv_and_div(self, degree):
        field = GF2m(degree)
        rng = random.Random(200 + degree)
        for _ in range(SAMPLES):
            a = field.random_nonzero(rng)
            b = field.random_nonzero(rng)
            inverse = field.inv(a)
            assert inverse == field._inv_fallback(a)
            assert field.mul(a, inverse) == 1
            assert field.div(a, b) == field._mul_fallback(a, field._inv_fallback(b))

    def test_square(self, degree):
        field = GF2m(degree)
        rng = random.Random(300 + degree)
        for _ in range(SAMPLES):
            a = field.random_element(rng)
            assert field.square(a) == field._mul_fallback(a, a)

    def test_pow(self, degree):
        field = GF2m(degree)
        rng = random.Random(400 + degree)
        for _ in range(40):
            a = field.random_nonzero(rng)
            exponent = rng.randrange(0, 3 * field.order)
            expected = 1
            for _step in range(exponent):
                expected = field._mul_fallback(expected, a)
            assert field.pow(a, exponent) == expected
            if exponent:
                assert field.pow(a, -exponent) == field._inv_fallback(
                    field.pow(a, exponent)
                )

    def test_dot(self, degree):
        field = GF2m(degree)
        rng = random.Random(500 + degree)
        for length in (1, 3, 9):
            left = field.random_vector(length, rng)
            right = field.random_vector(length, rng)
            expected = 0
            for a, b in zip(left, right):
                expected ^= field._mul_fallback(a, b)
            assert field.dot(left, right) == expected


class TestPowEdgeCases:
    def test_zero_base(self):
        field = GF2m(8)
        assert field.pow(0, 0) == 1
        assert field.pow(0, 7) == 0
        with pytest.raises(FieldError):
            field.pow(0, -1)

    def test_every_nonzero_element_has_group_order_power_one(self):
        field = GF2m(6)
        for element in range(1, field.order):
            assert field.pow(element, field.order - 1) == 1


class TestTableAndFieldCaches:
    def test_tables_shared_across_instances(self):
        first = GF2m(8)
        second = GF2m(8)
        assert first is not second
        assert first.tables()[0] is second.tables()[0]
        assert first.tables()[1] is second.tables()[1]

    def test_get_field_returns_canonical_instance(self):
        assert get_field(8) is get_field(8)
        assert get_field(8) == GF2m(8)
        # The explicit default modulus resolves to the same cached instance.
        assert get_field(8, GF2m(8).modulus) is get_field(8)

    def test_get_field_distinct_moduli_distinct_instances(self):
        default = get_field(4)
        other = get_field(4, 0b11001)  # x^4 + x^3 + 1, also irreducible
        assert default is not other
        assert default != other

    def test_get_field_rejects_bad_degree(self):
        with pytest.raises(FieldError):
            get_field(0)

    def test_large_degree_has_no_tables_but_correct_arithmetic(self):
        field = GF2m(_TABLE_MAX_DEGREE + 4)
        assert field.tables() is None
        rng = random.Random(77)
        for _ in range(20):
            a = field.random_nonzero(rng)
            assert field.mul(field.inv(a), a) == 1
            assert field.mul(a, 1) == a
            assert field.square(a) == field._mul_fallback(a, a)


#: Full Rabin verification is O(degree) modular squarings; beyond this bound
#: (several seconds per entry) the default run downgrades to the small-factor
#: screen and the full test is opted into via REPRO_SLOW_TESTS=1.
_FULL_RABIN_MAX_DEGREE = 4096


def test_tabulated_irreducible_polynomials_are_irreducible():
    # irreducible_polynomial() trusts the table at runtime (re-running the
    # Rabin test per process was a ~1s tax on large degrees); this test is
    # the authoritative check of every tabulated entry.  Entries beyond
    # _FULL_RABIN_MAX_DEGREE get the cheap necessary condition here (no
    # irreducible factor of degree <= 14) and the authoritative Rabin run
    # under REPRO_SLOW_TESTS=1 (see below).
    for degree, exponents in sorted(_LOW_WEIGHT_EXPONENTS.items()):
        poly = _poly_from_exponents(degree, exponents)
        if degree <= _FULL_RABIN_MAX_DEGREE:
            assert is_irreducible(poly), f"table entry for degree {degree} is reducible"
        else:
            assert not _has_small_degree_factor(poly), (
                f"table entry for degree {degree} has a small factor"
            )


@pytest.mark.skipif(
    not os.environ.get("REPRO_SLOW_TESTS"),
    reason="full Rabin verification of the multi-thousand-bit table entries "
    "takes tens of seconds; set REPRO_SLOW_TESTS=1 to run it",
)
def test_large_tabulated_entries_full_rabin():
    for degree, exponents in sorted(_LOW_WEIGHT_EXPONENTS.items()):
        if degree > _FULL_RABIN_MAX_DEGREE:
            poly = _poly_from_exponents(degree, exponents)
            assert is_irreducible(poly), f"table entry for degree {degree} is reducible"
