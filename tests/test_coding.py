"""Tests for Omega_k enumeration, coding matrices, equality check and Theorem 1 verification."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.coding_matrix import CodingScheme, encode_value, generate_coding_scheme
from repro.coding.equality_check import run_equality_check, value_to_symbols
from repro.coding.omega import (
    compute_rho,
    compute_uk,
    dispute_free_subgraphs,
    omega_and_parameters,
)
from repro.coding.verification import (
    build_check_matrix,
    scheme_is_correct,
    subgraph_is_constrained,
    theorem1_failure_bound,
    verify_coding_scheme,
)
from repro.exceptions import ProtocolError
from repro.graph.generators import complete_graph, figure1a, figure1b
from repro.transport.faults import ByzantineStrategy, FaultModel
from repro.transport.network import SynchronousNetwork
from repro.types import node_pair


class GarbageEqualityStrategy(ByzantineStrategy):
    """A faulty node sends all-zero coded symbols regardless of its value."""

    name = "garbage-equality"

    def equality_check_vector(self, instance, node, neighbor, true_vector):
        return [0] * len(true_vector)


class TestOmega:
    def test_no_disputes_all_subsets(self):
        graph = figure1a()
        subgraphs = dispute_free_subgraphs(graph, 3)
        assert len(subgraphs) == 4  # C(4, 3)

    def test_paper_example_omega_k(self):
        """Figure 1(b) with the 2-3 dispute: Omega_k = {(1,2,4), (1,3,4)}."""
        graph = figure1b()
        subgraphs = dispute_free_subgraphs(graph, 3, [node_pair(2, 3)])
        assert sorted(subgraphs) == [(1, 2, 4), (1, 3, 4)]

    def test_invalid_sizes(self):
        graph = figure1a()
        with pytest.raises(ProtocolError):
            dispute_free_subgraphs(graph, 0)
        with pytest.raises(ProtocolError):
            dispute_free_subgraphs(graph, 9)

    def test_uk_of_paper_example(self):
        graph = figure1b()
        subgraphs = dispute_free_subgraphs(graph, 3, [node_pair(2, 3)])
        assert compute_uk(graph, subgraphs) == 2

    def test_uk_requires_nonempty_family(self):
        with pytest.raises(ProtocolError):
            compute_uk(figure1a(), [])

    def test_rho_is_half_of_uk(self):
        assert compute_rho(2) == 1
        assert compute_rho(5) == 2
        assert compute_rho(8) == 4

    def test_rho_rejects_small_uk(self):
        with pytest.raises(ProtocolError):
            compute_rho(1)

    def test_omega_and_parameters_wrapper(self):
        graph = figure1b()
        subgraphs, uk, rho = omega_and_parameters(graph, 4, 1, [node_pair(2, 3)])
        assert len(subgraphs) == 2
        assert uk == 2
        assert rho == 1

    def test_complete_graph_parameters(self):
        graph = complete_graph(4, capacity=2)
        subgraphs, uk, rho = omega_and_parameters(graph, 4, 1)
        assert len(subgraphs) == 4
        # In a K3 with undirected capacity 4 per edge, pairwise min-cut is 8.
        assert uk == 8
        assert rho == 4


class TestCodingScheme:
    def test_matrix_shapes_follow_capacities(self):
        graph = figure1a()
        scheme = generate_coding_scheme(graph, rho=2, symbol_bits=8, seed=7)
        assert scheme.matrix_for((1, 2)).shape == (2, 2)
        assert scheme.matrix_for((2, 3)).shape == (2, 1)

    def test_deterministic_in_seed_and_instance(self):
        graph = figure1a()
        first = generate_coding_scheme(graph, 2, 8, seed=3, instance=5)
        second = generate_coding_scheme(graph, 2, 8, seed=3, instance=5)
        different = generate_coding_scheme(graph, 2, 8, seed=3, instance=6)
        assert first.matrices == second.matrices
        assert first.matrices != different.matrices

    def test_invalid_parameters(self):
        graph = figure1a()
        with pytest.raises(ProtocolError):
            generate_coding_scheme(graph, 0, 8)
        with pytest.raises(ProtocolError):
            generate_coding_scheme(graph, 2, 0)

    def test_missing_edge_matrix(self):
        graph = figure1a()
        scheme = generate_coding_scheme(graph, 2, 8)
        with pytest.raises(ProtocolError):
            scheme.matrix_for((2, 4))

    def test_encode_value_length_and_determinism(self):
        graph = figure1a()
        scheme = generate_coding_scheme(graph, 2, 8, seed=1)
        coded = encode_value(scheme, [3, 5], (1, 2))
        assert len(coded) == 2
        assert coded == encode_value(scheme, [3, 5], (1, 2))

    def test_encode_value_wrong_length(self):
        graph = figure1a()
        scheme = generate_coding_scheme(graph, 2, 8)
        with pytest.raises(ProtocolError):
            encode_value(scheme, [1], (1, 2))

    def test_encode_value_accepts_any_sequence(self):
        # The signature is Sequence[int]: list, tuple, range and custom
        # sequence types must all encode identically.
        class SymbolSequence:
            def __init__(self, items):
                self._items = list(items)

            def __len__(self):
                return len(self._items)

            def __getitem__(self, index):
                return self._items[index]

        graph = figure1a()
        scheme = generate_coding_scheme(graph, 2, 8, seed=1)
        expected = encode_value(scheme, [3, 5], (1, 2))
        assert encode_value(scheme, (3, 5), (1, 2)) == expected
        assert encode_value(scheme, SymbolSequence([3, 5]), (1, 2)) == expected
        assert encode_value(scheme, range(3, 5), (1, 2)) == [
            coded for coded in encode_value(scheme, [3, 4], (1, 2))
        ]

    def test_edges_listing(self):
        graph = figure1a()
        scheme = generate_coding_scheme(graph, 2, 8)
        assert list(scheme.edges()) == sorted(graph.edge_set())


class TestValueToSymbols:
    def test_exact_split(self):
        graph = figure1a()
        scheme = generate_coding_scheme(graph, 2, 8)
        assert value_to_symbols(0xABCD, 16, scheme) == [0xAB, 0xCD]

    def test_padding_to_rho(self):
        graph = figure1a()
        scheme = generate_coding_scheme(graph, 4, 8)
        assert value_to_symbols(0xFF, 8, scheme) == [0, 0, 0, 0xFF]

    def test_too_many_symbols_rejected(self):
        graph = figure1a()
        scheme = generate_coding_scheme(graph, 1, 4)
        with pytest.raises(ProtocolError):
            value_to_symbols(0xABC, 12, scheme)


def _equality_setup(graph, rho, symbol_bits, faulty=(), strategy=None, seed=0):
    network = SynchronousNetwork(graph, FaultModel(faulty, strategy))
    scheme = generate_coding_scheme(graph, rho, symbol_bits, seed=seed)
    return network, scheme


class TestEqualityCheck:
    def test_identical_values_no_mismatch(self):
        graph = figure1a()
        network, scheme = _equality_setup(graph, rho=2, symbol_bits=8)
        values = {node: 0xBEEF for node in graph.nodes()}
        outcome = run_equality_check(network, graph, values, 16, scheme)
        assert not outcome.mismatch_detected()
        assert set(outcome.flags) == set(graph.nodes())

    def test_differing_value_detected(self):
        graph = figure1a()
        network, scheme = _equality_setup(graph, rho=2, symbol_bits=16)
        values = {node: 0xBEEF for node in graph.nodes()}
        values[3] = 0xDEAD
        outcome = run_equality_check(network, graph, values, 16, scheme)
        assert outcome.mismatch_detected()

    def test_time_accounting_is_L_over_rho(self):
        graph = figure1a()
        rho = 2
        symbol_bits = 8  # L = 16, L / rho = 8
        network, scheme = _equality_setup(graph, rho, symbol_bits)
        values = {node: 0x1234 for node in graph.nodes()}
        run_equality_check(network, graph, values, 16, scheme, phase="eq")
        assert network.accountant.phase_elapsed("eq") == Fraction(symbol_bits)

    def test_missing_value_raises(self):
        graph = figure1a()
        network, scheme = _equality_setup(graph, 2, 8)
        values = {node: 1 for node in graph.nodes() if node != 3}
        with pytest.raises(ProtocolError):
            run_equality_check(network, graph, values, 16, scheme)

    def test_faulty_node_garbage_triggers_neighbor_flag(self):
        graph = figure1a()
        network, scheme = _equality_setup(
            graph, 2, 16, faulty=[2], strategy=GarbageEqualityStrategy()
        )
        values = {node: 0xCAFE for node in graph.nodes()}
        outcome = run_equality_check(network, graph, values, 16, scheme)
        # Node 3 receives garbage from node 2 on edge (2, 3) and must flag it.
        assert outcome.flags[3] is True

    def test_byzantine_vector_with_wrong_length_rejected(self):
        class WrongLengthStrategy(ByzantineStrategy):
            def equality_check_vector(self, instance, node, neighbor, true_vector):
                return [0]

        graph = figure1a()
        network, scheme = _equality_setup(
            graph, 2, 8, faulty=[1], strategy=WrongLengthStrategy()
        )
        values = {node: 3 for node in graph.nodes()}
        with pytest.raises(ProtocolError):
            run_equality_check(network, graph, values, 16, scheme)

    def test_sent_and_expected_vectors_exposed(self):
        graph = figure1a()
        network, scheme = _equality_setup(graph, 2, 8)
        values = {node: 0xAB12 for node in graph.nodes()}
        outcome = run_equality_check(network, graph, values, 16, scheme)
        assert set(outcome.sent_vectors) == graph.edge_set()
        for edge, sent in outcome.sent_vectors.items():
            assert outcome.expected_vectors[edge] == sent


class TestVerification:
    def test_check_matrix_shape(self):
        graph = figure1a()
        scheme = generate_coding_scheme(graph, 2, 16, seed=2)
        matrix = build_check_matrix(graph, [1, 2, 3, 4], scheme)
        assert matrix.rows == (4 - 1) * 2
        assert matrix.cols == graph.total_capacity()

    def test_check_matrix_requires_two_nodes(self):
        graph = figure1a()
        scheme = generate_coding_scheme(graph, 2, 8)
        with pytest.raises(ProtocolError):
            build_check_matrix(graph, [1], scheme)

    def test_check_matrix_requires_edges(self):
        graph = figure1a()
        scheme = generate_coding_scheme(graph, 1, 8)
        with pytest.raises(ProtocolError):
            build_check_matrix(graph, [2, 4], scheme)  # no links between 2 and 4

    def test_random_scheme_is_correct_with_large_symbols(self):
        graph = figure1b()
        subgraphs, uk, rho = omega_and_parameters(graph, 4, 1, [node_pair(2, 3)])
        scheme = generate_coding_scheme(graph, rho, symbol_bits=32, seed=11)
        results = verify_coding_scheme(graph, subgraphs, scheme)
        assert all(results.values())
        assert scheme_is_correct(graph, subgraphs, scheme)

    def test_correct_scheme_catches_any_difference(self):
        """If the scheme verifies, differing values at fault-free nodes are always caught."""
        graph = figure1b()
        subgraphs, _, rho = omega_and_parameters(graph, 4, 1, [node_pair(2, 3)])
        scheme = generate_coding_scheme(graph, rho, symbol_bits=32, seed=11)
        assert scheme_is_correct(graph, subgraphs, scheme)
        rng = random.Random(4)
        for _ in range(20):
            values = {node: rng.getrandbits(32) for node in graph.nodes()}
            if len(set(values.values())) == 1:
                continue
            network = SynchronousNetwork(graph)
            outcome = run_equality_check(network, graph, values, 32, scheme)
            assert outcome.mismatch_detected()

    def test_all_zero_scheme_is_incorrect(self):
        graph = figure1a()
        field_scheme = generate_coding_scheme(graph, 2, 8, seed=0)
        from repro.gf.matrix import GFMatrix

        zero_matrices = {
            edge: GFMatrix.zeros(field_scheme.field, 2, graph.capacity(*edge))
            for edge in graph.edge_set()
        }
        zero_scheme = CodingScheme(
            field=field_scheme.field,
            rho=2,
            symbol_bits=8,
            matrices=zero_matrices,
            seed=0,
        )
        assert not subgraph_is_constrained(graph, [1, 2, 3, 4], zero_scheme)

    def test_theorem1_bound_values(self):
        bound = theorem1_failure_bound(4, 1, rho=1, symbol_bits=10)
        assert bound == Fraction(4 * 2 * 1, 2**10)
        assert theorem1_failure_bound(4, 1, 1, 1) == 1  # clamped

    def test_theorem1_bound_validation(self):
        with pytest.raises(ProtocolError):
            theorem1_failure_bound(0, 1, 1, 8)
        with pytest.raises(ProtocolError):
            theorem1_failure_bound(4, 1, 0, 8)

    def test_small_symbols_sometimes_incorrect_but_within_bound(self):
        """With 1-bit symbols random schemes fail noticeably often; bound must hold."""
        graph = figure1b()
        subgraphs, _, rho = omega_and_parameters(graph, 4, 1, [node_pair(2, 3)])
        failures = 0
        trials = 60
        for seed in range(trials):
            scheme = generate_coding_scheme(graph, rho, symbol_bits=1, seed=seed)
            if not scheme_is_correct(graph, subgraphs, scheme):
                failures += 1
        assert failures > 0  # 1-bit symbols are genuinely risky
        # and correctness failures become rare with 16-bit symbols
        failures_16 = sum(
            0 if scheme_is_correct(
                graph, subgraphs, generate_coding_scheme(graph, rho, 16, seed=seed)
            ) else 1
            for seed in range(20)
        )
        assert failures_16 == 0


class TestEqualityCheckProperties:
    @given(st.integers(min_value=0, max_value=2**16 - 1), st.integers(min_value=0, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_equal_values_never_flag(self, value, seed):
        graph = figure1a()
        network = SynchronousNetwork(graph)
        scheme = generate_coding_scheme(graph, 2, 8, seed=seed)
        values = {node: value for node in graph.nodes()}
        outcome = run_equality_check(network, graph, values, 16, scheme)
        assert not outcome.mismatch_detected()

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_verified_scheme_detects_differences(self, data):
        graph = figure1b()
        subgraphs, _, rho = omega_and_parameters(graph, 4, 1, [node_pair(2, 3)])
        scheme = generate_coding_scheme(graph, rho, 24, seed=5)
        assert scheme_is_correct(graph, subgraphs, scheme)
        values = {
            node: data.draw(st.integers(min_value=0, max_value=2**24 - 1))
            for node in graph.nodes()
        }
        network = SynchronousNetwork(graph)
        outcome = run_equality_check(network, graph, values, 24, scheme)
        if len(set(values.values())) > 1:
            assert outcome.mismatch_detected()
        else:
            assert not outcome.mismatch_detected()
