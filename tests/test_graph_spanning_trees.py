"""Tests for arborescence packing and the topology generators."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError, InfeasibleError
from repro.graph.generators import (
    complete_graph,
    figure1a,
    figure1b,
    figure2_tree_packing,
    figure2a,
    heterogeneous_bottleneck,
    layered_pipeline,
    random_connected_network,
    ring_with_chords,
)
from repro.graph.mincut import broadcast_mincut, st_mincut
from repro.graph.network_graph import NetworkGraph
from repro.graph.spanning_trees import (
    Arborescence,
    pack_arborescences,
    packing_edge_usage,
    validate_packing,
)
from repro.graph.undirected import UndirectedView
from repro.graph.connectivity import vertex_connectivity


class TestArborescenceObject:
    def test_edges_and_nodes(self):
        tree = Arborescence(1, {2: 1, 3: 2})
        assert tree.edges() == [(1, 2), (2, 3)]
        assert tree.nodes() == [1, 2, 3]

    def test_children_and_depth(self):
        tree = Arborescence(1, {2: 1, 3: 1, 4: 3})
        assert tree.children_of(1) == [2, 3]
        assert tree.depth_of(4) == 2
        assert tree.depth() == 2

    def test_path_from_root(self):
        tree = Arborescence(1, {2: 1, 3: 2, 4: 3})
        assert tree.path_from_root(4) == [1, 2, 3, 4]

    def test_single_node_tree_depth(self):
        assert Arborescence(1, {}).depth() == 0

    def test_cycle_detection(self):
        tree = Arborescence(1, {2: 3, 3: 2})
        with pytest.raises(GraphError):
            tree.depth_of(2)


class TestPacking:
    def test_figure2a_packs_two_trees(self):
        graph = figure2a()
        trees = pack_arborescences(graph, 1)
        assert len(trees) == 2
        validate_packing(graph, 1, trees)

    def test_figure2a_both_trees_use_link_1_2(self):
        """Appendix A: link (1,2) is used by both spanning trees, 2 units total."""
        graph = figure2a()
        trees = pack_arborescences(graph, 1, 2)
        usage = packing_edge_usage(trees)
        assert usage[(1, 2)] == 2

    def test_figure2_reference_packing_is_valid(self):
        graph = figure2a()
        trees = [Arborescence(1, parents) for parents in figure2_tree_packing()]
        validate_packing(graph, 1, trees)

    def test_figure1a_packs_gamma_trees(self):
        graph = figure1a()
        trees = pack_arborescences(graph, 1)
        assert len(trees) == broadcast_mincut(graph, 1) == 2
        validate_packing(graph, 1, trees)

    def test_complete_graph_packing(self):
        graph = complete_graph(5, capacity=1)
        trees = pack_arborescences(graph, 1)
        assert len(trees) == 4
        validate_packing(graph, 1, trees)

    def test_requesting_fewer_trees_is_allowed(self):
        graph = complete_graph(4, capacity=2)
        trees = pack_arborescences(graph, 1, 2)
        assert len(trees) == 2
        validate_packing(graph, 1, trees)

    def test_requesting_more_than_gamma_raises(self):
        graph = figure2a()
        with pytest.raises(InfeasibleError):
            pack_arborescences(graph, 1, 3)

    def test_zero_trees_raises(self):
        with pytest.raises(InfeasibleError):
            pack_arborescences(figure2a(), 1, 0)

    def test_missing_root_raises(self):
        with pytest.raises(GraphError):
            pack_arborescences(figure2a(), 99)

    def test_single_node_graph_raises(self):
        graph = NetworkGraph()
        graph.add_node(1)
        with pytest.raises(GraphError):
            pack_arborescences(graph, 1)

    def test_high_capacity_single_path_topology(self):
        graph = NetworkGraph.from_edges({(1, 2): 3, (2, 3): 3})
        trees = pack_arborescences(graph, 1)
        assert len(trees) == 3
        validate_packing(graph, 1, trees)

    def test_validate_packing_detects_overuse(self):
        graph = figure2a()
        tree = Arborescence(1, {2: 1, 3: 2, 4: 2})
        with pytest.raises(GraphError):
            validate_packing(graph, 1, [tree, tree, tree])

    def test_validate_packing_detects_wrong_root(self):
        graph = figure2a()
        tree = Arborescence(2, {3: 2, 4: 2, 1: 4})
        with pytest.raises(GraphError):
            validate_packing(graph, 1, [tree])

    def test_validate_packing_detects_nonspanning(self):
        graph = figure2a()
        tree = Arborescence(1, {2: 1})
        with pytest.raises(GraphError):
            validate_packing(graph, 1, [tree])

    def test_validate_packing_detects_foreign_edge(self):
        graph = figure2a()
        tree = Arborescence(1, {2: 1, 4: 1, 3: 1})  # (1, 3) is not an edge of figure2a
        with pytest.raises(GraphError):
            validate_packing(graph, 1, [tree])

    def test_packing_on_random_networks(self):
        rng = random.Random(5)
        for _ in range(5):
            graph = random_connected_network(6, 3, rng, max_capacity=3)
            trees = pack_arborescences(graph, 1)
            assert len(trees) == broadcast_mincut(graph, 1)
            validate_packing(graph, 1, trees)


class TestGenerators:
    def test_figure1a_has_no_link_between_2_and_4(self):
        graph = figure1a()
        assert not graph.has_edge(2, 4)
        assert not graph.has_edge(4, 2)

    def test_figure1b_removes_dispute_links(self):
        graph = figure1b()
        assert not graph.has_edge(2, 3)
        assert not graph.has_edge(3, 2)
        assert graph.has_edge(1, 2)

    def test_figure1b_uk_value_from_paper(self):
        """Paper: with nodes 2,3 in dispute, Omega_k = {{1,2,4},{1,3,4}} and U_k = 2."""
        graph = figure1b()
        candidates = [
            UndirectedView(graph.induced_subgraph(nodes)).min_pairwise_mincut()
            for nodes in ([1, 2, 4], [1, 3, 4])
        ]
        assert min(candidates) == 2

    def test_figure2a_contains_appendix_c_edges(self):
        graph = figure2a()
        for edge in [(2, 3), (1, 4), (4, 3)]:
            assert graph.has_edge(*edge)

    def test_figure2a_gamma(self):
        assert broadcast_mincut(figure2a(), 1) == 2

    def test_complete_graph_structure(self):
        graph = complete_graph(4, capacity=3)
        assert graph.edge_count() == 12
        assert all(capacity == 3 for _, _, capacity in graph.edges())

    def test_complete_graph_too_small(self):
        with pytest.raises(GraphError):
            complete_graph(1)

    def test_ring_with_chords_connectivity(self):
        graph = ring_with_chords(7, chord_span=2)
        assert vertex_connectivity(graph) >= 3

    def test_ring_too_small(self):
        with pytest.raises(GraphError):
            ring_with_chords(2)

    def test_heterogeneous_bottleneck_capacities(self):
        graph = heterogeneous_bottleneck(4, fast_capacity=10, slow_capacity=1)
        assert graph.capacity(1, 2) == 10
        assert graph.capacity(1, 4) == 1
        assert graph.capacity(4, 2) == 1

    def test_heterogeneous_bottleneck_validation(self):
        with pytest.raises(GraphError):
            heterogeneous_bottleneck(2, 1, 1)
        with pytest.raises(GraphError):
            heterogeneous_bottleneck(4, 0, 1)

    def test_layered_pipeline_diameter_grows(self):
        shallow = layered_pipeline(1, 3)
        deep = layered_pipeline(4, 3)
        assert deep.node_count() == 1 + 4 * 3
        assert shallow.node_count() == 1 + 3
        assert st_mincut(deep, 1, deep.node_count()) >= 1

    def test_layered_pipeline_validation(self):
        with pytest.raises(GraphError):
            layered_pipeline(0, 3)

    def test_random_connected_network_meets_connectivity(self):
        rng = random.Random(11)
        graph = random_connected_network(7, 3, rng)
        assert vertex_connectivity(graph) >= 3

    def test_random_connected_network_validation(self):
        rng = random.Random(0)
        with pytest.raises(GraphError):
            random_connected_network(3, 3, rng)
        with pytest.raises(GraphError):
            random_connected_network(3, 0, rng)

    def test_random_network_is_reproducible_with_seed(self):
        a = random_connected_network(6, 3, random.Random(21))
        b = random_connected_network(6, 3, random.Random(21))
        assert a == b


@st.composite
def packable_graphs(draw):
    """Random bidirectional capacitated graphs with a guaranteed spanning structure."""
    node_count = draw(st.integers(min_value=3, max_value=5))
    edges = {}
    for node in range(2, node_count + 1):
        edges[(1, node)] = draw(st.integers(min_value=1, max_value=3))
        edges[(node, 1)] = draw(st.integers(min_value=1, max_value=3))
    for a in range(2, node_count + 1):
        for b in range(2, node_count + 1):
            if a != b and draw(st.booleans()):
                edges[(a, b)] = draw(st.integers(min_value=1, max_value=3))
    return NetworkGraph.from_edges(edges)


class TestPackingProperties:
    @given(packable_graphs())
    @settings(max_examples=25, deadline=None)
    def test_packing_always_validates(self, graph):
        trees = pack_arborescences(graph, 1)
        assert len(trees) == broadcast_mincut(graph, 1)
        validate_packing(graph, 1, trees)

    @given(packable_graphs())
    @settings(max_examples=25, deadline=None)
    def test_usage_never_exceeds_capacity(self, graph):
        trees = pack_arborescences(graph, 1)
        usage = packing_edge_usage(trees)
        for (tail, head), used in usage.items():
            assert used <= graph.capacity(tail, head)
