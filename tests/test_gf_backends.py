"""Conformance and registry tests for the pluggable GF kernel backends.

Every backend registered in :mod:`repro.gf.backends` is pitted against the
frozen bit-serial oracles (``poly_mul`` on the polynomial layer,
``GF2m._mul_fallback`` / ``vecmat_loop`` / ``matmul_loop`` on the field and
matrix layers) across degrees 17-2048, with spot checks at the
``huge_payloads`` degrees 8739 and 21846.  Backends added later are picked up
automatically — the suite iterates :func:`available_backend_names`.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.spec import FAULT_FREE, ExperimentSpec
from repro.exceptions import ConfigurationError, FieldError
from repro.gf import backends
from repro.gf.field import GF2m, get_field
from repro.gf.matrix import GFMatrix
from repro.gf.polynomials import (
    bit_compact,
    bit_spread,
    poly_mul,
    poly_mul_spread,
    spread_factor_for,
    spread_table,
)

#: Degrees the full conformance sweep exercises: beyond the log-table limit,
#: a non-tabulated search degree (100), and the large_payloads regime.
DEGREES = (17, 33, 100, 256, 1024, 2048)

#: The huge_payloads degrees, spot-checked with fewer samples (the bit-serial
#: oracle is quadratic, so each product costs real time here).
HUGE_DEGREES = (8739, 21846)

BACKENDS = backends.available_backend_names()


def _adversarial_operands(degree: int, rng: random.Random):
    """Random, all-ones, sparse and boundary operands for one degree."""
    order = 1 << degree
    return [
        rng.getrandbits(degree),
        rng.getrandbits(degree) | (1 << (degree - 1)),
        order - 1,  # all ones
        1 << (degree - 1),  # single top bit
        (1 << (degree // 2)) | 1,  # sparse
        1,
        0,
    ]


@pytest.mark.parametrize("name", BACKENDS)
class TestBackendConformance:
    def test_scalar_mul_matches_bitserial_oracle(self, name):
        rng = random.Random(11)
        for degree in DEGREES:
            field = GF2m(degree, kernel_backend=name)
            operands = _adversarial_operands(degree, rng)
            for a in operands:
                for b in operands:
                    assert field.mul(a, b) == field._mul_fallback(a, b), (
                        name,
                        degree,
                        a,
                        b,
                    )

    def test_raw_clmul_matches_poly_mul(self, name):
        rng = random.Random(12)
        for degree in DEGREES:
            field = GF2m(degree, kernel_backend=name)
            for _ in range(8):
                a = rng.getrandbits(degree) | 1
                b = rng.getrandbits(degree) | 1
                assert field._kernel.clmul(a, b) == poly_mul(a, b), (name, degree)

    def test_huge_degree_spot_check(self, name):
        rng = random.Random(13)
        for degree in HUGE_DEGREES:
            field = GF2m(degree, kernel_backend=name)
            a = rng.getrandbits(degree) | (1 << (degree - 1))
            b = rng.getrandbits(degree) | (1 << (degree - 1))
            assert field.mul(a, b) == field._mul_fallback(a, b), (name, degree)

    def test_vector_kernels_match_oracles(self, name):
        rng = random.Random(14)
        for degree in (17, 256, 1024):
            field = GF2m(degree, kernel_backend=name)
            left = field.random_vector(7, rng)
            right = field.random_vector(7, rng)
            assert field.dot_vec(left, right) == field.dot(left, right)
            assert field.mul_vec(left, right) == [
                field._mul_fallback(a, b) for a, b in zip(left, right)
            ]
            scalar = field.random_nonzero(rng)
            assert field.scale_vec(scalar, left) == [
                field._mul_fallback(scalar, a) for a in left
            ]

    def test_vecmat_and_matmul_match_frozen_loops(self, name):
        rng = random.Random(15)
        for degree in (64, 1024):
            field = GF2m(degree, kernel_backend=name)
            # 70 columns spills past one stacked window at large degrees,
            # exercising the ragged final window of the batched kernels.
            matrix = GFMatrix.random(field, 5, 70, rng)
            vector = [field.random_element(rng) for _ in range(5)]
            assert matrix.vecmat(vector) == matrix.vecmat_loop(vector)
            sparse = [0, vector[1], 0, 0, vector[4]]
            assert matrix.vecmat(sparse) == matrix.vecmat_loop(sparse)
            assert matrix.vecmat([0] * 5) == [0] * 70
            left = GFMatrix.random(field, 3, 5, rng)
            assert (left @ matrix).to_lists() == left.matmul_loop(matrix).to_lists()

    def test_ragged_stacked_batches(self, name):
        rng = random.Random(16)
        field = GF2m(820, kernel_backend=name)
        scalar = field.random_nonzero(rng)
        for length in (1, 2, 63, 64, 65, 130):
            vector = field.random_vector(length, rng)
            assert field.scale_vec(scalar, vector) == [
                field._mul_fallback(scalar, value) for value in vector
            ], (name, length)


class TestSpreadPrimitives:
    @given(
        factor_log=st.integers(min_value=1, max_value=6),
        value=st.integers(min_value=0, max_value=(1 << 256) - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_compact_inverts_spread(self, factor_log, value):
        factor = 1 << factor_log
        assert bit_compact(bit_spread(value, factor), factor) == value

    def test_spread_table_rejects_bad_factors(self):
        for factor in (0, 1, 3, 6, 12):
            with pytest.raises(FieldError):
                spread_table(factor)

    def test_spread_factor_contains_counts(self):
        for bits in (1, 2, 3, 7, 8, 17, 1024, 21846):
            factor = spread_factor_for(bits)
            assert factor & (factor - 1) == 0
            assert (1 << factor) > bits
            # Minimal: the next power of two down cannot contain the counts.
            if factor > 2:
                assert (1 << (factor >> 1)) <= bits

    @given(degree=st.sampled_from((17, 64, 257, 820, 1024, 2048)), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_poly_mul_spread_matches_oracle(self, degree, data):
        a = data.draw(st.integers(min_value=0, max_value=(1 << degree) - 1))
        b = data.draw(st.integers(min_value=0, max_value=(1 << degree) - 1))
        assert poly_mul_spread(a, b) == poly_mul(a, b)

    def test_poly_mul_spread_adversarial_operands(self):
        for degree in (17, 100, 1024, 2048):
            ones = (1 << degree) - 1
            sparse = (1 << (degree - 1)) | 1
            for a, b in [(ones, ones), (ones, sparse), (sparse, sparse), (ones, 1)]:
                assert poly_mul_spread(a, b) == poly_mul(a, b), degree

    def test_explicit_factor_must_contain_counts(self):
        # factor=4 holds counts < 16: fine for tiny operands, wrong for wide
        # all-ones operands whose convolution counts overflow the guard slots.
        assert poly_mul_spread(0b111, 0b101, factor=4) == poly_mul(0b111, 0b101)
        wide = (1 << 64) - 1
        assert poly_mul_spread(wide, wide, factor=128) == poly_mul(wide, wide)


class TestRegistry:
    def test_all_shipped_backends_registered(self):
        names = backends.backend_names()
        for expected in ("bitserial", "windowed", "bitspread", "numpy"):
            assert expected in names

    def test_unknown_name_rejected(self):
        with pytest.raises(FieldError, match="unknown kernel backend"):
            GF2m(256, kernel_backend="no-such-kernel")
        with pytest.raises(FieldError):
            backends.backend_class("no-such-kernel")

    def test_unknown_name_rejected_for_small_fields_too(self):
        with pytest.raises(FieldError):
            GF2m(8, kernel_backend="no-such-kernel")

    def test_env_override_respected(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_BACKEND, "bitspread")
        field = GF2m(256)
        assert field.kernel_backend_name() == "bitspread"
        assert field._kernel.selected_by == "env"

    def test_env_unknown_name_rejected(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_BACKEND, "no-such-kernel")
        with pytest.raises(FieldError):
            GF2m(256)

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_BACKEND, "bitspread")
        field = GF2m(256, kernel_backend="windowed")
        assert field.kernel_backend_name() == "windowed"
        assert field._kernel.selected_by == "explicit"

    def test_auto_policy(self):
        assert backends.auto_backend_name(256) == "windowed"
        if "numpy" in BACKENDS:
            assert backends.auto_backend_name(backends.NUMPY_MIN_DEGREE) == "numpy"

    def test_selection_sticky_across_get_field_calls(self):
        # A degree no other test canonicalises, so the cache entry is ours.
        first = get_field(1031, kernel_backend="bitspread")
        again = get_field(1031)
        assert again is first
        assert again.kernel_backend_name() == "bitspread"

    def test_conflicting_backend_request_raises(self):
        get_field(1033, kernel_backend="windowed")
        with pytest.raises(FieldError, match="sticky"):
            get_field(1033, kernel_backend="bitspread")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(FieldError):
            backends.register_backend(backends.WindowedBackend)

    def test_describe_reports_backend_and_crossover(self):
        field = GF2m(1024, kernel_backend="bitspread")
        info = field.describe()
        assert info["kernel_backend"] == "bitspread"
        assert info["selected_by"] == "explicit"
        assert info["crossover"]["spread_factor"] == spread_factor_for(1024)
        assert "spread" in info["caches"]


class TestOperandCaches:
    def test_bitspread_cache_counts_hits(self):
        field = GF2m(256, kernel_backend="bitspread")
        rng = random.Random(21)
        a = field.random_nonzero(rng)
        field._kernel.clear_caches()
        field.mul(a, field.random_nonzero(rng))
        field.mul(a, field.random_nonzero(rng))
        stats = field.kernel_cache_stats()["spread"]
        assert stats["hits"] >= 1
        assert stats["entries"] >= 1
        assert 0 < stats["bytes"] <= stats["budget_bytes"]

    def test_clear_kernel_caches_drops_operands_keeps_counters(self):
        field = GF2m(256, kernel_backend="bitspread")
        rng = random.Random(22)
        field.mul(field.random_nonzero(rng), field.random_nonzero(rng))
        before = field.kernel_cache_stats()["spread"]["misses"]
        assert before >= 1
        field.clear_kernel_caches()
        stats = field.kernel_cache_stats()["spread"]
        assert stats["entries"] == 0
        assert stats["bytes"] == 0
        assert stats["misses"] == before

    def test_module_level_stats_and_clear(self):
        from repro.gf import field as field_module

        field = get_field(1031)  # canonicalised above with bitspread
        rng = random.Random(23)
        field.mul(field.random_nonzero(rng), field.random_nonzero(rng))
        stats = field_module.kernel_cache_stats()
        assert "GF(2^1031)" in stats
        field_module.clear_kernel_caches()
        assert field_module.kernel_cache_stats()["GF(2^1031)"]["spread"]["entries"] == 0

    @pytest.mark.skipif("numpy" not in BACKENDS, reason="numpy not importable")
    def test_numpy_matrix_spectra_cached_within_budget(self):
        field = GF2m(4096, kernel_backend="numpy")
        rng = random.Random(24)
        matrix = GFMatrix.random(field, 4, 6, rng)
        vector = [field.random_element(rng) for _ in range(4)]
        first = matrix.vecmat(vector)
        second = matrix.vecmat(vector)
        assert first == second == matrix.vecmat_loop(vector)
        stats = field.kernel_cache_stats()["fft_matrices"]
        assert stats["misses"] >= 1
        assert stats["hits"] >= 1
        assert matrix._kctx is not None


class TestSpecIntegration:
    def test_spec_rejects_unknown_backend(self):
        spec = ExperimentSpec(
            name="bad-backend",
            topologies=("k4-fast",),
            strategies=(FAULT_FREE,),
            payload_bytes=(8,),
            fault_counts=(1,),
            protocols=("nab",),
            kernel_backend="no-such-kernel",
        )
        with pytest.raises(ConfigurationError, match="kernel backend"):
            spec.expand()

    def test_spec_accepts_registered_backend_and_keeps_cell_ids(self):
        base = dict(
            topologies=("k4-fast",),
            strategies=(FAULT_FREE,),
            payload_bytes=(8,),
            fault_counts=(1,),
            protocols=("nab",),
        )
        plain = ExperimentSpec(name="s", **base).expand()
        forced = ExperimentSpec(name="s", kernel_backend="windowed", **base).expand()
        # Backends never change values, so the backend axis must not leak
        # into cell identities (or their derived seeds).
        assert [cell.cell_id for cell in forced] == [cell.cell_id for cell in plain]
        assert [cell.seed for cell in forced] == [cell.seed for cell in plain]

    def test_runner_propagates_and_restores_env(self, monkeypatch):
        import os

        from repro.engine.runner import run_spec

        monkeypatch.delenv(backends.ENV_BACKEND, raising=False)
        spec = ExperimentSpec(
            name="env-probe",
            topologies=("k4-fast",),
            strategies=(FAULT_FREE,),
            payload_bytes=(8,),
            fault_counts=(1,),
            protocols=("nab",),
            instances=1,
            kernel_backend="windowed",
        )
        seen: list = []
        run_spec(
            spec,
            out_path=None,
            workers=1,
            progress=lambda row: seen.append(os.environ.get(backends.ENV_BACKEND)),
        )
        assert seen == ["windowed"]
        assert backends.ENV_BACKEND not in os.environ
