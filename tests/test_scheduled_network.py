"""Tests for :class:`ScheduledNetwork`: FIFO drains, barriers, latency, and
the scheduler contract (measured clock == analytical clock at zero latency).
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import get_protocol, registered_protocols
from repro.exceptions import ConfigurationError
from repro.graph.network_graph import NetworkGraph
from repro.sched import LinkModel
from repro.transport import FaultModel, ScheduledNetwork, SynchronousNetwork
from repro.workloads.scenarios import input_stream
from repro.workloads.topologies import topology
import random

#: The topologies of the headline ``nab_vs_classical`` grid.
HEADLINE_TOPOLOGIES = ("k4-fast", "bottleneck4", "ring7-chords")


@pytest.fixture()
def graph():
    return NetworkGraph.from_edges({(1, 2): 2, (2, 3): 1, (1, 3): 4})


class TestZeroLatencySemantics:
    def test_single_message_drains_at_capacity(self, graph):
        network = ScheduledNetwork(graph)
        network.send(1, 2, b"x", 10, "p")
        assert network.elapsed_time() == Fraction(10, 2)

    def test_same_link_messages_queue_fifo(self, graph):
        network = ScheduledNetwork(graph)
        network.send(1, 2, b"x", 10, "p")
        network.send(1, 2, b"y", 6, "p")
        first, second = network.delivery_timeline()
        assert (first.departure, first.arrival) == (Fraction(0), Fraction(5))
        assert (second.departure, second.arrival) == (Fraction(5), Fraction(8))
        assert network.elapsed_time() == Fraction(8)

    def test_parallel_links_overlap(self, graph):
        network = ScheduledNetwork(graph)
        network.send(1, 2, b"x", 10, "p")  # 5 time units
        network.send(1, 3, b"y", 12, "p")  # 3 time units
        assert network.elapsed_time() == Fraction(5)

    def test_phase_change_is_a_barrier(self, graph):
        network = ScheduledNetwork(graph)
        network.send(1, 2, b"x", 10, "p1")
        network.send(1, 3, b"y", 4, "p2")
        segments = network.phase_segments()
        assert [segment.phase for segment in segments] == ["p1", "p2"]
        assert segments[1].start == segments[0].end == Fraction(5)
        assert network.elapsed_time() == Fraction(6)

    def test_interleaved_phase_names_share_one_round(self, graph):
        # Two phase names sent alternately (the per-origin sub-broadcast
        # pattern): each name is one parallel round, exactly as the
        # accountant sees it.
        network = ScheduledNetwork(graph)
        network.send(1, 2, b"a", 2, "round1")
        network.send(1, 2, b"b", 2, "round2")
        network.send(1, 2, b"c", 2, "round1")
        network.send(1, 2, b"d", 2, "round2")
        assert network.elapsed_time() == network.accountant.total_elapsed()
        segments = {segment.phase: segment for segment in network.phase_segments()}
        assert segments["round1"].duration == Fraction(4, 2)
        assert segments["round2"].start == segments["round1"].end

    def test_fixed_overhead_mirrored_on_both_clocks(self, graph):
        network = ScheduledNetwork(graph)
        network.send(1, 2, b"x", 10, "p")
        network.charge_fixed_overhead("p", Fraction(3, 2))
        assert network.elapsed_time() == Fraction(5) + Fraction(3, 2)
        assert network.elapsed_time() == network.accountant.total_elapsed()

    def test_overhead_charged_directly_on_the_accountant_is_measured(self, graph):
        # The replay reads overhead from the accountant's ledger, so code
        # written against the portable SynchronousNetwork surface (which only
        # exposes the accountant) keeps the contract — even after the clock
        # was already computed once, and even for phases with no sends.
        network = ScheduledNetwork(graph)
        network.send(1, 2, b"x", 10, "p")
        assert network.elapsed_time() == Fraction(5)  # prime the memo
        network.accountant.add_fixed_overhead("p", Fraction(2))
        network.accountant.add_fixed_overhead("overhead-only-phase", Fraction(1))
        assert network.elapsed_time() == Fraction(8)
        assert network.elapsed_time() == network.accountant.total_elapsed()
        assert [segment.phase for segment in network.phase_segments()] == [
            "p",
            "overhead-only-phase",
        ]

    def test_zero_valued_overhead_still_registers_its_phase(self, graph):
        # A zero charge changes no clock but must still invalidate the memo:
        # the new phase has to appear in the measured segments.
        network = ScheduledNetwork(graph)
        network.send(1, 2, b"x", 10, "p")
        assert network.elapsed_time() == Fraction(5)  # prime the memo
        network.accountant.add_fixed_overhead("empty-phase", 0)
        assert network.elapsed_time() == Fraction(5)
        assert [segment.phase for segment in network.phase_segments()] == [
            "p",
            "empty-phase",
        ]

    def test_send_round_and_inboxes_behave_like_synchronous(self, graph):
        network = ScheduledNetwork(graph)
        inboxes = network.send_round([(1, 2, b"a", 4), (1, 3, b"b", 4)], "p")
        assert sorted(inboxes) == [2, 3]
        assert len(network.messages_received_by(2, "p")) == 1
        assert network.total_bits() == 8


class TestLatencyAndJitter:
    def test_uniform_latency_shifts_arrivals(self, graph):
        model = LinkModel(name="u", latency=Fraction(2))
        network = ScheduledNetwork(graph, link_model=model)
        network.send(1, 2, b"x", 10, "p")
        assert network.elapsed_time() == Fraction(7)
        # Latency delays delivery but does not occupy the link: a second
        # message starts draining when the first has drained, not arrived.
        network.send(1, 2, b"y", 2, "p")
        first, second = network.delivery_timeline()
        assert second.departure == Fraction(5)
        assert second.arrival == Fraction(8)

    def test_heterogeneous_latency_per_link(self, graph):
        model = LinkModel(
            name="hetero", latency=Fraction(0), per_link={(1, 3): Fraction(10)}
        )
        network = ScheduledNetwork(graph, link_model=model)
        network.send(1, 2, b"x", 2, "p")
        network.send(1, 3, b"y", 4, "p")
        assert network.elapsed_time() == Fraction(11)

    def test_latency_propagates_into_next_phase_start(self, graph):
        model = LinkModel(name="u", latency=Fraction(3))
        network = ScheduledNetwork(graph, link_model=model)
        network.send(1, 2, b"x", 2, "p1")
        network.send(1, 2, b"y", 2, "p2")
        segments = network.phase_segments()
        assert segments[1].start == Fraction(4)
        assert network.elapsed_time() == Fraction(8)

    def test_jittered_runs_are_reproducible(self, graph):
        model = LinkModel(name="j", latency=Fraction(1), jitter=Fraction(1), seed=5)

        def run():
            network = ScheduledNetwork(graph, link_model=model)
            for _ in range(5):
                network.send(1, 2, b"x", 2, "p")
            return network.elapsed_time()

        assert run() == run()
        assert run() > Fraction(5, 1)  # latency strictly exceeds the drain time


class TestWireOrdinals:
    """Edge cases the fault layer leans on: phantom wire copies must get
    jitter ordinals of their own, overhead must respect phase barriers, and
    per-phase FIFOs must drain in send order even when phases interleave."""

    def test_duplicated_copies_consume_unique_jitter_ordinals(self, graph):
        from repro.sched.faults import DUPLICATE, EdgeFaultRates, LinkFaultPlan
        from repro.transport import ReliableNetwork

        class AlwaysDuplicate(LinkFaultPlan):
            def decide(self, edge, attempt):
                return DUPLICATE

        plan = AlwaysDuplicate(
            name="dup", rates=EdgeFaultRates(duplicate=Fraction(1))
        )

        def run():
            network = ReliableNetwork(
                graph,
                link_model=LinkModel(
                    name="j", latency=Fraction(1), jitter=Fraction(1), seed=9
                ),
                fault_plan=plan,
            )
            for _ in range(3):
                network.send(1, 2, b"x", 2, "p")
            return network

        network = run()
        timeline = network.delivery_timeline()
        # 3 deliveries + 3 redundant copies, each with its own wire ordinal —
        # no two wire items may share a jitter key.
        sequences = [timing.sequence for timing in timeline]
        assert sorted(sequences) == list(range(6))
        # And the jittered schedule is reproducible run to run.
        assert run().elapsed_time() == network.elapsed_time()

    def test_fixed_overhead_delays_the_next_phase_barrier(self, graph):
        network = ScheduledNetwork(graph)
        network.send(1, 2, b"x", 10, "p1")  # drains at 5
        network.charge_fixed_overhead("p1", Fraction(4))
        network.send(1, 2, b"y", 2, "p2")  # drains in 1
        segments = network.phase_segments()
        assert segments[0].end == Fraction(9)
        assert segments[1].start == Fraction(9)
        assert network.elapsed_time() == Fraction(10)
        assert network.elapsed_time() == network.accountant.total_elapsed()

    def test_overhead_on_a_later_phase_never_shifts_an_earlier_one(self, graph):
        network = ScheduledNetwork(graph)
        network.send(1, 2, b"x", 10, "p1")
        network.send(1, 2, b"y", 10, "p2")
        network.charge_fixed_overhead("p2", Fraction(3))
        segments = network.phase_segments()
        assert segments[0].end == Fraction(5)
        assert segments[1].end == Fraction(13)

    def test_interleaved_phases_drain_each_fifo_in_send_order(self, graph):
        network = ScheduledNetwork(graph)
        # Alternate two phase names on one link: each phase's FIFO must keep
        # its own send order, independent of the global send interleaving.
        network.send(1, 2, b"a1", 2, "round1")
        network.send(1, 2, b"b1", 4, "round2")
        network.send(1, 2, b"a2", 6, "round1")
        network.send(1, 2, b"b2", 8, "round2")
        by_phase = {}
        for timing in network.delivery_timeline():
            by_phase.setdefault(timing.phase, []).append(timing)
        round1, round2 = by_phase["round1"], by_phase["round2"]
        # round1: 2 bits then 6 bits at capacity 2, starting at t=0.
        assert [(t.departure, t.arrival) for t in round1] == [
            (Fraction(0), Fraction(1)),
            (Fraction(1), Fraction(4)),
        ]
        # round2 starts at the barrier (t=4) and keeps its own order.
        assert [(t.departure, t.arrival) for t in round2] == [
            (Fraction(4), Fraction(6)),
            (Fraction(6), Fraction(10)),
        ]
        # Within each phase the wire ordinals are increasing (FIFO).
        assert [t.sequence for t in round1] == sorted(t.sequence for t in round1)
        assert [t.sequence for t in round2] == sorted(t.sequence for t in round2)
        assert network.elapsed_time() == network.accountant.total_elapsed()


class TestSchedulerContract:
    """The satellite property: measured clock == analytical oracle at zero latency."""

    @pytest.mark.parametrize("topology_name", HEADLINE_TOPOLOGIES)
    @pytest.mark.parametrize("protocol_name", ["nab", "classical-flooding", "eig"])
    @given(data=st.data())
    @settings(max_examples=5, deadline=None)
    def test_protocol_elapsed_matches_analytical_clock(
        self, protocol_name, topology_name, data
    ):
        assert protocol_name in registered_protocols()
        instances = data.draw(st.integers(min_value=1, max_value=3), label="instances")
        payload_bytes = data.draw(st.integers(min_value=1, max_value=6), label="bytes")
        seed = data.draw(st.integers(min_value=0, max_value=2**16), label="seed")
        inputs = input_stream(random.Random(seed), instances, payload_bytes)
        graph = topology(topology_name)

        captured = []
        original_init = ScheduledNetwork.__init__

        def capturing_init(self, *args, **kwargs):
            original_init(self, *args, **kwargs)
            captured.append(self)

        protocol = get_protocol(protocol_name)
        params = {"max_faults": 1, "coding_seed": seed, "link_model": "instant"}
        try:
            ScheduledNetwork.__init__ = capturing_init
            scheduled_record = protocol.run(graph, 1, inputs, FaultModel(), params)
        finally:
            ScheduledNetwork.__init__ = original_init
        plain_record = protocol.run(
            graph, 1, inputs, FaultModel(), {"max_faults": 1, "coding_seed": seed}
        )

        # Every network the run constructed went through the scheduler, and on
        # each one the measured event clock equals the analytical oracle.
        assert captured, "the link_model param must route through ScheduledNetwork"
        for network in captured:
            assert network.elapsed_time() == network.accountant.total_elapsed()
        # End to end, the scheduled run and the plain run agree exactly.
        assert scheduled_record.elapsed == plain_record.elapsed
        assert scheduled_record.bits_sent == plain_record.bits_sent
        assert scheduled_record.outputs == plain_record.outputs

    def test_latency_model_strictly_slower_than_oracle(self):
        graph = topology("k4-fast")
        protocol = get_protocol("nab")
        instant = protocol.run(
            graph, 1, [b"\x01" * 8], FaultModel(),
            {"max_faults": 1, "link_model": "instant"},
        )
        delayed = protocol.run(
            graph, 1, [b"\x01" * 8], FaultModel(),
            {"max_faults": 1, "link_model": "unit-latency"},
        )
        assert delayed.elapsed > instant.elapsed
        assert delayed.outputs == instant.outputs
        assert delayed.bits_sent == instant.bits_sent

    def test_unknown_link_model_rejected(self):
        graph = topology("k4-fast")
        with pytest.raises(ConfigurationError):
            get_protocol("nab").run(
                graph, 1, [b"\x01"], FaultModel(),
                {"max_faults": 1, "link_model": "no-such-model"},
            )
