"""Snapshot/restore exactness: sessions resume byte-identically mid-flight.

The tentpole property (ISSUE 10 satellite 1): a snapshot → restore round trip
of ``DisputeState`` and a mid-flight session reproduces the uninterrupted
run's outputs, bits and dispute-control count *exactly*, across every
registered adversary strategy on the headline topologies.  Sessions are pure
functions of their spec, so the checkpoint taken after instance ``k`` plus
the spec must determine the rest of the run bit for bit.
"""

from __future__ import annotations

import json

import pytest

from repro.core.dispute_state import DisputeState
from repro.core.instance import instance_result_from_jsonable
from repro.core.nab import NetworkAwareBroadcast
from repro.engine.runner import dump_row
from repro.exceptions import ProtocolError
from repro.service.session import (
    FAULT_FREE,
    SessionSpec,
    clear_topology_contexts,
    run_session,
    session_seed,
    topology_context_stats,
    warm_graph,
)
from repro.service.workload import generate_sessions
from repro.workloads.scenarios import make_strategy, named_strategies
from repro.workloads.topologies import topology

#: The headline topologies of the comparison grids (all feasible at f = 1).
HEADLINE_TOPOLOGIES = ("k4-fast", "bottleneck4", "ring7-chords")


def _spec(topology_name: str, strategy: str, instances: int = 4) -> SessionSpec:
    (spec,) = generate_sessions(
        1,
        topologies=(topology_name,),
        strategies=(strategy,),
        payload_bytes=2,
        instances=instances,
        max_faults=1,
        seed=7,
        service="prop",
    )
    return spec


def _json_round_trip(row):
    """Simulate persistence: through the canonical serialisation and back."""
    return json.loads(dump_row(row))


class TestSnapshotRestoreProperty:
    @pytest.mark.parametrize("topology_name", HEADLINE_TOPOLOGIES)
    @pytest.mark.parametrize("strategy", [FAULT_FREE] + named_strategies())
    def test_every_checkpoint_resumes_byte_identically(
        self, topology_name, strategy
    ):
        spec = _spec(topology_name, strategy)
        checkpoints = []
        reference = run_session(spec, checkpoint=checkpoints.append)
        # Q instances at cadence 1 yield a checkpoint after each non-final one.
        assert len(checkpoints) == spec.instances - 1
        for snapshot in checkpoints:
            resumed = run_session(spec, snapshot=_json_round_trip(snapshot))
            assert dump_row(resumed) == dump_row(reference)

    @pytest.mark.parametrize("strategy", ["equality-garbage", "phase1-relay"])
    def test_outputs_bits_and_dispute_control_survive_the_round_trip(
        self, strategy
    ):
        spec = _spec("bottleneck4", strategy, instances=5)
        checkpoints = []
        reference = run_session(spec, checkpoint=checkpoints.append)
        record = reference["record"]
        for snapshot in checkpoints:
            resumed = run_session(spec, snapshot=_json_round_trip(snapshot))["record"]
            assert resumed["outputs"] == record["outputs"]
            assert resumed["bits_sent"] == record["bits_sent"]
            assert (
                resumed["dispute_control_executions"]
                == record["dispute_control_executions"]
            )

    def test_checkpoint_cadence_thins_snapshots_without_changing_the_row(self):
        spec = _spec("k4-fast", "equality-garbage", instances=6)
        dense, sparse = [], []
        reference = run_session(spec, checkpoint=dense.append, checkpoint_every=1)
        thinned = run_session(spec, checkpoint=sparse.append, checkpoint_every=3)
        assert dump_row(reference) == dump_row(thinned)
        assert len(dense) == 5
        assert len(sparse) == 1

    def test_snapshot_of_wrong_session_is_rejected(self):
        spec = _spec("k4-fast", FAULT_FREE)
        other = _spec("k4-fast", "equality-garbage")
        checkpoints = []
        run_session(other, checkpoint=checkpoints.append)
        with pytest.raises(ProtocolError):
            run_session(spec, snapshot=checkpoints[0])


class TestDisputeStateSerialisation:
    def test_round_trip_preserves_knowledge(self):
        state = DisputeState(2)
        state.add_dispute(1, 3)
        state.add_dispute(4, 2)
        state.mark_faulty(5)
        restored = DisputeState.from_jsonable(
            json.loads(json.dumps(state.to_jsonable()))
        )
        assert restored.snapshot() == state.snapshot()
        assert restored.max_faults == state.max_faults

    def test_rendering_is_canonical(self):
        first = DisputeState(1)
        first.add_dispute(3, 1)
        first.add_dispute(2, 4)
        second = DisputeState(1)
        second.add_dispute(4, 2)
        second.add_dispute(1, 3)
        assert json.dumps(first.to_jsonable(), sort_keys=True) == json.dumps(
            second.to_jsonable(), sort_keys=True
        )

    def test_malformed_dispute_is_rejected(self):
        with pytest.raises(ProtocolError):
            DisputeState.from_jsonable(
                {"max_faults": 1, "disputes": [[1, 1]], "known_faulty": []}
            )


class TestNABStateHooks:
    def test_restore_rejects_mismatched_max_faults(self):
        graph = topology("k4-fast")
        nab = NetworkAwareBroadcast(graph, 1, 1)
        snapshot = nab.snapshot_state()
        snapshot["dispute_state"]["max_faults"] = 2
        with pytest.raises(ProtocolError):
            nab.restore_state(snapshot)

    def test_restore_rejects_negative_instance_index(self):
        graph = topology("k4-fast")
        nab = NetworkAwareBroadcast(graph, 1, 1)
        snapshot = nab.snapshot_state()
        snapshot["instances_run"] = -1
        with pytest.raises(ProtocolError):
            nab.restore_state(snapshot)

    def test_instance_result_round_trip_is_exact(self):
        spec = _spec("bottleneck4", "equality-garbage", instances=2)
        graph = topology(spec.topology)
        nab = NetworkAwareBroadcast(
            graph, spec.source, spec.max_faults,
            fault_model=spec.fault_model(), coding_seed=spec.seed,
        )
        for value in spec.inputs():
            result = nab.run_instance(value)
            rendered = result.to_jsonable()
            restored = instance_result_from_jsonable(
                json.loads(json.dumps(rendered))
            )
            assert restored.to_jsonable() == rendered
            assert restored.outputs == result.outputs
            assert restored.elapsed == result.elapsed
            assert restored.link_bits == result.link_bits
            assert restored.new_disputes == result.new_disputes


class TestWarmTopologyContext:
    def test_repeat_sessions_hit_the_warm_context(self):
        clear_topology_contexts()
        warm_graph("k4-fast", 1, 1)
        warm_graph("k4-fast", 1, 1)
        stats = topology_context_stats()
        assert stats["entries"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_infeasible_parameters_fail_on_the_miss(self):
        clear_topology_contexts()
        with pytest.raises(ProtocolError):
            warm_graph("k4-fast", 1, 2)  # n=4 < 3*2+1

    def test_warm_path_row_equals_cold_path_row(self):
        spec = _spec("ring7-chords", "equality-garbage", instances=2)
        clear_topology_contexts()
        cold = run_session(spec)
        warm = run_session(spec)  # context now warm: validation skipped
        assert dump_row(cold) == dump_row(warm)
        assert topology_context_stats()["hits"] >= 1


class TestSessionSeeds:
    def test_session_seed_is_stable_and_id_sensitive(self):
        assert session_seed(0, "a") == session_seed(0, "a")
        assert session_seed(0, "a") != session_seed(0, "b")
        assert session_seed(0, "a") != session_seed(1, "a")

    def test_spec_round_trip(self):
        spec = _spec("k4-fast", "equality-garbage")
        assert SessionSpec.from_jsonable(
            json.loads(json.dumps(spec.to_jsonable()))
        ) == spec
