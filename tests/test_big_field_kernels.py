"""Property tests: the windowed big-field kernels vs the bit-serial oracles.

PR 4 added windowed carry-less multiplication, linear-time squaring, chunked
modular reduction and an inlined extended-Euclid inverse for fields of degree
> 16.  The pre-existing bit-serial routines (``poly_mul`` / ``poly_divmod`` on
the polynomial layer, ``GF2m._mul_fallback`` / ``GF2m._inv_fallback`` on the
field layer) are retained verbatim as correctness oracles; these tests pit
the fast paths against them on random operands across degrees 17-2048.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf.field import GF2m, get_field
from repro.gf.polynomials import (
    irreducible_polynomial,
    is_irreducible,
    poly_mod,
    poly_mul,
    poly_mul_windowed,
    poly_mulmod,
    poly_reduce,
    poly_square,
    reduction_table,
    window_table,
)

#: Degrees sampled by the hypothesis-driven field tests: beyond the table
#: limit (16) up to the multi-KB payload regime.  Tabulated degrees keep the
#: modulus lookup free; 100 and 820 exercise the runtime search path (820 is
#: the field of the 512-byte / k7-unit profile the PR optimises).
BIG_DEGREES = (17, 24, 33, 64, 100, 256, 820, 1024, 2048)


def _field(degree: int) -> GF2m:
    return get_field(degree)


class TestWindowedPolynomialKernels:
    @given(
        a=st.integers(min_value=0, max_value=(1 << 2048) - 1),
        b=st.integers(min_value=0, max_value=(1 << 2048) - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_windowed_mul_matches_bit_serial(self, a, b):
        assert poly_mul_windowed(a, b) == poly_mul(a, b)

    @given(a=st.integers(min_value=0, max_value=(1 << 2048) - 1))
    @settings(max_examples=60, deadline=None)
    def test_square_matches_bit_serial(self, a):
        assert poly_square(a) == poly_mul(a, a)

    def test_window_table_holds_all_byte_multiples(self):
        rng = random.Random(1)
        a = rng.getrandbits(300)
        table = window_table(a)
        assert len(table) == 256
        for w in (0, 1, 2, 3, 17, 128, 255):
            assert table[w] == poly_mul(a, w)

    @given(data=st.data(), degree=st.sampled_from(BIG_DEGREES))
    @settings(max_examples=60, deadline=None)
    def test_chunked_reduction_matches_euclidean_division(self, data, degree):
        # Values span the full carry-less product range (degree up to 2m - 2).
        value = data.draw(
            st.integers(min_value=0, max_value=(1 << (2 * degree)) - 1)
        )
        modulus = irreducible_polynomial(degree)
        table = reduction_table(modulus)
        assert table is not None, "searched moduli are low-weight by construction"
        assert poly_reduce(value, table) == poly_mod(value, modulus)

    def test_reduction_table_rejects_dense_or_unbalanced_moduli(self):
        # x^8 + (all lower bits set): weight 9 tail of degree 7 > 8 // 2.
        assert reduction_table((1 << 8) | 0xFF) is None
        # A modulus of degree 40 whose tail is sparse but too high-degree.
        assert reduction_table((1 << 40) | (1 << 39) | 1) is None
        assert reduction_table(0) is None

    @given(
        a=st.integers(min_value=0, max_value=(1 << 512) - 1),
        b=st.integers(min_value=0, max_value=(1 << 512) - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_mulmod_fast_path_matches_divide_path(self, a, b):
        modulus = irreducible_polynomial(256)
        assert poly_mulmod(a, b, modulus) == poly_mod(poly_mul(a, b), modulus)

    def test_mulmod_dense_modulus_falls_back(self):
        dense = (1 << 9) | 0b111111111  # weight 10 tail on a degree-9 modulus
        rng = random.Random(3)
        for _ in range(20):
            a, b = rng.getrandbits(9), rng.getrandbits(9)
            assert poly_mulmod(a, b, dense) == poly_mod(poly_mul(a, b), dense)


class TestBigFieldAgainstOracle:
    @given(data=st.data(), degree=st.sampled_from(BIG_DEGREES))
    @settings(max_examples=80, deadline=None)
    def test_mul_matches_fallback(self, data, degree):
        field = _field(degree)
        a = data.draw(st.integers(min_value=0, max_value=field.order - 1))
        b = data.draw(st.integers(min_value=0, max_value=field.order - 1))
        assert field.mul(a, b) == field._mul_fallback(a, b)

    @given(data=st.data(), degree=st.sampled_from(BIG_DEGREES))
    @settings(max_examples=60, deadline=None)
    def test_square_matches_fallback(self, data, degree):
        field = _field(degree)
        a = data.draw(st.integers(min_value=0, max_value=field.order - 1))
        assert field.square(a) == field._mul_fallback(a, a)

    @given(data=st.data(), degree=st.sampled_from(BIG_DEGREES))
    @settings(max_examples=40, deadline=None)
    def test_inv_matches_fallback_and_inverts(self, data, degree):
        field = _field(degree)
        a = data.draw(st.integers(min_value=1, max_value=field.order - 1))
        inverse = field.inv(a)
        assert inverse == field._inv_fallback(a)
        assert field.mul(a, inverse) == 1

    @given(data=st.data(), degree=st.sampled_from(BIG_DEGREES))
    @settings(max_examples=30, deadline=None)
    def test_pow_matches_repeated_fallback_mul(self, data, degree):
        field = _field(degree)
        a = data.draw(st.integers(min_value=1, max_value=field.order - 1))
        exponent = data.draw(st.integers(min_value=0, max_value=12))
        expected = 1
        for _ in range(exponent):
            expected = field._mul_fallback(expected, a)
        assert field.pow(a, exponent) == expected

    def test_dot_uses_big_kernel_and_matches_fallback(self):
        field = _field(820)
        rng = random.Random(9)
        left = field.random_vector(7, rng)
        right = field.random_vector(7, rng)
        expected = 0
        for a, b in zip(left, right):
            expected ^= field._mul_fallback(a, b)
        assert field.dot(left, right) == expected


class TestWindowTableCache:
    def test_repeated_multiplicands_share_one_table(self):
        field = GF2m(256)
        rng = random.Random(5)
        a = field.random_nonzero(rng)
        field._wtab.clear()
        field.mul(a, field.random_nonzero(rng))
        assert len(field._wtab) == 1
        field.mul(a, field.random_nonzero(rng))
        assert len(field._wtab) == 1  # cache hit, no second table

    def test_table_reused_for_either_operand_position(self):
        field = GF2m(256)
        rng = random.Random(6)
        a = field.random_nonzero(rng)
        b = field.random_nonzero(rng)
        field._wtab.clear()
        field.mul(a, b)
        assert list(field._wtab) == [a]
        # a arrives as the *right* operand now: still only a's table in use.
        field.mul(b, a)
        assert list(field._wtab) == [a]

    def test_cache_bounded_by_byte_budget(self):
        import sys

        from repro.gf.field import _WINDOW_CACHE_BYTES

        field = GF2m(2048)
        rng = random.Random(7)
        field._wtab.clear()
        field._wtab_bytes = 0
        # Charge by actual table size: enough distinct multiplicands to
        # overflow the budget and force at least one wholesale eviction.
        probe = window_table(field.random_nonzero(rng))
        per_table = sys.getsizeof(probe) + sum(map(sys.getsizeof, probe))
        for _ in range(_WINDOW_CACHE_BYTES // per_table + 5):
            field.mul(field.random_nonzero(rng), field.random_nonzero(rng))
        assert field._wtab_bytes <= _WINDOW_CACHE_BYTES
        stats = field.kernel_cache_stats()["window"]
        assert stats["evictions"] >= 1
        assert stats["bytes"] == field._wtab_bytes

    def test_accounting_charges_actual_bytes_not_estimates(self):
        import sys

        field = GF2m(2048)
        field._wtab.clear()
        field._wtab_bytes = 0
        # A sparse multiplicand's table holds short ints; the charge must
        # reflect that, not a degree-scaled estimate.
        field.mul(1 << 3, field.random_nonzero(random.Random(8)))
        sparse_cost = field._wtab_bytes
        table = field._wtab[1 << 3]
        assert sparse_cost == sys.getsizeof(table) + sum(map(sys.getsizeof, table))
        dense = field.random_nonzero(random.Random(9))
        field.mul(dense, field.random_nonzero(random.Random(10)))
        assert field._wtab_bytes - sparse_cost > 4 * sparse_cost


class TestIrreducibilitySpeedups:
    def test_fast_rabin_agrees_with_known_values(self):
        # x^8 + x^4 + x^3 + x + 1 (AES) is irreducible; x^8 + 1 is not.
        assert is_irreducible(0b100011011)
        assert not is_irreducible(0b100000001)

    @given(degree=st.integers(min_value=17, max_value=80), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_searched_polynomials_are_irreducible_and_low_weight(self, degree, data):
        poly = irreducible_polynomial(degree)
        assert is_irreducible(poly)
        assert reduction_table(poly) is not None

    def test_swan_skip_still_finds_pentanomials(self):
        # Degree divisible by 8 (no trinomial exists): the search must come
        # back with an irreducible pentanomial.
        poly = irreducible_polynomial(40)
        assert is_irreducible(poly)
        assert poly.bit_count() == 5
