"""Protocol-interface and registry tests.

The satellite requirement: every registered protocol runs a 4-node ``f = 1``
cell under each named adversary strategy and either satisfies the Byzantine
broadcast specification or correctly reports violating it — the record's
flags must agree with what the raw outputs actually show.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.engine import (
    Cell,
    FAULT_FREE,
    Protocol,
    cell_seed,
    get_protocol,
    register_protocol,
    registered_protocols,
)
from repro.exceptions import ConfigurationError
from repro.transport.faults import FaultModel
from repro.types import RunRecord, broadcast_spec_flags, canonical_output
from repro.workloads import named_strategies


def _cell(protocol: str, strategy: str) -> Cell:
    cell_id = f"{protocol}|k4-fast|{strategy}|f=1|L=4|Q=2"
    if strategy == FAULT_FREE:
        faulty = ()
    elif strategy == "equivocating-source":
        faulty = (1,)
    else:
        faulty = (4,)
    return Cell(
        spec_name="unit",
        cell_id=cell_id,
        topology="k4-fast",
        strategy=strategy,
        payload_bytes=4,
        instances=2,
        max_faults=1,
        protocol=protocol,
        source=1,
        seed=cell_seed(0, cell_id),
        faulty_nodes=faulty,
    )


def _run_cell_record(cell: Cell) -> RunRecord:
    scenario = cell.scenario()
    protocol = get_protocol(cell.protocol)
    return protocol.run(
        scenario.graph,
        scenario.source,
        list(scenario.inputs),
        scenario.fault_model,
        {"max_faults": cell.max_faults, "coding_seed": cell.seed},
    )


class TestRegistry:
    def test_builtin_protocols_registered(self):
        names = registered_protocols()
        assert "nab" in names
        assert "classical-flooding" in names
        assert "eig" in names

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            get_protocol("does-not-exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_protocol(get_protocol("nab"))
        # Explicit replacement is allowed and idempotent.
        register_protocol(get_protocol("nab"), replace=True)

    def test_abstract_name_rejected(self):
        class Nameless(Protocol):
            def run(self, graph, source, inputs, fault_model, params):
                raise NotImplementedError

        with pytest.raises(ConfigurationError):
            register_protocol(Nameless())


class TestEveryProtocolUnderEveryAdversary:
    @pytest.mark.parametrize("protocol_name", ["nab", "classical-flooding", "eig"])
    @pytest.mark.parametrize("strategy", [FAULT_FREE] + named_strategies())
    def test_flags_match_actual_outputs(self, protocol_name, strategy):
        cell = _cell(protocol_name, strategy)
        scenario = cell.scenario()
        record = _run_cell_record(cell)

        assert record.protocol == protocol_name
        assert record.instances == 2
        assert record.payload_bits == 2 * 4 * 8
        assert record.elapsed > 0
        assert record.bits_sent > 0
        assert record.link_bits and sum(record.link_bits.values()) == record.bits_sent

        # The spec flags must be exactly what the raw outputs imply.
        source_faulty = scenario.fault_model.is_faulty(scenario.source)
        agreement, validity = broadcast_spec_flags(
            record.outputs, list(scenario.inputs), source_faulty
        )
        assert record.agreement_ok == agreement
        assert record.validity_ok == validity
        if source_faulty:
            assert record.validity_ok is None

        # All three registered protocols guarantee agreement for n >= 3f + 1,
        # and validity whenever the source is fault-free.
        assert record.spec_ok
        assert record.agreement_ok
        if not source_faulty:
            assert record.validity_ok is True
            for value, outputs in zip(scenario.inputs, record.outputs):
                assert {canonical_output(out) for out in outputs.values()} == {
                    canonical_output(value)
                }

    def test_only_nab_runs_dispute_control(self):
        nab_record = _run_cell_record(_cell("nab", "equality-garbage"))
        classical_record = _run_cell_record(_cell("classical-flooding", "equality-garbage"))
        assert nab_record.dispute_control_executions >= 1
        assert classical_record.dispute_control_executions == 0


class TestCanonicalOutputs:
    def test_byte_outputs_differing_in_leading_zeros_are_distinct(self):
        assert canonical_output(b"\x00\x01") != canonical_output(b"\x01")
        assert canonical_output(b"") != canonical_output(b"\x00")
        agreement, validity = broadcast_spec_flags(
            [{2: b"\x00\x01", 3: b"\x01"}], [b"\x00\x01"], source_faulty=False
        )
        assert agreement is False
        assert validity is False

    def test_missing_instance_outputs_fail_agreement(self):
        agreement, validity = broadcast_spec_flags(
            [{2: b"\x01", 3: b"\x01"}], [b"\x01", b"\x02"], source_faulty=False
        )
        assert agreement is False
        assert validity is False
        # With a faulty source validity stays unconstrained but agreement
        # still fails for the missing instance.
        agreement, validity = broadcast_spec_flags([], [b"\x01"], source_faulty=True)
        assert agreement is False
        assert validity is None

    def test_short_output_is_not_valid_for_padded_input(self):
        agreement, validity = broadcast_spec_flags(
            [{2: b"\x07", 3: b"\x07"}], [b"\x00\x07"], source_faulty=False
        )
        assert agreement is True
        assert validity is False

    def test_nab_integer_outputs_preserve_payload_length(self):
        cell = _cell("nab", FAULT_FREE)
        record = _run_cell_record(cell)
        scenario = cell.scenario()
        for value, outputs in zip(scenario.inputs, record.outputs):
            for output in outputs.values():
                assert isinstance(output, bytes)
                assert len(output) == len(value)


class TestRunRecordShape:
    def test_throughput_and_jsonable(self):
        record = _run_cell_record(_cell("nab", FAULT_FREE))
        assert record.throughput == Fraction(record.payload_bits) / record.elapsed
        payload = record.to_jsonable()
        assert payload["protocol"] == "nab"
        assert Fraction(payload["elapsed"]) == record.elapsed
        assert Fraction(payload["throughput"]) == record.throughput
        assert all(isinstance(key, str) for key in payload["link_bits"])
        assert sum(payload["link_bits"].values()) == record.bits_sent

    def test_identical_cells_produce_identical_records(self):
        first = _run_cell_record(_cell("nab", "chaos"))
        second = _run_cell_record(_cell("nab", "chaos"))
        assert first.to_jsonable() == second.to_jsonable()
