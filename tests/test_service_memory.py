"""Flat-memory regression: a long session batch keeps caches within budget.

ISSUE 10 satellite 3: running >= 1k sessions across mixed topologies must not
grow memory without bound — the budgeted kernel window/stacked caches stay
within their ``budget_bytes``, the warm topology-context cache holds exactly
one frozen graph per distinct ``(topology, source, f)``, and process RSS
growth over the batch stays bounded.

The batch deliberately includes 32- and 64-byte payload sessions so the
GF(2^32)/GF(2^64) big-field kernel caches (the only byte-budgeted caches) are
actually exercised; 2-byte payloads never instantiate them.
"""

from __future__ import annotations

import pytest

from repro.service.metrics import ServiceMetrics, process_cache_sample, rss_bytes
from repro.service.pool import PoolTask, run_pool
from repro.service.session import clear_topology_contexts
from repro.service.workload import generate_sessions

#: Generous ceiling on RSS growth across the whole batch.  The budgeted
#: caches sum to a few MiB; anything near this bound means a leak.
RSS_GROWTH_LIMIT_BYTES = 150 * 1024 * 1024

MIXED_TOPOLOGIES = ("k4-fast", "bottleneck4", "ring7-chords", "k7-unit")


def _mixed_batch():
    """1040 sessions: 960 small-payload plus 80 big-field sessions."""
    small = generate_sessions(
        960,
        topologies=MIXED_TOPOLOGIES,
        strategies=("fault-free", "equality-garbage"),
        payload_bytes=2,
        instances=1,
        max_faults=1,
        seed=3,
        service="mem-small",
    )
    gf32 = generate_sessions(
        40,
        topologies=MIXED_TOPOLOGIES,
        strategies=("fault-free",),
        payload_bytes=32,
        instances=1,
        max_faults=1,
        seed=3,
        service="mem-gf32",
    )
    gf64 = generate_sessions(
        40,
        topologies=MIXED_TOPOLOGIES,
        strategies=("fault-free",),
        payload_bytes=64,
        instances=1,
        max_faults=1,
        seed=3,
        service="mem-gf64",
    )
    return small + gf32 + gf64


def _walk_budgets(stats, path=""):
    """Yield every (path, bytes, budget_bytes) pair anywhere in the sample."""
    if isinstance(stats, dict):
        if "bytes" in stats and "budget_bytes" in stats:
            yield path, stats["bytes"], stats["budget_bytes"]
        for key, value in stats.items():
            yield from _walk_budgets(value, f"{path}/{key}")


class TestFlatMemory:
    @pytest.fixture(scope="class")
    def batch_result(self):
        clear_topology_contexts()
        sessions = _mixed_batch()
        assert len(sessions) >= 1000
        rss_before = rss_bytes()
        metrics = ServiceMetrics()
        rows = []
        retried, quarantined = run_pool(
            [PoolTask(spec=spec) for spec in sessions],
            workers=1,
            emit=lambda row, task: rows.append(row),
            wal_append=lambda row: None,
            metrics=metrics,
        )
        return {
            "sessions": sessions,
            "rows": rows,
            "retried": retried,
            "quarantined": quarantined,
            "metrics": metrics,
            "rss_before": rss_before,
            "rss_after": rss_bytes(),
            "sample": process_cache_sample(),
        }

    def test_every_session_completes_cleanly(self, batch_result):
        assert len(batch_result["rows"]) == len(batch_result["sessions"])
        assert batch_result["retried"] == 0
        assert batch_result["quarantined"] == []
        assert all(row["error"] is None for row in batch_result["rows"])

    def test_big_field_kernel_caches_were_exercised(self, batch_result):
        kernels = batch_result["sample"]["kernels"]
        assert "GF(2^32)" in kernels
        assert "GF(2^64)" in kernels
        # Other tests may have created further canonical fields in this
        # process; only the two the batch itself drives must show traffic.
        for name in ("GF(2^32)", "GF(2^64)"):
            layers = [v for v in kernels[name].values() if isinstance(v, dict)]
            # The caches saw real traffic; eviction (not unbounded growth)
            # is how they absorb it.
            assert any(layer.get("misses", 0) > 0 for layer in layers)

    def test_budgeted_caches_stay_within_budget(self, batch_result):
        budgets = list(_walk_budgets(batch_result["sample"]))
        # The GF(2^32) and GF(2^64) window/stacked caches at minimum.
        assert len(budgets) >= 4
        for path, used, budget in budgets:
            assert used <= budget, f"{path}: {used} bytes exceeds budget {budget}"

    def test_topology_contexts_hold_one_entry_per_distinct_key(self, batch_result):
        contexts = batch_result["sample"]["topology_contexts"]
        assert contexts["entries"] == len(MIXED_TOPOLOGIES)
        assert contexts["misses"] == len(MIXED_TOPOLOGIES)
        assert contexts["hits"] == len(batch_result["sessions"]) - len(
            MIXED_TOPOLOGIES
        )

    def test_mincut_cache_entries_are_flat_in_session_count(self, batch_result):
        entries_after_batch = batch_result["sample"]["mincut"]["entries"]
        # Another wave over the same topologies must not add a single entry:
        # the cache is keyed by graph structure, not by session.
        extra = generate_sessions(
            100,
            topologies=MIXED_TOPOLOGIES,
            strategies=("fault-free", "equality-garbage"),
            payload_bytes=2,
            instances=1,
            max_faults=1,
            seed=9,
            service="mem-extra",
        )
        metrics = ServiceMetrics()
        run_pool(
            [PoolTask(spec=spec) for spec in extra],
            workers=1,
            emit=lambda row, task: None,
            wal_append=lambda row: None,
            metrics=metrics,
        )
        assert process_cache_sample()["mincut"]["entries"] == entries_after_batch

    def test_rss_growth_stays_bounded(self, batch_result):
        before, after = batch_result["rss_before"], batch_result["rss_after"]
        if before is None or after is None:
            pytest.skip("/proc/self/status not readable on this platform")
        assert after - before < RSS_GROWTH_LIMIT_BYTES

    def test_metrics_account_for_the_whole_batch(self, batch_result):
        metrics = batch_result["metrics"]
        assert metrics.sessions_completed == len(batch_result["sessions"])
        assert metrics.instances_executed == len(batch_result["sessions"])
        assert metrics.sessions_per_minute() > 0
        rendered = metrics.to_jsonable()
        assert rendered["sessions"]["completed"] == len(batch_result["sessions"])
        assert rendered["caches"]
