"""Unit and property tests for dense matrices over GF(2^m)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MatrixError
from repro.gf.field import GF2m
from repro.gf.matrix import GFMatrix


@pytest.fixture(scope="module")
def gf8():
    return GF2m(8)


class TestConstruction:
    def test_rejects_empty(self, gf8):
        with pytest.raises(MatrixError):
            GFMatrix(gf8, [])

    def test_rejects_ragged_rows(self, gf8):
        with pytest.raises(MatrixError):
            GFMatrix(gf8, [[1, 2], [3]])

    def test_rejects_out_of_field_entries(self, gf8):
        with pytest.raises(Exception):
            GFMatrix(gf8, [[300]])

    def test_zeros_shape(self, gf8):
        matrix = GFMatrix.zeros(gf8, 3, 4)
        assert matrix.shape == (3, 4)
        assert matrix.is_zero()

    def test_zeros_invalid_shape(self, gf8):
        with pytest.raises(MatrixError):
            GFMatrix.zeros(gf8, 0, 4)

    def test_identity(self, gf8):
        identity = GFMatrix.identity(gf8, 3)
        assert identity.entry(0, 0) == 1
        assert identity.entry(0, 1) == 0
        assert identity.rank() == 3

    def test_identity_invalid_size(self, gf8):
        with pytest.raises(MatrixError):
            GFMatrix.identity(gf8, 0)

    def test_row_and_column_vectors(self, gf8):
        row = GFMatrix.row_vector(gf8, [1, 2, 3])
        col = GFMatrix.column_vector(gf8, [1, 2, 3])
        assert row.shape == (1, 3)
        assert col.shape == (3, 1)

    def test_random_shape_and_membership(self, gf8):
        rng = random.Random(0)
        matrix = GFMatrix.random(gf8, 4, 5, rng)
        assert matrix.shape == (4, 5)
        assert all(0 <= matrix.entry(r, c) < gf8.order for r in range(4) for c in range(5))

    def test_random_invalid_shape(self, gf8):
        with pytest.raises(MatrixError):
            GFMatrix.random(gf8, 0, 5, random.Random(0))

    def test_to_lists_returns_copy(self, gf8):
        matrix = GFMatrix(gf8, [[1, 2], [3, 4]])
        data = matrix.to_lists()
        data[0][0] = 99
        assert matrix.entry(0, 0) == 1


class TestOperations:
    def test_add_is_entrywise_xor(self, gf8):
        a = GFMatrix(gf8, [[1, 2], [3, 4]])
        b = GFMatrix(gf8, [[5, 6], [7, 8]])
        assert a.add(b).to_lists() == [[4, 4], [4, 12]]

    def test_add_shape_mismatch(self, gf8):
        a = GFMatrix(gf8, [[1, 2]])
        b = GFMatrix(gf8, [[1], [2]])
        with pytest.raises(MatrixError):
            a.add(b)

    def test_add_field_mismatch(self, gf8):
        a = GFMatrix(gf8, [[1]])
        b = GFMatrix(GF2m(4), [[1]])
        with pytest.raises(MatrixError):
            a.add(b)

    def test_scalar_mul(self, gf8):
        a = GFMatrix(gf8, [[1, 2]])
        scaled = a.scalar_mul(3)
        assert scaled.to_lists() == [[gf8.mul(3, 1), gf8.mul(3, 2)]]

    def test_matmul_identity(self, gf8):
        rng = random.Random(1)
        a = GFMatrix.random(gf8, 3, 3, rng)
        identity = GFMatrix.identity(gf8, 3)
        assert a.matmul(identity) == a
        assert identity.matmul(a) == a

    def test_matmul_shape(self, gf8):
        a = GFMatrix.zeros(gf8, 2, 3)
        b = GFMatrix.zeros(gf8, 3, 5)
        assert a.matmul(b).shape == (2, 5)

    def test_matmul_dimension_mismatch(self, gf8):
        a = GFMatrix.zeros(gf8, 2, 3)
        b = GFMatrix.zeros(gf8, 2, 3)
        with pytest.raises(MatrixError):
            a.matmul(b)

    def test_matmul_operator(self, gf8):
        a = GFMatrix.identity(gf8, 2)
        b = GFMatrix(gf8, [[7, 8], [9, 10]])
        assert (a @ b) == b

    def test_transpose_involution(self, gf8):
        rng = random.Random(2)
        a = GFMatrix.random(gf8, 3, 5, rng)
        assert a.transpose().transpose() == a

    def test_transpose_shape(self, gf8):
        a = GFMatrix.zeros(gf8, 3, 5)
        assert a.transpose().shape == (5, 3)

    def test_hstack_and_vstack(self, gf8):
        a = GFMatrix(gf8, [[1, 2], [3, 4]])
        b = GFMatrix(gf8, [[5], [6]])
        stacked = a.hstack(b)
        assert stacked.shape == (2, 3)
        assert stacked.column(2) == [5, 6]
        c = GFMatrix(gf8, [[7, 8]])
        tall = a.vstack(c)
        assert tall.shape == (3, 2)
        assert tall.row(2) == [7, 8]

    def test_hstack_mismatch(self, gf8):
        a = GFMatrix.zeros(gf8, 2, 2)
        b = GFMatrix.zeros(gf8, 3, 2)
        with pytest.raises(MatrixError):
            a.hstack(b)

    def test_vstack_mismatch(self, gf8):
        a = GFMatrix.zeros(gf8, 2, 2)
        b = GFMatrix.zeros(gf8, 2, 3)
        with pytest.raises(MatrixError):
            a.vstack(b)

    def test_submatrix(self, gf8):
        a = GFMatrix(gf8, [[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        sub = a.submatrix([0, 2], [1, 2])
        assert sub.to_lists() == [[2, 3], [8, 9]]

    def test_submatrix_empty_selection_raises(self, gf8):
        a = GFMatrix.identity(gf8, 2)
        with pytest.raises(MatrixError):
            a.submatrix([], [0])


class TestElimination:
    def test_rank_of_identity(self, gf8):
        assert GFMatrix.identity(gf8, 4).rank() == 4

    def test_rank_of_zero(self, gf8):
        assert GFMatrix.zeros(gf8, 3, 3).rank() == 0

    def test_rank_of_duplicated_rows(self, gf8):
        a = GFMatrix(gf8, [[1, 2, 3], [1, 2, 3], [4, 5, 6]])
        assert a.rank() == 2

    def test_rank_wide_matrix(self, gf8):
        a = GFMatrix(gf8, [[1, 0, 0, 5], [0, 1, 0, 7]])
        assert a.rank() == 2

    def test_determinant_identity(self, gf8):
        assert GFMatrix.identity(gf8, 5).determinant() == 1

    def test_determinant_singular_is_zero(self, gf8):
        a = GFMatrix(gf8, [[1, 2], [1, 2]])
        assert a.determinant() == 0

    def test_determinant_requires_square(self, gf8):
        with pytest.raises(MatrixError):
            GFMatrix.zeros(gf8, 2, 3).determinant()

    def test_determinant_diagonal_is_product(self, gf8):
        a = GFMatrix(gf8, [[3, 0, 0], [0, 5, 0], [0, 0, 7]])
        assert a.determinant() == gf8.mul(gf8.mul(3, 5), 7)

    def test_inverse_roundtrip(self, gf8):
        rng = random.Random(5)
        while True:
            a = GFMatrix.random(gf8, 4, 4, rng)
            if a.is_invertible():
                break
        assert a.matmul(a.inverse()) == GFMatrix.identity(gf8, 4)
        assert a.inverse().matmul(a) == GFMatrix.identity(gf8, 4)

    def test_inverse_of_singular_raises(self, gf8):
        a = GFMatrix(gf8, [[1, 2], [1, 2]])
        with pytest.raises(MatrixError):
            a.inverse()

    def test_inverse_requires_square(self, gf8):
        with pytest.raises(MatrixError):
            GFMatrix.zeros(gf8, 2, 3).inverse()

    def test_solve(self, gf8):
        rng = random.Random(6)
        while True:
            a = GFMatrix.random(gf8, 3, 3, rng)
            if a.is_invertible():
                break
        x = GFMatrix.random(gf8, 3, 2, rng)
        rhs = a.matmul(x)
        assert a.solve(rhs) == x

    def test_solve_shape_mismatch(self, gf8):
        a = GFMatrix.identity(gf8, 3)
        rhs = GFMatrix.zeros(gf8, 2, 1)
        with pytest.raises(MatrixError):
            a.solve(rhs)

    def test_null_space_dimension(self, gf8):
        a = GFMatrix(gf8, [[1, 2, 3], [2, 4, 6]])
        assert a.null_space_dimension() == 3 - a.rank()

    def test_is_invertible_false_for_rectangular(self, gf8):
        assert not GFMatrix.zeros(gf8, 2, 3).is_invertible()

    def test_equality_and_hash(self, gf8):
        a = GFMatrix(gf8, [[1, 2]])
        b = GFMatrix(gf8, [[1, 2]])
        assert a == b
        assert hash(a) == hash(b)

    def test_repr(self, gf8):
        assert "shape=(1, 2)" in repr(GFMatrix(gf8, [[1, 2]]))


@st.composite
def square_matrices(draw):
    degree = draw(st.sampled_from([4, 8, 16]))
    field = GF2m(degree)
    size = draw(st.integers(min_value=1, max_value=5))
    data = [
        [draw(st.integers(min_value=0, max_value=field.order - 1)) for _ in range(size)]
        for _ in range(size)
    ]
    return field, GFMatrix(field, data)


class TestMatrixProperties:
    @given(square_matrices())
    @settings(max_examples=60, deadline=None)
    def test_rank_bounded_by_size(self, data):
        _, matrix = data
        assert 0 <= matrix.rank() <= matrix.rows

    @given(square_matrices())
    @settings(max_examples=60, deadline=None)
    def test_determinant_nonzero_iff_full_rank(self, data):
        _, matrix = data
        assert (matrix.determinant() != 0) == (matrix.rank() == matrix.rows)

    @given(square_matrices())
    @settings(max_examples=40, deadline=None)
    def test_inverse_property(self, data):
        field, matrix = data
        if matrix.is_invertible():
            identity = GFMatrix.identity(field, matrix.rows)
            assert matrix.matmul(matrix.inverse()) == identity

    @given(square_matrices(), square_matrices())
    @settings(max_examples=40, deadline=None)
    def test_rank_of_product_at_most_min(self, data_a, data_b):
        field_a, a = data_a
        field_b, b = data_b
        if field_a != field_b or a.cols != b.rows:
            return
        assert a.matmul(b).rank() <= min(a.rank(), b.rank())

    @given(square_matrices())
    @settings(max_examples=40, deadline=None)
    def test_transpose_preserves_rank(self, data):
        _, matrix = data
        assert matrix.rank() == matrix.transpose().rank()
