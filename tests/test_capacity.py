"""Tests for gamma*, rho*, the capacity bounds (Theorems 2 & 3) and pipelining."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capacity.bounds import (
    analyse_network,
    capacity_upper_bound,
    nab_throughput_lower_bound,
    theorem3_guarantee,
)
from repro.capacity.gamma_star import construct_gamma_family, gamma_of_full_graph, gamma_star
from repro.capacity.pipelining import (
    pipelined_schedule,
    pipelining_speedup,
    unpipelined_schedule,
)
from repro.capacity.rho_star import rho_star, u1_value
from repro.exceptions import ProtocolError
from repro.graph.generators import complete_graph, heterogeneous_bottleneck, random_connected_network


class TestGammaStar:
    def test_gamma_of_full_graph(self):
        assert gamma_of_full_graph(complete_graph(4, capacity=2), 1) == 6

    def test_gamma_star_at_most_gamma1(self):
        graph = complete_graph(4, capacity=2)
        assert gamma_star(graph, 1, 1) <= gamma_of_full_graph(graph, 1)

    def test_gamma_star_complete_graph(self):
        # Removing one faulty node's links from K4 (capacity 2) leaves each
        # remaining node with in-capacity 4 from {source, one other}.
        assert gamma_star(complete_graph(4, capacity=2), 1, 1) == 4

    def test_gamma_star_with_no_faults_is_gamma1(self):
        graph = complete_graph(4, capacity=3)
        assert gamma_star(graph, 1, 0) == gamma_of_full_graph(graph, 1)

    def test_family_excludes_source_removal(self):
        graph = complete_graph(4)
        family = construct_gamma_family(graph, 1, 1)
        for faulty_set, candidate in family.items():
            assert candidate.has_node(1)

    def test_family_contains_empty_fault_set(self):
        graph = complete_graph(4)
        family = construct_gamma_family(graph, 1, 1)
        assert frozenset() in family
        assert family[frozenset()] == graph

    def test_invalid_arguments(self):
        graph = complete_graph(4)
        with pytest.raises(ProtocolError):
            construct_gamma_family(graph, 99, 1)
        with pytest.raises(ProtocolError):
            construct_gamma_family(graph, 1, -1)


class TestRhoStar:
    def test_u1_complete_graph(self):
        # K4, capacity 2: any 3-subset is a K3 with undirected capacity 4 per edge.
        assert u1_value(complete_graph(4, capacity=2), 1) == 8

    def test_rho_star_is_half_u1(self):
        graph = complete_graph(4, capacity=2)
        assert rho_star(graph, 1) == 4

    def test_rho_star_heterogeneous(self):
        graph = heterogeneous_bottleneck(4, fast_capacity=8, slow_capacity=1)
        # Subsets containing the slow node are limited by its capacity-2 undirected links.
        assert u1_value(graph, 1) == 4
        assert rho_star(graph, 1) == 2

    def test_invalid_arguments(self):
        with pytest.raises(ProtocolError):
            u1_value(complete_graph(4), -1)
        with pytest.raises(ProtocolError):
            u1_value(complete_graph(4), 3)


class TestBounds:
    def test_lower_bound_formula(self):
        assert nab_throughput_lower_bound(4, 4) == Fraction(2)
        assert nab_throughput_lower_bound(6, 3) == Fraction(2)

    def test_upper_bound_formula(self):
        assert capacity_upper_bound(4, 4) == 4
        assert capacity_upper_bound(10, 3) == 6

    def test_guarantee_cases(self):
        assert theorem3_guarantee(3, 4) == Fraction(1, 2)
        assert theorem3_guarantee(4, 4) == Fraction(1, 2)
        assert theorem3_guarantee(5, 4) == Fraction(1, 3)

    def test_invalid_arguments(self):
        with pytest.raises(ProtocolError):
            nab_throughput_lower_bound(0, 3)
        with pytest.raises(ProtocolError):
            capacity_upper_bound(3, 0)
        with pytest.raises(ProtocolError):
            theorem3_guarantee(0, 0)

    def test_analyse_network_satisfies_theorem3(self):
        analysis = analyse_network(complete_graph(4, capacity=2), 1, 1)
        assert analysis.satisfies_theorem3()
        assert analysis.nab_lower_bound <= analysis.capacity_upper_bound
        assert analysis.achieved_fraction >= Fraction(1, 3)

    def test_theorem3_holds_on_random_networks(self):
        rng = random.Random(23)
        for seed in range(6):
            graph = random_connected_network(6, 3, random.Random(seed), max_capacity=4)
            analysis = analyse_network(graph, 1, 1)
            assert analysis.satisfies_theorem3()
            assert analysis.achieved_fraction >= analysis.guaranteed_fraction
        del rng

    def test_theorem3_half_case_when_gamma_le_rho(self):
        for seed in range(8):
            graph = random_connected_network(6, 3, random.Random(100 + seed), max_capacity=4)
            analysis = analyse_network(graph, 1, 1)
            if analysis.gamma_star <= analysis.rho_star:
                assert analysis.achieved_fraction >= Fraction(1, 2)


class TestPipelining:
    def test_unpipelined_grows_with_hops(self):
        shallow = unpipelined_schedule(1024, 4, 4, hops=1, instances=10)
        deep = unpipelined_schedule(1024, 4, 4, hops=5, instances=10)
        assert deep.total_time > shallow.total_time

    def test_pipelined_latency_additive_in_hops(self):
        base = pipelined_schedule(1024, 4, 4, hops=1, instances=10)
        deep = pipelined_schedule(1024, 4, 4, hops=5, instances=10)
        assert deep.total_time - base.total_time == base.round_length * 4

    def test_pipelined_throughput_approaches_eq6(self):
        """For many instances the pipelined throughput approaches gamma*rho*/(gamma*+rho*)."""
        gamma_value, rho_value, bits = 4, 4, 4096
        target = nab_throughput_lower_bound(gamma_value, rho_value)
        schedule = pipelined_schedule(bits, gamma_value, rho_value, hops=6, instances=500)
        assert schedule.throughput > target * Fraction(98, 100)
        assert schedule.throughput <= target

    def test_speedup_at_least_one_and_grows_with_depth(self):
        flat = pipelining_speedup(1024, 4, 4, hops=1, instances=50)
        deep = pipelining_speedup(1024, 4, 4, hops=6, instances=50)
        assert flat >= 1
        assert deep > flat

    def test_overhead_is_included(self):
        with_overhead = pipelined_schedule(64, 2, 2, hops=2, instances=3, flag_overhead=10)
        without = pipelined_schedule(64, 2, 2, hops=2, instances=3)
        assert with_overhead.total_time > without.total_time

    def test_invalid_arguments(self):
        with pytest.raises(ProtocolError):
            unpipelined_schedule(0, 2, 2, 1, 1)
        with pytest.raises(ProtocolError):
            pipelined_schedule(8, 0, 2, 1, 1)
        with pytest.raises(ProtocolError):
            pipelined_schedule(8, 2, 2, 0, 1)
        with pytest.raises(ProtocolError):
            pipelined_schedule(8, 2, 2, 1, 0)


class TestBoundProperties:
    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=1, max_value=40))
    @settings(max_examples=100, deadline=None)
    def test_theorem3_algebraic_identity(self, gamma_value, rho_value):
        """gamma*rho*/(gamma*+rho*) >= min(gamma*, 2rho*)/3 always (and /2 when gamma <= rho)."""
        lower = nab_throughput_lower_bound(gamma_value, rho_value)
        upper = capacity_upper_bound(gamma_value, rho_value)
        assert lower >= upper / 3
        if gamma_value <= rho_value:
            assert lower >= upper / 2

    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=1, max_value=40))
    @settings(max_examples=60, deadline=None)
    def test_lower_bound_never_exceeds_upper_bound(self, gamma_value, rho_value):
        assert nab_throughput_lower_bound(gamma_value, rho_value) <= capacity_upper_bound(
            gamma_value, rho_value
        )

    @given(
        st.integers(min_value=8, max_value=2048),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_pipelining_never_hurts_for_enough_instances(
        self, bits, gamma_value, rho_value, hops, instances
    ):
        # Pipelining pays a fill-in latency of (hops - 1) rounds, so it only
        # wins once Q >= 1 + gamma/rho (algebra on the two schedule formulas);
        # for smaller Q we only check the asymptotic throughput ordering.
        naive = unpipelined_schedule(bits, gamma_value, rho_value, hops, instances)
        piped = pipelined_schedule(bits, gamma_value, rho_value, hops, instances)
        if instances * rho_value >= rho_value + gamma_value:
            assert piped.total_time <= naive.total_time
        large_naive = unpipelined_schedule(bits, gamma_value, rho_value, hops, 1000)
        large_piped = pipelined_schedule(bits, gamma_value, rho_value, hops, 1000)
        assert large_piped.throughput >= large_naive.throughput
