"""Tests for the PR 4 process-wide structure caches.

Two caches ride on the canonical graph-signature contract of
``repro.graph.flow_cache``:

* arborescence packings (``repro.graph.spanning_trees``) keyed on
  ``(graph_signature, root, count)``;
* vertex-disjoint relay paths (``repro.classical.relay``) keyed on
  ``(graph_signature, sender, receiver, path_count)``.

The tests pin down: re-lookups return graph-signature-correct (identical)
results without recomputing, structurally different graphs never share
entries, returned objects are fresh (mutating them cannot poison the cache),
and the ``clear_*`` hooks invalidate — including through the engine runner's
per-topology hygiene.
"""

from __future__ import annotations

import pytest

from repro.classical.relay import (
    DisjointPathRelay,
    clear_relay_path_cache,
    relay_path_cache_stats,
)
from repro.engine import runner as engine_runner
from repro.graph.generators import complete_graph, figure2a
from repro.graph.spanning_trees import (
    clear_pack_cache,
    pack_arborescences,
    pack_cache_stats,
    validate_packing,
)
from repro.transport.faults import FaultModel
from repro.transport.network import SynchronousNetwork
from repro.workloads.topologies import topology


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_pack_cache()
    clear_relay_path_cache()
    yield
    clear_pack_cache()
    clear_relay_path_cache()


def _packing_shape(trees):
    return [sorted(tree.parents.items()) for tree in trees]


class TestPackCache:
    def test_relookup_returns_identical_packing(self):
        graph = figure2a()
        first = pack_arborescences(graph, 1)
        stats = pack_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 0
        second = pack_arborescences(graph, 1)
        stats = pack_cache_stats()
        assert stats["hits"] == 1
        assert _packing_shape(first) == _packing_shape(second)
        validate_packing(graph, 1, second)

    def test_structurally_equal_graph_hits_without_identity(self):
        first = pack_arborescences(figure2a(), 1)
        second = pack_arborescences(figure2a(), 1)  # a *fresh* graph object
        assert pack_cache_stats()["hits"] == 1
        assert _packing_shape(first) == _packing_shape(second)

    def test_different_roots_and_graphs_do_not_share_entries(self):
        graph = complete_graph(4, capacity=2)
        pack_arborescences(graph, 1)
        pack_arborescences(graph, 2)
        pack_arborescences(complete_graph(5, capacity=2), 1)
        stats = pack_cache_stats()
        assert stats["misses"] == 3 and stats["hits"] == 0

    def test_cached_trees_are_fresh_objects(self):
        graph = figure2a()
        first = pack_arborescences(graph, 1)
        first[0].parents.clear()  # vandalise the returned tree
        second = pack_arborescences(graph, 1)
        validate_packing(graph, 1, second)  # cache must be unaffected

    def test_clear_invalidates(self):
        graph = figure2a()
        pack_arborescences(graph, 1)
        clear_pack_cache()
        assert pack_cache_stats()["entries"] == 0
        pack_arborescences(graph, 1)
        stats = pack_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 0


class TestRelayPathCache:
    def _relay(self, graph=None):
        graph = graph if graph is not None else topology("k7-unit")
        network = SynchronousNetwork(graph, FaultModel())
        return DisjointPathRelay(network, max_faults=1)

    def test_shared_cache_across_relay_objects(self):
        first = self._relay()
        second = self._relay()  # fresh relay over a structurally equal graph
        paths_a = first.paths_between(2, 5)
        assert relay_path_cache_stats()["misses"] == 1
        paths_b = second.paths_between(2, 5)
        stats = relay_path_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert paths_a == paths_b

    def test_returned_paths_are_fresh_copies(self):
        relay = self._relay()
        relay.paths_between(2, 5)[0].append("vandalised")
        other = self._relay()
        for path in other.paths_between(2, 5):
            assert "vandalised" not in path

    def test_per_object_cache_skips_shared_lookup(self):
        relay = self._relay()
        relay.paths_between(2, 5)
        lookups = relay_path_cache_stats()
        relay.paths_between(2, 5)  # served from the relay's own dict
        assert relay_path_cache_stats() == lookups

    def test_distinct_pairs_and_path_counts_are_distinct_entries(self):
        graph = topology("k7-unit")
        network = SynchronousNetwork(graph, FaultModel())
        DisjointPathRelay(network, max_faults=1).paths_between(2, 5)
        DisjointPathRelay(network, max_faults=1).paths_between(5, 2)
        DisjointPathRelay(network, max_faults=2).paths_between(2, 5)
        stats = relay_path_cache_stats()
        assert stats["misses"] == 3 and stats["entries"] == 3

    def test_clear_invalidates(self):
        relay = self._relay()
        relay.paths_between(2, 5)
        clear_relay_path_cache()
        assert relay_path_cache_stats()["entries"] == 0
        self._relay().paths_between(2, 5)
        assert relay_path_cache_stats()["misses"] == 1


class TestRunnerCacheHygiene:
    def test_topology_switch_clears_structure_caches(self, monkeypatch):
        pack_arborescences(figure2a(), 1)
        self_relay = DisjointPathRelay(
            SynchronousNetwork(topology("k7-unit"), FaultModel()), max_faults=1
        )
        self_relay.paths_between(2, 5)
        assert pack_cache_stats()["entries"] == 1
        assert relay_path_cache_stats()["entries"] == 1

        monkeypatch.setattr(engine_runner, "_LAST_TOPOLOGY", None)
        monkeypatch.setattr(engine_runner, "run_cell", lambda cell: {"cell_id": "x"})

        class _Cell:
            topology = "k4-fast"

        engine_runner._execute_cell(_Cell())
        assert pack_cache_stats()["entries"] == 0
        assert relay_path_cache_stats()["entries"] == 0
