"""The benchmark runner's artifact guard and the baseline comparison rules."""

from __future__ import annotations

import importlib.util
import json
import os


def _load_bench_module(filename, module_name):
    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "benchmarks",
        filename,
    )
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _load_run_all():
    return _load_bench_module("run_all.py", "bench_run_all")


def _load_compare_bench():
    return _load_bench_module("compare_bench.py", "bench_compare")


def _write(path, payload):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def test_empty_suites_flagged(tmp_path):
    run_all = _load_run_all()
    good = {"benchmark": "ok", "fast_mode": True, "suites": {"s": {"wall_seconds": 1}}}
    empty = {"benchmark": "bad", "fast_mode": True, "suites": {}}
    missing = {"benchmark": "worse", "fast_mode": True}
    _write(tmp_path / "BENCH_ok.json", good)
    _write(tmp_path / "BENCH_bad.json", empty)
    _write(tmp_path / "BENCH_worse.json", missing)
    (tmp_path / "BENCH_corrupt.json").write_text("{not json", encoding="utf-8")
    offenders = run_all.check_artifacts(str(tmp_path))
    assert offenders == ["BENCH_bad.json", "BENCH_corrupt.json", "BENCH_worse.json"]


def test_clean_directory_passes(tmp_path):
    run_all = _load_run_all()
    _write(
        tmp_path / "BENCH_ok.json",
        {"benchmark": "ok", "fast_mode": False, "suites": {"s": {"wall_seconds": 1}}},
    )
    assert run_all.check_artifacts(str(tmp_path)) == []


class TestCompareBenchTolerance:
    def test_fresh_only_suite_is_never_a_regression(self):
        compare = _load_compare_bench()
        fresh = {
            "fast_mode": False,
            "suites": {
                "existing": {"wall_seconds": 1.0},
                "brand_new": {"wall_seconds": 99.0},
            },
        }
        baseline = {"fast_mode": False, "suites": {"existing": {"wall_seconds": 1.0}}}
        rows = {
            row["suite"]: row
            for row in compare.compare_artifact(fresh, baseline, threshold=0.20)
        }
        assert rows["brand_new"]["status"] == "new suite (no baseline)"
        assert rows["existing"]["status"] == "ok"
        assert all(row["status"] != "REGRESSION" for row in rows.values())

    def test_mode_mismatch_is_incomparable_not_regression(self):
        compare = _load_compare_bench()
        fresh = {"fast_mode": True, "suites": {"s": {"wall_seconds": 50.0}}}
        baseline = {"fast_mode": False, "suites": {"s": {"wall_seconds": 1.0}}}
        (row,) = compare.compare_artifact(fresh, baseline, threshold=0.20)
        assert row["status"] == "incomparable (fast/full mode mismatch)"

    def test_genuine_slowdown_still_flagged(self):
        compare = _load_compare_bench()
        fresh = {"fast_mode": False, "suites": {"s": {"wall_seconds": 2.0}}}
        baseline = {"fast_mode": False, "suites": {"s": {"wall_seconds": 1.0}}}
        (row,) = compare.compare_artifact(fresh, baseline, threshold=0.20)
        assert row["status"] == "REGRESSION"

    def test_missing_wall_seconds_reports_no_baseline(self):
        compare = _load_compare_bench()
        fresh = {"fast_mode": False, "suites": {"s": {"wall_seconds": 1.0}}}
        baseline = {"fast_mode": False, "suites": {"s": {"note": "no timing"}}}
        (row,) = compare.compare_artifact(fresh, baseline, threshold=0.20)
        assert row["status"] == "no baseline"
