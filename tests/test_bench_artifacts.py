"""The benchmark runner's artifact guard: empty ``suites`` dicts are failures."""

from __future__ import annotations

import importlib.util
import json
import os


def _load_run_all():
    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "benchmarks",
        "run_all.py",
    )
    spec = importlib.util.spec_from_file_location("bench_run_all", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write(path, payload):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def test_empty_suites_flagged(tmp_path):
    run_all = _load_run_all()
    good = {"benchmark": "ok", "fast_mode": True, "suites": {"s": {"wall_seconds": 1}}}
    empty = {"benchmark": "bad", "fast_mode": True, "suites": {}}
    missing = {"benchmark": "worse", "fast_mode": True}
    _write(tmp_path / "BENCH_ok.json", good)
    _write(tmp_path / "BENCH_bad.json", empty)
    _write(tmp_path / "BENCH_worse.json", missing)
    (tmp_path / "BENCH_corrupt.json").write_text("{not json", encoding="utf-8")
    offenders = run_all.check_artifacts(str(tmp_path))
    assert offenders == ["BENCH_bad.json", "BENCH_corrupt.json", "BENCH_worse.json"]


def test_clean_directory_passes(tmp_path):
    run_all = _load_run_all()
    _write(
        tmp_path / "BENCH_ok.json",
        {"benchmark": "ok", "fast_mode": False, "suites": {"s": {"wall_seconds": 1}}},
    )
    assert run_all.check_artifacts(str(tmp_path)) == []
