"""Sweep expansion, the parallel runner, JSONL persistence and resume.

The satellite requirement: kill a sweep mid-grid (simulated with the runner's
``limit`` hook, which persists only the cells that finished), rerun, and the
merged JSONL must equal a fresh full run bit-for-bit.
"""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro.engine import (
    ExperimentSpec,
    FAULT_FREE,
    Protocol,
    dump_row,
    get_protocol,
    get_spec,
    named_specs,
    render_comparison,
    run_spec,
    summarize_rows,
)
from repro.engine.protocol import _REGISTRY
from repro.engine.runner import _write_rows_atomically
from repro.engine.spec import cell_seed
from repro.exceptions import ConfigurationError

#: A small but representative grid: 2 topologies x 3 strategies x 2 protocols.
SMALL_SPEC = ExperimentSpec(
    name="unit_small",
    topologies=("k4-fast", "bottleneck4"),
    strategies=(FAULT_FREE, "equality-garbage", "equivocating-source"),
    payload_bytes=(4,),
    fault_counts=(1,),
    protocols=("nab", "classical-flooding"),
    instances=2,
)


def _read_bytes(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


class TestSpecExpansion:
    def test_grid_size_and_order_deterministic(self):
        first = SMALL_SPEC.expand()
        second = SMALL_SPEC.expand()
        assert len(first) == 2 * 3 * 2
        assert [cell.cell_id for cell in first] == [cell.cell_id for cell in second]
        assert [cell.seed for cell in first] == [cell.seed for cell in second]

    def test_cell_seeds_unique_and_stable(self):
        cells = SMALL_SPEC.expand()
        seeds = [cell.seed for cell in cells]
        assert len(set(seeds)) == len(seeds)
        assert cells[0].seed == cell_seed(0, cells[0].cell_id)

    def test_cell_id_encodes_every_axis_including_source(self):
        # A spec differing only in `source` must produce disjoint cell ids,
        # otherwise resume would silently reuse the other sweep's rows.
        cells = {cell.cell_id for cell in SMALL_SPEC.expand()}
        moved = ExperimentSpec(
            name=SMALL_SPEC.name,
            topologies=("k4-fast",),
            strategies=(FAULT_FREE,),
            payload_bytes=(4,),
            fault_counts=(1,),
            protocols=("nab",),
            instances=SMALL_SPEC.instances,
            source=2,
        )
        assert cells.isdisjoint(cell.cell_id for cell in moved.expand())

    def test_source_attack_places_fault_on_source(self):
        cells = {cell.cell_id: cell for cell in SMALL_SPEC.expand()}
        for cell in cells.values():
            if cell.strategy == "equivocating-source":
                assert cell.faulty_nodes == (1,)
            elif cell.strategy == FAULT_FREE:
                assert cell.faulty_nodes == ()
            else:
                assert cell.faulty_nodes == (4,)

    def test_infeasible_combinations_filtered(self):
        spec = ExperimentSpec(
            name="unit_infeasible",
            # figure1a has connectivity 1 < 2f + 1; k4-fast stays.
            topologies=("figure1a", "k4-fast"),
            strategies=(FAULT_FREE,),
            payload_bytes=(4,),
            fault_counts=(1,),
            protocols=("nab",),
            instances=1,
        )
        cells = spec.expand()
        assert [cell.topology for cell in cells] == ["k4-fast"]

    def test_unknown_strategy_rejected(self):
        spec = ExperimentSpec(
            name="unit_bad",
            topologies=("k4-fast",),
            strategies=("definitely-not-a-strategy",),
            payload_bytes=(4,),
            fault_counts=(1,),
            protocols=("nab",),
        )
        with pytest.raises(ConfigurationError):
            spec.expand()

    def test_named_specs_meet_acceptance_floor(self):
        assert "nab_vs_classical" in named_specs()
        spec = get_spec("nab_vs_classical")
        cells = spec.expand()
        assert len(cells) >= 24
        assert len({cell.topology for cell in cells}) >= 3
        adversaries = {cell.strategy for cell in cells} - {FAULT_FREE}
        assert len(adversaries) >= 6


class TestRunnerPersistence:
    def test_serial_run_writes_one_row_per_cell(self, tmp_path):
        out = str(tmp_path / "rows.jsonl")
        summary = run_spec(SMALL_SPEC, out_path=out, workers=1, resume=False)
        assert summary.computed_cells == summary.total_cells == 12
        lines = _read_bytes(out).decode().splitlines()
        assert len(lines) == 12
        rows = [json.loads(line) for line in lines]
        assert [row["cell_id"] for row in rows] == [
            cell.cell_id for cell in SMALL_SPEC.expand()
        ]
        for row in rows:
            assert row["error"] is None
            assert row["record"]["agreement_ok"] is True
            assert row["bounds"]["gamma_star"] >= 1
            # The canonical dump round-trips byte-identically.
            assert dump_row(json.loads(dump_row(row))) == dump_row(row)

    def test_in_memory_run_without_persistence(self):
        summary = run_spec(SMALL_SPEC, out_path=None, workers=1)
        assert summary.out_path is None
        assert len(summary.rows) == 12

    def test_rerun_skips_every_completed_cell(self, tmp_path):
        out = str(tmp_path / "rows.jsonl")
        run_spec(SMALL_SPEC, out_path=out, workers=1, resume=False)
        before = _read_bytes(out)
        summary = run_spec(SMALL_SPEC, out_path=out, workers=1)
        assert summary.computed_cells == 0
        assert summary.skipped_cells == 12
        assert _read_bytes(out) == before


class TestRunnerResume:
    def test_killed_sweep_resumes_and_merges_bit_for_bit(self, tmp_path):
        fresh_out = str(tmp_path / "fresh.jsonl")
        resumed_out = str(tmp_path / "resumed.jsonl")
        run_spec(SMALL_SPEC, out_path=fresh_out, workers=1, resume=False)

        # "Kill" the sweep after 5 cells: only those rows are persisted.
        partial = run_spec(SMALL_SPEC, out_path=resumed_out, workers=1, limit=5)
        assert partial.computed_cells == 5
        assert len(_read_bytes(resumed_out).decode().splitlines()) == 5

        # Rerun: completed cells are skipped, the rest computed, and the
        # merged file equals the fresh full run bit-for-bit.
        resumed = run_spec(SMALL_SPEC, out_path=resumed_out, workers=1)
        assert resumed.skipped_cells == 5
        assert resumed.computed_cells == 7
        assert _read_bytes(resumed_out) == _read_bytes(fresh_out)

    def test_truncated_last_line_is_recomputed(self, tmp_path):
        out = str(tmp_path / "rows.jsonl")
        run_spec(SMALL_SPEC, out_path=out, workers=1, resume=False)
        pristine = _read_bytes(out)
        # Simulate a kill mid-write: chop the last line in half.
        with open(out, "wb") as handle:
            handle.write(pristine[: len(pristine) - 40])
        summary = run_spec(SMALL_SPEC, out_path=out, workers=1)
        assert summary.computed_cells == 1
        assert summary.skipped_cells == 11
        assert summary.discarded_rows == 1
        assert _read_bytes(out) == pristine

    def test_truncated_row_never_corrupts_the_appended_rows(self, tmp_path):
        # A truncated trailing line has no newline; the runner must rewrite
        # the good rows before appending, so even a second kill mid-resume
        # leaves every line of the file parseable.
        out = str(tmp_path / "rows.jsonl")
        run_spec(SMALL_SPEC, out_path=out, workers=1, resume=False)
        pristine = _read_bytes(out)
        with open(out, "wb") as handle:
            handle.write(pristine[: len(pristine) - 40])
        partial = run_spec(SMALL_SPEC, out_path=out, workers=1, limit=1)
        assert partial.computed_cells == 1
        for line in _read_bytes(out).decode().splitlines():
            json.loads(line)
        # A final resume still converges to the pristine file bit for bit.
        run_spec(SMALL_SPEC, out_path=out, workers=1)
        assert _read_bytes(out) == pristine

    def test_missing_trailing_newline_never_glues_rows(self, tmp_path):
        # A kill can land after the full row text but before its "\n": the
        # last line then parses fine, yet appending to it would glue two
        # rows onto one line.  The runner must rewrite before appending.
        out = str(tmp_path / "rows.jsonl")
        run_spec(SMALL_SPEC, out_path=out, workers=1, resume=False)
        pristine = _read_bytes(out)
        # 11 valid rows, the 12th lost, and no newline after the 11th.
        lines = pristine.decode().splitlines()
        with open(out, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:-1]))
        partial = run_spec(SMALL_SPEC, out_path=out, workers=1, limit=1)
        assert partial.computed_cells == 1
        assert partial.skipped_cells == 11
        for line in _read_bytes(out).decode().splitlines():
            json.loads(line)
        run_spec(SMALL_SPEC, out_path=out, workers=1)
        assert _read_bytes(out) == pristine

    def test_garbage_lines_are_counted_not_fatal(self, tmp_path):
        out = str(tmp_path / "rows.jsonl")
        run_spec(SMALL_SPEC, out_path=out, workers=1, resume=False)
        pristine = _read_bytes(out)
        with open(out, "ab") as handle:
            handle.write(b"not json at all\n[1, 2, 3]\n")
        summary = run_spec(SMALL_SPEC, out_path=out, workers=1)
        assert summary.computed_cells == 0
        assert summary.skipped_cells == 12
        assert summary.discarded_rows == 2
        assert _read_bytes(out) == pristine

    def test_errored_cells_are_retried_on_resume(self, tmp_path):
        spec = ExperimentSpec(
            name="unit_error",
            topologies=("k4-fast",),
            strategies=(FAULT_FREE,),
            payload_bytes=(4,),
            fault_counts=(1,),
            # Unknown protocol: run_cell captures the lookup failure per cell.
            protocols=("nab", "no-such-protocol"),
            instances=1,
        )
        out = str(tmp_path / "rows.jsonl")
        first = run_spec(spec, out_path=out, workers=1, resume=False)
        errored = [row for row in first.rows if row["error"]]
        assert len(errored) == 1
        assert "no-such-protocol" in errored[0]["cell_id"]
        # The good cell is reused; the errored one is computed again, not
        # frozen in as "completed".
        second = run_spec(spec, out_path=out, workers=1)
        assert second.skipped_cells == 1
        assert second.computed_cells == 1
        assert [row["cell_id"] for row in second.rows] == [
            row["cell_id"] for row in first.rows
        ]

    def test_stale_seed_rows_are_not_reused(self, tmp_path):
        out = str(tmp_path / "rows.jsonl")
        run_spec(SMALL_SPEC, out_path=out, workers=1, resume=False)
        reseeded = ExperimentSpec(
            name=SMALL_SPEC.name,
            topologies=SMALL_SPEC.topologies,
            strategies=SMALL_SPEC.strategies,
            payload_bytes=SMALL_SPEC.payload_bytes,
            fault_counts=SMALL_SPEC.fault_counts,
            protocols=SMALL_SPEC.protocols,
            instances=SMALL_SPEC.instances,
            base_seed=99,
        )
        summary = run_spec(reseeded, out_path=out, workers=1)
        assert summary.skipped_cells == 0
        assert summary.computed_cells == 12


class TestParallelRunner:
    def test_parallel_equals_serial_bit_for_bit(self, tmp_path):
        serial_out = str(tmp_path / "serial.jsonl")
        parallel_out = str(tmp_path / "parallel.jsonl")
        run_spec(SMALL_SPEC, out_path=serial_out, workers=1, resume=False)
        summary = run_spec(SMALL_SPEC, out_path=parallel_out, workers=2, resume=False)
        assert summary.computed_cells == 12
        assert _read_bytes(parallel_out) == _read_bytes(serial_out)


class _CrashUntilSentinel(Protocol):
    """A protocol that SIGKILLs its own worker until a sentinel file exists.

    Each death leaves one more marker file behind, so ``crashes`` controls how
    many times the cell takes its worker down before succeeding (delegating to
    NAB); registered under a throwaway name per test via ``monkeypatch``.
    Workers inherit the registration through ``fork``.
    """

    def __init__(self, name: str, marker_dir: str, crashes: int) -> None:
        self.name = name
        self.marker_dir = marker_dir
        self.crashes = crashes

    def run(self, graph, source, inputs, fault_model, params):
        died = len(
            [entry for entry in os.listdir(self.marker_dir) if entry.startswith("died")]
        )
        if died < self.crashes:
            with open(os.path.join(self.marker_dir, f"died{died}"), "w"):
                pass
            os.kill(os.getpid(), signal.SIGKILL)
        return get_protocol("nab").run(graph, source, inputs, fault_model, params)


def _crash_spec(protocol_name: str) -> ExperimentSpec:
    return ExperimentSpec(
        name="unit_crash",
        topologies=("k4-fast",),
        strategies=(FAULT_FREE,),
        payload_bytes=(4,),
        fault_counts=(1,),
        protocols=(protocol_name, "nab"),
        instances=2,
    )


class TestCrashTolerantWorkers:
    def test_sigkilled_worker_is_respawned_and_sweep_completes(
        self, tmp_path, monkeypatch
    ):
        marker = tmp_path / "markers"
        marker.mkdir()
        monkeypatch.setitem(
            _REGISTRY, "crash-once", _CrashUntilSentinel("crash-once", str(marker), 1)
        )
        spec = _crash_spec("crash-once")
        out = str(tmp_path / "rows.jsonl")
        summary = run_spec(spec, out_path=out, workers=2, retry_backoff=0)
        assert summary.computed_cells == summary.total_cells == 2
        assert summary.retried_cells == 1
        assert summary.quarantined_cells == 0
        assert summary.quarantine_path is None
        assert all(row["error"] is None for row in summary.rows)

    def test_crash_recovered_run_is_byte_identical_to_undisturbed(
        self, tmp_path, monkeypatch
    ):
        marker = tmp_path / "markers"
        marker.mkdir()
        monkeypatch.setitem(
            _REGISTRY, "crash-once", _CrashUntilSentinel("crash-once", str(marker), 1)
        )
        spec = _crash_spec("crash-once")
        crashed_out = str(tmp_path / "crashed.jsonl")
        run_spec(spec, out_path=crashed_out, workers=2, retry_backoff=0)
        # Same grid, markers already placed: no worker dies this time.
        clean_out = str(tmp_path / "clean.jsonl")
        clean = run_spec(spec, out_path=clean_out, workers=2, retry_backoff=0)
        assert clean.retried_cells == 0
        assert _read_bytes(crashed_out) == _read_bytes(clean_out)

    def test_persistent_crasher_is_quarantined_not_fatal(self, tmp_path, monkeypatch):
        marker = tmp_path / "markers"
        marker.mkdir()
        monkeypatch.setitem(
            _REGISTRY,
            "crash-always",
            _CrashUntilSentinel("crash-always", str(marker), 99),
        )
        spec = _crash_spec("crash-always")
        out = str(tmp_path / "rows.jsonl")
        summary = run_spec(
            spec, out_path=out, workers=2, retry_backoff=0, max_cell_retries=1
        )
        # The healthy cell completed; the crasher was quarantined.
        assert summary.computed_cells == 1
        assert summary.quarantined_cells == 1
        assert summary.quarantine_path == out + ".quarantine.jsonl"
        with open(summary.quarantine_path, encoding="utf-8") as handle:
            (quarantined,) = [json.loads(line) for line in handle]
        assert quarantined["cell_id"].startswith("crash-always|")
        assert quarantined["attempts"] == 2  # first attempt + 1 retry
        assert quarantined["worker_exitcodes"] == [-9, -9]
        assert "WorkerCrash" in quarantined["error"]
        # The main JSONL holds only real rows.
        with open(out, encoding="utf-8") as handle:
            rows = [json.loads(line) for line in handle]
        assert [row["cell_id"] for row in rows] == [
            cell.cell_id for cell in spec.expand() if cell.protocol == "nab"
        ]

    def test_resume_completes_quarantined_cells_and_clears_the_file(
        self, tmp_path, monkeypatch
    ):
        marker = tmp_path / "markers"
        marker.mkdir()
        # Dies twice, then succeeds — but the first run only tolerates one
        # retry, so the cell lands in quarantine.
        crasher = _CrashUntilSentinel("crash-twice", str(marker), 2)
        monkeypatch.setitem(_REGISTRY, "crash-twice", crasher)
        spec = _crash_spec("crash-twice")
        out = str(tmp_path / "rows.jsonl")
        first = run_spec(
            spec, out_path=out, workers=2, retry_backoff=0, max_cell_retries=1
        )
        assert first.quarantined_cells == 1
        assert os.path.exists(out + ".quarantine.jsonl")
        # Resume: the quarantined cell is simply pending again, succeeds now,
        # and the stale quarantine file is cleared.
        second = run_spec(spec, out_path=out, workers=2, retry_backoff=0)
        assert second.computed_cells == 1
        assert second.quarantined_cells == 0
        assert not os.path.exists(out + ".quarantine.jsonl")
        # The final file equals an undisturbed run of the same grid.
        clean_out = str(tmp_path / "clean.jsonl")
        run_spec(spec, out_path=clean_out, workers=2, retry_backoff=0)
        assert _read_bytes(out) == _read_bytes(clean_out)

    def test_stale_quarantine_is_reported_when_resume_retries_nothing(
        self, tmp_path, monkeypatch
    ):
        marker = tmp_path / "markers"
        marker.mkdir()
        monkeypatch.setitem(
            _REGISTRY,
            "crash-always",
            _CrashUntilSentinel("crash-always", str(marker), 99),
        )
        spec = _crash_spec("crash-always")
        out = str(tmp_path / "rows.jsonl")
        first = run_spec(
            spec, out_path=out, workers=2, retry_backoff=0, max_cell_retries=1
        )
        assert first.quarantined_cells == 1
        # Resume with limit=0: nothing is retried, so without the stale check
        # the leftover quarantine file would vanish from the summary.
        second = run_spec(spec, out_path=out, workers=2, limit=0)
        assert second.quarantined_cells == 0
        assert second.stale_quarantined_cells == 1
        assert second.quarantine_path == out + ".quarantine.jsonl"
        assert os.path.exists(out + ".quarantine.jsonl")


class TestCrashSafeCompaction:
    def test_kill_between_write_and_rename_preserves_the_file(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "rows.jsonl")
        _write_rows_atomically(path, [{"a": 1}, {"b": 2}])
        before = _read_bytes(path)

        # Simulate a SIGKILL landing mid-compaction: the fsync (the last step
        # before the rename) never returns.
        def killed(fd):
            raise KeyboardInterrupt("killed mid-compaction")

        monkeypatch.setattr(os, "fsync", killed)
        with pytest.raises(KeyboardInterrupt):
            _write_rows_atomically(path, [{"c": 3}])
        assert _read_bytes(path) == before
        assert not os.path.exists(path + ".tmp")

    def test_tmp_file_is_fsynced_before_the_rename(self, tmp_path, monkeypatch):
        events = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync", lambda fd: (events.append("fsync"), real_fsync(fd))[1]
        )
        monkeypatch.setattr(
            os,
            "replace",
            lambda src, dst: (events.append("replace"), real_replace(src, dst))[1],
        )
        path = str(tmp_path / "rows.jsonl")
        _write_rows_atomically(path, [{"a": 1}])
        # File-content fsync strictly precedes the rename (the trailing fsync
        # is the best-effort directory sync).
        assert events[0] == "fsync"
        assert "replace" in events
        assert events.index("fsync") < events.index("replace")

    def test_failed_write_cleans_up_its_tmp_file(self, tmp_path, monkeypatch):
        path = str(tmp_path / "rows.jsonl")

        class Unserialisable:
            pass

        with pytest.raises(TypeError):
            _write_rows_atomically(path, [{"bad": Unserialisable()}])
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".tmp")


class TestCli:
    def test_list_specs_flag(self, capsys):
        from repro.engine.__main__ import main

        assert main(["--list-specs"]) == 0
        out = capsys.readouterr().out
        assert "nab_vs_classical" in out
        assert "pipelined_nab" in out
        # The original spelling keeps working.
        assert main(["--list"]) == 0

    def test_unknown_spec_is_a_friendly_error(self, capsys):
        from repro.engine.__main__ import main

        assert main(["--spec", "definitely-not-a-spec"]) == 2
        err = capsys.readouterr().err
        assert "unknown spec" in err
        assert "nab_vs_classical" in err

    def test_missing_spec_points_at_list_specs(self, capsys):
        from repro.engine.__main__ import main

        assert main([]) == 2
        assert "--list-specs" in capsys.readouterr().err


class TestReporting:
    def test_render_comparison_shows_protocols_and_bounds(self):
        summary = run_spec(SMALL_SPEC, out_path=None, workers=1)
        table = render_comparison(summary.rows)
        assert "nab bits/unit" in table
        assert "classical-flooding bits/unit" in table
        assert "Eq.6 bound" in table
        assert "Thm.2 bound" in table
        # One line per scenario (6 scenarios) plus header and rule.
        assert len(table.splitlines()) == 2 + 6

    def test_summarize_rows_counts(self):
        summary = run_spec(SMALL_SPEC, out_path=None, workers=1)
        counters = summarize_rows(summary.rows)
        assert counters["cells"] == 12
        assert counters["errors"] == 0
        assert counters["spec_violations"] == 0
        assert counters["dispute_control_executions"] >= 1
