"""The supervised session pool, WAL and orchestrator under crashes and load.

Worker deaths use the engine-runner crash idiom: a monkeypatched
``run_session`` that SIGKILLs its own worker process right after streaming a
checkpoint (marker files bound the crash count; workers inherit the patch
through ``fork``).  The contract under test is the tentpole's: a SIGKILLed
worker resumes its session from the write-ahead log and the completed output
is byte-identical to an undisturbed run.
"""

from __future__ import annotations

import json
import os
import signal
from fractions import Fraction

import pytest

from repro.engine.runner import dump_row
from repro.service import pool as pool_module
from repro.service.metrics import ServiceMetrics
from repro.service.pool import (
    ADMISSION_STEPS,
    AdmissionController,
    PoolTask,
    admission_point,
    run_pool,
)
from repro.service.service import (
    BroadcastSessionService,
    ServiceConfig,
    wal_path_for,
)
from repro.service.session import SESSION_SCHEMA_VERSION, run_session
from repro.service.wal import WriteAheadLog, load_wal, write_rows_atomically
from repro.service.workload import generate_sessions


def _read_bytes(path):
    with open(path, "rb") as handle:
        return handle.read()


def _workload(count, **overrides):
    arguments = dict(
        topologies=("k4-fast", "bottleneck4"),
        strategies=("fault-free", "equality-garbage"),
        payload_bytes=2,
        instances=3,
        max_faults=1,
        seed=11,
        service="pool-test",
    )
    arguments.update(overrides)
    return generate_sessions(count, **arguments)


def _run(sessions, workers, **overrides):
    metrics = ServiceMetrics()
    rows = {}
    snapshots = []
    retried, quarantined = run_pool(
        [PoolTask(spec=spec) for spec in sessions],
        workers=workers,
        emit=lambda row, task: rows.__setitem__(task.spec.session_id, row),
        wal_append=snapshots.append,
        metrics=metrics,
        retry_backoff=0,
        **overrides,
    )
    return rows, snapshots, retried, quarantined, metrics


class TestPoolCompletion:
    def test_pooled_rows_equal_serial_rows_bit_for_bit(self):
        sessions = _workload(8)
        serial_rows, _, _, _, _ = _run(sessions, workers=1)
        pooled_rows, _, _, _, _ = _run(sessions, workers=3)
        assert set(pooled_rows) == set(serial_rows)
        for session_id, row in serial_rows.items():
            assert dump_row(pooled_rows[session_id]) == dump_row(row)

    def test_pool_streams_checkpoints_to_the_wal(self):
        sessions = _workload(4)
        _, snapshots, _, _, metrics = _run(sessions, workers=2)
        # 3 instances per session -> 2 checkpoints each.
        assert len(snapshots) == 8
        assert metrics.snapshots_written == 8
        assert all(row["kind"] == "snapshot" for row in snapshots)

    def test_bad_session_yields_error_row_not_a_stalled_pool(self):
        sessions = _workload(3)
        # An unknown strategy is a deterministic failure inside the worker.
        broken = sessions[1]
        sessions[1] = type(broken)(
            **{**broken.__dict__, "strategy": "no-such-strategy"}
        )
        rows, _, retried, quarantined, _ = _run(sessions, workers=2)
        assert retried == 0 and quarantined == []
        assert rows[sessions[1].session_id]["error"] is not None
        assert rows[sessions[0].session_id]["error"] is None
        assert rows[sessions[2].session_id]["error"] is None


def _install_crashy_run_session(monkeypatch, marker_dir, victims, crashes=1):
    """SIGKILL the worker right after the victim session's first checkpoint.

    ``crashes`` marker files bound how many times each victim takes its
    worker down; the checkpoint reaches the supervisor's pipe before the
    kill, so the retry resumes mid-flight.
    """
    real = run_session

    def crashy(spec, snapshot=None, checkpoint=None, checkpoint_every=1):
        def checkpoint_then_die(row):
            if checkpoint is not None:
                checkpoint(row)
            if spec.session_id in victims:
                died = len(
                    [
                        entry
                        for entry in os.listdir(marker_dir)
                        if entry.startswith(spec.session_id.replace("/", "_"))
                    ]
                )
                if died < crashes:
                    marker = os.path.join(
                        marker_dir, f"{spec.session_id.replace('/', '_')}-{died}"
                    )
                    with open(marker, "w"):
                        pass
                    os.kill(os.getpid(), signal.SIGKILL)

        return real(
            spec,
            snapshot=snapshot,
            checkpoint=checkpoint_then_die,
            checkpoint_every=checkpoint_every,
        )

    monkeypatch.setattr(pool_module, "run_session", crashy)


class TestCrashTolerantPool:
    def test_sigkilled_worker_resumes_from_its_checkpoint(
        self, tmp_path, monkeypatch
    ):
        sessions = _workload(6)
        reference_rows, _, _, _, _ = _run(sessions, workers=2)
        victim = sessions[2].session_id
        _install_crashy_run_session(monkeypatch, str(tmp_path), {victim})
        rows, snapshots, retried, quarantined, metrics = _run(sessions, workers=2)
        assert retried == 1
        assert quarantined == []
        assert metrics.sessions_restored >= 1
        for session_id, row in reference_rows.items():
            assert dump_row(rows[session_id]) == dump_row(row)
        # The victim's retry resumed mid-flight rather than starting over:
        # its snapshot stream shows a non-zero instance index.
        victim_snapshots = [
            row for row in snapshots if row["session_id"] == victim
        ]
        assert any(row["state"]["instances_run"] >= 1 for row in victim_snapshots)

    def test_poisoned_session_is_quarantined_not_fatal(
        self, tmp_path, monkeypatch
    ):
        sessions = _workload(4)
        victim = sessions[1].session_id
        _install_crashy_run_session(
            monkeypatch, str(tmp_path), {victim}, crashes=99
        )
        rows, _, retried, quarantined, metrics = _run(
            sessions, workers=2, max_session_retries=1
        )
        assert retried == 1
        assert len(quarantined) == 1
        assert metrics.sessions_quarantined == 1
        (row,) = quarantined
        assert row["session_id"] == victim
        assert row["attempts"] == 2
        assert row["worker_exitcodes"] == [-9, -9]
        assert "WorkerCrash" in row["error"]
        assert victim not in rows
        assert len(rows) == 3


class TestAdmissionController:
    def test_lattice_point_is_deterministic_and_in_range(self):
        point = admission_point(3, "svc/000001/k4-fast/fault-free")
        assert point == admission_point(3, "svc/000001/k4-fast/fault-free")
        assert Fraction(0) <= point < Fraction(1)
        assert point.denominator <= ADMISSION_STEPS
        assert point != admission_point(4, "svc/000001/k4-fast/fault-free")

    def test_shed_fraction_ramps_between_the_limits(self):
        admission = AdmissionController(seed=0, soft_limit=10, hard_limit=20)
        assert admission.shed_fraction(0) == 0
        assert admission.shed_fraction(9) == 0
        assert admission.shed_fraction(10) == 0
        assert admission.shed_fraction(15) == Fraction(1, 2)
        assert admission.shed_fraction(20) == 1
        assert admission.shed_fraction(999) == 1

    def test_disabled_controller_admits_everything(self):
        admission = AdmissionController()
        assert admission.admits("anything", 10**9)

    def test_full_overload_sheds_exactly_the_lattice(self):
        admission = AdmissionController(seed=5, soft_limit=0, hard_limit=1)
        for index in range(50):
            session_id = f"svc/{index:06d}/k4-fast/fault-free"
            # At or beyond the hard limit the whole lattice is shed.
            assert not admission.admits(session_id, 1)
            # Below the soft limit everything is admitted.
            assert admission.admits(session_id, -1) or True

    def test_overloaded_pool_sheds_exactly_the_lattice_prediction(self):
        # soft = -1, hard = 1 pins every admission decision at fraction 1/2
        # regardless of worker timing: the shed set is exactly the half of
        # the lattice below 1/2, making the integration test deterministic.
        sessions = _workload(10, instances=1)
        admission = AdmissionController(seed=2, soft_limit=-1, hard_limit=1)
        expected_shed = {
            spec.session_id
            for spec in sessions
            if admission_point(2, spec.session_id) < Fraction(1, 2)
        }
        assert expected_shed  # the seed was chosen so overload sheds something
        shed_ids = []
        metrics = ServiceMetrics()
        rows = {}
        run_pool(
            [PoolTask(spec=spec) for spec in sessions],
            workers=2,
            emit=lambda row, task: rows.__setitem__(task.spec.session_id, row),
            wal_append=lambda row: None,
            metrics=metrics,
            retry_backoff=0,
            admission=admission,
            on_shed=lambda spec: shed_ids.append(spec.session_id),
        )
        assert set(shed_ids) == expected_shed
        # Every session either completed or was shed — none lost.
        assert set(rows) | set(shed_ids) == {s.session_id for s in sessions}
        assert metrics.sessions_shed == len(shed_ids)


class TestWriteAheadLog:
    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "log.wal.jsonl")
        with WriteAheadLog(path, fsync_every=2) as wal:
            for index in range(3):
                wal.append(
                    {
                        "kind": "snapshot",
                        "schema": SESSION_SCHEMA_VERSION,
                        "session_id": "s/1",
                        "state": {"instances_run": index},
                    }
                )
            wal.append(
                {
                    "kind": "shed",
                    "schema": SESSION_SCHEMA_VERSION,
                    "session_id": "s/2",
                }
            )
        snapshots, shed_ids, discarded = load_wal(
            path, schema=SESSION_SCHEMA_VERSION
        )
        assert discarded == 0
        assert shed_ids == {"s/2"}
        # Latest snapshot per session wins.
        assert snapshots["s/1"]["state"]["instances_run"] == 2

    def test_truncated_tail_is_tolerated(self, tmp_path):
        path = str(tmp_path / "log.wal.jsonl")
        with WriteAheadLog(path) as wal:
            wal.append(
                {
                    "kind": "snapshot",
                    "schema": SESSION_SCHEMA_VERSION,
                    "session_id": "s/1",
                    "state": {"instances_run": 0},
                }
            )
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "snapshot", "session_id": "s/2", "trunc')
        snapshots, _, discarded = load_wal(path)
        assert list(snapshots) == ["s/1"]
        assert discarded == 1

    def test_schema_mismatch_is_discarded(self, tmp_path):
        path = str(tmp_path / "log.wal.jsonl")
        with WriteAheadLog(path) as wal:
            wal.append({"kind": "snapshot", "schema": 999, "session_id": "s/1"})
        snapshots, _, discarded = load_wal(path, schema=SESSION_SCHEMA_VERSION)
        assert snapshots == {}
        assert discarded == 1

    def test_missing_file_is_an_empty_log(self, tmp_path):
        snapshots, shed_ids, discarded = load_wal(str(tmp_path / "absent"))
        assert (snapshots, shed_ids, discarded) == ({}, set(), 0)

    def test_atomic_rewrite_replaces_without_a_partial_state(self, tmp_path):
        path = str(tmp_path / "rows.jsonl")
        write_rows_atomically(path, [{"a": 1}, {"b": 2}])
        assert _read_bytes(path) == b'{"a":1}\n{"b":2}\n'
        write_rows_atomically(path, [{"c": 3}])
        assert _read_bytes(path) == b'{"c":3}\n'
        assert not os.path.exists(path + ".tmp")


class TestServiceOrchestration:
    def test_fresh_and_rerun_files_are_byte_identical(self, tmp_path):
        sessions = _workload(6)
        first = str(tmp_path / "first.jsonl")
        second = str(tmp_path / "second.jsonl")
        BroadcastSessionService(
            ServiceConfig(name="pool-test", out_path=first, workers=2,
                          retry_backoff=0)
        ).run(sessions)
        BroadcastSessionService(
            ServiceConfig(name="pool-test", out_path=second, workers=1)
        ).run(sessions)
        assert _read_bytes(first) == _read_bytes(second)
        # Settled runs leave no WAL behind.
        assert not os.path.exists(wal_path_for(first))

    def test_resume_reuses_completed_rows(self, tmp_path):
        sessions = _workload(5)
        out = str(tmp_path / "sessions.jsonl")
        service = BroadcastSessionService(
            ServiceConfig(name="pool-test", out_path=out, workers=1)
        )
        service.run(sessions[:3])
        summary = service.run(sessions)
        assert summary.skipped_sessions == 3
        assert summary.computed_sessions == 2
        fresh = str(tmp_path / "fresh.jsonl")
        BroadcastSessionService(
            ServiceConfig(name="pool-test", out_path=fresh, workers=1)
        ).run(sessions)
        assert _read_bytes(out) == _read_bytes(fresh)

    def test_mid_flight_wal_snapshot_is_restored_on_resume(self, tmp_path):
        sessions = _workload(4)
        out = str(tmp_path / "sessions.jsonl")
        fresh = str(tmp_path / "fresh.jsonl")
        BroadcastSessionService(
            ServiceConfig(name="pool-test", out_path=fresh, workers=1)
        ).run(sessions)
        # Forge an interrupted run: two sessions persisted, one mid-flight
        # checkpoint in the WAL, the rest never started.
        with open(fresh, "rb") as handle:
            completed_lines = handle.readlines()[:2]
        with open(out, "wb") as handle:
            handle.writelines(completed_lines)
        checkpoints = []
        run_session(sessions[2], checkpoint=checkpoints.append)
        with WriteAheadLog(wal_path_for(out)) as wal:
            wal.append(checkpoints[0])
        summary = BroadcastSessionService(
            ServiceConfig(name="pool-test", out_path=out, workers=1)
        ).run(sessions)
        assert summary.skipped_sessions == 2
        assert summary.computed_sessions == 2
        assert summary.metrics.sessions_restored == 1
        assert _read_bytes(out) == _read_bytes(fresh)
        assert not os.path.exists(wal_path_for(out))

    def test_truncated_output_tail_is_rewritten_cleanly(self, tmp_path):
        sessions = _workload(4)
        out = str(tmp_path / "sessions.jsonl")
        fresh = str(tmp_path / "fresh.jsonl")
        BroadcastSessionService(
            ServiceConfig(name="pool-test", out_path=fresh, workers=1)
        ).run(sessions)
        with open(fresh, "rb") as handle:
            content = handle.read()
        # Kill mid-write: the final line is half there, no newline.
        with open(out, "wb") as handle:
            handle.write(content[: len(content) - 40])
        summary = BroadcastSessionService(
            ServiceConfig(name="pool-test", out_path=out, workers=1)
        ).run(sessions)
        assert summary.discarded_rows == 1
        assert _read_bytes(out) == _read_bytes(fresh)

    def test_shed_sessions_stay_shed_across_resumes(self, tmp_path):
        sessions = _workload(6, instances=1)
        out = str(tmp_path / "sessions.jsonl")
        first = BroadcastSessionService(
            ServiceConfig(
                name="pool-test", out_path=out, workers=2, retry_backoff=0,
                admission_seed=2, shed_soft_limit=-1, shed_hard_limit=1,
            )
        ).run(sessions)
        assert first.shed_sessions > 0
        # Re-run without overload: previously shed sessions are not revived.
        second = BroadcastSessionService(
            ServiceConfig(name="pool-test", out_path=out, workers=1)
        ).run(sessions)
        assert second.shed_sessions == first.shed_sessions
        assert second.computed_sessions == 0
        snapshots, shed_ids, _ = load_wal(wal_path_for(out))
        assert snapshots == {}
        assert len(shed_ids) == first.shed_sessions

    def test_status_file_reports_the_ops_schema(self, tmp_path):
        sessions = _workload(3)
        out = str(tmp_path / "sessions.jsonl")
        summary = BroadcastSessionService(
            ServiceConfig(name="pool-test", out_path=out, workers=1)
        ).run(sessions)
        assert summary.status_path is not None
        with open(summary.status_path, encoding="utf-8") as handle:
            status = json.load(handle)
        metrics = status["metrics"]
        assert status["service"] == "pool-test"
        assert status["settled_sessions"] == 3
        assert metrics["sessions"]["completed"] == 3
        assert metrics["snapshots"]["written"] == 6
        assert metrics["throughput"]["sessions_per_minute"] > 0
        assert metrics["latency"]["count"] == 3
        assert "topology_contexts" in metrics["caches"]
        assert "mincut" in metrics["caches"]
