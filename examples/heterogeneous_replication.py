#!/usr/bin/env python3
"""Replicated-log scenario on a network with heterogeneous link capacities.

The paper's motivating application is replicated fault-tolerant state
machines: replicas repeatedly agree on the next request to process.  This
example models a 5-replica deployment where one replica sits behind slow links
(capacity 1) while the others enjoy fast links (capacity 8), and compares

* NAB (network-aware: bulk data flows over spanning trees that respect
  capacities), against
* the classical capacity-oblivious baseline that broadcasts the full request
  with an EIG Byzantine broadcast over every link alike.

Run with:  python examples/heterogeneous_replication.py
"""

from __future__ import annotations

from repro import NetworkAwareBroadcast
from repro.analysis.reporting import format_table
from repro.classical.flooding import classical_full_value_broadcast
from repro.graph.generators import heterogeneous_bottleneck


def main() -> None:
    graph = heterogeneous_bottleneck(5, fast_capacity=8, slow_capacity=1)
    source = 1
    max_faults = 1
    requests = [f"PUT key{index} value{index}".ljust(24).encode() for index in range(4)]

    nab = NetworkAwareBroadcast(graph, source, max_faults)
    nab_run = nab.run(requests)

    classical_elapsed = 0.0
    for request in requests:
        result = classical_full_value_broadcast(graph, source, request, max_faults)
        classical_elapsed += float(result.elapsed)

    payload_bits = sum(8 * len(request) for request in requests)
    rows = [
        ["NAB (network-aware)", float(nab_run.total_elapsed), payload_bits / float(nab_run.total_elapsed)],
        ["classical EIG flooding", classical_elapsed, payload_bits / classical_elapsed],
    ]
    print("Replicated log on a 5-node network with one slow replica:")
    print(format_table(["algorithm", "total time", "throughput (bits/unit)"], rows))
    speedup = classical_elapsed / float(nab_run.total_elapsed)
    print()
    print(f"NAB is {speedup:.1f}x faster on this workload; the gap grows with the request size")
    print("and with the capacity ratio between fast and slow links (see the")
    print("bench_nab_vs_classical benchmark for the sweep).")


if __name__ == "__main__":
    main()
