#!/usr/bin/env python3
"""Replicated-log scenario on a network with heterogeneous link capacities.

The paper's motivating application is replicated fault-tolerant state
machines: replicas repeatedly agree on the next request to process.  This
example models a 5-replica deployment where one replica sits behind slow links
(capacity 1) while the others enjoy fast links (capacity 8), and compares
every protocol in the engine's registry — NAB routes bulk data over the fast
links, while both capacity-oblivious baselines are throttled by the slow ones.

Run with:  python examples/heterogeneous_replication.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.engine import get_protocol, registered_protocols
from repro.graph.generators import heterogeneous_bottleneck
from repro.transport.faults import FaultModel


def main() -> None:
    graph = heterogeneous_bottleneck(5, fast_capacity=8, slow_capacity=1)
    source = 1
    max_faults = 1
    requests = [f"PUT key{index} value{index}".ljust(24).encode() for index in range(4)]

    records = {
        name: get_protocol(name).run(
            graph, source, requests, FaultModel(), {"max_faults": max_faults}
        )
        for name in registered_protocols()
    }

    rows = [
        [
            name,
            float(record.elapsed),
            float(record.throughput),
            "yes" if record.spec_ok else "NO",
        ]
        for name, record in sorted(records.items())
    ]
    print("Replicated log on a 5-node network with one slow replica:")
    print(format_table(["protocol", "total time", "throughput (bits/unit)", "spec ok"], rows))
    speedup = float(records["classical-flooding"].elapsed) / float(records["nab"].elapsed)
    print()
    print(f"NAB is {speedup:.1f}x faster on this workload; the gap grows with the request size")
    print("and with the capacity ratio between fast and slow links (see the")
    print("bench_nab_vs_classical benchmark for the sweep).")


if __name__ == "__main__":
    main()
