#!/usr/bin/env python3
"""Capacity analysis across topologies: Eq. 6, Theorem 2 and Theorem 3 in action.

For a collection of named topologies this example computes gamma*, rho*, the
NAB throughput lower bound, the capacity upper bound and the fraction of
capacity NAB is certified to achieve, and verifies Theorem 3's 1/3 (or 1/2)
promise on every one of them.

Run with:  python examples/capacity_analysis.py
"""

from __future__ import annotations

from fractions import Fraction

from repro import analyse_network
from repro.analysis.reporting import format_table
from repro.workloads.topologies import named_topologies, topology

#: Topologies that satisfy NAB's preconditions for f = 1 (the paper's Figure 1
#: graphs are illustration-only and do not meet the connectivity requirement).
ANALYSABLE = [
    "k4-unit",
    "k4-fast",
    "k5-unit",
    "k7-unit",
    "k7-fast",
    "ring7-chords",
    "bottleneck4",
    "bottleneck5",
    "random6",
    "random7",
]


def main() -> None:
    rows = []
    for name in ANALYSABLE:
        graph = topology(name)
        analysis = analyse_network(graph, source=1, max_faults=1)
        rows.append(
            [
                name,
                analysis.gamma_star,
                analysis.rho_star,
                analysis.nab_lower_bound,
                analysis.capacity_upper_bound,
                analysis.achieved_fraction,
                analysis.guaranteed_fraction,
                "ok" if analysis.satisfies_theorem3() else "VIOLATED",
            ]
        )
    print("Capacity analysis with f = 1 (all quantities in bits per time unit):")
    print(
        format_table(
            [
                "topology",
                "gamma*",
                "rho*",
                "T_NAB (Eq.6)",
                "C_BB bound (Thm 2)",
                "certified fraction",
                "Thm 3 promise",
                "Thm 3",
            ],
            rows,
        )
    )
    worst = min(Fraction(row[5]) for row in rows)
    print()
    print(f"Worst certified fraction across these topologies: {float(worst):.3f}")
    print("Every row satisfies Theorem 3: NAB is within a factor 3 (or 2) of capacity.")
    print(f"(Unlisted topologies: {sorted(set(named_topologies()) - set(ANALYSABLE))} are")
    print("illustration-only graphs from the paper's figures.)")


if __name__ == "__main__":
    main()
