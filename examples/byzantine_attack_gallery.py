#!/usr/bin/env python3
"""Gallery of Byzantine attacks against NAB and how the protocol reacts.

Each scenario runs several NAB instances on the same 4-node network with a
different adversarial strategy controlling node 3 (or the source, node 1) and
reports: whether agreement/validity held on every instance, how often dispute
control had to run, which disputes were recorded, and which nodes ended up
identified as faulty.

Run with:  python examples/byzantine_attack_gallery.py
"""

from __future__ import annotations

from repro import FaultModel, NetworkAwareBroadcast
from repro.adversary.strategies import (
    CrashStrategy,
    DisputeLiarStrategy,
    EqualityGarbageStrategy,
    EquivocatingSourceStrategy,
    FalseFlagStrategy,
    Phase1CorruptingRelayStrategy,
)
from repro.analysis.reporting import format_table
from repro.graph.generators import complete_graph

SCENARIOS = [
    ("phase-1 corrupting relay", [3], Phase1CorruptingRelayStrategy()),
    ("equality-check garbage", [3], EqualityGarbageStrategy()),
    ("false MISMATCH flag", [3], FalseFlagStrategy()),
    ("dispute-control liar", [3], DisputeLiarStrategy()),
    ("crashed node", [3], CrashStrategy()),
    ("equivocating source", [1], EquivocatingSourceStrategy()),
]


def main() -> None:
    messages = [f"tx-{index:03d}".encode() for index in range(6)]
    rows = []
    for name, faulty_nodes, strategy in SCENARIOS:
        graph = complete_graph(4, capacity=2)
        nab = NetworkAwareBroadcast(
            graph, 1, 1, fault_model=FaultModel(faulty_nodes, strategy)
        )
        run = nab.run(messages)
        source_faulty = 1 in faulty_nodes
        agreement_ok = all(
            len(set(result.outputs.values())) == 1 for result in run.instances
        )
        validity_ok = source_faulty or all(
            result.agreed_value() == int.from_bytes(message, "big")
            for message, result in zip(messages, run.instances)
        )
        disputes = sorted(tuple(sorted(pair)) for pair in nab.dispute_state.disputes())
        faulty_found = sorted(nab.dispute_state.implied_faulty(graph.nodes()))
        rows.append(
            [
                name,
                "yes" if agreement_ok else "NO",
                "yes" if validity_ok else ("n/a" if source_faulty else "NO"),
                run.dispute_control_executions,
                disputes if disputes else "-",
                faulty_found if faulty_found else "-",
            ]
        )
    print("Six attacks against NAB on a 4-node network (f = 1, 6 instances each):")
    print(
        format_table(
            ["attack", "agreement", "validity", "phase-3 runs", "disputes", "identified faulty"],
            rows,
        )
    )
    print()
    print("Agreement holds in every scenario; validity holds whenever the source is")
    print("fault-free; dispute control runs at most f(f+1) = 2 times per scenario and")
    print("only ever implicates genuinely faulty nodes.")


if __name__ == "__main__":
    main()
