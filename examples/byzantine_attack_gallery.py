#!/usr/bin/env python3
"""Gallery of Byzantine attacks against NAB and how the protocol reacts.

A thin declaration on top of the experiment engine: one :class:`ExperimentSpec`
sweeps every named adversary strategy (the engine places the faulty node —
the source for source attacks, the highest node otherwise) over a 4-node
network, and the per-cell :class:`RunRecord`s report whether agreement and
validity held, how often dispute control ran, which disputes were recorded,
and which nodes ended up identified as faulty.

Run with:  python examples/byzantine_attack_gallery.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.engine import ExperimentSpec, run_spec
from repro.workloads import named_strategies


def main() -> None:
    spec = ExperimentSpec(
        name="attack-gallery",
        topologies=("k4-fast",),
        strategies=tuple(named_strategies()),
        payload_bytes=(6,),
        fault_counts=(1,),
        protocols=("nab",),
        instances=6,
    )
    summary = run_spec(spec)

    rows = []
    for row in summary.rows:
        record = row["record"]
        source_faulty = row["source"] in row["faulty_nodes"]
        disputes = [tuple(pair) for pair in record["metadata"]["disputes"]]
        identified = record["metadata"]["identified_faulty"]
        rows.append(
            [
                row["strategy"],
                "yes" if record["agreement_ok"] else "NO",
                "n/a" if source_faulty else ("yes" if record["validity_ok"] else "NO"),
                record["dispute_control_executions"],
                sorted(set(disputes)) if disputes else "-",
                sorted(set(identified)) if identified else "-",
            ]
        )
    print(
        f"{len(summary.rows)} attacks against NAB on a 4-node network "
        f"(f = 1, {spec.instances} instances each):"
    )
    print(
        format_table(
            ["attack", "agreement", "validity", "phase-3 runs", "disputes", "identified faulty"],
            rows,
        )
    )
    print()
    print("Agreement holds in every scenario; validity holds whenever the source is")
    print("fault-free; dispute control runs at most f(f+1) = 2 times per scenario and")
    print("only ever implicates genuinely faulty nodes.")


if __name__ == "__main__":
    main()
