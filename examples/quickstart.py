#!/usr/bin/env python3
"""Quickstart: broadcast a value with NAB on a small capacitated network.

Builds a 4-node complete network with capacity-2 links, runs a handful of NAB
instances with one Byzantine node injecting garbage during the Equality Check,
and prints per-instance outcomes, the time each instance took, and the
measured throughput next to the paper's analytical bounds.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import FaultModel, NetworkAwareBroadcast, analyse_network
from repro.adversary.strategies import EqualityGarbageStrategy
from repro.analysis.reporting import format_table
from repro.graph.generators import complete_graph


def main() -> None:
    graph = complete_graph(4, capacity=2)
    source = 1
    max_faults = 1

    # Node 3 is Byzantine: it sends garbage coded symbols during the Equality
    # Check, which forces one round of (expensive) dispute control before it
    # is cut out of the protocol.
    fault_model = FaultModel([3], EqualityGarbageStrategy())
    nab = NetworkAwareBroadcast(graph, source, max_faults, fault_model=fault_model)

    messages = [f"block-{index:04d}".encode() for index in range(6)]
    run = nab.run(messages)

    rows = []
    for message, result in zip(messages, run.instances):
        rows.append(
            [
                result.instance,
                message.decode(),
                hex(result.agreed_value()),
                float(result.elapsed),
                "yes" if result.dispute_control_ran else "no",
            ]
        )
    print("Per-instance results (source is fault-free, node 3 is Byzantine):")
    print(format_table(["instance", "input", "agreed output", "time", "dispute control"], rows))

    analysis = analyse_network(graph, source, max_faults)
    payload_bits = sum(8 * len(message) for message in messages)
    print()
    print(f"total payload broadcast : {payload_bits} bits")
    print(f"total elapsed time      : {float(run.total_elapsed):.2f} time units")
    print(f"measured throughput     : {float(run.throughput):.3f} bits/unit")
    print(f"Eq. 6 lower bound       : {float(analysis.nab_lower_bound):.3f} bits/unit")
    print(f"Theorem 2 upper bound   : {float(analysis.capacity_upper_bound):.3f} bits/unit")
    print(
        "dispute control ran     : "
        f"{run.dispute_control_executions} time(s) (bounded by f(f+1) = 2)"
    )


if __name__ == "__main__":
    main()
