"""Setuptools shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` works in fully offline environments where the
PEP 517 editable-wheel path is unavailable.
"""
from setuptools import setup

setup()
