#!/usr/bin/env python
"""Chaos smoke test: SIGKILL the sweep mid-run, resume, demand byte-identity.

Exercises the PR 6 crash-tolerance contract end to end through the real CLI:

1. Run ``nab_vs_classical_quick`` uninterrupted to a reference JSONL.
2. Start the same sweep fresh in a subprocess with worker processes, wait
   until it has made partial progress, then SIGKILL one of its *worker*
   processes (the supervisor must respawn it and retry the cell), and
   shortly after SIGKILL the whole driver process group mid-sweep.
3. Re-run the same command against the same output path: the runner's
   resume path must complete the remaining cells.
4. The recovered JSONL must be byte-identical to the uninterrupted
   reference, and nothing may have been quarantined.

Then exercises the adversarial-search driver's resume contract the same way:
run a small ``repro.adversary.search`` budget uninterrupted to a reference
trajectory, SIGKILL a fresh run mid-search, resume it, and demand the
recovered JSONL is byte-identical to the reference.

Finally exercises the PR 10 session service through ``python -m
repro.service``: SIGKILL one pool worker (the supervisor must respawn it and
resume the session from its write-ahead-log checkpoint), then SIGKILL the
whole driver mid-batch, restart the same command, and demand the recovered
session file is byte-identical to an uninterrupted reference with nothing
quarantined and a healthy ``--status`` exit code.

Exit status is nonzero on any violation, so CI can gate on it.

Usage:
    PYTHONPATH=src python scripts/chaos_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time

SPEC = "nab_vs_classical_quick"
WORKERS = 2
DRIVER_TIMEOUT = 300
SEARCH_TOPOLOGY = "k7-unit"
SEARCH_BUDGET = 8
SERVICE_SESSIONS = 200
SERVICE_INSTANCES = 6
SERVICE_TOPOLOGIES = "k7-unit,bottleneck4"
SERVICE_WORKERS = 2


def _repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _env() -> dict:
    env = dict(os.environ)
    src = os.path.join(_repo_root(), "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def _sweep_cmd(out_path: str, workers: int) -> list:
    return [
        sys.executable, "-m", "repro.engine",
        "--spec", SPEC,
        "--out", out_path,
        "--workers", str(workers),
    ]


def _search_cmd(out_path: str) -> list:
    return [
        sys.executable, "-m", "repro.adversary.search",
        "--topology", SEARCH_TOPOLOGY,
        "--budget", str(SEARCH_BUDGET),
        "--out", out_path,
    ]


def _search_stage(tmp: str, root: str, env: dict) -> int:
    """Kill the adversarial search mid-trajectory, resume, demand byte-identity."""
    reference = os.path.join(tmp, "search-reference.jsonl")
    chaos = os.path.join(tmp, "search-chaos.jsonl")

    print(f"[chaos] search reference run: {SEARCH_TOPOLOGY}, "
          f"budget {SEARCH_BUDGET}")
    subprocess.run(
        _search_cmd(reference), env=env, cwd=root,
        check=True, timeout=DRIVER_TIMEOUT,
    )

    print("[chaos] search chaos run: SIGKILL the driver mid-trajectory")
    driver = subprocess.Popen(
        _search_cmd(chaos), env=env, cwd=root, start_new_session=True,
    )
    try:
        # Wait until at least one candidate row is persisted, then kill the
        # driver before the budget is exhausted.
        deadline = time.time() + 60
        while time.time() < deadline and driver.poll() is None:
            if os.path.exists(chaos) and os.path.getsize(chaos) > 0:
                break
            time.sleep(0.05)
        if driver.poll() is None:
            print(f"[chaos] SIGKILL search driver pid {driver.pid}")
            os.killpg(os.getpgid(driver.pid), signal.SIGKILL)
        driver.wait(timeout=60)
    finally:
        if driver.poll() is None:
            try:
                os.killpg(os.getpgid(driver.pid), signal.SIGKILL)
            except (ProcessLookupError, OSError):
                pass
            driver.wait(timeout=60)

    print("[chaos] search resume run")
    subprocess.run(
        _search_cmd(chaos), env=env, cwd=root,
        check=True, timeout=DRIVER_TIMEOUT,
    )

    with open(reference, "rb") as handle:
        want = handle.read()
    with open(chaos, "rb") as handle:
        got = handle.read()
    if want != got:
        print("[chaos] FAIL: recovered search trajectory is not "
              "byte-identical to the uninterrupted reference")
        return 1
    if not want:
        print("[chaos] FAIL: reference search produced no rows")
        return 1
    rows = want.count(b"\n")
    print(f"[chaos] OK: {rows} search rows, recovered trajectory "
          "byte-identical to the uninterrupted reference")
    return 0


def _service_cmd(out_path: str) -> list:
    return [
        sys.executable, "-m", "repro.service",
        "--out", out_path,
        "--sessions", str(SERVICE_SESSIONS),
        "--topologies", SERVICE_TOPOLOGIES,
        "--instances", str(SERVICE_INSTANCES),
        "--workers", str(SERVICE_WORKERS),
        "--retry-backoff", "0.1",
    ]


def _service_stage(tmp: str, root: str, env: dict) -> int:
    """Kill a session-service worker, then the driver; resume; byte-compare."""
    reference = os.path.join(tmp, "sessions-reference.jsonl")
    chaos = os.path.join(tmp, "sessions-chaos.jsonl")

    print(f"[chaos] service reference run: {SERVICE_SESSIONS} sessions, "
          f"{SERVICE_WORKERS} workers")
    subprocess.run(
        _service_cmd(reference), env=env, cwd=root,
        check=True, timeout=DRIVER_TIMEOUT,
    )

    print("[chaos] service chaos run: SIGKILL a worker, then the driver")
    driver = subprocess.Popen(
        _service_cmd(chaos), env=env, cwd=root, start_new_session=True,
    )
    try:
        # Wait for the pool to spin up, then murder one worker: the
        # supervisor must respawn it and resume its in-flight session from
        # the write-ahead log, not stall or restart the session from zero.
        deadline = time.time() + 60
        workers = []
        while time.time() < deadline and not workers:
            if driver.poll() is not None:
                break
            workers = _worker_pids(driver.pid)
            if not workers:
                time.sleep(0.05)
        if workers and driver.poll() is None:
            victim = workers[0]
            print(f"[chaos] SIGKILL service worker pid {victim}")
            try:
                os.kill(victim, signal.SIGKILL)
            except ProcessLookupError:
                pass

        # Let the batch make partial progress, then kill the whole process
        # group mid-flight (driver included).
        deadline = time.time() + 60
        while time.time() < deadline and driver.poll() is None:
            if os.path.exists(chaos) and os.path.getsize(chaos) > 0:
                break
            time.sleep(0.05)
        if driver.poll() is None:
            print(f"[chaos] SIGKILL service driver process group {driver.pid}")
            os.killpg(os.getpgid(driver.pid), signal.SIGKILL)
        driver.wait(timeout=60)
    finally:
        if driver.poll() is None:
            try:
                os.killpg(os.getpgid(driver.pid), signal.SIGKILL)
            except (ProcessLookupError, OSError):
                pass
            driver.wait(timeout=60)

    print("[chaos] service resume run")
    subprocess.run(
        _service_cmd(chaos), env=env, cwd=root,
        check=True, timeout=DRIVER_TIMEOUT,
    )

    quarantine = chaos + ".quarantine.jsonl"
    if os.path.exists(quarantine):
        print(f"[chaos] FAIL: sessions were quarantined ({quarantine})")
        return 1

    status = subprocess.run(
        [sys.executable, "-m", "repro.service", "--status", "--out", chaos],
        env=env, cwd=root, timeout=DRIVER_TIMEOUT,
    )
    if status.returncode != 0:
        print(f"[chaos] FAIL: --status reports degraded health "
              f"(exit {status.returncode})")
        return 1

    with open(reference, "rb") as handle:
        want = handle.read()
    with open(chaos, "rb") as handle:
        got = handle.read()
    if want != got:
        print("[chaos] FAIL: recovered session file is not byte-identical "
              "to the uninterrupted reference")
        return 1
    if not want:
        print("[chaos] FAIL: reference service run produced no rows")
        return 1
    rows = want.count(b"\n")
    print(f"[chaos] OK: {rows} session rows, recovered service output "
          "byte-identical to the uninterrupted reference")
    return 0


def _worker_pids(driver_pid: int) -> list:
    """PIDs of the driver's direct children (the pool workers)."""
    try:
        listing = subprocess.run(
            ["ps", "-o", "pid=", "--ppid", str(driver_pid)],
            capture_output=True, text=True, check=False,
        ).stdout
    except OSError:
        return []
    return [int(tok) for tok in listing.split()]


def main() -> int:
    root = _repo_root()
    env = _env()
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        reference = os.path.join(tmp, "reference.jsonl")
        chaos = os.path.join(tmp, "chaos.jsonl")

        print(f"[chaos] reference run: {SPEC}, {WORKERS} workers")
        subprocess.run(
            _sweep_cmd(reference, WORKERS), env=env, cwd=root,
            check=True, timeout=DRIVER_TIMEOUT,
        )

        print("[chaos] chaos run: SIGKILL a worker, then the driver, mid-sweep")
        # New session => the driver and its workers form their own process
        # group we can kill wholesale without touching this script.
        driver = subprocess.Popen(
            _sweep_cmd(chaos, WORKERS), env=env, cwd=root,
            start_new_session=True,
        )
        try:
            # Wait for the pool to spin up, then murder one worker: the
            # supervisor must absorb this (respawn + retry), not stall.
            deadline = time.time() + 60
            workers = []
            while time.time() < deadline and not workers:
                if driver.poll() is not None:
                    break
                workers = _worker_pids(driver.pid)
                if not workers:
                    time.sleep(0.05)
            if workers and driver.poll() is None:
                victim = workers[0]
                print(f"[chaos] SIGKILL worker pid {victim}")
                try:
                    os.kill(victim, signal.SIGKILL)
                except ProcessLookupError:
                    pass

            # Let the sweep make partial progress, then kill the whole
            # process group mid-flight (driver included).
            deadline = time.time() + 60
            while time.time() < deadline and driver.poll() is None:
                if os.path.exists(chaos) and os.path.getsize(chaos) > 0:
                    break
                time.sleep(0.05)
            if driver.poll() is None:
                print(f"[chaos] SIGKILL driver process group {driver.pid}")
                os.killpg(os.getpgid(driver.pid), signal.SIGKILL)
            driver.wait(timeout=60)
        finally:
            if driver.poll() is None:
                try:
                    os.killpg(os.getpgid(driver.pid), signal.SIGKILL)
                except (ProcessLookupError, OSError):
                    pass
                driver.wait(timeout=60)

        print("[chaos] resume run")
        subprocess.run(
            _sweep_cmd(chaos, WORKERS), env=env, cwd=root,
            check=True, timeout=DRIVER_TIMEOUT,
        )

        quarantine = chaos + ".quarantine.jsonl"
        if os.path.exists(quarantine):
            print(f"[chaos] FAIL: cells were quarantined ({quarantine})")
            return 1

        with open(reference, "rb") as handle:
            want = handle.read()
        with open(chaos, "rb") as handle:
            got = handle.read()
        if want != got:
            print("[chaos] FAIL: recovered sweep is not byte-identical "
                  "to the uninterrupted reference")
            return 1
        if not want:
            print("[chaos] FAIL: reference sweep produced no rows")
            return 1

        rows = want.count(b"\n")
        print(f"[chaos] OK: {rows} rows, recovered sweep byte-identical "
              "to the uninterrupted reference")

        status = _search_stage(tmp, root, env)
        if status:
            return status

        status = _service_stage(tmp, root, env)
        if status:
            return status
    return 0


if __name__ == "__main__":
    sys.exit(main())
