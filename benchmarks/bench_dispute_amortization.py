"""Amortisation of dispute control (Section 2 and Appendix D).

Paper claims:

* dispute control is performed at most ``f (f + 1)`` times over any number of
  NAB instances, because each execution yields a new dispute pair or a newly
  identified faulty node;
* its cost therefore amortises away: as the number of instances ``Q`` grows,
  the measured throughput under attack approaches the fault-free throughput.

The benchmark runs NAB against an equality-check-garbage adversary for growing
``Q`` and reports the measured throughput, the number of Phase 3 executions,
and the fault-free reference throughput.
"""

from __future__ import annotations

from repro.adversary.strategies import EqualityGarbageStrategy
from repro.analysis.reporting import format_table
from repro.analysis.throughput import measure_nab_throughput
from repro.graph.generators import complete_graph
from repro.transport.faults import FaultModel

INSTANCE_COUNTS = [1, 2, 4, 8, 16]
VALUE_BYTES = 8
MAX_FAULTS = 1


def _inputs(count):
    return [bytes(((13 * index + offset) % 256) for offset in range(VALUE_BYTES)) for index in range(count)]


def _sweep():
    graph = complete_graph(4, capacity=2)
    reference = measure_nab_throughput(graph, 1, MAX_FAULTS, _inputs(max(INSTANCE_COUNTS)))
    rows = []
    for count in INSTANCE_COUNTS:
        attacked = measure_nab_throughput(
            graph,
            1,
            MAX_FAULTS,
            _inputs(count),
            fault_model=FaultModel([3], EqualityGarbageStrategy()),
        )
        rows.append((count, attacked, reference))
    return rows


def test_dispute_control_amortises(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = [
        [
            count,
            attacked.dispute_control_executions,
            float(attacked.throughput),
            float(reference.throughput),
            float(attacked.throughput / reference.throughput),
        ]
        for count, attacked, reference in rows
    ]
    print()
    print(
        format_table(
            ["Q", "phase-3 runs", "attacked throughput", "fault-free throughput", "ratio"],
            table,
        )
    )
    budget = MAX_FAULTS * (MAX_FAULTS + 1)
    for count, attacked, _reference in rows:
        assert attacked.dispute_control_executions <= budget
    ratios = [attacked.throughput / reference.throughput for _c, attacked, reference in rows]
    # Throughput under attack improves as Q grows (the amortisation curve):
    # the single dispute-control execution is a fixed cost, so the ratio to the
    # fault-free throughput climbs roughly linearly in Q (it reaches 1 only in
    # the large-L, large-Q limit the paper analyses).
    assert all(later > earlier for earlier, later in zip(ratios, ratios[1:]))
    assert ratios[-1] > 8 * ratios[0]
