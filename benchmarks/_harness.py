"""Shared benchmark harness: wall-clock timing plus ``BENCH_<name>.json`` output.

Every benchmark suite funnels its measurements through :func:`write_results`
so the repo's perf trajectory is tracked as machine-readable artifacts from
PR to PR.  One JSON file per benchmark is written next to this module:

    {
      "benchmark": "<name>",
      "fast_mode": false,
      "suites": {
        "<suite>": {
          "wall_seconds": 0.123,
          "operations": 4096,          // null when not a counted workload
          "ops_per_second": 33300.8,   // null when operations is null
          ...suite-specific extras (sizes, speedups, parameters)...
        }
      }
    }

Fast mode (environment variable ``REPRO_BENCH_FAST=1``, set by
``benchmarks/run_all.py``) asks suites to shrink their problem sizes so the
whole benchmark tree can run as a smoke test; files written in fast mode are
flagged via ``"fast_mode": true`` so trend tooling can ignore them.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, Optional, Tuple

FAST_MODE = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def fast_mode() -> bool:
    """Whether benchmarks should run with reduced problem sizes."""
    return FAST_MODE


def scaled(normal, fast):
    """Pick a problem-size parameter according to the current mode."""
    return fast if FAST_MODE else normal


def time_callable(fn: Callable[[], object], repeat: int = 1) -> Tuple[float, object]:
    """Best wall-clock seconds over ``repeat`` calls of ``fn``, plus its result."""
    best: Optional[float] = None
    result: object = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    assert best is not None
    return best, result


def suite_result(wall_seconds: float, operations: Optional[int] = None, **extra) -> Dict:
    """Build one suite entry for :func:`write_results`."""
    ops_per_second = (
        operations / wall_seconds if operations and wall_seconds > 0 else None
    )
    payload: Dict = {
        "wall_seconds": wall_seconds,
        "operations": operations,
        "ops_per_second": ops_per_second,
    }
    payload.update(extra)
    return payload


def write_results(name: str, suites: Dict[str, Dict]) -> str:
    """Write ``BENCH_<name>.json`` next to the benchmarks and return its path."""
    path = os.path.join(_BENCH_DIR, f"BENCH_{name}.json")
    payload = {"benchmark": name, "fast_mode": FAST_MODE, "suites": suites}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
