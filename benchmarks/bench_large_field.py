"""Big-field kernel and large-payload end-to-end benchmarks (PR 4 gates).

Two acceptance gates:

* **Kernel gate**: windowed multiplication + chunked reduction must be at
  least 8x faster than the bit-serial oracle (``GF2m._mul_fallback``) on
  degree-256+ fields (full mode; the shrunken fast-mode run gates 3x).  The
  workload reuses each left operand across a batch of right operands — the
  access pattern of the equality-check encoding (``Y_e = X C_e`` multiplies
  each symbol of a node's value against every coding matrix), which is what
  the per-multiplicand window-table cache is designed for.
* **End-to-end gate**: the 512-byte, 4-instance NAB run on ``k7-unit`` (the
  profile that motivated the PR) must be at least 5x faster than the
  reconstructed pre-PR path — same code, but with the big-field kernels
  forced onto the bit-serial oracles and the packing/relay-path caches
  cleared per instance (their pre-PR lifetime).  The legacy baseline still
  benefits from the PR's ``_satisfies_mincut`` flow-cache routing, so the
  measured ratio is conservative.

Every fast-path result is asserted identical to its oracle before timing
counts for anything.
"""

from __future__ import annotations

import random
from contextlib import contextmanager

from _harness import fast_mode, scaled, suite_result, time_callable, write_results
from repro.classical.broadcast_default import BroadcastDefault
from repro.classical.relay import DisjointPathRelay, clear_relay_path_cache
from repro.core.nab import NetworkAwareBroadcast
from repro.gf.field import GF2m, get_field
from repro.gf.matrix import GFMatrix
from repro.graph.flow_cache import clear_mincut_cache
from repro.graph.spanning_trees import clear_pack_cache
from repro.workloads.topologies import topology

#: Degrees the kernel gate runs at ("degree-256+").
KERNEL_DEGREES = (256, 1024)
POOL_SIZE = 32
MUL_OPS = scaled(2048, 256)
REPEATS = scaled(3, 1)
MIN_MUL_SPEEDUP = scaled(8.0, 3.0)

E2E_PAYLOAD_BYTES = scaled(512, 128)
E2E_INSTANCES = scaled(4, 2)
MIN_E2E_SPEEDUP = scaled(5.0, 1.5)


@contextmanager
def _legacy_big_field_kernels():
    """Force the GF data plane onto the retained per-symbol bit-serial oracles.

    Reconstructs the pre-overhaul path end to end: degree>16 scalar
    arithmetic runs the bit-serial fallbacks, the matrix kernels run the
    frozen per-symbol loops (``vecmat_loop`` / ``matmul_loop`` — the stacked
    kernels of PR 5 bypass ``_mul_big``, so patching the scalar kernel alone
    would leave the fast encode in place), the step 2.2 flag agreement runs
    one classical broadcast per origin instead of the origin-batched shared
    rounds, and the clean-path relay batching is disabled
    (``paths_are_clean`` forced to ``False``) so every relay pays the
    per-label, per-copy message costs the true pre-PR path paid.
    """
    fast_mul = GF2m._mul_big
    fast_inv = GF2m._inv_big
    fast_square = GF2m.square
    fast_vecmat = GFMatrix.vecmat
    fast_matmul = GFMatrix.matmul
    fast_scale_vec = GF2m.scale_vec
    fast_from_all = BroadcastDefault.broadcast_from_all
    fast_paths_clean = DisjointPathRelay.paths_are_clean

    def legacy_square(self, a):
        if self._big:
            return self._mul_fallback(a, a)
        return fast_square(self, a)

    def legacy_scale_vec(self, scalar, vector):
        return self.scalar_mul(scalar, list(vector))

    def legacy_broadcast_from_all(self, values, bit_size, phase, context="broadcast_default_all"):
        outputs = {
            node: {}
            for node in self.participants
            if not self.network.fault_model.is_faulty(node)
        }
        for origin in self.participants:
            decided = self.broadcast(
                origin, values.get(origin), bit_size, phase,
                context=f"{context}|origin={origin}",
            )
            for receiver, received in decided.items():
                outputs[receiver][origin] = received
        return outputs

    GF2m._mul_big = GF2m._mul_fallback
    GF2m._inv_big = GF2m._inv_fallback
    GF2m.square = legacy_square
    GF2m.scale_vec = legacy_scale_vec
    GFMatrix.vecmat = GFMatrix.vecmat_loop
    GFMatrix.matmul = GFMatrix.matmul_loop
    BroadcastDefault.broadcast_from_all = legacy_broadcast_from_all
    DisjointPathRelay.paths_are_clean = lambda self, sender, receiver: False
    try:
        yield
    finally:
        GF2m._mul_big = fast_mul
        GF2m._inv_big = fast_inv
        GF2m.square = fast_square
        GF2m.scale_vec = fast_scale_vec
        GFMatrix.vecmat = fast_vecmat
        GFMatrix.matmul = fast_matmul
        BroadcastDefault.broadcast_from_all = fast_from_all
        DisjointPathRelay.paths_are_clean = fast_paths_clean


def _mul_suite(degree: int):
    field = get_field(degree)
    rng = random.Random(900 + degree)
    pool = [field.random_nonzero(rng) for _ in range(POOL_SIZE)]
    pairs = [
        (pool[i % POOL_SIZE], field.random_nonzero(rng)) for i in range(MUL_OPS)
    ]

    fast = [field.mul(a, b) for a, b in pairs]
    oracle = [field._mul_fallback(a, b) for a, b in pairs]
    assert fast == oracle, f"windowed mul diverged from the oracle at degree {degree}"

    def _fast():
        mul = field.mul
        for a, b in pairs:
            mul(a, b)

    def _oracle():
        mul = field._mul_fallback
        for a, b in pairs:
            mul(a, b)

    fast_seconds, _ = time_callable(_fast, repeat=REPEATS)
    oracle_seconds, _ = time_callable(_oracle, repeat=REPEATS)
    return fast_seconds, oracle_seconds


def _inv_suite(degree: int):
    field = get_field(degree)
    rng = random.Random(7000 + degree)
    elements = [field.random_nonzero(rng) for _ in range(scaled(64, 16))]
    fast = [field.inv(a) for a in elements]
    oracle = [field._inv_fallback(a) for a in elements]
    assert fast == oracle, "fast inverse diverged from the oracle"
    fast_seconds, _ = time_callable(lambda: [field.inv(a) for a in elements], repeat=REPEATS)
    oracle_seconds, _ = time_callable(
        lambda: [field._inv_fallback(a) for a in elements], repeat=REPEATS
    )
    return fast_seconds, oracle_seconds


def _e2e_values():
    rng = random.Random(20260729)
    return [bytes(rng.randrange(256) for _ in range(E2E_PAYLOAD_BYTES)) for _ in range(E2E_INSTANCES)]


def _run_nab(values):
    graph = topology("k7-unit")
    nab = NetworkAwareBroadcast(graph, 1, 1)
    return nab.run(values)


def _clear_structure_caches():
    clear_mincut_cache()
    clear_pack_cache()
    clear_relay_path_cache()


def _e2e_suite():
    values = _e2e_values()

    # New path: warm steady state (second run of the same topology), which is
    # what every sweep after the first cell actually pays.
    _clear_structure_caches()
    fast_seconds, fast_result = time_callable(lambda: _run_nab(values), repeat=2)

    # Legacy path: bit-serial kernels, caches scoped to one instance as they
    # effectively were pre-PR (per-object / per-call lifetimes).
    def _legacy():
        graph = topology("k7-unit")
        nab = NetworkAwareBroadcast(graph, 1, 1)
        results = []
        with _legacy_big_field_kernels():
            for value in values:
                clear_pack_cache()
                clear_relay_path_cache()
                results.append(nab.run_instance(value))
        return results

    legacy_seconds, legacy_results = time_callable(_legacy, repeat=1)

    # The two paths must produce identical protocol behaviour.
    assert [r.outputs for r in legacy_results] == [
        r.outputs for r in fast_result.instances
    ], "legacy and fast paths disagree on outputs"
    assert [r.elapsed for r in legacy_results] == [
        r.elapsed for r in fast_result.instances
    ], "legacy and fast paths disagree on the analytical clock"
    return fast_seconds, legacy_seconds, fast_result


def test_large_field_kernels_and_e2e(benchmark):
    def _run():
        mul = {degree: _mul_suite(degree) for degree in KERNEL_DEGREES}
        inv = _inv_suite(820)
        e2e = _e2e_suite()
        return mul, inv, e2e

    mul, inv, e2e = benchmark.pedantic(_run, rounds=1, iterations=1)

    suites = {}
    print()
    mul_speedups = {}
    for degree, (fast_seconds, oracle_seconds) in mul.items():
        speedup = oracle_seconds / fast_seconds
        mul_speedups[degree] = speedup
        print(
            f"GF(2^{degree}) mul x{MUL_OPS}: {fast_seconds * 1e3:8.2f} ms vs "
            f"{oracle_seconds * 1e3:8.2f} ms bit-serial ({speedup:5.1f}x)"
        )
        suites[f"mul_degree_{degree}"] = suite_result(
            fast_seconds,
            operations=MUL_OPS,
            field_degree=degree,
            baseline_wall_seconds=oracle_seconds,
            speedup_vs_bit_serial=speedup,
        )

    inv_fast, inv_oracle = inv
    inv_speedup = inv_oracle / inv_fast
    print(
        f"GF(2^820) inv:        {inv_fast * 1e3:8.2f} ms vs "
        f"{inv_oracle * 1e3:8.2f} ms bit-serial ({inv_speedup:5.1f}x)"
    )
    suites["inv_degree_820"] = suite_result(
        inv_fast,
        operations=scaled(64, 16),
        field_degree=820,
        baseline_wall_seconds=inv_oracle,
        speedup_vs_bit_serial=inv_speedup,
    )

    e2e_fast, e2e_legacy, run = e2e
    e2e_speedup = e2e_legacy / e2e_fast
    print(
        f"{E2E_PAYLOAD_BYTES}B x{E2E_INSTANCES} NAB on k7-unit: "
        f"{e2e_fast * 1e3:8.1f} ms vs {e2e_legacy * 1e3:8.1f} ms legacy "
        f"({e2e_speedup:5.1f}x)"
    )
    suites["nab_512b_k7_unit"] = suite_result(
        e2e_fast,
        operations=E2E_INSTANCES,
        payload_bytes=E2E_PAYLOAD_BYTES,
        instances=E2E_INSTANCES,
        legacy_wall_seconds=e2e_legacy,
        speedup_vs_legacy=e2e_speedup,
        bits_sent=run.total_bits,
    )

    path = write_results("large_field", suites)
    print(f"wrote {path}")

    for degree, speedup in mul_speedups.items():
        assert speedup >= MIN_MUL_SPEEDUP, (
            f"degree-{degree} mul speedup {speedup:.1f}x below the "
            f"{MIN_MUL_SPEEDUP:.0f}x gate"
        )
    assert e2e_speedup >= MIN_E2E_SPEEDUP, (
        f"end-to-end speedup {e2e_speedup:.1f}x below the {MIN_E2E_SPEEDUP:.0f}x gate"
    )
    if not fast_mode():
        assert inv_speedup >= 1.5, (
            f"fast inverse should clearly beat the oracle, got {inv_speedup:.1f}x"
        )
