#!/usr/bin/env python
"""Run every ``benchmarks/bench_*.py`` suite in fast mode.

Entry point for CI / pre-merge smoke runs: each benchmark file is executed
with ``REPRO_BENCH_FAST=1`` (suites shrink their problem sizes, see
``_harness.py``) in its own pytest process, and the script exits nonzero if
any suite fails or raises — so benchmarks cannot silently rot.

Usage:
    python benchmarks/run_all.py            # fast mode (default)
    REPRO_BENCH_FAST=0 python benchmarks/run_all.py   # full sizes
    python benchmarks/run_all.py --compare  # + diff artifacts vs committed baselines

``--compare`` appends an informational report (``compare_bench.py``) diffing
the freshly written ``BENCH_*.json`` files against the versions committed at
``HEAD``; it never changes the exit code (trend tooling, not a gate).
"""

from __future__ import annotations

import glob
import json
import os
import subprocess
import sys


def check_artifacts(bench_dir: str) -> list:
    """Names of ``BENCH_*.json`` artifacts with an empty ``suites`` dict.

    A suite module that collects zero measurements (e.g. every sub-benchmark
    skipped or a refactor renamed the recording calls) still writes a
    syntactically valid artifact — which would silently truncate the trend
    history.  The runner treats any such file as a failure.
    """
    offenders = []
    for path in sorted(glob.glob(os.path.join(bench_dir, "BENCH_*.json"))):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            offenders.append(os.path.basename(path))
            continue
        if not payload.get("suites"):
            offenders.append(os.path.basename(path))
    return offenders


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    compare = "--compare" in argv
    bench_dir = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(bench_dir)
    src_dir = os.path.join(repo_root, "src")

    env = dict(os.environ)
    env.setdefault("REPRO_BENCH_FAST", "1")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")

    suites = sorted(glob.glob(os.path.join(bench_dir, "bench_*.py")))
    if not suites:
        print("no benchmark suites found", file=sys.stderr)
        return 1

    failures = []
    for path in suites:
        name = os.path.basename(path)
        print(f"=== {name}", flush=True)
        completed = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", path], env=env, cwd=repo_root
        )
        if completed.returncode != 0:
            failures.append(name)

    empty = check_artifacts(bench_dir)
    if empty:
        print(
            "benchmark artifact(s) with an empty 'suites' dict (no measurements "
            f"recorded): {', '.join(empty)}",
            file=sys.stderr,
        )

    if compare:
        # Informational trend report; failures here must never fail the run.
        print("=== compare vs committed baselines", flush=True)
        subprocess.run(
            [sys.executable, os.path.join(bench_dir, "compare_bench.py")],
            env=env,
            cwd=repo_root,
        )

    if failures:
        print(f"{len(failures)} benchmark suite(s) FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    if empty:
        return 1
    print(f"all {len(suites)} benchmark suites passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
