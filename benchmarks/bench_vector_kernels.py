"""Stacked-vector GF kernel benchmarks (PR 5 gate).

Acceptance gate: the stacked encode — ``GFMatrix.vecmat`` over a coding-shaped
matrix, one windowed pass per (symbol, column window) with cached stacked-row
tables — must be at least 4x faster than the frozen per-symbol oracle
(``GFMatrix.vecmat_loop``, one windowed multiplication per (symbol, column)
pair) at degree >= 256 with a column batch >= 16 (full mode; the shrunken
fast-mode run gates 1.5x).  The oracle is run warm too (its per-multiplicand
window tables cached), so the ratio measures the stacking, not cold tables.

Informational suites record the ``scale_vec`` vector API against its
``scalar_mul`` oracle and the batched multi-edge encode
(``coding.encode_on_edges``) against the per-edge loop it replaced.

Every stacked result is asserted identical to its oracle before any timing
counts.
"""

from __future__ import annotations

import random

from _harness import fast_mode, scaled, suite_result, time_callable, write_results
from repro.coding.coding_matrix import encode_on_edges, encode_value, generate_coding_scheme
from repro.gf.field import get_field
from repro.gf.matrix import GFMatrix
from repro.workloads.topologies import topology

#: The gate regime: degree >= 256, symbol batch (columns) >= 16.  The 4x gate
#: is enforced at the boundary degree 256; at degree 1024 the per-pass
#: big-integer word work (which stacking cannot remove, only the interpreter
#: dispatch around it) is a larger share, so its anti-rot gate is 2.5x.
GATE_DEGREES = (256, 1024)
GATE_RHO = 4
GATE_COLUMNS = 16
ENCODES = scaled(512, 96)
REPEATS = scaled(3, 1)
MIN_ENCODE_SPEEDUP = {256: scaled(4.0, 1.5), 1024: scaled(2.5, 1.2)}

SCALE_DEGREE = 256
SCALE_LEN = 64
SCALE_OPS = scaled(512, 96)


def _encode_suite(degree: int):
    field = get_field(degree)
    rng = random.Random(1200 + degree)
    matrix = GFMatrix.random(field, GATE_RHO, GATE_COLUMNS, rng)
    vectors = [
        [field.random_element(rng) for _ in range(GATE_RHO)] for _ in range(ENCODES)
    ]

    stacked = [matrix.vecmat(vector) for vector in vectors]
    oracle = [matrix.vecmat_loop(vector) for vector in vectors]
    assert stacked == oracle, f"stacked encode diverged from the oracle at degree {degree}"

    def _stacked():
        vecmat = matrix.vecmat
        for vector in vectors:
            vecmat(vector)

    def _oracle():
        vecmat_loop = matrix.vecmat_loop
        for vector in vectors:
            vecmat_loop(vector)

    # Warm both paths (stacked-row tables and per-value window tables).
    _stacked()
    _oracle()
    stacked_seconds, _ = time_callable(_stacked, repeat=REPEATS)
    oracle_seconds, _ = time_callable(_oracle, repeat=REPEATS)
    return stacked_seconds, oracle_seconds


def _scale_vec_suite():
    field = get_field(SCALE_DEGREE)
    rng = random.Random(71)
    vector = [field.random_element(rng) for _ in range(SCALE_LEN)]
    scalars = [field.random_nonzero(rng) for _ in range(SCALE_OPS)]
    assert [field.scale_vec(s, vector) for s in scalars[:4]] == [
        field.scalar_mul(s, vector) for s in scalars[:4]
    ]

    def _vec():
        scale = field.scale_vec
        for scalar in scalars:
            scale(scalar, vector)

    def _loop():
        scalar_mul = field.scalar_mul
        for scalar in scalars:
            scalar_mul(scalar, vector)

    _vec()
    vec_seconds, _ = time_callable(_vec, repeat=REPEATS)
    loop_seconds, _ = time_callable(_loop, repeat=REPEATS)
    return vec_seconds, loop_seconds


def _multi_edge_suite():
    graph = topology("k7-unit")
    scheme = generate_coding_scheme(graph, 4, 256, seed=2)
    rng = random.Random(99)
    edges = sorted(scheme.matrices)
    vectors = [
        [scheme.field.random_element(rng) for _ in range(scheme.rho)]
        for _ in range(scaled(64, 16))
    ]
    sample = encode_on_edges(scheme, vectors[0], edges)
    assert sample == {
        edge: encode_value(scheme, vectors[0], edge) for edge in edges
    }

    def _batched():
        for vector in vectors:
            encode_on_edges(scheme, vector, edges)

    def _per_edge():
        for vector in vectors:
            for edge in edges:
                scheme.matrix_for(edge).vecmat_loop(vector)

    _batched()
    batched_seconds, _ = time_callable(_batched, repeat=REPEATS)
    per_edge_seconds, _ = time_callable(_per_edge, repeat=REPEATS)
    return batched_seconds, per_edge_seconds, len(edges)


def test_vector_kernels(benchmark):
    def _run():
        encode = {degree: _encode_suite(degree) for degree in GATE_DEGREES}
        scale = _scale_vec_suite()
        multi = _multi_edge_suite()
        return encode, scale, multi

    encode, scale, multi = benchmark.pedantic(_run, rounds=1, iterations=1)

    suites = {}
    print()
    encode_speedups = {}
    for degree, (stacked_seconds, oracle_seconds) in encode.items():
        speedup = oracle_seconds / stacked_seconds
        encode_speedups[degree] = speedup
        print(
            f"GF(2^{degree}) encode {GATE_RHO}x{GATE_COLUMNS} x{ENCODES}: "
            f"{stacked_seconds * 1e3:8.2f} ms stacked vs "
            f"{oracle_seconds * 1e3:8.2f} ms per-symbol ({speedup:5.1f}x)"
        )
        suites[f"encode_degree_{degree}"] = suite_result(
            stacked_seconds,
            operations=ENCODES,
            field_degree=degree,
            rho=GATE_RHO,
            columns=GATE_COLUMNS,
            baseline_wall_seconds=oracle_seconds,
            speedup_vs_per_symbol=speedup,
        )

    vec_seconds, loop_seconds = scale
    scale_speedup = loop_seconds / vec_seconds
    print(
        f"GF(2^{SCALE_DEGREE}) scale_vec[{SCALE_LEN}] x{SCALE_OPS}: "
        f"{vec_seconds * 1e3:8.2f} ms vs {loop_seconds * 1e3:8.2f} ms loop "
        f"({scale_speedup:5.1f}x)"
    )
    suites["scale_vec_degree_256"] = suite_result(
        vec_seconds,
        operations=SCALE_OPS,
        field_degree=SCALE_DEGREE,
        vector_length=SCALE_LEN,
        baseline_wall_seconds=loop_seconds,
        speedup_vs_per_symbol=scale_speedup,
    )

    batched_seconds, per_edge_seconds, edge_count = multi
    multi_speedup = per_edge_seconds / batched_seconds
    print(
        f"k7-unit {edge_count}-edge encode batch: {batched_seconds * 1e3:8.2f} ms vs "
        f"{per_edge_seconds * 1e3:8.2f} ms per-edge ({multi_speedup:5.1f}x)"
    )
    suites["encode_on_edges_k7"] = suite_result(
        batched_seconds,
        operations=scaled(64, 16),
        edges=edge_count,
        baseline_wall_seconds=per_edge_seconds,
        speedup_vs_per_edge=multi_speedup,
    )

    path = write_results("vector_kernels", suites)
    print(f"wrote {path}")

    for degree, speedup in encode_speedups.items():
        gate = MIN_ENCODE_SPEEDUP[degree]
        assert speedup >= gate, (
            f"degree-{degree} stacked encode speedup {speedup:.1f}x below the "
            f"{gate:.1f}x gate"
        )
    if not fast_mode():
        assert multi_speedup >= 1.0, (
            f"multi-edge batching should not regress, got {multi_speedup:.1f}x"
        )
