"""Theorem 2 reproduction: the capacity upper bound dominates every achievable rate.

Paper claim (Theorem 2): ``C_BB(G) <= min(gamma*, 2 rho*)``.

We cannot enumerate all BB algorithms, but we can check the bound's two
defining consequences on a spread of topologies:

* it is never below NAB's Eq. 6 lower bound (otherwise the theorems would be
  mutually inconsistent), and
* it is never above the trivial outer bounds it is derived from — the source's
  broadcast min-cut ``gamma_1`` (Appendix F.1 cuts) and twice the smallest
  pairwise undirected min-cut ``U_1`` (Appendix F.2 cuts).
"""

from __future__ import annotations

import random

from _harness import scaled, suite_result, time_callable, write_results
from repro.analysis.reporting import format_table
from repro.capacity.bounds import analyse_network
from repro.capacity.gamma_star import gamma_of_full_graph
from repro.capacity.rho_star import u1_value
from repro.graph.generators import random_connected_network
from repro.workloads.topologies import topology

TOPOLOGIES = ["k4-unit", "k4-fast", "k5-unit", "k7-unit", "ring7-chords", "bottleneck4", "bottleneck5"]


def _analyse_all():
    rows = []
    for name in TOPOLOGIES:
        graph = topology(name)
        analysis = analyse_network(graph, 1, 1)
        gamma1 = gamma_of_full_graph(graph, 1)
        u1 = u1_value(graph, 1)
        rows.append((name, analysis, gamma1, u1))
    for seed in range(scaled(4, 1)):
        graph = random_connected_network(6, 3, random.Random(seed), max_capacity=4)
        analysis = analyse_network(graph, 1, 1)
        rows.append((f"random6/seed{seed}", analysis, gamma_of_full_graph(graph, 1), u1_value(graph, 1)))
    return rows


def test_theorem2_upper_bound_consistency(benchmark):
    wall_seconds, rows = time_callable(
        lambda: benchmark.pedantic(_analyse_all, rounds=1, iterations=1)
    )
    write_results(
        "theorem2_capacity_bound",
        {
            "analyse_all": suite_result(
                wall_seconds,
                operations=len(rows),
                topologies=[name for name, _analysis, _gamma1, _u1 in rows],
            )
        },
    )
    table = []
    for name, analysis, gamma1, u1 in rows:
        table.append(
            [
                name,
                analysis.gamma_star,
                analysis.rho_star,
                float(analysis.nab_lower_bound),
                float(analysis.capacity_upper_bound),
                gamma1,
                u1,
            ]
        )
    print()
    print(
        format_table(
            ["topology", "gamma*", "rho*", "T_NAB (Eq.6)", "min(gamma*,2rho*)", "gamma_1", "U_1"],
            table,
        )
    )
    for _name, analysis, gamma1, u1 in rows:
        assert analysis.capacity_upper_bound >= analysis.nab_lower_bound
        assert analysis.capacity_upper_bound <= gamma1
        assert analysis.capacity_upper_bound <= u1
