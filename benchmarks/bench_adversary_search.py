"""Adversarial-search throughput: candidates/second and best objective found.

Runs :func:`repro.adversary.search.run_search` on the ``adversary_zoo``
arena (k7-unit, f = 2) with a fixed seed and budget, and records in
``BENCH_adversary_search.json``:

* candidates evaluated per second (each candidate is a full engine cell:
  scenario build, 8-instance NAB run, bounds, forensic audit),
* the best objective value the fixed-budget search reaches, so search
  *effectiveness* is tracked from PR to PR alongside its speed — a refactor
  that keeps the iteration rate but loses the worst case is a regression.

The search is deterministic, so the best score for a given (seed, budget) is
a constant of the code; the assertion that it strictly beats the hand-written
ceiling (1 dispute-control execution on this arena) keeps the artifact
honest.
"""

from __future__ import annotations

import os
import tempfile
from fractions import Fraction

from _harness import scaled, suite_result, time_callable, write_results
from repro.adversary.search import run_search

TOPOLOGY = "k7-unit"
SEED = 0
BUDGET = scaled(48, 6)
#: Forced dispute-control executions of the best hand-written strategy on
#: this arena (every one forces exactly 1; see the adversary_zoo spec).
HAND_WRITTEN_CEILING = Fraction(1)


def _search(out_path):
    return run_search(
        TOPOLOGY,
        objective="dispute-control",
        budget=BUDGET,
        seed=SEED,
        out_path=out_path,
        max_faults=2,
        resume=False,
    )


def test_adversary_search_throughput(benchmark):
    def _run():
        with tempfile.TemporaryDirectory() as tmp:
            out_path = os.path.join(tmp, "search.jsonl")
            seconds, summary = time_callable(lambda: _search(out_path))
        return seconds, summary

    seconds, summary = benchmark.pedantic(_run, rounds=1, iterations=1)

    assert summary.iterations == BUDGET
    assert summary.best_score is not None

    rate = BUDGET / seconds if seconds > 0 else 0.0
    print()
    print(f"search on {TOPOLOGY}: {BUDGET} candidates in {seconds:.2f}s "
          f"({rate:.1f} candidates/s)")
    print(f"best objective (dispute-control): {summary.best_score}")
    print(f"best strategy_params: {summary.best_row.get('strategy_params')}")

    path = write_results(
        "adversary_search",
        {
            "search": suite_result(
                seconds,
                operations=BUDGET,
                topology=TOPOLOGY,
                seed=SEED,
                objective="dispute-control",
                best_score=str(summary.best_score),
                best_strategy_params=summary.best_row.get("strategy_params"),
                best_faulty_nodes=summary.best_row.get("faulty_nodes"),
            ),
        },
    )
    print(f"wrote {path}")
    assert summary.best_score > HAND_WRITTEN_CEILING, (
        f"fixed-budget search no longer beats the hand-written ceiling: "
        f"{summary.best_score} <= {HAND_WRITTEN_CEILING}"
    )
