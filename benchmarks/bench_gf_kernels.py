"""GF(2^m) kernel microbenchmarks: table-driven arithmetic vs the polynomial baseline.

The Phase-2 equality check and the Theorem 1 coding-matrix verification are
dominated by dense linear algebra over ``GF(2^8)``-sized fields: matrix
products (encoding ``Y_e = X C_e``) and Gaussian elimination (rank of the
block matrix ``C_H``).  This benchmark times the table-driven kernels of
:mod:`repro.gf` against a baseline that performs the *same* algorithms with
the polynomial-arithmetic fallback (the pre-table implementation), asserts
the results are numerically identical, and requires at least a 10x speedup
on both matmul and elimination.
"""

from __future__ import annotations

import random
from typing import List

from _harness import scaled, suite_result, time_callable, write_results
from repro.gf.field import GF2m
from repro.gf.matrix import GFMatrix

MATRIX_SIZE = scaled(36, 12)
MUL_OPS = scaled(200_000, 20_000)
REPEATS = scaled(3, 1)
# The >=10x acceptance gate applies to the full-size run; the tiny fast-mode
# matrices are dominated by fixed per-row overhead, so the smoke run only
# checks that the table path is clearly ahead.
MIN_SPEEDUP = scaled(10.0, 3.0)


def _baseline_matmul(field: GF2m, left: List[List[int]], right: List[List[int]]) -> List[List[int]]:
    """The pre-table matmul: per-element polynomial multiplication."""
    mul = field._mul_fallback
    columns = list(zip(*right))
    product = []
    for row in left:
        product_row = []
        for col in columns:
            accumulator = 0
            for a, b in zip(row, col):
                if a and b:
                    accumulator ^= mul(a, b)
            product_row.append(accumulator)
        product.append(product_row)
    return product


def _baseline_eliminated(field: GF2m, data: List[List[int]]):
    """The pre-table Gaussian elimination (same pivoting, polynomial ops)."""
    work = [list(row) for row in data]
    rows, cols = len(work), len(work[0])
    mul, inv = field._mul_fallback, field._inv_fallback
    pivot_cols: List[int] = []
    pivot_row = 0
    for col in range(cols):
        pivot = None
        for r in range(pivot_row, rows):
            if work[r][col] != 0:
                pivot = r
                break
        if pivot is None:
            continue
        if pivot != pivot_row:
            work[pivot_row], work[pivot] = work[pivot], work[pivot_row]
        inv_pivot = inv(work[pivot_row][col])
        work[pivot_row] = [mul(inv_pivot, entry) for entry in work[pivot_row]]
        for r in range(rows):
            if r != pivot_row and work[r][col] != 0:
                factor = work[r][col]
                work[r] = [
                    entry ^ mul(factor, pivot_entry)
                    for entry, pivot_entry in zip(work[r], work[pivot_row])
                ]
        pivot_cols.append(col)
        pivot_row += 1
        if pivot_row == rows:
            break
    return work, pivot_cols


def _run():
    field = GF2m(8)
    rng = random.Random(20260729)
    size = MATRIX_SIZE
    left = GFMatrix.random(field, size, size, rng)
    right = GFMatrix.random(field, size, size, rng)

    # Scalar multiplication throughput (table path), for the ops/sec record.
    pairs = [
        (field.random_nonzero(rng), field.random_nonzero(rng)) for _ in range(1024)
    ]

    def _mul_sweep():
        mul = field.mul
        for _ in range(MUL_OPS // len(pairs)):
            for a, b in pairs:
                mul(a, b)

    mul_seconds, _ = time_callable(_mul_sweep, repeat=REPEATS)

    fast_matmul_seconds, fast_product = time_callable(lambda: left.matmul(right), repeat=REPEATS)
    base_matmul_seconds, base_product = time_callable(
        lambda: _baseline_matmul(field, left.to_lists(), right.to_lists()), repeat=REPEATS
    )
    assert fast_product.to_lists() == base_product, "table matmul diverged from baseline"

    fast_elim_seconds, fast_elim = time_callable(lambda: left._eliminated(), repeat=REPEATS)
    base_elim_seconds, base_elim = time_callable(
        lambda: _baseline_eliminated(field, left.to_lists()), repeat=REPEATS
    )
    assert fast_elim[0] == base_elim[0], "table elimination diverged from baseline"
    assert fast_elim[1] == base_elim[1], "pivot columns diverged from baseline"

    return {
        "mul_seconds": mul_seconds,
        "matmul": (fast_matmul_seconds, base_matmul_seconds),
        "elimination": (fast_elim_seconds, base_elim_seconds),
    }


def test_table_kernels_at_least_10x_faster(benchmark):
    timings = benchmark.pedantic(_run, rounds=1, iterations=1)
    fast_matmul, base_matmul = timings["matmul"]
    fast_elim, base_elim = timings["elimination"]
    matmul_speedup = base_matmul / fast_matmul
    elim_speedup = base_elim / fast_elim
    ops = MATRIX_SIZE**3
    print()
    print(f"GF(2^8) {MATRIX_SIZE}x{MATRIX_SIZE} matmul:      "
          f"{fast_matmul * 1e3:8.2f} ms vs {base_matmul * 1e3:8.2f} ms baseline "
          f"({matmul_speedup:5.1f}x)")
    print(f"GF(2^8) {MATRIX_SIZE}x{MATRIX_SIZE} elimination: "
          f"{fast_elim * 1e3:8.2f} ms vs {base_elim * 1e3:8.2f} ms baseline "
          f"({elim_speedup:5.1f}x)")
    path = write_results(
        "gf_kernels",
        {
            "scalar_mul": suite_result(
                timings["mul_seconds"],
                operations=(MUL_OPS // 1024) * 1024,
                field_degree=8,
            ),
            "matmul": suite_result(
                fast_matmul,
                operations=ops,
                matrix_size=MATRIX_SIZE,
                baseline_wall_seconds=base_matmul,
                speedup_vs_polynomial=matmul_speedup,
            ),
            "elimination": suite_result(
                fast_elim,
                operations=ops,
                matrix_size=MATRIX_SIZE,
                baseline_wall_seconds=base_elim,
                speedup_vs_polynomial=elim_speedup,
            ),
        },
    )
    print(f"wrote {path}")
    assert matmul_speedup >= MIN_SPEEDUP, (
        f"matmul speedup {matmul_speedup:.1f}x below the {MIN_SPEEDUP:.0f}x target"
    )
    assert elim_speedup >= MIN_SPEEDUP, (
        f"elimination speedup {elim_speedup:.1f}x below the {MIN_SPEEDUP:.0f}x target"
    )
