"""Kernel-backend benchmarks (PR 7 gate): every registered GF backend side-by-side.

Two suites:

* ``clmul_degree_<m>`` — one warm scalar carry-less product per available
  backend across degrees 256-21846 (the ``large_payloads`` +
  ``huge_payloads`` regime), recording microseconds per product.  This is the
  raw-primitive comparison the crossover policy in ``repro.gf.backends`` is
  derived from: on CPython's 30-bit-digit bignum the ``bitspread`` backend's
  ``factor``-fold operand blowup costs more than the windowed scan at every
  degree listed here (it wins only on GMP-class interpreter builds), while
  the FFT-based ``numpy`` backend overtakes everything from degree ~4096.

* ``encode_degree_<m>`` — the acceptance gate.  The coding-shaped encode
  (``GFMatrix.vecmat``) under the *auto-selected* backend must beat the same
  encode pinned to the PR 5 stacked windowed kernels by >= 3x at degrees
  4096 and 8192 (full mode; fast mode gates a reduced margin on shrunken
  shapes).  Values are asserted identical across backends before any timing.

Extras record :func:`repro.gf.backends.measure_crossover` and the gate
fields' ``describe()`` snapshots, so the committed baseline documents which
backend the policy picked and why.
"""

from __future__ import annotations

import random

from _harness import fast_mode, scaled, suite_result, time_callable, write_results
from repro.gf import backends
from repro.gf.field import GF2m
from repro.gf.matrix import GFMatrix

#: Scalar-product degrees: the large_payloads regime up to the top
#: huge_payloads degree (GF(2^21846) carries the 256 KB / k5-hbd cells).
CLMUL_DEGREES = scaled((256, 1024, 4096, 8192, 21846), (256, 1024, 4096))

#: The quadratic bit-serial oracle is only timed where it stays cheap.
BITSERIAL_MAX_DEGREE = 1024

#: Encode-gate shapes: rho x columns of a coding-shaped matrix at the two
#: degrees where the numpy FFT backend must carry the huge_payloads grid.
GATE_DEGREES = (4096, 8192)
GATE_RHO = 8
GATE_COLUMNS = 16
ENCODES = scaled(24, 4)
REPEATS = scaled(3, 1)
#: Full-mode floor is the ISSUE's 3x; measured on the reference box the auto
#: backend clears it with margin (~4.4x at 4096, ~8.9x at 8192).  Fast mode
#: shrinks ENCODES below amortisation, so it only anti-rot gates.
MIN_ENCODE_SPEEDUP = {4096: scaled(3.0, 1.2), 8192: scaled(3.0, 1.5)}


def _scalar_suites():
    results = {}
    for degree in CLMUL_DEGREES:
        rng = random.Random(7000 + degree)
        a = rng.getrandbits(degree) | (1 << (degree - 1))
        b = rng.getrandbits(degree) | (1 << (degree - 1))
        iterations = max(1, scaled(400_000, 60_000) // degree)
        per_backend = {}
        reference = None
        for name in backends.available_backend_names():
            if name == "bitserial" and degree > BITSERIAL_MAX_DEGREE:
                continue
            field = GF2m(degree, kernel_backend=name)
            product = field.mul(a, b)
            if reference is None:
                reference = product
            assert product == reference, (
                f"backend {name} diverged at degree {degree}"
            )

            def _run(mul=field.mul):
                for _ in range(iterations):
                    mul(a, b)

            _run()  # warm operand/window caches
            seconds, _ = time_callable(_run, repeat=REPEATS)
            per_backend[name] = seconds / iterations
        results[degree] = (iterations, per_backend)
    return results


def _encode_suite(degree: int):
    windowed_field = GF2m(degree, kernel_backend="windowed")
    auto_field = GF2m(degree)
    rng = random.Random(7100 + degree)
    entries = [
        [windowed_field.random_element(rng) for _ in range(GATE_COLUMNS)]
        for _ in range(GATE_RHO)
    ]
    windowed_matrix = GFMatrix(windowed_field, entries)
    auto_matrix = GFMatrix(auto_field, entries)
    vectors = [
        [windowed_field.random_element(rng) for _ in range(GATE_RHO)]
        for _ in range(ENCODES)
    ]

    auto_out = [auto_matrix.vecmat(vector) for vector in vectors]
    windowed_out = [windowed_matrix.vecmat(vector) for vector in vectors]
    assert auto_out == windowed_out, (
        f"auto backend encode diverged from the windowed kernels at degree {degree}"
    )

    def _auto():
        vecmat = auto_matrix.vecmat
        for vector in vectors:
            vecmat(vector)

    def _windowed():
        vecmat = windowed_matrix.vecmat
        for vector in vectors:
            vecmat(vector)

    # Warm both paths: stacked rows + window tables, and the FFT matrix tensor.
    _auto()
    _windowed()
    auto_seconds, _ = time_callable(_auto, repeat=REPEATS)
    windowed_seconds, _ = time_callable(_windowed, repeat=REPEATS)
    return auto_seconds, windowed_seconds, auto_field


def test_kernel_backends(benchmark):
    def _run():
        scalars = _scalar_suites()
        encodes = {degree: _encode_suite(degree) for degree in GATE_DEGREES}
        crossover = backends.measure_crossover(
            degrees=scaled((256, 1024, 4096, 8192), (256, 1024)),
            repeats=REPEATS,
        )
        return scalars, encodes, crossover

    scalars, encodes, crossover = benchmark.pedantic(_run, rounds=1, iterations=1)

    suites = {}
    print()
    for degree, (iterations, per_backend) in scalars.items():
        parts = "  ".join(
            f"{name} {seconds * 1e6:9.1f}us" for name, seconds in sorted(per_backend.items())
        )
        print(f"GF(2^{degree:<5}) clmul x{iterations}: {parts}")
        fastest = min(per_backend, key=per_backend.get)
        suites[f"clmul_degree_{degree}"] = suite_result(
            per_backend[fastest] * iterations,
            operations=iterations,
            field_degree=degree,
            fastest_backend=fastest,
            seconds_per_op={name: seconds for name, seconds in per_backend.items()},
        )

    gate_speedups = {}
    for degree, (auto_seconds, windowed_seconds, auto_field) in encodes.items():
        speedup = windowed_seconds / auto_seconds
        gate_speedups[degree] = speedup
        description = auto_field.describe()
        print(
            f"GF(2^{degree}) encode {GATE_RHO}x{GATE_COLUMNS} x{ENCODES}: "
            f"{auto_seconds * 1e3:8.2f} ms {description['kernel_backend']} vs "
            f"{windowed_seconds * 1e3:8.2f} ms windowed ({speedup:5.1f}x)"
        )
        suites[f"encode_degree_{degree}"] = suite_result(
            auto_seconds,
            operations=ENCODES,
            field_degree=degree,
            rho=GATE_RHO,
            columns=GATE_COLUMNS,
            auto_backend=description["kernel_backend"],
            selected_by=description["selected_by"],
            crossover=description["crossover"],
            baseline_wall_seconds=windowed_seconds,
            speedup_vs_windowed_stacked=speedup,
        )

    suites["crossover_probe"] = suite_result(
        sum(min(row.values()) for row in crossover.values()),
        operations=None,
        seconds_per_op={
            str(degree): row for degree, row in sorted(crossover.items())
        },
        numpy_min_degree=backends.NUMPY_MIN_DEGREE,
        fft_scalar_min_degree=backends.FFT_SCALAR_MIN_DEGREE,
    )

    path = write_results("kernel_backends", suites)
    print(f"wrote {path}")

    auto_names = {
        degree: encodes[degree][2].kernel_backend_name() for degree in GATE_DEGREES
    }
    if all(name == "windowed" for name in auto_names.values()):
        # No accelerated backend importable: the auto policy legitimately
        # resolves to the windowed kernels themselves; nothing to gate.
        print("numpy backend unavailable; encode gate skipped")
        return
    for degree, speedup in gate_speedups.items():
        gate = MIN_ENCODE_SPEEDUP[degree]
        assert speedup >= gate, (
            f"degree-{degree} auto-backend encode speedup {speedup:.1f}x below "
            f"the {gate:.1f}x gate over the PR 5 stacked kernels"
        )
