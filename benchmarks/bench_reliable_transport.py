"""ARQ transport overhead: retransmission cost versus link-loss rate.

Drives a fixed synthetic traffic pattern through :class:`ReliableNetwork`
at several loss rates (the registered ``drop-10pct`` plan rescaled via
``LinkFaultPlan.scaled``) and records, per rate, the wall-clock send
throughput, the retransmitted-bit overhead relative to the clean bit
ledger, and the measured elapsed clock.  Results land in
``BENCH_reliable_transport.json``.

Two correctness gates ride along with the timing:

* **Zero-loss gate** — at loss factor 0 the ARQ layer must charge exactly
  nothing: no retransmitted bits, no timeout delay, and a bit ledger and
  clock identical to a plain :class:`ScheduledNetwork` carrying the same
  traffic.  Reliability must be free when the links are clean.
* **Ledger gate** — at every loss rate the lossy bit total must equal the
  clean total plus the reported ``retransmit_bits``, and the measured
  replay clock must equal the analytical accountant (the zero-latency
  scheduler contract survives fault activity).
"""

from __future__ import annotations

from fractions import Fraction

from _harness import scaled, suite_result, time_callable, write_results
from repro.graph.network_graph import NetworkGraph
from repro.sched.faults import fault_plan
from repro.transport import ReliableNetwork, ScheduledNetwork

#: Scale factors applied to the registered ``drop-10pct`` plan, i.e. the
#: per-attempt drop probabilities swept by the benchmark.
LOSS_FACTORS = (
    (Fraction(0), "loss-0pct"),
    (Fraction(1, 10), "loss-1pct"),
    (Fraction(1, 2), "loss-5pct"),
    (Fraction(1), "loss-10pct"),
    (Fraction(2), "loss-20pct"),
)

MESSAGES = scaled(20_000, 2_000)
PHASES = 8


def _graph() -> NetworkGraph:
    return NetworkGraph.from_edges(
        {(1, 2): 4, (2, 3): 2, (3, 4): 2, (1, 3): 8, (2, 4): 4, (1, 4): 1}
    )


def _drive(network) -> None:
    """Send the fixed traffic pattern: round-robin edges, varying sizes."""
    edges = sorted(_graph().edge_set())
    for index in range(MESSAGES):
        tail, head = edges[index % len(edges)]
        bits = 1 + (index % 16)
        network.send(tail, head, b"x", bits, f"phase-{index % PHASES}")


def test_reliable_transport_overhead_vs_loss(benchmark):
    def _run():
        baseline = ScheduledNetwork(_graph())
        baseline_seconds, _ = time_callable(lambda: _drive(baseline))
        rows = []
        for factor, label in LOSS_FACTORS:
            plan = fault_plan("drop-10pct").scaled(factor)
            network = ReliableNetwork(_graph(), fault_plan=plan)
            seconds, _ = time_callable(lambda: _drive(network))
            rows.append((label, factor, seconds, network))
        return baseline, baseline_seconds, rows

    baseline, baseline_seconds, rows = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    clean_bits = baseline.accountant.total_bits()
    suites = {
        "scheduled-baseline": suite_result(
            baseline_seconds, operations=MESSAGES, bits=clean_bits
        )
    }

    print()
    print(f"{MESSAGES} sends over {len(_graph().edge_set())} edges, {PHASES} phases")
    print(f"baseline (ScheduledNetwork): {baseline_seconds:6.3f}s  "
          f"({MESSAGES / baseline_seconds:8.0f} sends/s)")

    for label, factor, seconds, network in rows:
        stats = network.reliability_stats()
        retransmit_bits = stats["retransmit_bits"]
        total_bits = network.accountant.total_bits()
        overhead = retransmit_bits / clean_bits if clean_bits else 0.0

        # Ledger gate: faults only ever *add* accounted wire copies, and the
        # measured replay clock tracks the analytical accountant exactly.
        assert total_bits == clean_bits + retransmit_bits, (
            f"{label}: bit ledger diverged from clean + retransmit"
        )
        assert network.elapsed_time() == network.accountant.total_elapsed(), (
            f"{label}: measured clock diverged from the analytical oracle"
        )

        if factor == 0:
            # Zero-loss gate: the ARQ layer must be free on clean links.
            assert retransmit_bits == 0, "zero-loss run retransmitted bits"
            assert stats["retransmissions"] == 0
            assert Fraction(stats["timeout_time"]) == 0
            assert total_bits == clean_bits
            assert network.elapsed_time() == baseline.elapsed_time(), (
                "zero-loss ARQ clock diverged from plain ScheduledNetwork"
            )

        suites[label] = suite_result(
            seconds,
            operations=MESSAGES,
            loss_factor=str(factor),
            bits=total_bits,
            retransmit_bits=retransmit_bits,
            retransmissions=stats["retransmissions"],
            dropped_messages=stats["dropped_messages"],
            overhead_vs_clean=overhead,
            elapsed_clock=str(network.elapsed_time()),
        )
        print(f"{label:>10}: {seconds:6.3f}s  ({MESSAGES / seconds:8.0f} sends/s)  "
              f"retransmit {retransmit_bits:>7} bits  "
              f"overhead {overhead:6.2%}  "
              f"dead {stats['dropped_messages']}")

    path = write_results("reliable_transport", suites)
    print(f"wrote {path}")
