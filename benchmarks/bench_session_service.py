"""Session-service throughput: sessions/minute, serial vs supervised pool.

Runs the ISSUE 10 headline profile — fault-free ``k7-unit`` sessions with a
2-byte payload and a single instance each — through
:class:`repro.service.BroadcastSessionService` twice, serially and with 4
pooled workers, and records sessions/minute for both plus the pool speedup in
``BENCH_session_service.json``.  The two runs must produce byte-identical
session files (the service's determinism contract).  In full mode the pooled
run is gated at >= 10k sessions/minute; fast mode shrinks the batch and skips
the gate.
"""

from __future__ import annotations

import os
import tempfile

from _harness import fast_mode, scaled, suite_result, time_callable, write_results
from repro.service import BroadcastSessionService, ServiceConfig, generate_sessions

SESSIONS = scaled(600, 40)
WORKERS = 4
MIN_SESSIONS_PER_MINUTE = 10_000.0

PROFILE = dict(
    topologies=("k7-unit",),
    strategies=("fault-free",),
    payload_bytes=2,
    instances=1,
    max_faults=1,
    seed=0,
    service="bench",
)


def _run_service(out_path: str, workers: int):
    config = ServiceConfig(
        name="bench", out_path=out_path, workers=workers, fsync_every=64
    )
    sessions = generate_sessions(SESSIONS, **PROFILE)
    return BroadcastSessionService(config).run(sessions, resume=False)


def test_session_service_throughput(benchmark):
    def _run():
        with tempfile.TemporaryDirectory() as tmp:
            serial_out = os.path.join(tmp, "serial.jsonl")
            pooled_out = os.path.join(tmp, "pooled.jsonl")
            serial_seconds, serial_summary = time_callable(
                lambda: _run_service(serial_out, 1)
            )
            pooled_seconds, pooled_summary = time_callable(
                lambda: _run_service(pooled_out, WORKERS)
            )
            with open(serial_out, "rb") as handle:
                serial_bytes = handle.read()
            with open(pooled_out, "rb") as handle:
                pooled_bytes = handle.read()
        return (
            serial_seconds, serial_summary, serial_bytes,
            pooled_seconds, pooled_summary, pooled_bytes,
        )

    (
        serial_seconds, serial_summary, serial_bytes,
        pooled_seconds, pooled_summary, pooled_bytes,
    ) = benchmark.pedantic(_run, rounds=1, iterations=1)

    assert serial_summary.computed_sessions == SESSIONS
    assert pooled_summary.computed_sessions == SESSIONS
    assert serial_summary.quarantined_sessions == 0
    assert pooled_summary.quarantined_sessions == 0
    assert pooled_bytes == serial_bytes, "pooled service diverged from serial"

    serial_rate = SESSIONS / serial_seconds * 60.0
    pooled_rate = SESSIONS / pooled_seconds * 60.0
    speedup = serial_seconds / pooled_seconds if pooled_seconds > 0 else 0.0
    cpu_count = os.cpu_count() or 1
    gate_enforced = not fast_mode()
    # On hosts without the CPUs to parallelise, worker processes cannot beat
    # serial execution, so the service's best configuration is what's gated.
    gated_rate = pooled_rate if cpu_count >= WORKERS else max(serial_rate, pooled_rate)

    print()
    print(f"profile: {SESSIONS} fault-free k7-unit sessions, 2-byte payload, Q=1")
    print(f"serial: {serial_seconds:6.2f}s  ({serial_rate:8.0f} sessions/min)")
    print(f"pooled: {pooled_seconds:6.2f}s  ({pooled_rate:8.0f} sessions/min, "
          f"{WORKERS} workers, speedup {speedup:.2f}x)")
    print(f"gate:   >= {MIN_SESSIONS_PER_MINUTE:.0f}/min "
          f"({'enforced' if gate_enforced else 'skipped in fast mode'}, "
          f"{cpu_count} CPU(s))")

    path = write_results(
        "session_service",
        {
            "serial": suite_result(
                serial_seconds,
                operations=SESSIONS,
                sessions_per_minute=serial_rate,
                workers=1,
                **{k: v for k, v in PROFILE.items() if k != "service"},
            ),
            "pooled": suite_result(
                pooled_seconds,
                operations=SESSIONS,
                sessions_per_minute=pooled_rate,
                workers=WORKERS,
                speedup_vs_serial=speedup,
                cpu_count=cpu_count,
                throughput_gate_enforced=gate_enforced,
                min_sessions_per_minute=MIN_SESSIONS_PER_MINUTE,
            ),
        },
    )
    print(f"wrote {path}")
    if gate_enforced:
        assert gated_rate >= MIN_SESSIONS_PER_MINUTE, (
            f"service throughput {gated_rate:.0f} sessions/minute below the "
            f"{MIN_SESSIONS_PER_MINUTE:.0f}/minute gate"
        )
