"""Graph-analysis throughput: Gomory–Hu vs per-pair Dinic, incremental repair.

Three suites in ``BENCH_graph_analysis.json``:

* ``gomory_hu_all_pairs`` — all ``n (n - 1) / 2`` pairwise min-cuts of a
  symmetric random network, per-pair Dinic oracle (one shared residual
  build per source) vs one Gomory–Hu tree + tree-path queries.  The >= 5x
  speedup gate is the PR 8 acceptance criterion; it is enforced in full
  mode only (``n >= 128``), since at fast-mode sizes the tree build is not
  yet amortised.
* ``incremental_vs_full`` — a sequence of dispute-style pair removals on a
  2D torus: full tree rebuild per step vs the exact decremental repair,
  with identical global-min-cut sequences asserted and the repair outcome
  counters (adjusted / certified / resolved) recorded.
* ``datacenter_bounds`` — wall time of one complete ``analyse_network``
  (gamma*, rho*, Eq. 6, Theorem 2) on a datacenter-scale torus, the
  workload the ``datacenter_scale`` spec runs per cell.

Fast mode shrinks every size (CI smoke); the committed baseline is written
with ``REPRO_BENCH_FAST=0``.
"""

from __future__ import annotations

import random

from _harness import fast_mode, scaled, suite_result, time_callable, write_results
from repro.capacity.bounds import analyse_network
from repro.graph.flow_cache import clear_mincut_cache
from repro.graph.generators import random_connected_network, torus_2d
from repro.graph.gomory_hu import (
    clear_gomory_hu_cache,
    gomory_hu_tree,
    incremental_repair_stats,
    repair_tree_after_pair_removal,
)
from repro.graph.maxflow import all_max_flow_values

# All-pairs sizes: the acceptance gate demands n >= 128 in full mode; fast
# mode caps the graph well below that so the CI step stays inside its
# timeout (the oracle side is quadratic in n).
ALL_PAIRS_NODES = scaled(128, 24)
MIN_ALL_PAIRS_SPEEDUP = 5.0

# Incremental suite: a TORUS_SIDE^2-node torus and a prefix of its links
# removed one pair per step (full rebuild is n - 1 solves per step).
TORUS_SIDE = scaled(12, 6)
REMOVAL_STEPS = scaled(24, 6)

BOUNDS_TOPOLOGY = scaled((16, 16), (8, 8))


def _symmetric_random_graph(node_count: int):
    return random_connected_network(
        node_count,
        3,
        random.Random(2024),
        max_capacity=8,
        extra_edge_probability=0.05,
        symmetric=True,
    )


def test_gomory_hu_all_pairs_speedup(benchmark):
    graph = _symmetric_random_graph(ALL_PAIRS_NODES)
    nodes = graph.nodes()

    def _oracle():
        values = {}
        for index, source in enumerate(nodes):
            targets = nodes[index + 1 :]
            if not targets:
                continue
            for target, value in all_max_flow_values(graph, source, targets).items():
                values[(source, target)] = value
        return values

    def _tree():
        tree = gomory_hu_tree(graph)
        values = {}
        for index, source in enumerate(nodes):
            for target, value in tree.all_target_mincuts(source).items():
                if target > source:
                    values[(source, target)] = value
        return values

    def _run():
        clear_mincut_cache()
        clear_gomory_hu_cache()
        oracle_seconds, oracle_values = time_callable(_oracle)
        tree_seconds, tree_values = time_callable(_tree)
        return oracle_seconds, oracle_values, tree_seconds, tree_values

    oracle_seconds, oracle_values, tree_seconds, tree_values = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    assert tree_values == oracle_values, "Gomory-Hu tree diverged from the Dinic oracle"
    pairs = len(oracle_values)
    speedup = oracle_seconds / tree_seconds if tree_seconds > 0 else float("inf")

    print()
    print(f"all-pairs min-cuts, n={ALL_PAIRS_NODES} ({pairs} pairs)")
    print(f"per-pair Dinic: {oracle_seconds:7.3f}s  ({pairs / oracle_seconds:8.1f} pairs/s)")
    print(f"Gomory-Hu:      {tree_seconds:7.3f}s  ({pairs / tree_seconds:8.1f} pairs/s)")
    print(f"speedup:        {speedup:.1f}x  (gate {'enforced' if not fast_mode() else 'skipped (fast mode)'})")

    _RESULTS["gomory_hu_all_pairs"] = suite_result(
        tree_seconds,
        operations=pairs,
        node_count=ALL_PAIRS_NODES,
        oracle_seconds=oracle_seconds,
        speedup_vs_oracle=speedup,
        speedup_gate_enforced=not fast_mode(),
    )
    _flush()
    if not fast_mode():
        assert speedup >= MIN_ALL_PAIRS_SPEEDUP, (
            f"Gomory-Hu all-pairs speedup {speedup:.1f}x below the "
            f"{MIN_ALL_PAIRS_SPEEDUP:.0f}x gate at n={ALL_PAIRS_NODES}"
        )


def test_incremental_repair_vs_full_rebuild(benchmark):
    graph = torus_2d(TORUS_SIDE, TORUS_SIDE)
    removals = sorted(
        {frozenset((tail, head)) for tail, head, _ in graph.edges()},
        key=lambda pair: tuple(sorted(pair)),
    )[:REMOVAL_STEPS]

    graphs = [graph]
    for pair in removals:
        graphs.append(graphs[-1].remove_links_between([pair]))

    def _full():
        return [gomory_hu_tree(g).min_weight() for g in graphs[1:]]

    def _incremental():
        tree = gomory_hu_tree(graphs[0])
        minima = []
        for step, pair in enumerate(removals):
            a, b = sorted(pair)
            tree = repair_tree_after_pair_removal(graphs[step], tree, graphs[step + 1], a, b)
            minima.append(tree.min_weight())
        return minima

    def _run():
        clear_mincut_cache()
        clear_gomory_hu_cache()
        full_seconds, full_minima = time_callable(_full)
        before = incremental_repair_stats()
        incremental_seconds, incremental_minima = time_callable(_incremental)
        after = incremental_repair_stats()
        counters = {
            key: after[key] - before[key]
            for key in ("pairs", "adjusted", "certified", "resolved")
        }
        return full_seconds, full_minima, incremental_seconds, incremental_minima, counters

    (
        full_seconds, full_minima, incremental_seconds, incremental_minima, counters,
    ) = benchmark.pedantic(_run, rounds=1, iterations=1)

    assert incremental_minima == full_minima, (
        "incremental repair diverged from full re-solve"
    )
    speedup = full_seconds / incremental_seconds if incremental_seconds > 0 else float("inf")
    edges_touched = counters["adjusted"] + counters["certified"] + counters["resolved"]

    print()
    print(f"{TORUS_SIDE}x{TORUS_SIDE} torus, {len(removals)} pair removals")
    print(f"full rebuild: {full_seconds:7.3f}s   incremental: {incremental_seconds:7.3f}s "
          f"({speedup:.1f}x)")
    print(f"tree edges:   {counters['adjusted']} adjusted, {counters['certified']} certified, "
          f"{counters['resolved']} re-solved of {edges_touched}")

    _RESULTS["incremental_vs_full"] = suite_result(
        incremental_seconds,
        operations=len(removals),
        node_count=TORUS_SIDE * TORUS_SIDE,
        full_rebuild_seconds=full_seconds,
        speedup_vs_full=speedup,
        repair_counters=counters,
    )
    _flush()


def test_datacenter_bounds_analysis(benchmark):
    rows, cols = BOUNDS_TOPOLOGY
    graph = torus_2d(rows, cols)

    def _run():
        clear_mincut_cache()
        clear_gomory_hu_cache()
        seconds, analysis = time_callable(lambda: analyse_network(graph, 1, 0))
        return seconds, analysis

    seconds, analysis = benchmark.pedantic(_run, rounds=1, iterations=1)

    print()
    print(f"analyse_network on {rows}x{cols} torus ({rows * cols} nodes): {seconds:.3f}s "
          f"(gamma*={analysis.gamma_star}, rho*={analysis.rho_star})")

    _RESULTS["datacenter_bounds"] = suite_result(
        seconds,
        operations=rows * cols,
        gamma_star=analysis.gamma_star,
        rho_star=analysis.rho_star,
    )
    _flush()


_RESULTS: dict = {}


def _flush() -> None:
    # Each test rewrites the artifact with every suite recorded so far, so a
    # partial run (one test failing) still leaves valid measurements behind.
    path = write_results("graph_analysis", _RESULTS)
    print(f"wrote {path}")
