"""End-to-end NAB throughput vs the analytical Eq. 6 / Theorem 2 regime.

Paper claim (Section 5.1 / Appendix D): for large ``L`` and ``Q`` the measured
NAB throughput approaches ``gamma* rho* / (gamma* + rho*)`` because the only
``L``-dependent costs are Phase 1 (``L / gamma``) and the Equality Check
(``L / rho``), while the flag broadcasts cost ``O(n^alpha)`` bits independent
of ``L``.

The benchmark keeps the network fixed and sweeps the input size ``L``; the
measured single-instance throughput (fault-free, so no dispute control) must
increase with ``L`` and approach the Eq. 6 bound from below, while never
exceeding the Theorem 2 capacity upper bound.
"""

from __future__ import annotations

from fractions import Fraction

from _harness import scaled, suite_result, time_callable, write_results
from repro.analysis.reporting import format_table
from repro.capacity.bounds import analyse_network
from repro.core.nab import NetworkAwareBroadcast
from repro.graph.generators import complete_graph

# Value sizes in bytes.  The largest size keeps the equality-check symbol field
# at 1024 bits, the largest degree with a tabulated irreducible polynomial
# (larger fields require a slow irreducibility search and add nothing here).
VALUE_LENGTHS = scaled([8, 32, 128, 512], [8, 32])
MAX_FAULTS = 1


def _sweep():
    graph = complete_graph(4, capacity=2)
    analysis = analyse_network(graph, 1, MAX_FAULTS)
    rows = []
    for length in VALUE_LENGTHS:
        nab = NetworkAwareBroadcast(graph, 1, MAX_FAULTS)
        value = bytes((index * 31) % 256 for index in range(length))
        result = nab.run_instance(value)
        assert result.agreed_value() == int.from_bytes(value, "big")
        throughput = Fraction(8 * length) / result.elapsed
        rows.append((8 * length, throughput))
    return analysis, rows


def test_throughput_approaches_eq6_with_large_L(benchmark):
    wall_seconds, (analysis, rows) = time_callable(
        lambda: benchmark.pedantic(_sweep, rounds=1, iterations=1)
    )
    write_results(
        "end_to_end_throughput",
        {
            "sweep": suite_result(
                wall_seconds,
                value_lengths_bytes=list(VALUE_LENGTHS),
                measured_throughput=[float(throughput) for _bits, throughput in rows],
                eq6_bound=float(analysis.nab_lower_bound),
                thm2_bound=float(analysis.capacity_upper_bound),
            )
        },
    )
    table = [
        [
            bits,
            float(throughput),
            float(analysis.nab_lower_bound),
            float(analysis.capacity_upper_bound),
            float(throughput / analysis.nab_lower_bound),
        ]
        for bits, throughput in rows
    ]
    print()
    print(
        format_table(
            ["L (bits)", "measured throughput", "Eq.6 bound", "Thm 2 bound", "measured/Eq.6"],
            table,
        )
    )
    throughputs = [throughput for _bits, throughput in rows]
    # Monotone in L and never above the capacity upper bound.
    assert all(later >= earlier for earlier, later in zip(throughputs, throughputs[1:]))
    assert all(throughput <= analysis.capacity_upper_bound for throughput in throughputs)
    # For the largest L the measured throughput reaches at least 80% of Eq. 6.
    assert throughputs[-1] >= analysis.nab_lower_bound * Fraction(80, 100)
