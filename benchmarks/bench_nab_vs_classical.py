"""Introduction claim: capacity-oblivious BB can be arbitrarily worse than NAB.

Paper claim (Section 1): "When capacities of the different links are not
identical, previously proposed algorithms can perform poorly.  In fact, one can
easily construct example networks in which previously proposed algorithms
achieve throughput that is arbitrarily worse than the optimal throughput."

The benchmark broadcasts the same payload with NAB and with the classical
capacity-oblivious baseline (full-value EIG flooding over disjoint paths) on a
complete network where the fast links' capacity is swept upward while a single
link pair stays slow.  The classical baseline keeps shipping full copies of
the value over the slow direct link, so its throughput stays flat; NAB's
throughput scales with the fast links, so its advantage grows without bound —
the "arbitrarily worse" shape of the introduction.

Both sides run through the experiment engine's protocol registry, so this
benchmark exercises exactly the code path every engine sweep uses.
"""

from __future__ import annotations

from fractions import Fraction

from repro.analysis.reporting import format_table
from repro.engine import get_protocol
from repro.graph.network_graph import NetworkGraph
from repro.transport.faults import FaultModel

FAST_CAPACITIES = [1, 2, 4, 8, 16]
PAYLOAD = bytes(range(32))  # 256-bit value
NODES = 5
MAX_FAULTS = 1
SLOW_PAIR = (4, 5)


def _slow_link_network(fast_capacity: int) -> NetworkGraph:
    """A complete 5-node network where only the 4-5 link pair is slow (capacity 1).

    Every node keeps fast incoming links, so NAB's gamma and rho grow with the
    fast capacity; the classical baseline keeps pushing full copies over the
    slow direct link between nodes 4 and 5 and stays throttled by it.
    """
    graph = NetworkGraph()
    for tail in range(1, NODES + 1):
        for head in range(1, NODES + 1):
            if tail == head:
                continue
            slow = {tail, head} == set(SLOW_PAIR)
            graph.add_edge(tail, head, 1 if slow else fast_capacity)
    return graph


def _compare():
    nab = get_protocol("nab")
    classical = get_protocol("classical-flooding")
    params = {"max_faults": MAX_FAULTS}
    rows = []
    for fast in FAST_CAPACITIES:
        graph = _slow_link_network(fast)
        nab_record = nab.run(graph, 1, [PAYLOAD], FaultModel(), params)
        classical_record = classical.run(graph, 1, [PAYLOAD], FaultModel(), params)
        assert nab_record.spec_ok and classical_record.spec_ok
        rows.append((fast, nab_record.elapsed, classical_record.elapsed))
    return rows


def test_nab_vs_classical_capacity_sweep(benchmark):
    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)
    bits = 8 * len(PAYLOAD)
    table = [
        [
            fast,
            float(Fraction(bits) / nab_time),
            float(Fraction(bits) / classical_time),
            float(classical_time / nab_time),
        ]
        for fast, nab_time, classical_time in rows
    ]
    print()
    print(
        format_table(
            ["fast-link capacity", "NAB throughput", "classical throughput", "NAB speedup"],
            table,
        )
    )
    speedups = [classical_time / nab_time for _fast, nab_time, classical_time in rows]
    # NAB never loses, and its advantage grows with the capacity ratio
    # (the "arbitrarily worse" shape from the introduction).
    assert all(speedup >= 1 for speedup in speedups)
    assert speedups[-1] > speedups[0]
    assert speedups[-1] >= 4
