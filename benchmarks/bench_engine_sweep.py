"""Experiment-engine sweep throughput: cells/second, serial vs parallel.

Runs a named engine spec twice — serially and with 4 worker processes — and
records cells/second for both plus the parallel speedup in
``BENCH_engine_sweep.json``.  The two runs must produce byte-identical result
rows (the engine's determinism contract); the >= 2x speedup gate is enforced
only when the host actually has >= 4 CPUs, since worker processes cannot beat
serial execution on a single core.

The serial run executes in-process, so the min-cut cache's lifetime hit/miss
counters (:func:`repro.graph.flow_cache.cache_stats`) directly measure how
much flow solving the sweep shares across cells — the *lifetime* counters
are used because the runner clears the cache between topologies, which
resets the per-epoch counters mid-sweep.  The delta over the serial run is
recorded in the artifact so cache efficacy is tracked from PR to PR.
"""

from __future__ import annotations

import os
import tempfile

from _harness import scaled, suite_result, time_callable, write_results
from repro.classical.relay import relay_path_cache_stats
from repro.engine import get_spec, run_spec
from repro.graph.flow_cache import cache_stats, clear_mincut_cache
from repro.graph.gomory_hu import gomory_hu_cache_stats, incremental_repair_stats
from repro.graph.spanning_trees import pack_cache_stats

SPEC_NAME = scaled("nab_vs_classical", "nab_vs_classical_quick")
WORKERS = 4
MIN_SPEEDUP = 2.0


def _sweep(workers: int):
    spec = get_spec(SPEC_NAME)
    with tempfile.TemporaryDirectory() as tmp:
        summary = run_spec(
            spec,
            out_path=os.path.join(tmp, "sweep.jsonl"),
            workers=workers,
            resume=False,
        )
    return summary


def test_engine_sweep_parallel_speedup(benchmark):
    def _run():
        clear_mincut_cache()
        before = cache_stats()
        before_pack = pack_cache_stats()
        before_paths = relay_path_cache_stats()
        before_gh = gomory_hu_cache_stats()
        before_repair = incremental_repair_stats()
        serial_seconds, serial_summary = time_callable(lambda: _sweep(1))
        after = cache_stats()
        # Lifetime counters survive the runner's per-topology cache clears,
        # so the delta covers the entire serial sweep.
        hits = after["lifetime_hits"] - before["lifetime_hits"]
        misses = after["lifetime_misses"] - before["lifetime_misses"]
        lookups = hits + misses
        serial_cache = {
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / lookups) if lookups else None,
        }
        repair_now = incremental_repair_stats()
        serial_cache["gomory_hu_repair"] = {
            key: repair_now[f"lifetime_{key}"] - before_repair[f"lifetime_{key}"]
            for key in ("pairs", "adjusted", "certified", "resolved")
        }
        for label, probe, snapshot in (
            ("pack", pack_cache_stats, before_pack),
            ("relay_paths", relay_path_cache_stats, before_paths),
            ("gomory_hu", gomory_hu_cache_stats, before_gh),
        ):
            now = probe()
            sub_hits = now["lifetime_hits"] - snapshot["lifetime_hits"]
            sub_misses = now["lifetime_misses"] - snapshot["lifetime_misses"]
            sub_lookups = sub_hits + sub_misses
            serial_cache[label] = {
                "hits": sub_hits,
                "misses": sub_misses,
                "hit_rate": (sub_hits / sub_lookups) if sub_lookups else None,
            }
        parallel_seconds, parallel_summary = time_callable(lambda: _sweep(WORKERS))
        return (
            serial_seconds, serial_summary, serial_cache,
            parallel_seconds, parallel_summary,
        )

    (
        serial_seconds, serial_summary, serial_cache,
        parallel_seconds, parallel_summary,
    ) = benchmark.pedantic(_run, rounds=1, iterations=1)

    assert serial_summary.computed_cells == serial_summary.total_cells
    assert serial_summary.rows == parallel_summary.rows, (
        "parallel sweep diverged from serial sweep"
    )
    cells = serial_summary.total_cells
    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0
    cpu_count = os.cpu_count() or 1
    gate_enforced = cpu_count >= WORKERS

    print()
    print(f"spec {SPEC_NAME}: {cells} cells")
    print(f"serial:   {serial_seconds:6.2f}s  ({cells / serial_seconds:6.1f} cells/s)")
    print(f"parallel: {parallel_seconds:6.2f}s  ({cells / parallel_seconds:6.1f} cells/s, "
          f"{WORKERS} workers)")
    print(f"speedup:  {speedup:.2f}x  (gate {'enforced' if gate_enforced else 'skipped'}: "
          f"{cpu_count} CPU(s) available)")
    hit_rate = serial_cache["hit_rate"]
    if hit_rate is not None:
        print(f"min-cut cache (serial run): {serial_cache['hits']} hits, "
              f"{serial_cache['misses']} misses (hit rate {hit_rate:.1%})")
    else:
        print("min-cut cache (serial run): no lookups")

    path = write_results(
        "engine_sweep",
        {
            "serial": suite_result(
                serial_seconds,
                operations=cells,
                spec=SPEC_NAME,
                workers=1,
                mincut_cache=serial_cache,
            ),
            "parallel": suite_result(
                parallel_seconds,
                operations=cells,
                spec=SPEC_NAME,
                workers=WORKERS,
                speedup_vs_serial=speedup,
                cpu_count=cpu_count,
                speedup_gate_enforced=gate_enforced,
            ),
        },
    )
    print(f"wrote {path}")
    if gate_enforced:
        assert speedup >= MIN_SPEEDUP, (
            f"parallel speedup {speedup:.2f}x below the {MIN_SPEEDUP:.0f}x target "
            f"on {cpu_count} CPUs"
        )
