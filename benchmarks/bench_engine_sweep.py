"""Experiment-engine sweep throughput: cells/second, serial vs parallel.

Runs a named engine spec twice — serially and with 4 worker processes — and
records cells/second for both plus the parallel speedup in
``BENCH_engine_sweep.json``.  The two runs must produce byte-identical result
rows (the engine's determinism contract); the >= 2x speedup gate is enforced
only when the host actually has >= 4 CPUs, since worker processes cannot beat
serial execution on a single core.
"""

from __future__ import annotations

import os
import tempfile

from _harness import scaled, suite_result, time_callable, write_results
from repro.engine import get_spec, run_spec

SPEC_NAME = scaled("nab_vs_classical", "nab_vs_classical_quick")
WORKERS = 4
MIN_SPEEDUP = 2.0


def _sweep(workers: int):
    spec = get_spec(SPEC_NAME)
    with tempfile.TemporaryDirectory() as tmp:
        summary = run_spec(
            spec,
            out_path=os.path.join(tmp, "sweep.jsonl"),
            workers=workers,
            resume=False,
        )
    return summary


def test_engine_sweep_parallel_speedup(benchmark):
    def _run():
        serial_seconds, serial_summary = time_callable(lambda: _sweep(1))
        parallel_seconds, parallel_summary = time_callable(lambda: _sweep(WORKERS))
        return serial_seconds, serial_summary, parallel_seconds, parallel_summary

    serial_seconds, serial_summary, parallel_seconds, parallel_summary = (
        benchmark.pedantic(_run, rounds=1, iterations=1)
    )

    assert serial_summary.computed_cells == serial_summary.total_cells
    assert serial_summary.rows == parallel_summary.rows, (
        "parallel sweep diverged from serial sweep"
    )
    cells = serial_summary.total_cells
    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0
    cpu_count = os.cpu_count() or 1
    gate_enforced = cpu_count >= WORKERS

    print()
    print(f"spec {SPEC_NAME}: {cells} cells")
    print(f"serial:   {serial_seconds:6.2f}s  ({cells / serial_seconds:6.1f} cells/s)")
    print(f"parallel: {parallel_seconds:6.2f}s  ({cells / parallel_seconds:6.1f} cells/s, "
          f"{WORKERS} workers)")
    print(f"speedup:  {speedup:.2f}x  (gate {'enforced' if gate_enforced else 'skipped'}: "
          f"{cpu_count} CPU(s) available)")

    path = write_results(
        "engine_sweep",
        {
            "serial": suite_result(
                serial_seconds, operations=cells, spec=SPEC_NAME, workers=1
            ),
            "parallel": suite_result(
                parallel_seconds,
                operations=cells,
                spec=SPEC_NAME,
                workers=WORKERS,
                speedup_vs_serial=speedup,
                cpu_count=cpu_count,
                speedup_gate_enforced=gate_enforced,
            ),
        },
    )
    print(f"wrote {path}")
    if gate_enforced:
        assert speedup >= MIN_SPEEDUP, (
            f"parallel speedup {speedup:.2f}x below the {MIN_SPEEDUP:.0f}x target "
            f"on {cpu_count} CPUs"
        )
