"""Figure 1 reproduction: the example graphs' min-cut quantities.

Paper claims (Section 2 and Section 3, discussing Figures 1(a)/1(b)):

* in Figure 1(a): ``MINCUT(G, 1, 2) = MINCUT(G, 1, 4) = 2``,
  ``MINCUT(G, 1, 3) = 3`` and hence ``gamma = 2``;
* nodes 2 and 4 share no link, so they can never be found in dispute;
* in Figure 1(b) (after a 2-3 dispute) with ``n = 4, f = 1``: ``Omega_k``
  consists of the subgraphs on ``{1, 2, 4}`` and ``{1, 3, 4}`` and ``U_k = 2``.

The benchmark recomputes every quantity from the reconstructed graphs and
asserts the paper's numbers.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.coding.omega import compute_uk, dispute_free_subgraphs
from repro.graph.generators import figure1a, figure1b
from repro.graph.mincut import all_target_mincuts, broadcast_mincut
from repro.types import node_pair


def _figure1_quantities():
    graph_a = figure1a()
    cuts = all_target_mincuts(graph_a, 1)
    gamma = broadcast_mincut(graph_a, 1)
    graph_b = figure1b()
    omega = dispute_free_subgraphs(graph_b, 3, [node_pair(2, 3)])
    uk = compute_uk(graph_b, omega)
    return cuts, gamma, omega, uk


def test_figure1_mincut_and_uk_values(benchmark):
    cuts, gamma, omega, uk = benchmark(_figure1_quantities)
    rows = [
        ["MINCUT(G, 1, 2)", 2, cuts[2]],
        ["MINCUT(G, 1, 3)", 3, cuts[3]],
        ["MINCUT(G, 1, 4)", 2, cuts[4]],
        ["gamma_k (Fig 1a)", 2, gamma],
        ["|Omega_k| (Fig 1b)", 2, len(omega)],
        ["U_k (Fig 1b)", 2, uk],
    ]
    print()
    print(format_table(["quantity", "paper", "measured"], rows))
    assert cuts == {2: 2, 3: 3, 4: 2}
    assert gamma == 2
    assert sorted(omega) == [(1, 2, 4), (1, 3, 4)]
    assert uk == 2


def test_figure1_no_link_between_2_and_4(benchmark):
    graph = benchmark(figure1a)
    assert not graph.has_edge(2, 4)
    assert not graph.has_edge(4, 2)
