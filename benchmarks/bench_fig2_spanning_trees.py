"""Figure 2 reproduction: spanning-tree packing in the directed example graph.

Paper claims (Appendix A, discussing Figures 2(a)-(d)):

* two unit-capacity spanning trees can be embedded in the directed graph;
* link ``(1, 2)`` is used by both trees, for a total usage of 2 units, which
  equals its capacity;
* the undirected view sums the capacities of anti-parallel links, and an
  undirected spanning tree (Figure 2(d)) need not correspond to any directed
  arborescence — the example tree uses directed edges (2,3), (1,4), (4,3).

The benchmark packs the arborescences constructively, validates the packing,
and checks the undirected-view facts.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.graph.generators import figure2_tree_packing, figure2a
from repro.graph.mincut import broadcast_mincut
from repro.graph.spanning_trees import pack_arborescences, packing_edge_usage, validate_packing
from repro.graph.undirected import UndirectedView


def _pack_figure2():
    graph = figure2a()
    trees = pack_arborescences(graph, 1)
    validate_packing(graph, 1, trees)
    return graph, trees


def test_figure2_two_tree_packing(benchmark):
    graph, trees = benchmark(_pack_figure2)
    usage = packing_edge_usage(trees)
    rows = [
        ["gamma (number of trees)", 2, len(trees)],
        ["usage of link (1,2)", 2, usage.get((1, 2), 0)],
        ["capacity of link (1,2)", 2, graph.capacity(1, 2)],
    ]
    print()
    print(format_table(["quantity", "paper", "measured"], rows))
    assert len(trees) == broadcast_mincut(graph, 1) == 2
    assert usage[(1, 2)] == 2 == graph.capacity(1, 2)


def test_figure2_undirected_view_and_reference_tree(benchmark):
    view = benchmark(lambda: UndirectedView(figure2a()))
    # Undirected capacities sum both directions; (1,2) keeps capacity 2.
    assert view.capacity(1, 2) == 2
    # The Appendix C example tree uses directed edges (2,3), (1,4), (4,3): its
    # undirected counterpart {2,3}, {1,4}, {3,4} spans the 4 nodes...
    assert view.has_edge(2, 3) and view.has_edge(1, 4) and view.has_edge(3, 4)
    # ...but those directed edges do not form a directed arborescence from node 1.
    graph = figure2a()
    reachable_using_example_edges = {1}
    for tail, head in [(1, 4), (4, 3), (2, 3)]:
        if tail in reachable_using_example_edges:
            reachable_using_example_edges.add(head)
    assert 2 not in reachable_using_example_edges
    # The reference packing shipped with the generators is a valid packing.
    from repro.graph.spanning_trees import Arborescence

    reference = [Arborescence(1, parents) for parents in figure2_tree_packing()]
    validate_packing(graph, 1, reference)
