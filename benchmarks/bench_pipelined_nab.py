"""Pipelined NAB execution: exactness vs the Figure 3 schedule, and speedup.

Two measurements, one artifact (``BENCH_pipelined_nab.json``):

* **grid_exactness** — runs the ``pipelined_nab`` engine spec (the headline
  ``nab_vs_classical`` topologies plus a depth-3 layered pipeline, sequential
  and pipelined execution per topology) and checks that every pipelined
  cell's measured, event-simulated completion time equals
  ``pipelined_schedule(...)`` as an exact rational — no tolerance.
* **deep_pipeline_speedup** — the paper's pipelining claim as an executed
  number: on a deep layered topology, the pipelined run must beat the
  unpipelined run (same per-hop propagation model, simulated on the same
  event kernel) by at least 1.5x at >= 8 instances.  The gate is enforced in
  full mode; fast mode records the smaller configuration's ratio without
  gating it.
"""

from __future__ import annotations

from fractions import Fraction

from _harness import fast_mode, scaled, suite_result, time_callable, write_results
from repro.analysis.reporting import format_table
from repro.core.nab import NetworkAwareBroadcast
from repro.engine import get_spec, run_spec
from repro.workloads.topologies import topology

SPEC_NAME = "pipelined_nab"
GATE_TOPOLOGY = scaled("pipeline-4x3", "pipeline-3x3")
GATE_INSTANCES = scaled(16, 6)
GATE_PAYLOAD_BYTES = scaled(128, 32)
MIN_SPEEDUP = 1.5


def _grid_exactness():
    spec = get_spec(SPEC_NAME)
    summary = run_spec(spec, out_path=None, workers=1, resume=False)
    pipelined_rows = [row for row in summary.rows if row["execution"] == "pipelined"]
    exact = 0
    table = []
    for row in pipelined_rows:
        assert row["error"] is None, row["error"]
        record = row["record"]
        metadata = record["metadata"]
        matches = metadata["matches_analytic"] is True
        matches = matches and record["elapsed"] == metadata["analytic_total"]
        exact += int(matches)
        table.append(
            [
                row["topology"],
                record["elapsed"],
                metadata["analytic_total"],
                "exact" if matches else "MISMATCH",
                f"{float(Fraction(metadata['speedup'])):.3f}x",
            ]
        )
    return summary, pipelined_rows, exact, table


def _deep_pipeline():
    inputs = [
        bytes(((7 * index + offset) % 255) + 1 for offset in range(GATE_PAYLOAD_BYTES))
        for index in range(GATE_INSTANCES)
    ]
    nab = NetworkAwareBroadcast(topology(GATE_TOPOLOGY), 1, 1)
    return nab.run_pipelined(inputs)


def test_pipelined_nab(benchmark):
    def _run():
        grid_seconds, grid = time_callable(_grid_exactness)
        deep_seconds, deep = time_callable(_deep_pipeline)
        return grid_seconds, grid, deep_seconds, deep

    grid_seconds, grid, deep_seconds, deep = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    summary, pipelined_rows, exact, table = grid

    print()
    print(format_table(
        ["topology", "measured", "analytic", "match", "speedup"], table
    ))
    print(
        f"grid: {exact}/{len(pipelined_rows)} pipelined cells exact "
        f"({summary.total_cells} cells total, {grid_seconds:.2f}s)"
    )
    speedup = deep.speedup
    print(
        f"deep pipeline ({GATE_TOPOLOGY}, Q={GATE_INSTANCES}, "
        f"L={8 * GATE_PAYLOAD_BYTES} bits): depth={deep.depth} "
        f"round={deep.round_length} sequential={deep.sequential_elapsed} "
        f"pipelined={deep.total_elapsed} speedup={float(speedup):.3f}x "
        f"exact={deep.analytic is not None and deep.analytic.total_time == deep.total_elapsed}"
    )

    gate_enforced = not fast_mode()
    path = write_results(
        "pipelined_nab",
        {
            "grid_exactness": suite_result(
                grid_seconds,
                operations=summary.total_cells,
                spec=SPEC_NAME,
                pipelined_cells=len(pipelined_rows),
                exact_cells=exact,
            ),
            "deep_pipeline_speedup": suite_result(
                deep_seconds,
                operations=GATE_INSTANCES,
                topology=GATE_TOPOLOGY,
                instances=GATE_INSTANCES,
                payload_bits=8 * GATE_PAYLOAD_BYTES,
                depth=deep.depth,
                round_length=str(deep.round_length),
                sequential_elapsed=str(deep.sequential_elapsed),
                pipelined_elapsed=str(deep.total_elapsed),
                analytic_total=(
                    None if deep.analytic is None else str(deep.analytic.total_time)
                ),
                speedup=float(speedup),
                speedup_exact=str(speedup),
                min_speedup=MIN_SPEEDUP,
                speedup_gate_enforced=gate_enforced,
            ),
        },
    )
    print(f"wrote {path}")

    # Every pipelined grid cell matches the Figure 3 closed form exactly.
    assert exact == len(pipelined_rows) > 0
    # The deep run is itself Fraction-exact against the analytic schedule...
    assert deep.analytic is not None
    assert deep.total_elapsed == deep.analytic.total_time
    # ...and pipelining genuinely overlaps work.
    assert deep.sequential_elapsed > deep.total_elapsed
    if gate_enforced:
        assert speedup >= Fraction(3, 2), (
            f"pipelined speedup {float(speedup):.3f}x below the "
            f"{MIN_SPEEDUP:.1f}x target on {GATE_TOPOLOGY}"
        )
