"""Theorem 3 reproduction: NAB achieves at least 1/3 (or 1/2) of capacity.

Paper claim (Theorem 3): ``T_NAB >= min(gamma*, 2 rho*) / 3 >= C_BB / 3``, and
when ``gamma* <= rho*`` the factor improves to 1/2.

The benchmark sweeps a family of random capacitated networks plus the named
topologies, computes ``T_NAB / min(gamma*, 2 rho*)`` for each, and asserts the
relevant factor.  It also reports how often each of the theorem's three
algebraic cases occurs in the sample.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.analysis.reporting import format_table
from repro.capacity.bounds import analyse_network
from repro.graph.generators import random_connected_network
from repro.workloads.topologies import topology

NAMED = ["k4-unit", "k5-unit", "k7-unit", "ring7-chords", "bottleneck4", "bottleneck5"]
RANDOM_SAMPLES = 8


def _collect():
    analyses = []
    for name in NAMED:
        analyses.append((name, analyse_network(topology(name), 1, 1)))
    for seed in range(RANDOM_SAMPLES):
        graph = random_connected_network(6, 3, random.Random(1000 + seed), max_capacity=5)
        analyses.append((f"random6/seed{seed}", analyse_network(graph, 1, 1)))
    return analyses


def test_theorem3_ratio_holds_everywhere(benchmark):
    analyses = benchmark.pedantic(_collect, rounds=1, iterations=1)
    table = []
    half_case = third_case = 0
    for name, analysis in analyses:
        table.append(
            [
                name,
                analysis.gamma_star,
                analysis.rho_star,
                float(analysis.achieved_fraction),
                float(analysis.guaranteed_fraction),
            ]
        )
        if analysis.guaranteed_fraction == Fraction(1, 2):
            half_case += 1
        else:
            third_case += 1
    print()
    print(
        format_table(
            ["topology", "gamma*", "rho*", "T_NAB / C_BB bound", "Theorem 3 promise"], table
        )
    )
    print(f"\n1/2-guarantee cases: {half_case}, 1/3-guarantee cases: {third_case}")
    for _name, analysis in analyses:
        assert analysis.achieved_fraction >= Fraction(1, 3)
        if analysis.gamma_star <= analysis.rho_star:
            assert analysis.achieved_fraction >= Fraction(1, 2)
        assert analysis.satisfies_theorem3()
