"""Theorem 1 reproduction: random coding matrices are correct with high probability.

Paper claim (Theorem 1): drawing the coding-matrix entries uniformly at random
from ``GF(2^(L/rho))`` yields a *correct* scheme (property (EC)) with
probability at least ``1 - 2^(-L/rho) * C(n, n-f) * (n-f-1) * rho``.

The benchmark sweeps the symbol size ``L / rho`` on the paper's Figure 1(b)
instance graph, draws many independent random schemes per size, measures the
empirical fraction that fail the full-rank verification, and checks it never
exceeds the paper's bound.  The failure rate must also decay as the symbol
size grows (the reason the paper needs "sufficiently large L").
"""

from __future__ import annotations

from fractions import Fraction

from repro.analysis.reporting import format_table
from repro.coding.coding_matrix import generate_coding_scheme
from repro.coding.omega import omega_and_parameters
from repro.coding.verification import scheme_is_correct, theorem1_failure_bound
from repro.graph.generators import figure1b
from repro.types import node_pair

SYMBOL_BITS = [1, 2, 3, 4, 6, 8]
TRIALS = 120
N_NODES = 4
MAX_FAULTS = 1


def _sweep():
    graph = figure1b()
    omega, _uk, rho = omega_and_parameters(graph, N_NODES, MAX_FAULTS, [node_pair(2, 3)])
    results = []
    for bits in SYMBOL_BITS:
        failures = 0
        for seed in range(TRIALS):
            scheme = generate_coding_scheme(graph, rho, bits, seed=seed)
            if not scheme_is_correct(graph, omega, scheme):
                failures += 1
        empirical = Fraction(failures, TRIALS)
        bound = theorem1_failure_bound(N_NODES, MAX_FAULTS, rho, bits)
        results.append((bits, empirical, bound))
    return results


def test_theorem1_failure_rate_within_bound(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["symbol bits (L/rho)", "empirical failure rate", "Theorem 1 bound"],
            [[bits, float(emp), float(bound)] for bits, emp, bound in results],
        )
    )
    for _bits, empirical, bound in results:
        assert empirical <= bound
    # The failure rate decays with the symbol size and vanishes for >= 6 bits.
    assert results[0][1] >= results[-1][1]
    assert results[-1][1] == 0
