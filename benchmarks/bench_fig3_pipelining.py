"""Figure 3 reproduction: pipelining hides multi-hop propagation delay.

Paper claim (Appendix D / Figure 3): with propagation delays, Phase 1 data
advances one hop per ``L / gamma`` time units, so the naive per-instance time
grows with the broadcast depth; dividing time into rounds of
``L/gamma* + L/rho* + O(n^alpha)`` and pipelining instances recovers the
Eq. 6 throughput after a fill-in latency of ``depth - 1`` rounds.

The benchmark sweeps the broadcast depth and reports naive vs pipelined
throughput; the pipelined series must stay within a few percent of the Eq. 6
bound while the naive series degrades roughly linearly with depth.
"""

from __future__ import annotations

from fractions import Fraction

from repro.analysis.reporting import format_table
from repro.capacity.bounds import nab_throughput_lower_bound
from repro.capacity.pipelining import pipelined_schedule, unpipelined_schedule

L_BITS = 4096
GAMMA = 4
RHO = 4
INSTANCES = 200
HOPS = [1, 2, 4, 8, 16]


def _sweep():
    rows = []
    for hops in HOPS:
        naive = unpipelined_schedule(L_BITS, GAMMA, RHO, hops, INSTANCES)
        piped = pipelined_schedule(L_BITS, GAMMA, RHO, hops, INSTANCES)
        rows.append((hops, naive.throughput, piped.throughput))
    return rows


def test_figure3_pipelining_sweep(benchmark):
    rows = benchmark(_sweep)
    eq6 = nab_throughput_lower_bound(GAMMA, RHO)
    table = [
        [hops, float(naive), float(piped), float(eq6), float(piped / eq6)]
        for hops, naive, piped in rows
    ]
    print()
    print(
        format_table(
            ["hops", "naive throughput", "pipelined throughput", "Eq.6 bound", "pipelined/bound"],
            table,
        )
    )
    for hops, naive, piped in rows:
        assert piped >= naive
        # Pipelined throughput stays within ~10% of Eq. 6 regardless of depth.
        assert piped >= eq6 * Fraction(90, 100)
    # Naive throughput degrades with depth; at 16 hops it is far below the bound.
    assert rows[-1][1] < eq6 / 4
