#!/usr/bin/env python
"""Diff fresh ``BENCH_*.json`` artifacts against the committed baselines.

For every ``benchmarks/BENCH_<name>.json`` on disk, the committed version is
read from git (``git show <ref>:benchmarks/BENCH_<name>.json``) and each
suite's ``wall_seconds`` is compared.  Suites more than ``--threshold``
(default 20%) slower than their baseline are flagged as regressions.

Comparisons are only meaningful between runs of the same mode: a fresh
fast-mode artifact (CI smoke runs) measured against a committed full-mode
baseline is reported as *incomparable* and never flagged.  The script is
informational by default (exit 0 regardless); pass ``--strict`` to exit
nonzero when regressions are found.  ``python benchmarks/run_all.py
--compare`` runs it after the suites as a trend report.

Usage:
    python benchmarks/compare_bench.py                 # report vs HEAD
    python benchmarks/compare_bench.py --ref HEAD~1    # vs an older baseline
    python benchmarks/compare_bench.py --strict        # fail on regressions
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys
from typing import Dict, List, Optional

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
_REPO_ROOT = os.path.dirname(_BENCH_DIR)

#: Relative wall-second increase above which a suite counts as regressed.
DEFAULT_THRESHOLD = 0.20


def _load_fresh(path: str) -> Optional[Dict]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def _load_baseline(name: str, ref: str) -> Optional[Dict]:
    """The committed artifact at ``ref``, or ``None`` when absent/unreadable."""
    completed = subprocess.run(
        ["git", "show", f"{ref}:benchmarks/{name}"],
        cwd=_REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if completed.returncode != 0:
        return None
    try:
        return json.loads(completed.stdout)
    except json.JSONDecodeError:
        return None


def compare_artifact(
    fresh: Dict, baseline: Dict, threshold: float
) -> List[Dict[str, object]]:
    """Per-suite comparison rows for one benchmark artifact."""
    rows: List[Dict[str, object]] = []
    fresh_suites = fresh.get("suites", {})
    base_suites = baseline.get("suites", {})
    modes_match = bool(fresh.get("fast_mode")) == bool(baseline.get("fast_mode"))
    for suite, payload in sorted(fresh_suites.items()):
        base = base_suites.get(suite)
        new_wall = payload.get("wall_seconds") if isinstance(payload, dict) else None
        old_wall = base.get("wall_seconds") if isinstance(base, dict) else None
        row: Dict[str, object] = {
            "suite": suite,
            "new_wall": new_wall,
            "old_wall": old_wall,
        }
        if not modes_match:
            row["status"] = "incomparable (fast/full mode mismatch)"
        elif base is None:
            # A suite only the fresh run has — a newly added benchmark.
            # Deliberately never a regression: new coverage must not flag
            # the PR that introduces it.
            row["status"] = "new suite (no baseline)"
        elif old_wall is None or new_wall is None or old_wall <= 0:
            row["status"] = "no baseline"
        else:
            change = (new_wall - old_wall) / old_wall
            row["change"] = change
            row["status"] = "REGRESSION" if change > threshold else "ok"
        rows.append(row)
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/compare_bench.py",
        description="Diff fresh BENCH_*.json files against committed baselines.",
    )
    parser.add_argument("--ref", default="HEAD", help="git ref holding the baselines")
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="relative wall-seconds increase flagged as a regression (default 0.20)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero when regressions are flagged (default: informational)",
    )
    args = parser.parse_args(argv)

    artifacts = sorted(glob.glob(os.path.join(_BENCH_DIR, "BENCH_*.json")))
    if not artifacts:
        print("no BENCH_*.json artifacts found; run the benchmarks first")
        return 0

    regressions = 0
    compared = 0
    for path in artifacts:
        name = os.path.basename(path)
        fresh = _load_fresh(path)
        if fresh is None:
            print(f"{name}: unreadable, skipped")
            continue
        baseline = _load_baseline(name, args.ref)
        if baseline is None:
            # A whole artifact only the fresh run has (newly added benchmark
            # file): reported, never a regression.
            print(f"{name}: new artifact, no committed baseline at {args.ref}, skipped")
            continue
        print(f"{name} (vs {args.ref}):")
        for row in compare_artifact(fresh, baseline, args.threshold):
            status = row["status"]
            if status == "REGRESSION":
                regressions += 1
            if "change" in row:
                compared += 1
                print(
                    f"  {row['suite']:<28} {row['old_wall']:.4f}s -> "
                    f"{row['new_wall']:.4f}s  ({row['change']:+.1%})  {status}"
                )
            else:
                print(f"  {row['suite']:<28} {status}")

    print(
        f"\n{compared} suite(s) compared, {regressions} regression(s) beyond "
        f"{args.threshold:.0%}"
    )
    if regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
