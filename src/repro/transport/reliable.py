"""ARQ reliable delivery over unreliable links: :class:`ReliableNetwork`.

:class:`ReliableNetwork` extends :class:`repro.transport.scheduled.
ScheduledNetwork` with the classic automatic-repeat-request discipline over a
seeded :class:`repro.sched.faults.LinkFaultPlan`:

* every wire attempt on a link consults the fault plan (deterministically, via
  the per-edge attempt ordinal);
* a **dropped** or **corrupted** attempt still drains the link (the bits were
  transmitted) but is not delivered; the sender's retransmission timeout fires
  and the message is sent again, with exponential backoff — attempt ``i``
  (0-based) waits ``timeout * backoff**i`` before retransmitting, charged to
  the phase as fixed overhead on *both* clocks (the sub-round the paper-level
  model sees);
* a **duplicated** attempt is delivered once (the receiver deduplicates by
  sequence number) but the redundant copy drains the link too;
* acknowledgements are modeled as instantaneous control signals and cost
  nothing — only timeouts (i.e. actual losses) cost time, which is what makes
  the zero-loss overhead exactly zero;
* after :attr:`max_attempts` consecutive losses the link is declared **dead**
  for that message: the send is abandoned and surfaces as an *omission* — the
  message is recorded as a dead letter and never delivered.  The paper's
  protocols already treat a missing message as a default value, so agreement
  and validity continue to hold as long as the affected links stay within the
  adversary's ``f`` budget.

With a clean fault plan (every rate zero) ``send`` short-circuits to the
inherited path, so clocks, ledgers, jitter ordinals and delivered messages are
**bit-identical** to a plain :class:`ScheduledNetwork` — the zero-fault
contract the engine's byte-identity guarantees rest on.

The overhead is measurable: :meth:`reliability_stats` reports retransmitted
bits, retransmission/duplicate/drop counts and the total timeout time, and the
engine copies those counters into every cell's ``RunRecord`` metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, List

from repro.exceptions import GraphError, ProtocolError, SchedulerError
from repro.graph.network_graph import NetworkGraph
from repro.sched.faults import CORRUPT, DELIVER, DROP, DUPLICATE, LinkFaultPlan
from repro.sched.links import LinkModel
from repro.transport.faults import FaultModel
from repro.transport.message import Message
from repro.transport.scheduled import ScheduledNetwork
from repro.types import Edge, NodeId

#: Default retransmission timeout (in the paper's abstract time units) and
#: exponential-backoff base.  One timeout is the cost of one failed sub-round.
DEFAULT_TIMEOUT = Fraction(1)
DEFAULT_BACKOFF = Fraction(2)

#: Default retry budget: a message losing this many consecutive attempts has
#: its link declared dead (the send surfaces as an omission).  At a 10% loss
#: rate the chance of exhausting 8 attempts is 1e-8 per message, so grids stay
#: loss-free in practice while the degradation path remains reachable.
DEFAULT_MAX_ATTEMPTS = 8


@dataclass(frozen=True)
class DeadLetter:
    """A message abandoned after the retry budget was exhausted.

    Attributes:
        edge: The directed link the message could not cross.
        phase: Accounting phase of the attempted transmission.
        kind: Message kind tag.
        bits: Message size (each failed attempt drained this many bits).
        attempts: How many wire attempts were made before giving up.
    """

    edge: Edge
    phase: str
    kind: str
    bits: int
    attempts: int


class ReliableNetwork(ScheduledNetwork):
    """Scheduled transport with ARQ retransmission over a link-fault plan."""

    def __init__(
        self,
        graph: NetworkGraph,
        fault_model: FaultModel | None = None,
        link_model: LinkModel | None = None,
        fault_plan: LinkFaultPlan | None = None,
        timeout: Fraction | int = DEFAULT_TIMEOUT,
        backoff: Fraction | int = DEFAULT_BACKOFF,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        super().__init__(graph, fault_model, link_model)
        self.fault_plan = fault_plan if fault_plan is not None else LinkFaultPlan()
        self.timeout = Fraction(timeout)
        self.backoff = Fraction(backoff)
        self.max_attempts = int(max_attempts)
        if self.timeout < 0:
            raise SchedulerError(f"timeout must be non-negative, got {self.timeout}")
        if self.backoff < 1:
            raise SchedulerError(f"backoff base must be >= 1, got {self.backoff}")
        if self.max_attempts < 1:
            raise SchedulerError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        #: Per-edge count of wire attempts so far — the fault plan's ordinal
        #: stream, independent of message identity so retransmissions see
        #: fresh decisions.
        self._edge_attempts: Dict[Edge, int] = {}
        self._dead_letters: List[DeadLetter] = []
        self._retransmit_bits = 0
        self._retransmissions = 0
        self._duplicated_messages = 0
        self._corrupted_attempts = 0
        self._timeout_time = Fraction(0)

    # -------------------------------------------------------------------- send

    def send(
        self,
        sender: NodeId,
        receiver: NodeId,
        payload: Any,
        bit_size: int,
        phase: str,
        kind: str = "data",
    ) -> Message:
        """Send ``payload`` reliably, retransmitting on loss.

        See :meth:`SynchronousNetwork.send` for the protocol-facing contract.
        On a clean fault plan this is byte-identical to the scheduled parent.
        A message whose link is declared dead is returned (so callers keep a
        uniform interface) but never delivered: it is absent from
        :meth:`delivered_messages`/:meth:`messages_received_by` and recorded
        in :meth:`dead_letters` instead.
        """
        if self.fault_plan.is_clean:
            return super().send(sender, receiver, payload, bit_size, phase, kind)
        # Validate up front: failed attempts charge the wire before the
        # delivering parent call would have run its own checks.
        if not self.graph.has_edge(sender, receiver):
            raise GraphError(f"no link from {sender} to {receiver}")
        if not isinstance(bit_size, int) or isinstance(bit_size, bool) or bit_size <= 0:
            raise ProtocolError(f"bits must be a positive integer, got {bit_size!r}")
        edge = (sender, receiver)
        for attempt in range(self.max_attempts):
            ordinal = self._edge_attempts.get(edge, 0)
            self._edge_attempts[edge] = ordinal + 1
            decision = self.fault_plan.decide(edge, ordinal)
            if decision in (DELIVER, DUPLICATE):
                message = super().send(sender, receiver, payload, bit_size, phase, kind)
                if decision == DUPLICATE:
                    # The network replays the attempt: the redundant copy
                    # drains the link (ledger + FIFO item + its own jitter
                    # ordinal) but the receiver deduplicates, so exactly one
                    # message is delivered.
                    self._charge_wire_copy(phase, edge, bit_size)
                    self._duplicated_messages += 1
                return message
            # DROP or CORRUPT: the attempt drained the link but was not
            # (acceptably) received — charge the wasted copy, wait out the
            # backed-off timeout, and retransmit.
            self._charge_wire_copy(phase, edge, bit_size)
            if decision == CORRUPT:
                self._corrupted_attempts += 1
            wait = self.timeout * self.backoff ** attempt
            if wait > 0:
                self.accountant.add_fixed_overhead(phase, wait)
                self._timeout_time += wait
            if attempt + 1 < self.max_attempts:
                self._retransmissions += 1
        # Retry budget exhausted: the link is dead for this message.  The
        # send surfaces as an omission (the paper's protocols substitute a
        # default value for missing messages), not as an exception — a lossy
        # link must degrade the run, not abort it.
        self._dead_letters.append(
            DeadLetter(
                edge=edge,
                phase=phase,
                kind=kind,
                bits=bit_size,
                attempts=self.max_attempts,
            )
        )
        return Message(
            sender=sender,
            receiver=receiver,
            phase=phase,
            kind=kind,
            payload=payload,
            bit_size=bit_size,
        )

    def _charge_wire_copy(self, phase: str, edge: Edge, bits: int) -> None:
        """Charge one non-delivering wire copy to both clocks.

        The copy appears in the accountant's ledger (analytical clock, per-link
        bit totals) and in the round's FIFO (measured clock, jitter ordinal),
        exactly like a delivered message — it just never reaches the inbox.
        """
        self.accountant._record_validated(phase, edge[0], edge[1], bits)
        self._log_wire_item(phase, edge, bits)
        self._retransmit_bits += bits

    # -------------------------------------------------------------- accounting

    def dead_letters(self) -> List[DeadLetter]:
        """Messages abandoned after the retry budget, in send order."""
        return list(self._dead_letters)

    def reliability_stats(self) -> Dict[str, object]:
        """JSON-safe ARQ overhead counters for this network's lifetime.

        Keys:
            ``retransmit_bits``: bits drained by non-delivering copies
                (lost, corrupted and duplicated attempts) — pure overhead
                over the fault-free run.
            ``retransmissions``: how many times a timeout fired and the
                message was sent again.
            ``duplicated_messages``: deliveries the network replayed.
            ``corrupted_attempts``: attempts rejected by the receiver's
                checksum (a subset of the failed attempts).
            ``dropped_messages``: sends abandoned as dead letters (omissions).
            ``timeout_time``: total backoff time charged, as a ``"p/q"``
                string.
        """
        return {
            "retransmit_bits": self._retransmit_bits,
            "retransmissions": self._retransmissions,
            "duplicated_messages": self._duplicated_messages,
            "corrupted_attempts": self._corrupted_attempts,
            "dropped_messages": len(self._dead_letters),
            "timeout_time": str(self._timeout_time),
        }


def accumulate_reliability_stats(
    totals: Dict[str, object], stats: Dict[str, object]
) -> None:
    """Fold one network's :meth:`ReliableNetwork.reliability_stats` into ``totals``.

    The single aggregation rule shared by every consumer (the engine runs one
    network per protocol instance), so per-cell overhead accounting can never
    diverge between protocols.
    """
    for key, value in stats.items():
        if key == "timeout_time":
            current = Fraction(str(totals.get(key, "0")))
            totals[key] = str(current + Fraction(str(value)))
        else:
            totals[key] = int(totals.get(key, 0)) + int(value)
