"""Time accounting for the paper's deterministic link-capacity model.

A directed link of capacity ``z_e`` bits per time unit can carry ``z_e * tau``
bits in ``tau`` time units.  A synchronous protocol phase in which ``b_e``
bits are sent over each link ``e`` therefore takes

    ``max_e  b_e / z_e``

time units (all links transmit in parallel), plus any fixed overhead the
protocol charges to the phase (e.g. the ``O(n^alpha)`` cost of broadcasting
1-bit flags with a classical BB algorithm, which the paper accounts separately
from the ``L``-dependent cost).  All durations are exact
:class:`fractions.Fraction` values so analytical identities such as
``L / gamma_k`` hold without floating-point error.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Tuple

from repro.exceptions import GraphError, ProtocolError
from repro.graph.network_graph import NetworkGraph
from repro.types import Edge, NodeId, PhaseTiming, accumulate_link_bits


@dataclass
class _PhaseLedger:
    """Mutable ledger for one named phase."""

    link_bits: Dict[Edge, int]
    fixed_overhead: Fraction

    def total_bits(self) -> int:
        return sum(self.link_bits.values())


class TimeAccountant:
    """Accumulates per-phase link usage and converts it into elapsed time."""

    def __init__(self, graph: NetworkGraph) -> None:
        self._graph = graph
        self._phases: Dict[str, _PhaseLedger] = {}
        self._phase_order: List[str] = []

    # ------------------------------------------------------------- recording

    def _ledger(self, phase: str) -> _PhaseLedger:
        if phase not in self._phases:
            self._phases[phase] = _PhaseLedger(link_bits={}, fixed_overhead=Fraction(0))
            self._phase_order.append(phase)
        return self._phases[phase]

    def record_transmission(self, phase: str, tail: NodeId, head: NodeId, bits: int) -> None:
        """Charge ``bits`` of usage on the link ``(tail, head)`` to ``phase``.

        Raises:
            GraphError: if the link does not exist in the graph.
            ProtocolError: if ``bits`` is not a positive integer.
        """
        if not self._graph.has_edge(tail, head):
            raise GraphError(f"cannot transmit on missing link ({tail}, {head})")
        if not isinstance(bits, int) or isinstance(bits, bool) or bits <= 0:
            raise ProtocolError(f"bits must be a positive integer, got {bits!r}")
        self._record_validated(phase, tail, head, bits)

    def _record_validated(self, phase: str, tail: NodeId, head: NodeId, bits: int) -> None:
        """Ledger update behind :meth:`record_transmission`, without checks.

        The transport's ``send`` already validated the link and the bit
        count, so the per-message hot path skips re-validating them here.
        """
        ledger = self._phases.get(phase)
        if ledger is None:
            ledger = self._ledger(phase)
        link_bits = ledger.link_bits
        key = (tail, head)
        link_bits[key] = link_bits.get(key, 0) + bits

    def add_fixed_overhead(self, phase: str, time_units: Fraction | int) -> None:
        """Charge a fixed amount of time (independent of link usage) to ``phase``."""
        duration = Fraction(time_units)
        if duration < 0:
            raise ProtocolError(f"fixed overhead must be non-negative, got {duration}")
        self._ledger(phase).fixed_overhead += duration

    # --------------------------------------------------------------- reporting

    def phase_names(self) -> List[str]:
        """Phases seen so far, in first-use order."""
        return list(self._phase_order)

    def link_bits(self, phase: str) -> Dict[Edge, int]:
        """Bits charged to each link during ``phase`` (empty dict if unknown phase)."""
        if phase not in self._phases:
            return {}
        return dict(self._phases[phase].link_bits)

    def total_link_bits(self) -> Dict[Edge, int]:
        """Bits charged to each link, aggregated across every phase."""
        totals: Dict[Edge, int] = {}
        for phase in self._phase_order:
            accumulate_link_bits(totals, self._phases[phase].link_bits)
        return totals

    def phase_bits(self, phase: str) -> int:
        """Total bits sent on all links during ``phase``."""
        if phase not in self._phases:
            return 0
        return self._phases[phase].total_bits()

    def phase_fixed_overhead(self, phase: str) -> Fraction:
        """Fixed (link-independent) time charged to ``phase`` so far."""
        if phase not in self._phases:
            return Fraction(0)
        return self._phases[phase].fixed_overhead

    def total_fixed_overhead(self) -> Fraction:
        """Fixed overhead summed across every phase."""
        return sum(
            (self._phases[phase].fixed_overhead for phase in self._phase_order),
            Fraction(0),
        )

    def phase_elapsed(self, phase: str) -> Fraction:
        """Elapsed time of ``phase``: ``max_e bits_e / z_e`` plus fixed overhead."""
        if phase not in self._phases:
            return Fraction(0)
        ledger = self._phases[phase]
        transmission_time = Fraction(0)
        for (tail, head), bits in ledger.link_bits.items():
            capacity = self._graph.capacity(tail, head)
            link_time = Fraction(bits, capacity)
            if link_time > transmission_time:
                transmission_time = link_time
        return transmission_time + ledger.fixed_overhead

    def total_elapsed(self) -> Fraction:
        """Sum of the elapsed times of all phases (phases run sequentially)."""
        return sum((self.phase_elapsed(phase) for phase in self._phase_order), Fraction(0))

    def total_bits(self) -> int:
        """Total bits sent on all links across all phases."""
        return sum(self.phase_bits(phase) for phase in self._phase_order)

    def phase_timings(self) -> Tuple[PhaseTiming, ...]:
        """Immutable per-phase summary in execution order."""
        return tuple(
            PhaseTiming(
                name=phase,
                time_units=self.phase_elapsed(phase),
                bits_sent=self.phase_bits(phase),
            )
            for phase in self._phase_order
        )

    def merge_from(self, other: "TimeAccountant") -> None:
        """Fold another accountant's ledgers into this one (phases keep their names).

        Used when a sub-protocol (e.g. the classical 1-bit broadcast) runs with
        its own accountant and its cost must be attributed to the caller.
        """
        for phase in other.phase_names():
            for (tail, head), bits in other.link_bits(phase).items():
                self.record_transmission(phase, tail, head, bits)
            overhead = other._phases[phase].fixed_overhead
            if overhead:
                self.add_fixed_overhead(phase, overhead)
