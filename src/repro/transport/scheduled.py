"""Event-queue transport: :class:`ScheduledNetwork`.

``ScheduledNetwork`` exposes exactly the same ``send`` / ``send_round`` API as
:class:`repro.transport.network.SynchronousNetwork` — protocols port by
swapping the constructor — but instead of treating delivery as free it gives
every transmission the discrete-event semantics of :mod:`repro.sched`:

* each named accounting phase is one synchronous round: all of a phase's
  messages enter the network when the round starts, and the next phase begins
  only once every one of them has been delivered (a barrier);
* within a round, each directed link is a FIFO that drains
  ``bit_size / capacity`` time units per message in send order (finite link
  capacity is the paper's base model);
* an optional :class:`repro.sched.links.LinkModel` adds propagation latency
  and deterministic jitter between a message's drain and its delivery.

Phase identity follows the *name*, exactly as in
:class:`~repro.transport.accounting.TimeAccountant`: protocols that interleave
sends of two phase names (e.g. the per-origin flag sub-broadcasts alternating
``round1``/``round2``) mean those rounds to run in parallel across origins, so
the messages of one name always share one round no matter the send order.
Rounds execute in first-use order.

The inherited accountant keeps recording every transmission and stays the
*analytical oracle*: with a zero-latency link model the measured event clock
equals ``accountant.total_elapsed()`` exactly (both are
:class:`fractions.Fraction` values) — the scheduler contract the transport
tests pin down.  With latency or jitter the measured clock is strictly
larger; that gap is what the latency experiments report.

Payload delivery remains eager (the returned :class:`Message` is usable
immediately and ``messages_received_by`` sees it): node computation is
instantaneous in the paper's model, so the event clock tracks only *wire*
time.  The scheduler adds the measured timeline — when each message actually
arrives — without perturbing protocol semantics.

Batched vectors (``send_vector``) are one FIFO item: a vector of ``k``
symbols of ``b`` bits drains ``k * b / capacity`` on its link, exactly the
total its per-symbol sends would have drained back to back, so the
zero-latency equality with the accountant and the per-phase completion time
under uniform/per-link latency are unchanged by batching.  Only *jitter* can
observe the difference (its key is the per-message ordinal, and a batch is
one message).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, List, Tuple

from repro.graph.network_graph import NetworkGraph
from repro.sched.links import LinkModel
from repro.transport.faults import FaultModel
from repro.transport.message import Message
from repro.transport.network import SynchronousNetwork
from repro.types import Edge, NodeId


@dataclass(frozen=True)
class PhaseSegment:
    """Measured wall-clock extent of one synchronous round (one named phase)."""

    phase: str
    start: Fraction
    end: Fraction

    @property
    def duration(self) -> Fraction:
        return self.end - self.start


@dataclass(frozen=True)
class DeliveryTiming:
    """Measured timing of one message on the wire.

    Attributes:
        phase: Accounting phase of the transmission.
        link: The directed link ``(sender, receiver)``.
        bits: Message size.
        departure: When the link started draining the message.
        arrival: When the message was fully delivered (drain + propagation).
        sequence: Per-network message ordinal (0-based send order).  Also the
            jitter key, so jittered runs are reproducible run to run.
    """

    phase: str
    link: Edge
    bits: int
    departure: Fraction
    arrival: Fraction
    sequence: int


class ScheduledNetwork(SynchronousNetwork):
    """Message transport whose clock is driven by the discrete-event kernel.

    ``start_time`` restores the measured clock mid-flight: the first round
    begins at that absolute instant instead of 0, so a session resumed from a
    snapshot continues on the same session-absolute timeline it stopped on.
    Durations are unaffected — :meth:`elapsed_time` reports ``end -
    start_time``, keeping the zero-latency equality with the analytical
    accountant (which only ever counts durations) intact.
    """

    def __init__(
        self,
        graph: NetworkGraph,
        fault_model: FaultModel | None = None,
        link_model: LinkModel | None = None,
        start_time: Fraction | int = 0,
    ) -> None:
        super().__init__(graph, fault_model)
        self.start_time = Fraction(start_time)
        if self.start_time < 0:
            raise ValueError(f"start_time must be non-negative, got {self.start_time}")
        self.link_model = link_model if link_model is not None else LinkModel()
        #: Per phase, the messages of its round in send order.  Round order
        #: and fixed overhead come from the accountant (the single ledger),
        #: so charges made directly on it are always reflected here.
        self._phase_messages: Dict[str, List[Tuple[Edge, int, int]]] = {}
        #: Per-network wire ordinal: one per transmission that occupies a
        #: link, in scheduling order.  Equals ``len(self._delivered) - 1`` as
        #: long as every wire transmission delivers exactly one message —
        #: subclasses that put *extra* copies on the wire (retransmissions,
        #: duplicates) consume ordinals of their own via
        #: :meth:`_next_wire_ordinal`, keeping jitter keys unique.
        self._wire_sequence = 0
        self._replayed_key: object = None
        self._replay_cache: Tuple[List[PhaseSegment], List[DeliveryTiming], Fraction] = (
            [],
            [],
            Fraction(0),
        )

    # -------------------------------------------------------------------- send

    def send(
        self,
        sender: NodeId,
        receiver: NodeId,
        payload: Any,
        bit_size: int,
        phase: str,
        kind: str = "data",
    ) -> Message:
        """Send ``payload``, logging its transmission on the event clock.

        See :meth:`SynchronousNetwork.send` for the protocol-facing contract;
        the differences are purely temporal and observable through
        :meth:`elapsed_time`, :meth:`phase_segments` and
        :meth:`delivery_timeline`.
        """
        message = super().send(sender, receiver, payload, bit_size, phase, kind)
        # The per-network wire ordinal (not Message.sequence, which is
        # process global) keys the deterministic jitter, so two identical
        # runs see identical delays.
        self._log_wire_item(phase, (sender, receiver), bit_size)
        return message

    def _next_wire_ordinal(self) -> int:
        """Allocate the next per-network wire ordinal (the jitter key)."""
        ordinal = self._wire_sequence
        self._wire_sequence += 1
        return ordinal

    def _log_wire_item(self, phase: str, edge: Edge, bits: int) -> int:
        """Append one wire transmission to its round's FIFO; returns its ordinal.

        Every call must be paired with exactly one accountant charge of the
        same ``(phase, edge, bits)`` so the measured and analytical clocks
        keep agreeing at zero latency.  :meth:`send` pairs it with the
        inherited delivery; the ARQ subclass pairs it with the ledger charges
        of retransmitted and duplicated copies.
        """
        ordinal = self._next_wire_ordinal()
        self._phase_messages.setdefault(phase, []).append((edge, bits, ordinal))
        return ordinal

    def charge_fixed_overhead(self, phase: str, time_units: Fraction | int) -> None:
        """Charge link-independent time to ``phase`` on both clocks.

        Convenience alias for ``self.accountant.add_fixed_overhead`` — the
        replay reads overhead straight from the accountant's ledger, so
        charging the accountant directly is equally safe.
        """
        self.accountant.add_fixed_overhead(phase, time_units)

    # ------------------------------------------------------------- measurement

    def _replay(self) -> Tuple[List[PhaseSegment], List[DeliveryTiming], Fraction]:
        """Replay every logged round on the measured clock (memoised).

        Round ``k + 1`` starts at the instant round ``k``'s last delivery
        lands; within a round each link drains its FIFO at link capacity and
        the link model adds per-message propagation delay.  The delivery
        timeline is ordered deterministically by ``(arrival, scheduling
        order)`` — exactly what an event queue would produce.
        """
        # Wire transmissions grow the ordinal counter, positive overhead
        # charges grow the total, and a zero-valued charge can still register
        # a new phase — the triple keys the memo soundly.
        key = (
            self._wire_sequence,
            len(self.accountant.phase_names()),
            self.accountant.total_fixed_overhead(),
        )
        if key == self._replayed_key:
            return self._replay_cache
        timeline: List[DeliveryTiming] = []
        segments: List[PhaseSegment] = []
        start = self.start_time
        for phase in self.accountant.phase_names():
            end = start
            busy: Dict[Edge, Fraction] = {}
            for edge, bits, sequence in self._phase_messages.get(phase, ()):
                departure = busy.get(edge, start)
                drained = departure + Fraction(bits, self.graph.capacity(*edge))
                busy[edge] = drained
                arrival = drained + self.link_model.delay(edge, sequence)
                if arrival > end:
                    end = arrival
                timeline.append(
                    DeliveryTiming(
                        phase=phase,
                        link=edge,
                        bits=bits,
                        departure=departure,
                        arrival=arrival,
                        sequence=sequence,
                    )
                )
            end += self.accountant.phase_fixed_overhead(phase)
            segments.append(PhaseSegment(phase=phase, start=start, end=end))
            start = end
        # The list is built in scheduling order, so the stable sort yields the
        # (arrival, scheduling order) order an event queue would produce.
        timeline.sort(key=lambda timing: timing.arrival)
        self._replay_cache = (segments, timeline, start)
        self._replayed_key = key
        return self._replay_cache

    def elapsed_time(self) -> Fraction:
        """Measured duration: last delivery's landing time minus ``start_time``."""
        return self._replay()[2] - self.start_time

    def phase_segments(self) -> List[PhaseSegment]:
        """Measured ``(phase, start, end)`` per synchronous round, in order."""
        return list(self._replay()[0])

    def delivery_timeline(self) -> List[DeliveryTiming]:
        """Per-message measured timings, ordered by ``(arrival, sequence)``."""
        return list(self._replay()[1])
