"""Synchronous point-to-point network simulation substrate.

The paper's system model is a synchronous network of directed links, where a
link of capacity ``z_e`` can carry up to ``z_e * tau`` bits in ``tau`` time
units and propagation delays are (by default) zero.  The simulator here
enforces exactly that model:

* :class:`repro.transport.message.Message` — a typed unit of communication
  with an explicit bit size.
* :class:`repro.transport.accounting.TimeAccountant` — converts the bits sent
  on each link during a protocol phase into the elapsed time of that phase
  (``max_e bits_e / z_e``) and accumulates totals across phases and instances.
* :class:`repro.transport.network.SynchronousNetwork` — message delivery over
  the links of a :class:`repro.graph.NetworkGraph` with per-phase usage
  tracking.
* :class:`repro.transport.faults.FaultModel` — which nodes are Byzantine and
  which :class:`repro.transport.faults.ByzantineStrategy` drives their
  behaviour.  The strategy interface is defined here (with honest defaults);
  concrete attacks live in :mod:`repro.adversary`.
* :class:`repro.transport.scheduled.ScheduledNetwork` — the same send API
  driven by the discrete-event kernel of :mod:`repro.sched`: per-link FIFO
  drains, optional propagation latency/jitter, and a measured clock that
  equals the accountant's analytical total exactly in the zero-latency case.
* :class:`repro.transport.reliable.ReliableNetwork` — ARQ retransmission
  (timeout, exponential backoff, bounded retries, dead-link = omission) over a
  seeded :class:`repro.sched.faults.LinkFaultPlan`; bit-identical to
  ``ScheduledNetwork`` when the plan is clean.
"""

from repro.transport.accounting import TimeAccountant
from repro.transport.faults import ByzantineStrategy, FaultModel
from repro.transport.message import Message
from repro.transport.network import NetworkFactory, SynchronousNetwork
from repro.transport.reliable import DeadLetter, ReliableNetwork
from repro.transport.scheduled import DeliveryTiming, PhaseSegment, ScheduledNetwork

__all__ = [
    "Message",
    "TimeAccountant",
    "SynchronousNetwork",
    "ScheduledNetwork",
    "ReliableNetwork",
    "DeadLetter",
    "NetworkFactory",
    "PhaseSegment",
    "DeliveryTiming",
    "FaultModel",
    "ByzantineStrategy",
]
