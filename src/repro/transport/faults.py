"""Fault model: which nodes are Byzantine and how they behave.

The paper's adversary controls up to ``f < n / 3`` nodes, knows the topology,
the algorithm and the source input, and can deviate arbitrarily — including
sending incorrect or inconsistent messages and omitting messages (a missing
message is interpreted as a default value by the recipient).  The set of
faulty nodes is fixed across the repeated NAB instances.

Protocols in this library consult the :class:`FaultModel` at every point where
a faulty node gets to choose what to do.  :class:`ByzantineStrategy` defines
those decision hooks with honest defaults (a "Byzantine" node running the
honest strategy is indistinguishable from a fault-free node); concrete attack
strategies in :mod:`repro.adversary.strategies` override the hooks they care
about.  Keeping the hooks protocol-level (rather than intercepting raw
messages) mirrors the structure of the paper's arguments, which reason about
what a faulty node may inject at each algorithm step.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence

from repro.exceptions import ProtocolError
from repro.types import NodeId


class ByzantineStrategy:
    """Decision hooks for faulty nodes.  The base class behaves honestly.

    Every hook receives enough context to implement the attacks discussed in
    the paper (equivocation by the source, corruption of relayed symbols,
    false equality-check flags, lying during dispute control, corrupting the
    classical broadcast used as a sub-protocol).  Hooks must be deterministic
    functions of their arguments and any internal state seeded at
    construction, so experiments are reproducible.
    """

    #: Human-readable strategy name used in reports.
    name = "honest"

    # ------------------------------------------------------- Phase 1 hooks

    def phase1_source_symbol(
        self,
        instance: int,
        tree_index: int,
        child: NodeId,
        true_symbol: int,
    ) -> int:
        """Symbol the (faulty) source sends to ``child`` on tree ``tree_index``.

        Returning a different value per child implements source equivocation.
        """
        return true_symbol

    def phase1_forward_symbol(
        self,
        instance: int,
        node: NodeId,
        tree_index: int,
        child: NodeId,
        true_symbol: int,
    ) -> int:
        """Symbol a faulty relay forwards to ``child`` on tree ``tree_index``."""
        return true_symbol

    # ------------------------------------------------------- Phase 2 hooks

    def equality_check_vector(
        self,
        instance: int,
        node: NodeId,
        neighbor: NodeId,
        true_vector: Sequence[int],
    ) -> Sequence[int]:
        """Coded symbols a faulty node sends to ``neighbor`` during Equality Check."""
        return true_vector

    def equality_check_flag(self, instance: int, node: NodeId, true_flag: bool) -> bool:
        """The MISMATCH flag value a faulty node claims (True = MISMATCH)."""
        return true_flag

    # ----------------------------------------------- classical broadcast hooks

    def broadcast_value(
        self,
        instance: int,
        node: NodeId,
        receiver: NodeId,
        context: str,
        true_value: Any,
    ) -> Any:
        """Value a faulty node reports to ``receiver`` inside a classical BB round.

        ``context`` identifies the sub-protocol use ("flag", "dispute", ...) and
        the position inside it (e.g. the EIG label path), so strategies can
        target specific rounds.
        """
        return true_value

    def relay_value(
        self,
        instance: int,
        node: NodeId,
        path: Sequence[NodeId],
        receiver: NodeId,
        true_value: Any,
    ) -> Any:
        """Value a faulty intermediate node forwards along a disjoint-path relay."""
        return true_value

    # ------------------------------------------------------- Phase 3 hooks

    def dispute_claims(
        self,
        instance: int,
        node: NodeId,
        true_claims: Dict[str, Any],
    ) -> Dict[str, Any]:
        """Transcript claims a faulty node broadcasts during dispute control."""
        return true_claims

    # ----------------------------------------------------- observation hooks

    def observe_faulty_nodes(self, faulty: FrozenSet[NodeId]) -> None:
        """Called once when the strategy is bound to a fault model.

        The paper's adversary controls all its nodes jointly, so a strategy
        serving a coalition learns the full membership up front (e.g. to run a
        deterministic per-instance rotation over its members).  The base
        strategy ignores it.
        """

    def observe_instance(
        self,
        instance: int,
        graph: Any,
        instance_graph: Any,
        source: NodeId,
        max_faults: int,
        dispute_state: Any,
    ) -> None:
        """Called at the start of every NAB instance with the public state.

        ``dispute_state`` is a private copy of the fault-free nodes' agreed
        :class:`repro.core.dispute_state.DisputeState` — public knowledge the
        paper's adversary trivially has, which adaptive strategies use to
        retarget away from already-disputed edges.  Mutating the copy has no
        effect on the protocol.  The base strategy ignores the call.
        """


class FaultModel:
    """The set of Byzantine nodes together with their strategy.

    Args:
        faulty_nodes: Node identifiers controlled by the adversary.
        strategy: The :class:`ByzantineStrategy` those nodes follow.  Defaults
            to the honest strategy (useful as the "no visible misbehaviour"
            baseline).

    Raises:
        ProtocolError: if the same node is listed twice (guards against typos
            in experiment configuration).
    """

    def __init__(
        self,
        faulty_nodes: Iterable[NodeId] = (),
        strategy: Optional[ByzantineStrategy] = None,
    ) -> None:
        faulty_list = list(faulty_nodes)
        if len(faulty_list) != len(set(faulty_list)):
            raise ProtocolError("faulty node list contains duplicates")
        self._faulty: FrozenSet[NodeId] = frozenset(faulty_list)
        self.strategy = strategy if strategy is not None else ByzantineStrategy()
        self.strategy.observe_faulty_nodes(self._faulty)

    @property
    def faulty_nodes(self) -> FrozenSet[NodeId]:
        """The set of Byzantine node identifiers."""
        return self._faulty

    def fault_count(self) -> int:
        """Number of Byzantine nodes."""
        return len(self._faulty)

    def is_faulty(self, node: NodeId) -> bool:
        """Whether ``node`` is controlled by the adversary."""
        return node in self._faulty

    def fault_free(self, nodes: Iterable[NodeId]) -> List[NodeId]:
        """The fault-free subset of ``nodes``, sorted."""
        return sorted(node for node in nodes if node not in self._faulty)

    def validate_for(self, node_count: int, max_faults: int) -> None:
        """Check the model against the ``n >= 3f + 1`` resilience requirement.

        Raises:
            ProtocolError: if more nodes are faulty than ``max_faults`` or the
                resilience bound ``node_count >= 3 * max_faults + 1`` fails.
        """
        if self.fault_count() > max_faults:
            raise ProtocolError(
                f"{self.fault_count()} faulty nodes exceed the declared bound f={max_faults}"
            )
        if node_count < 3 * max_faults + 1:
            raise ProtocolError(
                f"n={node_count} violates n >= 3f + 1 for f={max_faults}"
            )

    def __repr__(self) -> str:
        return (
            f"FaultModel(faulty={sorted(self._faulty)}, strategy={self.strategy.name!r})"
        )
