"""Typed messages with explicit bit-size accounting.

Every transmission in the simulator carries an explicit ``bit_size`` so that
the :class:`repro.transport.accounting.TimeAccountant` can convert link usage
into elapsed time exactly as the paper's capacity model prescribes.  The
payload itself is opaque to the transport layer; protocols put whatever
structured data they need in it (symbols, flags, transcript claims, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any

from repro.exceptions import ProtocolError
from repro.types import NodeId

_SEQUENCE = count()


@dataclass(frozen=True)
class Message:
    """One unit of communication over a directed link.

    Attributes:
        sender: Node that transmits the message.
        receiver: Node that receives the message.
        phase: Name of the protocol phase the transmission belongs to; used to
            attribute link usage to phases for time accounting.
        kind: Free-form message type tag (e.g. ``"phase1_symbol"``,
            ``"equality_coded"``, ``"eig_relay"``).
        payload: Protocol-defined content.
        bit_size: Number of bits this message occupies on the link.  Must be
            positive; the transport charges exactly this amount to the link.
        sequence: Monotonically increasing identifier, assigned automatically,
            used only to keep delivery order deterministic.
    """

    sender: NodeId
    receiver: NodeId
    phase: str
    kind: str
    payload: Any
    bit_size: int
    sequence: int = field(default_factory=lambda: next(_SEQUENCE))

    def __post_init__(self) -> None:
        if not isinstance(self.bit_size, int) or isinstance(self.bit_size, bool):
            raise ProtocolError(f"bit_size must be an int, got {type(self.bit_size).__name__}")
        if self.bit_size <= 0:
            raise ProtocolError(f"bit_size must be positive, got {self.bit_size}")
        if self.sender == self.receiver:
            raise ProtocolError("a node does not send messages to itself over the network")

    def replace_payload(self, payload: Any, bit_size: int | None = None) -> "Message":
        """Return a copy with a different payload (used by Byzantine interception)."""
        return Message(
            sender=self.sender,
            receiver=self.receiver,
            phase=self.phase,
            kind=self.kind,
            payload=payload,
            bit_size=self.bit_size if bit_size is None else bit_size,
        )
