"""Synchronous message delivery with per-phase link-usage accounting.

:class:`SynchronousNetwork` is the thin runtime every protocol in the library
is written against.  It owns

* the :class:`repro.graph.NetworkGraph` describing which directed links exist
  and their capacities,
* a :class:`repro.transport.accounting.TimeAccountant` that attributes the
  bits of every transmission to a named protocol phase, and
* the :class:`repro.transport.faults.FaultModel` describing which nodes are
  Byzantine (protocols consult it to decide which strategy hook to invoke).

Delivery is synchronous and immediate: :meth:`SynchronousNetwork.send` charges
the link and returns the delivered :class:`Message`.  Batch helpers
(:meth:`send_round`) keep per-round bookkeeping readable in the protocol code.
The transport never alters payloads — Byzantine behaviour is decided by the
protocols via the strategy hooks *before* handing a payload to the transport,
mirroring how the paper reasons about what faulty nodes inject at each step.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Tuple

from repro.exceptions import GraphError, ProtocolError
from repro.graph.network_graph import NetworkGraph
from repro.transport.accounting import TimeAccountant
from repro.transport.faults import FaultModel
from repro.transport.message import Message
from repro.types import NodeId


#: Builds the transport a protocol instance runs on.  The default everywhere
#: is ``SynchronousNetwork`` itself; injecting a factory (e.g. for
#: :class:`repro.transport.scheduled.ScheduledNetwork` with a link model) is
#: how callers swap delivery semantics without touching protocol logic.
NetworkFactory = Callable[[NetworkGraph, FaultModel], "SynchronousNetwork"]


class SynchronousNetwork:
    """Message transport over a capacitated directed graph."""

    def __init__(self, graph: NetworkGraph, fault_model: FaultModel | None = None) -> None:
        self.graph = graph
        self.fault_model = fault_model if fault_model is not None else FaultModel()
        self.accountant = TimeAccountant(graph)
        self._delivered: List[Message] = []

    # ---------------------------------------------------------------- queries

    def nodes(self) -> List[NodeId]:
        """All nodes of the underlying graph, sorted."""
        return self.graph.nodes()

    def fault_free_nodes(self) -> List[NodeId]:
        """All nodes not controlled by the adversary, sorted."""
        return self.fault_model.fault_free(self.graph.nodes())

    def has_link(self, tail: NodeId, head: NodeId) -> bool:
        """Whether the directed link exists."""
        return self.graph.has_edge(tail, head)

    def link_capacity(self, tail: NodeId, head: NodeId) -> int:
        """Capacity of the directed link (raises if absent)."""
        return self.graph.capacity(tail, head)

    def delivered_messages(self) -> List[Message]:
        """Every message delivered so far (in delivery order)."""
        return list(self._delivered)

    def messages_received_by(self, node: NodeId, phase: str | None = None) -> List[Message]:
        """Messages delivered to ``node``, optionally filtered by phase."""
        return [
            message
            for message in self._delivered
            if message.receiver == node and (phase is None or message.phase == phase)
        ]

    # ------------------------------------------------------------------- send

    def send(
        self,
        sender: NodeId,
        receiver: NodeId,
        payload: Any,
        bit_size: int,
        phase: str,
        kind: str = "data",
    ) -> Message:
        """Send ``payload`` over the directed link ``(sender, receiver)``.

        The link is charged ``bit_size`` bits in phase ``phase`` and the
        message is delivered immediately (zero propagation delay, as in the
        paper's base model).

        Raises:
            GraphError: if the directed link does not exist.
            ProtocolError: if ``bit_size`` is not a positive integer.
        """
        if not self.graph.has_edge(sender, receiver):
            raise GraphError(f"no link from {sender} to {receiver}")
        if not isinstance(bit_size, int) or isinstance(bit_size, bool) or bit_size <= 0:
            raise ProtocolError(f"bits must be a positive integer, got {bit_size!r}")
        message = Message(
            sender=sender,
            receiver=receiver,
            phase=phase,
            kind=kind,
            payload=payload,
            bit_size=bit_size,
        )
        # Link and bit count were validated above, so the accountant's
        # re-checks are skipped on this per-message hot path.
        self.accountant._record_validated(phase, sender, receiver, bit_size)
        self._delivered.append(message)
        return message

    def send_vector(
        self,
        sender: NodeId,
        receiver: NodeId,
        symbols: Iterable[Any],
        bits_each: int,
        phase: str,
        kind: str = "data",
    ) -> Message:
        """Send a whole per-edge symbol vector as *one* transmission.

        Batching contract: the payload is the tuple of symbols, the link is
        charged ``len(symbols) * bits_each`` bits in one accounting record,
        and exactly one :class:`Message` is created.  Per-link bit totals —
        and therefore every elapsed-time quantity the accountant derives —
        are identical to sending the symbols one by one; what changes is only
        the constant per-message overhead (object construction, ledger
        updates, scheduler bookkeeping), which used to dominate symbol-dense
        phases.  Phase 1 hands each edge its full cross-tree symbol vector
        through this entry point, and the equality check its coded vector.

        Raises:
            GraphError: if the directed link does not exist.
            ProtocolError: if the vector is empty or ``bits_each`` is not a
                positive integer (via the accountant's validation).
        """
        payload = tuple(symbols)
        if not payload:
            raise ProtocolError("send_vector requires at least one symbol")
        return self.send(
            sender, receiver, payload, bits_each * len(payload), phase, kind
        )

    def send_round(
        self,
        transmissions: Iterable[Tuple[NodeId, NodeId, Any, int]],
        phase: str,
        kind: str = "data",
    ) -> Dict[NodeId, List[Message]]:
        """Send a batch of transmissions and return the per-receiver inboxes.

        Args:
            transmissions: Iterable of ``(sender, receiver, payload, bit_size)``.
            phase: Phase name the usage is charged to.
            kind: Message kind tag applied to every message of the round.

        Returns:
            Mapping from receiver to the list of messages it received this
            round, in transmission order.
        """
        inboxes: Dict[NodeId, List[Message]] = {}
        for sender, receiver, payload, bit_size in transmissions:
            message = self.send(sender, receiver, payload, bit_size, phase, kind)
            inboxes.setdefault(receiver, []).append(message)
        return inboxes

    # ------------------------------------------------------------- accounting

    def elapsed_time(self):
        """Total elapsed time across all phases so far (exact Fraction)."""
        return self.accountant.total_elapsed()

    def total_bits(self) -> int:
        """Total bits sent across all phases so far."""
        return self.accountant.total_bits()
