"""Common type aliases and small value objects shared across the library.

The paper models the network as a directed simple graph ``G(V, E)`` whose
vertices are the nodes ``1 .. n`` and whose directed edges carry positive
integer capacities.  Throughout the library nodes are identified by plain
integers and directed edges by ``(tail, head)`` tuples; this module pins those
conventions down and provides the small frozen dataclasses used to pass
structured results between subsystems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, FrozenSet, Tuple

#: A node identifier.  The paper numbers nodes ``1 .. n`` with node 1 as the
#: source; the library follows the same convention but does not require
#: contiguous identifiers.
NodeId = int

#: A directed edge identified by ``(tail, head)``.
Edge = Tuple[NodeId, NodeId]

#: An unordered node pair, used for disputes and undirected edges.  Stored as
#: a ``frozenset`` of exactly two node identifiers.
NodePair = FrozenSet[NodeId]

#: Time durations and throughputs are exact rationals so that the analytical
#: quantities of the paper (e.g. ``L / gamma_k``) can be compared without
#: floating-point noise.
TimeUnits = Fraction


def node_pair(a: NodeId, b: NodeId) -> NodePair:
    """Return the canonical unordered pair for nodes ``a`` and ``b``.

    Raises:
        ValueError: if ``a == b`` — a node cannot be in dispute with itself
            and the network graph has no self loops.
    """
    if a == b:
        raise ValueError(f"a node pair requires two distinct nodes, got {a!r} twice")
    return frozenset((a, b))


@dataclass(frozen=True)
class PhaseTiming:
    """Elapsed time attributed to one phase of a protocol instance.

    Attributes:
        name: Human-readable phase name (e.g. ``"phase1_broadcast"``).
        time_units: Elapsed time in the paper's abstract time units, i.e. the
            maximum over all links of ``bits sent on the link / link capacity``
            plus any fixed overhead charged to the phase.
        bits_sent: Total number of bits sent on all links during the phase.
    """

    name: str
    time_units: Fraction
    bits_sent: int = 0


@dataclass(frozen=True)
class BroadcastResult:
    """Outcome of one Byzantine-broadcast instance.

    Attributes:
        outputs: Mapping from fault-free node id to the value that node
            decided.  Faulty nodes are intentionally absent: the BB
            specification constrains only fault-free outputs.
        elapsed: Total elapsed time in abstract time units.
        bits_sent: Total bits sent on all links.
        phase_timings: Per-phase timing breakdown, in execution order.
        metadata: Free-form per-protocol diagnostic information (e.g. whether
            dispute control ran, which disputes were discovered).
    """

    outputs: Dict[NodeId, bytes]
    elapsed: Fraction
    bits_sent: int = 0
    phase_timings: Tuple[PhaseTiming, ...] = ()
    metadata: Dict[str, object] = field(default_factory=dict)

    def agreed_value(self) -> bytes:
        """Return the common output if all fault-free nodes agree.

        Raises:
            ValueError: if the outputs are empty or not all identical.
        """
        values = set(self.outputs.values())
        if not values:
            raise ValueError("broadcast result has no fault-free outputs")
        if len(values) != 1:
            raise ValueError(f"fault-free nodes disagree: {len(values)} distinct outputs")
        return next(iter(values))
