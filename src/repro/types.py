"""Common type aliases and small value objects shared across the library.

The paper models the network as a directed simple graph ``G(V, E)`` whose
vertices are the nodes ``1 .. n`` and whose directed edges carry positive
integer capacities.  Throughout the library nodes are identified by plain
integers and directed edges by ``(tail, head)`` tuples; this module pins those
conventions down and provides the small frozen dataclasses used to pass
structured results between subsystems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

#: A node identifier.  The paper numbers nodes ``1 .. n`` with node 1 as the
#: source; the library follows the same convention but does not require
#: contiguous identifiers.
NodeId = int

#: A directed edge identified by ``(tail, head)``.
Edge = Tuple[NodeId, NodeId]

#: An unordered node pair, used for disputes and undirected edges.  Stored as
#: a ``frozenset`` of exactly two node identifiers.
NodePair = FrozenSet[NodeId]

#: Time durations and throughputs are exact rationals so that the analytical
#: quantities of the paper (e.g. ``L / gamma_k``) can be compared without
#: floating-point noise.
TimeUnits = Fraction


def node_pair(a: NodeId, b: NodeId) -> NodePair:
    """Return the canonical unordered pair for nodes ``a`` and ``b``.

    Raises:
        ValueError: if ``a == b`` — a node cannot be in dispute with itself
            and the network graph has no self loops.
    """
    if a == b:
        raise ValueError(f"a node pair requires two distinct nodes, got {a!r} twice")
    return frozenset((a, b))


@dataclass(frozen=True)
class PhaseTiming:
    """Elapsed time attributed to one phase of a protocol instance.

    Attributes:
        name: Human-readable phase name (e.g. ``"phase1_broadcast"``).
        time_units: Elapsed time in the paper's abstract time units, i.e. the
            maximum over all links of ``bits sent on the link / link capacity``
            plus any fixed overhead charged to the phase.
        bits_sent: Total number of bits sent on all links during the phase.
    """

    name: str
    time_units: Fraction
    bits_sent: int = 0


@dataclass(frozen=True)
class BroadcastResult:
    """Outcome of one Byzantine-broadcast instance.

    Attributes:
        outputs: Mapping from fault-free node id to the value that node
            decided.  Faulty nodes are intentionally absent: the BB
            specification constrains only fault-free outputs.
        elapsed: Total elapsed time in abstract time units.
        bits_sent: Total bits sent on all links.
        phase_timings: Per-phase timing breakdown, in execution order.
        metadata: Free-form per-protocol diagnostic information (e.g. whether
            dispute control ran, which disputes were discovered).
        link_bits: Bits sent per directed link over the whole instance.
    """

    outputs: Dict[NodeId, bytes]
    elapsed: Fraction
    bits_sent: int = 0
    phase_timings: Tuple[PhaseTiming, ...] = ()
    metadata: Dict[str, object] = field(default_factory=dict)
    link_bits: Dict[Edge, int] = field(default_factory=dict)

    def agreed_value(self) -> bytes:
        """Return the common output if all fault-free nodes agree.

        Raises:
            ValueError: if the outputs are empty or not all identical.
        """
        values = set(self.outputs.values())
        if not values:
            raise ValueError("broadcast result has no fault-free outputs")
        if len(values) != 1:
            raise ValueError(f"fault-free nodes disagree: {len(values)} distinct outputs")
        return next(iter(values))


def accumulate_link_bits(totals: Dict[Edge, int], link_bits: Dict[Edge, int]) -> None:
    """Fold one per-link bit ledger into ``totals`` in place.

    The single definition of "sum per-link usage" shared by the phase
    accountant and every protocol adapter, so persisted ``link_bits`` can
    never diverge between protocols.
    """
    for edge, bits in link_bits.items():
        totals[edge] = totals.get(edge, 0) + bits


def canonical_output(value: object) -> str:
    """A canonical string form of a broadcast output value.

    Protocols report outputs in different shapes — byte strings from the
    classical baselines, and Byzantine injections can surface arbitrary
    objects.  Agreement and validity are judged on this canonical form.  Byte
    strings canonicalise losslessly (``0x`` + full hex digits), so values that
    differ only in leading zero bytes — or in length — stay distinct.
    Integer outputs must be converted to byte strings of the payload length by
    their adapter before canonicalisation (NAB does this in
    ``NABRunResult.as_run_record``); a bare integer canonicalises as ``hex``
    and never equals a byte string's form.
    """
    if isinstance(value, bool):
        return repr(value)
    if isinstance(value, int):
        return hex(value)
    if isinstance(value, (bytes, bytearray)):
        return "0x" + bytes(value).hex()
    if value is None:
        return "none"
    return repr(value)


def broadcast_spec_flags(
    outputs: Sequence[Dict[NodeId, object]],
    inputs: Sequence[bytes],
    source_faulty: bool,
) -> Tuple[bool, Optional[bool]]:
    """Evaluate the Byzantine-broadcast specification over a run's outputs.

    Args:
        outputs: Per-instance fault-free outputs (one mapping per instance).
        inputs: The byte-string input of each instance, in the same order.
        source_faulty: Whether the broadcasting source is Byzantine.

    Returns:
        ``(agreement_ok, validity_ok)``.  ``validity_ok`` is ``None`` when the
        source is faulty (the specification does not constrain validity then).
        A run reporting a different number of output maps than inputs fails
        agreement outright — a missing instance never passes the spec check.
    """
    agreement_ok = len(outputs) == len(inputs)
    validity_ok: Optional[bool] = None if source_faulty else agreement_ok
    for value, instance_outputs in zip(inputs, outputs):
        decided = {canonical_output(output) for output in instance_outputs.values()}
        if len(decided) != 1:
            agreement_ok = False
            if not source_faulty:
                validity_ok = False
            continue
        if not source_faulty and decided != {canonical_output(value)}:
            validity_ok = False
    return agreement_ok, validity_ok


@dataclass(frozen=True)
class RunRecord:
    """The shared result shape every protocol adapter produces.

    One :class:`RunRecord` summarises a whole protocol run — ``instances``
    repeated broadcasts of the given inputs on one network — in a form that the
    experiment engine, the throughput analysis and the reporting layer can all
    consume without knowing which protocol produced it.

    Attributes:
        protocol: Registry name of the protocol that produced the record.
        instances: Number of broadcast instances executed (``Q``).
        payload_bits: Total broadcast payload across instances (``Q * L``).
        outputs: Per-instance fault-free outputs, in execution order.
        elapsed: Total elapsed time in the paper's abstract time units.
        bits_sent: Total bits sent on all links across all instances.
        link_bits: Bits sent per directed link, aggregated over the run.
        dispute_control_executions: How many instances ran Phase 3 (always 0
            for protocols without dispute control).
        agreement_ok: Whether every instance's fault-free nodes agreed.
        validity_ok: Whether every instance decided the source's input;
            ``None`` when the source is faulty (validity is then unconstrained).
        metadata: Free-form JSON-safe diagnostics (per-protocol).
    """

    protocol: str
    instances: int
    payload_bits: int
    outputs: Tuple[Dict[NodeId, object], ...]
    elapsed: Fraction
    bits_sent: int
    link_bits: Dict[Edge, int] = field(default_factory=dict)
    dispute_control_executions: int = 0
    agreement_ok: bool = True
    validity_ok: Optional[bool] = True
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def throughput(self) -> Optional[Fraction]:
        """``payload_bits / elapsed`` in bits per time unit (``None`` if no time elapsed)."""
        if self.elapsed <= 0:
            return None
        return Fraction(self.payload_bits) / self.elapsed

    @property
    def spec_ok(self) -> bool:
        """Whether the run satisfied the broadcast specification.

        Agreement must hold; validity must hold unless the source was faulty
        (``validity_ok is None``).
        """
        return self.agreement_ok and self.validity_ok is not False

    def to_jsonable(self) -> Dict[str, object]:
        """A JSON-safe dict with a stable, bit-for-bit reproducible layout.

        All mapping keys are strings and all exact rationals are rendered as
        ``"p/q"`` strings, so ``json.dumps(..., sort_keys=True)`` of the result
        round-trips byte-identically through a parse/re-dump cycle — the
        property the runner's resume-by-skipping relies on.
        """
        throughput = self.throughput
        return {
            "protocol": self.protocol,
            "instances": self.instances,
            "payload_bits": self.payload_bits,
            "outputs": [
                {str(node): canonical_output(value) for node, value in instance.items()}
                for instance in self.outputs
            ],
            "elapsed": str(self.elapsed),
            "bits_sent": self.bits_sent,
            "throughput": None if throughput is None else str(throughput),
            "link_bits": {
                f"{tail}->{head}": bits
                for (tail, head), bits in sorted(self.link_bits.items())
            },
            "dispute_control_executions": self.dispute_control_executions,
            "agreement_ok": self.agreement_ok,
            "validity_ok": self.validity_ok,
            "metadata": dict(self.metadata),
        }
