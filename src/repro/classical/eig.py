"""Exponential Information Gathering (EIG) Byzantine broadcast.

This is the classical ``f + 1``-round Byzantine broadcast of Pease, Shostak
and Lamport (as presented via EIG trees, e.g. Lynch's *Distributed
Algorithms*), correct for ``n >= 3f + 1`` on a complete communication graph.
The paper uses such an algorithm as ``Broadcast_Default``: its per-bit cost is
polynomial in ``n`` but independent of the bulk input size ``L``, so its cost
amortises away for large ``L``.

Communication between every ordered pair of participants travels over the
:class:`repro.classical.relay.DisjointPathRelay`, which emulates the complete
graph on an incomplete network with connectivity at least ``2f + 1``.

Byzantine participants may send arbitrary, per-receiver-inconsistent values at
every relaying step; the strategy hook
:meth:`repro.transport.faults.ByzantineStrategy.broadcast_value` decides what
they inject, keyed by the EIG label path so attacks can target specific
rounds.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.exceptions import ProtocolError
from repro.classical.relay import DisjointPathRelay, majority_value
from repro.transport.network import SynchronousNetwork
from repro.types import NodeId

#: Value decided when a subtree has no strict majority.
EIG_DEFAULT = None

Label = Tuple[NodeId, ...]


class EIGBroadcast:
    """One Byzantine broadcast of a single value using EIG over a relay."""

    def __init__(
        self,
        network: SynchronousNetwork,
        participants: Sequence[NodeId],
        max_faults: int,
        relay: DisjointPathRelay,
        instance: int = 0,
    ) -> None:
        participant_list = sorted(set(participants))
        if len(participant_list) < 3 * max_faults + 1:
            raise ProtocolError(
                f"EIG requires n >= 3f + 1 participants; got n={len(participant_list)}, "
                f"f={max_faults}"
            )
        missing = [node for node in participant_list if not network.graph.has_node(node)]
        if missing:
            raise ProtocolError(f"participants {missing} are not nodes of the network")
        self.network = network
        self.participants = participant_list
        self.max_faults = max_faults
        self.relay = relay
        self.instance = instance

    # ------------------------------------------------------------------ rounds

    def broadcast(
        self,
        source: NodeId,
        value: Any,
        bit_size: int,
        phase: str,
        context: str = "eig",
    ) -> Dict[NodeId, Any]:
        """Broadcast ``value`` from ``source`` to every participant.

        Returns:
            Mapping from every *fault-free* participant to the value it
            decides.  (Faulty participants' outputs are unconstrained and thus
            not reported.)

        Raises:
            ProtocolError: if the source is not a participant.
        """
        if source not in self.participants:
            raise ProtocolError(f"source {source} is not a participant")
        fault_model = self.network.fault_model
        strategy = fault_model.strategy
        # trees[i][label] = value participant i holds for the EIG label.
        trees: Dict[NodeId, Dict[Label, Any]] = {node: {} for node in self.participants}

        # Round 1: the source sends its value to every participant.
        root_label: Label = (source,)
        for receiver in self.participants:
            if receiver == source:
                trees[receiver][root_label] = value
                continue
            outgoing = value
            if fault_model.is_faulty(source):
                outgoing = strategy.broadcast_value(
                    self.instance, source, receiver, f"{context}|{root_label}", value
                )
            delivered = self.relay.reliable_send(
                source, receiver, outgoing, bit_size, f"{phase}/round1", context
            )
            trees[receiver][root_label] = delivered

        # Rounds 2 .. f+1: relay every label of the previous round.  A
        # fault-free relayer sends the *same* label values to each receiver,
        # and over clean paths (no faulty intermediary) every hop is pure
        # forwarding — so the whole round's labels for one (relayer,
        # receiver) pair ride as a single per-hop vector
        # (DisjointPathRelay.reliable_send_vector).  Per-link bit totals are
        # identical to per-label sends, so the accountant's and scheduler's
        # clocks are unchanged; faulty relayers or dirty paths keep the
        # per-label sends so every Byzantine hook fires exactly as before.
        for round_index in range(2, self.max_faults + 2):
            previous_labels = [
                label for label in trees[self.participants[0]] if len(label) == round_index - 1
            ]
            # Snapshot the values to relay before any updates this round.
            to_relay: Dict[NodeId, Dict[Label, Any]] = {
                node: {label: trees[node].get(label, EIG_DEFAULT) for label in previous_labels}
                for node in self.participants
            }
            round_phase = f"{phase}/round{round_index}"
            for relayer in self.participants:
                labels_to_relay = [
                    label for label in previous_labels if relayer not in label
                ]
                if not labels_to_relay:
                    continue
                new_labels = [label + (relayer,) for label in labels_to_relay]
                held_values = [to_relay[relayer][label] for label in labels_to_relay]
                relayer_faulty = fault_model.is_faulty(relayer)
                for receiver in self.participants:
                    if receiver == relayer:
                        for new_label, held_value in zip(new_labels, held_values):
                            trees[relayer][new_label] = held_value
                        continue
                    if not relayer_faulty and self.relay.paths_are_clean(
                        relayer, receiver
                    ):
                        delivered_vector = self.relay.reliable_send_vector(
                            relayer,
                            receiver,
                            held_values,
                            bit_size,
                            round_phase,
                            context,
                        )
                        for new_label, delivered in zip(new_labels, delivered_vector):
                            trees[receiver][new_label] = delivered
                        continue
                    for new_label, held_value in zip(new_labels, held_values):
                        outgoing = held_value
                        if relayer_faulty:
                            outgoing = strategy.broadcast_value(
                                self.instance,
                                relayer,
                                receiver,
                                f"{context}|{new_label}",
                                held_value,
                            )
                        delivered = self.relay.reliable_send(
                            relayer, receiver, outgoing, bit_size, round_phase, context
                        )
                        trees[receiver][new_label] = delivered

        # Decision: recursive strict-majority resolution, bottom-up.
        outputs: Dict[NodeId, Any] = {}
        for node in self.participants:
            if fault_model.is_faulty(node):
                continue
            outputs[node] = self._resolve(trees[node], root_label)
        return outputs

    def broadcast_all(
        self,
        values: Dict[NodeId, Any],
        bit_size: int,
        phase: str,
        context: str = "eig",
    ) -> Dict[NodeId, Dict[NodeId, Any]]:
        """Run one broadcast per participant with *shared* relay rounds.

        Every origin's EIG tree is rooted at a distinct label ``(origin,)``,
        so the label spaces are disjoint and all ``n`` broadcasts can march
        through the rounds together: in each relay round a fault-free
        relayer holds one value per (origin, label) pair and sends the whole
        batch to each receiver as a single per-hop vector over clean paths
        (:meth:`DisjointPathRelay.reliable_send_vector`).  Per-call
        behaviour is identical to ``{origin: broadcast(origin, ...)}`` — the
        per-label fallback keeps every Byzantine hook's arguments (including
        the ``...|origin=<o>|<label>`` context strings) exactly as the
        origin-by-origin loop produced them, strategies are keyed-stateless,
        and per-link bit totals are unchanged — only message ordinals (hence
        jitter) can observe the batching.

        Returns:
            ``outputs[receiver][origin]`` — the value each fault-free
            receiver decides for each origin's broadcast.
        """
        fault_model = self.network.fault_model
        strategy = fault_model.strategy
        trees: Dict[NodeId, Dict[Label, Any]] = {node: {} for node in self.participants}

        # Round 1: every origin sends its own value (distinct senders, so
        # there is nothing to batch across origins here).
        round1_phase = f"{phase}/round1"
        for origin in self.participants:
            value = values.get(origin)
            root_label: Label = (origin,)
            origin_context = f"{context}|origin={origin}"
            origin_faulty = fault_model.is_faulty(origin)
            for receiver in self.participants:
                if receiver == origin:
                    trees[receiver][root_label] = value
                    continue
                outgoing = value
                if origin_faulty:
                    outgoing = strategy.broadcast_value(
                        self.instance,
                        origin,
                        receiver,
                        f"{origin_context}|{root_label}",
                        value,
                    )
                delivered = self.relay.reliable_send(
                    origin, receiver, outgoing, bit_size, round1_phase, origin_context
                )
                trees[receiver][root_label] = delivered

        # Rounds 2 .. f+1, merged across origins.
        for round_index in range(2, self.max_faults + 2):
            previous_labels = [
                label
                for label in trees[self.participants[0]]
                if len(label) == round_index - 1
            ]
            to_relay: Dict[NodeId, Dict[Label, Any]] = {
                node: {
                    label: trees[node].get(label, EIG_DEFAULT)
                    for label in previous_labels
                }
                for node in self.participants
            }
            round_phase = f"{phase}/round{round_index}"
            for relayer in self.participants:
                labels_to_relay = [
                    label for label in previous_labels if relayer not in label
                ]
                if not labels_to_relay:
                    continue
                new_labels = [label + (relayer,) for label in labels_to_relay]
                held_values = [to_relay[relayer][label] for label in labels_to_relay]
                relayer_faulty = fault_model.is_faulty(relayer)
                for receiver in self.participants:
                    if receiver == relayer:
                        for new_label, held_value in zip(new_labels, held_values):
                            trees[relayer][new_label] = held_value
                        continue
                    if not relayer_faulty and self.relay.paths_are_clean(
                        relayer, receiver
                    ):
                        delivered_vector = self.relay.reliable_send_vector(
                            relayer,
                            receiver,
                            held_values,
                            bit_size,
                            round_phase,
                            context,
                        )
                        for new_label, delivered in zip(new_labels, delivered_vector):
                            trees[receiver][new_label] = delivered
                        continue
                    for new_label, held_value in zip(new_labels, held_values):
                        outgoing = held_value
                        if relayer_faulty:
                            outgoing = strategy.broadcast_value(
                                self.instance,
                                relayer,
                                receiver,
                                f"{context}|origin={new_label[0]}|{new_label}",
                                held_value,
                            )
                        delivered = self.relay.reliable_send(
                            relayer,
                            receiver,
                            outgoing,
                            bit_size,
                            round_phase,
                            f"{context}|origin={new_label[0]}",
                        )
                        trees[receiver][new_label] = delivered

        outputs: Dict[NodeId, Dict[NodeId, Any]] = {}
        for node in self.participants:
            if fault_model.is_faulty(node):
                continue
            outputs[node] = {
                origin: self._resolve(trees[node], (origin,))
                for origin in self.participants
            }
        return outputs

    def _resolve(self, tree: Dict[Label, Any], label: Label) -> Any:
        """Resolve the decision value of ``label`` by recursive strict majority."""
        if len(label) == self.max_faults + 1:
            return tree.get(label, EIG_DEFAULT)
        children = [
            self._resolve(tree, label + (node,))
            for node in self.participants
            if node not in label
        ]
        if not children:
            return tree.get(label, EIG_DEFAULT)
        return majority_value(children)


def broadcast_bit_cost(participant_count: int, max_faults: int) -> int:
    """Number of label relays performed by one EIG broadcast (a measure of overhead).

    This counts the point-to-point value transmissions at the EIG level (not
    the per-hop relay fan-out): round 1 contributes ``n - 1`` and each later
    round ``r`` contributes one relay per (label of length ``r - 1``, relayer
    not in label, receiver) triple.
    """
    total = participant_count - 1
    labels_previous = 1  # just (source,)
    nodes_available = participant_count - 1
    for _ in range(2, max_faults + 2):
        relays = labels_previous * nodes_available
        total += relays * (participant_count - 1)
        labels_previous = relays
        nodes_available -= 1
    return total
