"""``Broadcast_Default`` — the classical BB facade used by NAB's phases 2.2 and 3.

The paper refers to "a previously proposed Byzantine broadcast algorithm, such
as [19]/[6]" whenever full-strength (but low-throughput) Byzantine broadcast of
small values is needed: agreeing on the 1-bit equality-check flags and
disseminating dispute-control transcripts.  This facade wires the EIG
broadcast to the disjoint-path relay for a given participant set and exposes
the two call patterns NAB needs:

* broadcast of one value from one source (:meth:`BroadcastDefault.broadcast`);
* simultaneous broadcast of one value from *every* participant
  (:meth:`BroadcastDefault.broadcast_from_all`), which is how step 2.2 agrees
  on every node's flag.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

from repro.classical.eig import EIGBroadcast
from repro.classical.relay import DisjointPathRelay
from repro.transport.network import SynchronousNetwork
from repro.types import NodeId


class BroadcastDefault:
    """Classical Byzantine broadcast among a participant set over an incomplete network."""

    def __init__(
        self,
        network: SynchronousNetwork,
        participants: Sequence[NodeId],
        max_faults: int,
        instance: int = 0,
        relay_max_faults: int | None = None,
    ) -> None:
        """Create a broadcaster for a participant set.

        Args:
            network: The transport (over the *full* network graph ``G``).
            participants: The nodes taking part in the broadcast (``V_k``).
            max_faults: Bound on faulty nodes *among the participants*; EIG
                runs ``max_faults + 1`` rounds and needs
                ``len(participants) >= 3 * max_faults + 1``.
            instance: Instance number forwarded to Byzantine hooks.
            relay_max_faults: Bound on faulty nodes anywhere in the network
                (defaults to ``max_faults``).  The disjoint-path relay uses
                ``2 * relay_max_faults + 1`` paths because excluded faulty
                nodes may still sit on relay paths even when they are no
                longer participants.
        """
        self.network = network
        self.participants = sorted(set(participants))
        self.max_faults = max_faults
        self.instance = instance
        relay_bound = max_faults if relay_max_faults is None else relay_max_faults
        self.relay = DisjointPathRelay(network, relay_bound, instance)
        self._eig = EIGBroadcast(
            network, self.participants, max_faults, self.relay, instance
        )

    def broadcast(
        self,
        source: NodeId,
        value: Any,
        bit_size: int,
        phase: str,
        context: str = "broadcast_default",
    ) -> Dict[NodeId, Any]:
        """Byzantine broadcast of ``value`` from ``source`` to all participants.

        Returns the decided value of every fault-free participant.  Agreement
        and (for a fault-free source) validity hold whenever
        ``n >= 3f + 1`` and the network connectivity is at least ``2f + 1``.
        """
        return self._eig.broadcast(source, value, bit_size, phase, context)

    def broadcast_from_all(
        self,
        values: Dict[NodeId, Any],
        bit_size: int,
        phase: str,
        context: str = "broadcast_default_all",
    ) -> Dict[NodeId, Dict[NodeId, Any]]:
        """Run one broadcast per participant (each broadcasting its own value).

        Args:
            values: The value each participant wants to broadcast.  Faulty
                participants' entries are the values they would use if they
                followed the protocol; their strategy hooks may deviate.

        Returns:
            ``outputs[receiver][origin]`` — the value fault-free ``receiver``
            decided for the broadcast originated by ``origin``.  By agreement,
            all fault-free receivers hold identical vectors.

        All broadcasts share their relay rounds
        (:meth:`EIGBroadcast.broadcast_all`): a fault-free relayer forwards
        every origin's round labels to a receiver as one per-hop vector, so
        the n-origin flag agreement of step 2.2 costs one message per
        (relayer, receiver, hop) per round instead of one per origin —
        identical decisions, hook invocations and per-link bit totals.
        """
        return self._eig.broadcast_all(values, bit_size, phase, context=context)
