"""Reliable point-to-point channels over an incomplete network.

Appendix D of the paper: in a network with vertex connectivity at least
``2f + 1`` and at most ``f`` faulty nodes, reliable end-to-end communication
from any node ``i`` to any node ``j`` is achieved by sending the same copy of
the data along ``2f + 1`` vertex-disjoint paths and taking the majority at the
receiver.  At most ``f`` of the paths contain a faulty intermediate node, so
at least ``f + 1`` copies arrive unaltered and the majority is correct
whenever the *sender* is fault-free.  (A faulty sender can, of course, inject
whatever it wants — that is the classical BB algorithm's problem, not the
channel's.)

The relay charges every hop of every path to the accountant, so the
polynomial-in-``n`` overhead the paper attributes to ``Broadcast_Default`` is
measured rather than assumed.

Performance notes:
    Deriving the disjoint paths is a max-flow decomposition per ordered node
    pair.  Every :class:`DisjointPathRelay` used to recompute them from
    scratch because its cache died with the object (NAB builds a fresh relay
    per instance).  The paths are a pure function of the graph, so they are
    now memoised process-wide in an LRU keyed on ``(graph_signature, sender,
    receiver, path_count)`` — the canonical-signature contract of
    :mod:`repro.graph.flow_cache`.  Each relay keeps a small per-object
    first-level dict so hot pairs skip even the signature hashing.
    :func:`clear_relay_path_cache` resets the shared cache (the engine runner
    calls it between topologies); :func:`relay_path_cache_stats` exposes its
    counters.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Sequence, Tuple

from repro.exceptions import ProtocolError
from repro.graph.connectivity import local_connectivity, vertex_disjoint_paths
from repro.graph.flow_cache import GraphSignature, MinCutCache, graph_signature
from repro.graph.network_graph import NetworkGraph
from repro.transport.network import SynchronousNetwork
from repro.types import NodeId

#: Payload delivered when a majority cannot be established.
DEFAULT_VALUE = None

#: Types for which equal values always have equal ``repr`` strings, so the
#: all-identical fast path of :func:`majority_value` agrees with its keyed
#: slow path.
_CANONICAL_REPR_TYPES = frozenset((bool, int, bytes, str, type(None)))

#: Process-wide memo of vertex-disjoint relay paths.  Values are stored as
#: tuples of node tuples; lookups hand out fresh lists, so cached paths can
#: never be mutated through a caller.
_PATH_CACHE = MinCutCache(max_entries=4096)


def relay_path_cache_stats() -> Dict[str, object]:
    """Hit/miss counters of the shared path cache (``MinCutCache.stats`` shape).

    The ``lifetime_*`` counters survive :func:`clear_relay_path_cache`, so a
    sweep that clears between topologies can still report whole-run efficacy.
    """
    return _PATH_CACHE.stats()


def clear_relay_path_cache() -> None:
    """Reset the process-wide relay path cache."""
    _PATH_CACHE.clear()


class DisjointPathRelay:
    """Reliable unicast channels built from ``2f + 1`` vertex-disjoint paths."""

    def __init__(
        self,
        network: SynchronousNetwork,
        max_faults: int,
        instance: int = 0,
    ) -> None:
        if max_faults < 0:
            raise ProtocolError(f"max_faults must be non-negative, got {max_faults}")
        self.network = network
        self.max_faults = max_faults
        self.instance = instance
        self.path_count = 2 * max_faults + 1
        self._path_cache: Dict[Tuple[NodeId, NodeId], List[List[NodeId]]] = {}
        self._clean_pairs: Dict[Tuple[NodeId, NodeId], bool] = {}
        self._graph_signature: GraphSignature | None = None

    # ------------------------------------------------------------------ paths

    def paths_between(self, sender: NodeId, receiver: NodeId) -> List[List[NodeId]]:
        """The ``2f + 1`` vertex-disjoint paths used for this ordered pair (cached).

        Consults the per-relay dict first, then the process-wide LRU shared by
        every relay over a structurally identical graph (the graph signature
        is computed once per relay, so the underlying graph must not be
        mutated during the relay's lifetime — NAB always hands the relay a
        frozen graph).

        Raises:
            ProtocolError: if the network does not contain enough disjoint
                paths (i.e. its connectivity is below ``2f + 1``).
        """
        key = (sender, receiver)
        paths = self._path_cache.get(key)
        if paths is None:
            graph: NetworkGraph = self.network.graph
            if self._graph_signature is None:
                self._graph_signature = graph_signature(graph)
            shared_key = (
                "relay-paths",
                self._graph_signature,
                sender,
                receiver,
                self.path_count,
            )
            cached = _PATH_CACHE.lookup(shared_key)
            if cached is None:
                if local_connectivity(graph, sender, receiver) < self.path_count:
                    raise ProtocolError(
                        f"network connectivity between {sender} and {receiver} is below "
                        f"2f + 1 = {self.path_count}; reliable relay impossible"
                    )
                fresh = vertex_disjoint_paths(graph, sender, receiver, self.path_count)
                cached = tuple(tuple(path) for path in fresh)
                _PATH_CACHE.store(shared_key, cached)
            paths = [list(path) for path in cached]
            self._path_cache[key] = paths
        return paths

    def paths_are_clean(self, sender: NodeId, receiver: NodeId) -> bool:
        """Whether no *intermediate* node of any disjoint path is faulty.

        Intermediate nodes (``path[1:-1]``) are the only hop senders whose
        corruption hook can fire during a relay, so for a clean pair every
        relayed value is pure store-and-forward — the precondition for
        batching a round's values into one vector per hop
        (:meth:`reliable_send_vector`).  Cached per ordered pair (the fault
        model is fixed for the relay's lifetime).
        """
        key = (sender, receiver)
        clean = self._clean_pairs.get(key)
        if clean is None:
            is_faulty = self.network.fault_model.is_faulty
            clean = not any(
                is_faulty(node)
                for path in self.paths_between(sender, receiver)
                for node in path[1:-1]
            )
            self._clean_pairs[key] = clean
        return clean

    # ------------------------------------------------------------------- send

    def reliable_send_vector(
        self,
        sender: NodeId,
        receiver: NodeId,
        values: Sequence[Any],
        bit_size: int,
        phase: str,
        context: str = "relay",
    ) -> List[Any]:
        """Relay a whole round's values for one ordered pair as per-hop vectors.

        Only valid for a fault-free sender on clean paths
        (:meth:`paths_are_clean`): every hop is then pure forwarding, so
        delivering the tuple in one :meth:`SynchronousNetwork.send_vector`
        message per hop charges each link exactly the bits the per-value
        sends would (``len(values) * bit_size``) and the majority over
        ``2f + 1`` identical path copies is the value itself.  Per-link bit
        totals — hence the accountant's and the scheduled network's clocks —
        are unchanged; only jitter ordinals can observe the batching.

        Raises:
            ProtocolError: if ``values`` is empty (nothing to relay).
        """
        if not values:
            raise ProtocolError("reliable_send_vector requires at least one value")
        values = list(values)
        if sender == receiver:
            return values
        network = self.network
        for path in self.paths_between(sender, receiver):
            for hop_index in range(len(path) - 1):
                network.send_vector(
                    path[hop_index],
                    path[hop_index + 1],
                    values,
                    bit_size,
                    phase,
                    kind=f"{context}:hop",
                )
        return values

    def reliable_send(
        self,
        sender: NodeId,
        receiver: NodeId,
        value: Any,
        bit_size: int,
        phase: str,
        context: str = "relay",
    ) -> Any:
        """Send ``value`` from ``sender`` to ``receiver`` over disjoint paths.

        Returns the value the receiver accepts (majority over path copies).
        Faulty intermediate nodes may corrupt the copy travelling through them
        (via the strategy's ``relay_value`` hook); when the sender is
        fault-free the majority is guaranteed to equal ``value``.
        """
        if sender == receiver:
            return value
        fault_model = self.network.fault_model
        strategy = fault_model.strategy
        copies: List[Any] = []
        for path in self.paths_between(sender, receiver):
            current_value = value
            for hop_index in range(len(path) - 1):
                hop_sender = path[hop_index]
                hop_receiver = path[hop_index + 1]
                if hop_index > 0 and fault_model.is_faulty(hop_sender):
                    current_value = strategy.relay_value(
                        self.instance, hop_sender, path, receiver, current_value
                    )
                self.network.send(
                    hop_sender,
                    hop_receiver,
                    current_value,
                    bit_size,
                    phase,
                    kind=f"{context}:hop",
                )
            copies.append(current_value)
        return majority_value(copies)

    def reliable_send_from_faulty(
        self,
        sender: NodeId,
        receiver: NodeId,
        per_path_values: Sequence[Any],
        bit_size: int,
        phase: str,
        context: str = "relay",
    ) -> Any:
        """Variant where a faulty sender chooses a (possibly different) value per path.

        Raises:
            ProtocolError: if the number of supplied values does not match the
                number of paths.
        """
        paths = self.paths_between(sender, receiver)
        if len(per_path_values) != len(paths):
            raise ProtocolError(
                f"expected {len(paths)} per-path values, got {len(per_path_values)}"
            )
        fault_model = self.network.fault_model
        strategy = fault_model.strategy
        copies: List[Any] = []
        for path, injected in zip(paths, per_path_values):
            current_value = injected
            for hop_index in range(len(path) - 1):
                hop_sender = path[hop_index]
                hop_receiver = path[hop_index + 1]
                if hop_index > 0 and fault_model.is_faulty(hop_sender):
                    current_value = strategy.relay_value(
                        self.instance, hop_sender, path, receiver, current_value
                    )
                self.network.send(
                    hop_sender,
                    hop_receiver,
                    current_value,
                    bit_size,
                    phase,
                    kind=f"{context}:hop",
                )
            copies.append(current_value)
        return majority_value(copies)


def majority_value(copies: Sequence[Any]) -> Any:
    """Strict majority of ``copies``; :data:`DEFAULT_VALUE` when there is none.

    Values are compared by equality after a canonical ``repr``-based key so
    that unhashable payloads (lists, dicts) can participate.  The common case
    — every path delivered the same copy of a scalar payload, i.e. no faulty
    intermediary — is resolved by direct same-type equality, which matches
    the repr keying exactly for types whose repr is canonical (``1 == True``
    but their reprs differ, so mixed types always take the keyed path).
    """
    if not copies:
        return DEFAULT_VALUE
    first = copies[0]
    first_type = type(first)
    if first_type in _CANONICAL_REPR_TYPES and all(
        type(copy) is first_type and copy == first for copy in copies[1:]
    ):
        return first
    keyed: Dict[str, Any] = {}
    counts: Counter = Counter()
    for copy in copies:
        key = repr(copy)
        keyed[key] = copy
        counts[key] += 1
    best_key, best_count = counts.most_common(1)[0]
    if best_count * 2 > len(copies):
        return keyed[best_key]
    return DEFAULT_VALUE
