"""Classical Byzantine-broadcast substrate ("Broadcast_Default" in the paper).

NAB uses a previously proposed Byzantine broadcast algorithm as a black box in
two places: to agree on the 1-bit equality-check flags (step 2.2) and to
disseminate transcripts during dispute control (Phase 3).  The paper only
requires that this sub-protocol be correct and have cost polynomial in ``n``
(independent of the large input size ``L`` for the 1-bit case); its
(in)efficiency is exactly what the amortisation argument hides.

This package provides:

* :class:`repro.classical.relay.DisjointPathRelay` — reliable node-to-node
  communication over an incomplete network by sending each value along
  ``2f + 1`` vertex-disjoint paths and taking the majority at the receiver
  (Appendix D's complete-graph emulation).
* :class:`repro.classical.eig.EIGBroadcast` — the Exponential Information
  Gathering Byzantine broadcast (Pease–Shostak–Lamport style, ``f + 1``
  rounds, correct for ``n >= 3f + 1``) running on top of the relay.
* :class:`repro.classical.broadcast_default.BroadcastDefault` — the facade NAB
  phases call.
* :func:`repro.classical.flooding.classical_full_value_broadcast` — the
  capacity-oblivious baseline that broadcasts the entire ``L``-bit input with
  the classical algorithm, used by the NAB-vs-classical benchmark.
"""

from repro.classical.broadcast_default import BroadcastDefault
from repro.classical.eig import EIGBroadcast
from repro.classical.flooding import (
    classical_chunked_broadcast,
    classical_flooding_run_record,
    classical_full_value_broadcast,
    eig_chunked_run_record,
)
from repro.classical.relay import (
    DisjointPathRelay,
    clear_relay_path_cache,
    relay_path_cache_stats,
)

__all__ = [
    "DisjointPathRelay",
    "clear_relay_path_cache",
    "relay_path_cache_stats",
    "EIGBroadcast",
    "BroadcastDefault",
    "classical_full_value_broadcast",
    "classical_chunked_broadcast",
    "classical_flooding_run_record",
    "eig_chunked_run_record",
]
