"""Capacity-oblivious baseline: broadcast the whole input with classical BB.

The paper's introduction argues that previously proposed BB algorithms, which
ignore link capacities, "can perform poorly ... arbitrarily worse than the
optimal throughput" on networks with heterogeneous capacities.  This module
implements that baseline so the claim can be measured: the entire ``L``-bit
input is broadcast with the classical EIG algorithm over the disjoint-path
complete-graph emulation.  Every copy of the value therefore crosses slow
links as often as fast ones, and the elapsed time is dominated by the worst
link on the relay paths — exactly the behaviour NAB's network-aware Phase 1
avoids.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Sequence

from repro.classical.broadcast_default import BroadcastDefault
from repro.transport.faults import FaultModel
from repro.transport.network import NetworkFactory, SynchronousNetwork
from repro.graph.network_graph import NetworkGraph
from repro.types import (
    BroadcastResult,
    Edge,
    NodeId,
    RunRecord,
    accumulate_link_bits,
    broadcast_spec_flags,
)


def classical_full_value_broadcast(
    graph: NetworkGraph,
    source: NodeId,
    value: bytes,
    max_faults: int,
    fault_model: FaultModel | None = None,
    participants: Sequence[NodeId] | None = None,
    network_factory: NetworkFactory | None = None,
) -> BroadcastResult:
    """Broadcast an ``L``-bit value using only the classical (capacity-oblivious) BB.

    Args:
        graph: The capacitated point-to-point network.
        source: The broadcasting node.
        value: The input as a byte string (``L = 8 * len(value)`` bits).
        max_faults: The resilience parameter ``f``.
        fault_model: Byzantine behaviour; defaults to no faults.
        participants: Nodes taking part; defaults to all nodes of the graph.
        network_factory: Transport constructor; defaults to the zero-delay
            :class:`SynchronousNetwork` (pass a scheduled factory to measure
            delivery on the discrete-event clock).

    Returns:
        A :class:`repro.types.BroadcastResult` with the fault-free outputs,
        total elapsed time and bits sent.
    """
    fault_model = fault_model if fault_model is not None else FaultModel()
    factory = network_factory if network_factory is not None else SynchronousNetwork
    network = factory(graph, fault_model)
    nodes = sorted(participants) if participants is not None else graph.nodes()
    broadcaster = BroadcastDefault(network, nodes, max_faults)
    bit_size = max(1, 8 * len(value))
    decided: Dict[NodeId, bytes] = broadcaster.broadcast(
        source, value, bit_size, phase="classical_broadcast", context="flooding"
    )
    return BroadcastResult(
        outputs=decided,
        elapsed=network.elapsed_time(),
        bits_sent=network.total_bits(),
        phase_timings=network.accountant.phase_timings(),
        metadata={"algorithm": "classical_eig_flooding", "L_bits": bit_size},
        link_bits=network.accountant.total_link_bits(),
    )


def classical_chunked_broadcast(
    graph: NetworkGraph,
    source: NodeId,
    value: bytes,
    max_faults: int,
    fault_model: FaultModel | None = None,
    chunk_bytes: int = 1,
    instance: int = 0,
    network_factory: NetworkFactory | None = None,
) -> BroadcastResult:
    """Broadcast a value chunk by chunk with direct EIG runs (no NAB machinery).

    The value is split into ``chunk_bytes``-sized pieces and each piece is
    agreed with its own EIG broadcast over the disjoint-path relay.  This is
    the "stream the payload through the classical primitive" shape of a naive
    replicated-log deployment; like the full-value baseline it is capacity
    oblivious, so its cost profile is dominated by the slowest links.
    """
    fault_model = fault_model if fault_model is not None else FaultModel()
    factory = network_factory if network_factory is not None else SynchronousNetwork
    network = factory(graph, fault_model)
    broadcaster = BroadcastDefault(network, graph.nodes(), max_faults, instance=instance)
    chunks = [value[i : i + chunk_bytes] for i in range(0, len(value), chunk_bytes)] or [b""]
    decided_chunks: List[Dict[NodeId, object]] = []
    for index, chunk in enumerate(chunks):
        decided_chunks.append(
            broadcaster.broadcast(
                source,
                chunk,
                max(1, 8 * len(chunk)),
                phase="classical_broadcast",
                context=f"chunked|{index}",
            )
        )
    outputs: Dict[NodeId, object] = {}
    for node in fault_model.fault_free(graph.nodes()):
        pieces = [chunk_outputs.get(node) for chunk_outputs in decided_chunks]
        if all(isinstance(piece, (bytes, bytearray)) for piece in pieces):
            outputs[node] = b"".join(bytes(piece) for piece in pieces)
        else:
            # A Byzantine source injected non-byte garbage; keep the raw
            # per-chunk decisions so spec checking can still compare them.
            outputs[node] = tuple(pieces)
    return BroadcastResult(
        outputs=outputs,
        elapsed=network.elapsed_time(),
        bits_sent=network.total_bits(),
        phase_timings=network.accountant.phase_timings(),
        metadata={
            "algorithm": "classical_eig_chunked",
            "L_bits": max(1, 8 * len(value)),
            "chunks": len(chunks),
        },
        link_bits=network.accountant.total_link_bits(),
    )


def _aggregate_run_record(
    protocol: str,
    results: Sequence[BroadcastResult],
    inputs: Sequence[bytes],
    source_faulty: bool,
    metadata: Dict[str, object],
) -> RunRecord:
    """Fold per-instance :class:`BroadcastResult`s into one :class:`RunRecord`."""
    link_totals: Dict[Edge, int] = {}
    for result in results:
        accumulate_link_bits(link_totals, result.link_bits)
    outputs = tuple(dict(result.outputs) for result in results)
    agreement_ok, validity_ok = broadcast_spec_flags(outputs, inputs, source_faulty)
    return RunRecord(
        protocol=protocol,
        instances=len(results),
        payload_bits=sum(8 * len(value) for value in inputs),
        outputs=outputs,
        elapsed=sum((result.elapsed for result in results), Fraction(0)),
        bits_sent=sum(result.bits_sent for result in results),
        link_bits=link_totals,
        dispute_control_executions=0,
        agreement_ok=agreement_ok,
        validity_ok=validity_ok,
        metadata=metadata,
    )


def classical_flooding_run_record(
    graph: NetworkGraph,
    source: NodeId,
    inputs: Sequence[bytes],
    max_faults: int,
    fault_model: FaultModel | None = None,
    network_factory: NetworkFactory | None = None,
) -> RunRecord:
    """Run the full-value baseline once per input and aggregate into a :class:`RunRecord`."""
    fault_model = fault_model if fault_model is not None else FaultModel()
    results = [
        classical_full_value_broadcast(
            graph, source, value, max_faults, fault_model,
            network_factory=network_factory,
        )
        for value in inputs
    ]
    return _aggregate_run_record(
        "classical-flooding",
        results,
        inputs,
        fault_model.is_faulty(source),
        {"algorithm": "classical_eig_flooding"},
    )


def eig_chunked_run_record(
    graph: NetworkGraph,
    source: NodeId,
    inputs: Sequence[bytes],
    max_faults: int,
    fault_model: FaultModel | None = None,
    chunk_bytes: int = 1,
    network_factory: NetworkFactory | None = None,
) -> RunRecord:
    """Run the chunked EIG baseline once per input and aggregate into a :class:`RunRecord`."""
    fault_model = fault_model if fault_model is not None else FaultModel()
    results = [
        classical_chunked_broadcast(
            graph, source, value, max_faults, fault_model,
            chunk_bytes=chunk_bytes, instance=index,
            network_factory=network_factory,
        )
        for index, value in enumerate(inputs)
    ]
    return _aggregate_run_record(
        "eig",
        results,
        inputs,
        fault_model.is_faulty(source),
        {"algorithm": "classical_eig_chunked", "chunk_bytes": chunk_bytes},
    )
