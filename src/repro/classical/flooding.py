"""Capacity-oblivious baseline: broadcast the whole input with classical BB.

The paper's introduction argues that previously proposed BB algorithms, which
ignore link capacities, "can perform poorly ... arbitrarily worse than the
optimal throughput" on networks with heterogeneous capacities.  This module
implements that baseline so the claim can be measured: the entire ``L``-bit
input is broadcast with the classical EIG algorithm over the disjoint-path
complete-graph emulation.  Every copy of the value therefore crosses slow
links as often as fast ones, and the elapsed time is dominated by the worst
link on the relay paths — exactly the behaviour NAB's network-aware Phase 1
avoids.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.classical.broadcast_default import BroadcastDefault
from repro.transport.faults import FaultModel
from repro.transport.network import SynchronousNetwork
from repro.graph.network_graph import NetworkGraph
from repro.types import BroadcastResult, NodeId


def classical_full_value_broadcast(
    graph: NetworkGraph,
    source: NodeId,
    value: bytes,
    max_faults: int,
    fault_model: FaultModel | None = None,
    participants: Sequence[NodeId] | None = None,
) -> BroadcastResult:
    """Broadcast an ``L``-bit value using only the classical (capacity-oblivious) BB.

    Args:
        graph: The capacitated point-to-point network.
        source: The broadcasting node.
        value: The input as a byte string (``L = 8 * len(value)`` bits).
        max_faults: The resilience parameter ``f``.
        fault_model: Byzantine behaviour; defaults to no faults.
        participants: Nodes taking part; defaults to all nodes of the graph.

    Returns:
        A :class:`repro.types.BroadcastResult` with the fault-free outputs,
        total elapsed time and bits sent.
    """
    fault_model = fault_model if fault_model is not None else FaultModel()
    network = SynchronousNetwork(graph, fault_model)
    nodes = sorted(participants) if participants is not None else graph.nodes()
    broadcaster = BroadcastDefault(network, nodes, max_faults)
    bit_size = max(1, 8 * len(value))
    decided: Dict[NodeId, bytes] = broadcaster.broadcast(
        source, value, bit_size, phase="classical_broadcast", context="flooding"
    )
    return BroadcastResult(
        outputs=decided,
        elapsed=network.elapsed_time(),
        bits_sent=network.total_bits(),
        phase_timings=network.accountant.phase_timings(),
        metadata={"algorithm": "classical_eig_flooding", "L_bits": bit_size},
    )
