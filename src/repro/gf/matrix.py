"""Dense matrices over ``GF(2^m)``.

The equality-check machinery of the paper is pure linear algebra over a binary
extension field: per-edge coding matrices ``C_e``, their block expansions
``B_e`` and ``C_H``, and the rank / invertibility arguments of Appendix C.
This module provides the dense-matrix toolkit those computations need —
multiplication, transpose, horizontal/vertical stacking, Gaussian elimination
(rank, determinant, inverse, solving), and random sampling.

Matrices are stored as lists of row lists of plain integers, the same element
representation used by :class:`repro.gf.field.GF2m`.

Performance notes:
    The hot kernels (``matmul``, ``vecmat``, Gaussian elimination) bind the
    field's log/antilog tables to local names and work on the flat row lists
    directly, so the inner loops contain no attribute or method dispatch.
    Results produced by internal operations are wrapped with the trusted
    constructor :meth:`GFMatrix._trusted`, which skips the per-entry
    re-validation the public constructor performs on external data.  Fields
    too large for tables (degree > 16) transparently use the windowed
    big-field kernels instead; both paths compute identical field values.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence

from repro.exceptions import MatrixError
from repro.gf.field import GF2m
from repro.gf.polynomials import stack_slots, window_table


def _scan_window_table(table: List[int], factor: int) -> int:
    """Fold ``factor`` byte-by-byte through a prebuilt window table."""
    product = 0
    for byte in factor.to_bytes((factor.bit_length() + 7) // 8, "big"):
        product = (product << 8) ^ table[byte]
    return product


class GFMatrix:
    """A dense ``rows x cols`` matrix over a :class:`GF2m` field.

    Instances are immutable from the caller's point of view: all operations
    return new matrices.  Construction validates that every entry lies in the
    field and that the rows are rectangular.
    """

    __slots__ = ("field", "rows", "cols", "_data", "_stacked", "_kctx")

    def __init__(self, field: GF2m, data: Sequence[Sequence[int]]) -> None:
        rows = [list(row) for row in data]
        if not rows or not rows[0]:
            raise MatrixError("matrices must have at least one row and one column")
        width = len(rows[0])
        for row in rows:
            if len(row) != width:
                raise MatrixError("ragged rows: all rows must have the same length")
            for entry in row:
                field.validate(entry)
        self.field = field
        self.rows = len(rows)
        self.cols = width
        self._data = rows
        self._stacked = None
        self._kctx = None

    # ------------------------------------------------------------ constructors

    @classmethod
    def _trusted(cls, field: GF2m, rows: List[List[int]]) -> "GFMatrix":
        """Internal constructor for already-validated row lists.

        Skips the copy and the per-entry validation of ``__init__``; the rows
        are adopted as-is, so callers must hand over freshly built lists they
        will not mutate afterwards.
        """
        matrix = object.__new__(cls)
        matrix.field = field
        matrix.rows = len(rows)
        matrix.cols = len(rows[0])
        matrix._data = rows
        matrix._stacked = None
        matrix._kctx = None
        return matrix

    @classmethod
    def zeros(cls, field: GF2m, rows: int, cols: int) -> "GFMatrix":
        """An all-zero matrix of the given shape."""
        if rows < 1 or cols < 1:
            raise MatrixError(f"invalid shape ({rows}, {cols})")
        return cls._trusted(field, [[0] * cols for _ in range(rows)])

    @classmethod
    def identity(cls, field: GF2m, size: int) -> "GFMatrix":
        """The ``size x size`` identity matrix."""
        if size < 1:
            raise MatrixError(f"identity size must be >= 1, got {size}")
        return cls._trusted(
            field, [[1 if r == c else 0 for c in range(size)] for r in range(size)]
        )

    @classmethod
    def from_rows(cls, field: GF2m, rows: Sequence[Sequence[int]]) -> "GFMatrix":
        """Alias of the constructor, for readability at call sites."""
        return cls(field, rows)

    @classmethod
    def row_vector(cls, field: GF2m, entries: Sequence[int]) -> "GFMatrix":
        """A ``1 x n`` matrix from a sequence of entries."""
        return cls(field, [list(entries)])

    @classmethod
    def column_vector(cls, field: GF2m, entries: Sequence[int]) -> "GFMatrix":
        """An ``n x 1`` matrix from a sequence of entries."""
        return cls(field, [[entry] for entry in entries])

    @classmethod
    def random(cls, field: GF2m, rows: int, cols: int, rng: random.Random) -> "GFMatrix":
        """A matrix whose entries are independent uniform field elements."""
        if rows < 1 or cols < 1:
            raise MatrixError(f"invalid shape ({rows}, {cols})")
        draw = field.random_element
        return cls._trusted(
            field, [[draw(rng) for _ in range(cols)] for _ in range(rows)]
        )

    # ---------------------------------------------------------------- accessors

    def entry(self, row: int, col: int) -> int:
        """Return the entry at ``(row, col)`` (0-based)."""
        return self._data[row][col]

    def row(self, index: int) -> List[int]:
        """Return a copy of row ``index``."""
        return list(self._data[index])

    def column(self, index: int) -> List[int]:
        """Return a copy of column ``index``."""
        return [row[index] for row in self._data]

    def to_lists(self) -> List[List[int]]:
        """Return the matrix contents as a list of row lists (a copy)."""
        return [list(row) for row in self._data]

    @property
    def shape(self) -> tuple[int, int]:
        """The ``(rows, cols)`` shape tuple."""
        return (self.rows, self.cols)

    def is_zero(self) -> bool:
        """Return ``True`` iff every entry is zero."""
        return all(entry == 0 for row in self._data for entry in row)

    # --------------------------------------------------------------- operations

    def _require_same_field(self, other: "GFMatrix") -> None:
        if self.field != other.field:
            raise MatrixError("matrices belong to different fields")

    def add(self, other: "GFMatrix") -> "GFMatrix":
        """Entry-wise sum (XOR) of two equal-shape matrices."""
        self._require_same_field(other)
        if self.shape != other.shape:
            raise MatrixError(f"shape mismatch for add: {self.shape} vs {other.shape}")
        return GFMatrix._trusted(
            self.field,
            [
                [a ^ b for a, b in zip(row_a, row_b)]
                for row_a, row_b in zip(self._data, other._data)
            ],
        )

    def scalar_mul(self, scalar: int) -> "GFMatrix":
        """Multiply every entry by a field scalar."""
        self.field.validate(scalar)
        if scalar == 0:
            return GFMatrix.zeros(self.field, self.rows, self.cols)
        if scalar == 1:
            return GFMatrix._trusted(self.field, [list(row) for row in self._data])
        tables = self.field.tables()
        if tables is not None:
            exp, log, _ = tables
            log_scalar = log[scalar]
            data = [
                [exp[log_scalar + log[entry]] if entry else 0 for entry in row]
                for row in self._data
            ]
        else:
            mul = self.field._mul_big
            data = [[mul(scalar, entry) for entry in row] for row in self._data]
        return GFMatrix._trusted(self.field, data)

    def matmul_loop(self, other: "GFMatrix") -> "GFMatrix":
        """Per-symbol matrix product: the frozen correctness oracle.

        One field multiplication per ``(row, column, inner)`` triple, exactly
        the pre-vectorisation kernel.  Retained verbatim so :meth:`matmul`
        (hoisted small-field logs, stacked big-field passes) has a fixed
        reference to be property-tested and benchmarked against.  Hot paths
        should call :meth:`matmul`.
        """
        self._require_same_field(other)
        if self.cols != other.rows:
            raise MatrixError(f"shape mismatch for matmul: {self.shape} @ {other.shape}")
        columns = list(zip(*other._data))
        product: List[List[int]] = []
        tables = self.field.tables()
        if tables is not None:
            exp, log, _ = tables
            for row in self._data:
                product_row = []
                for col in columns:
                    accumulator = 0
                    for a, b in zip(row, col):
                        if a and b:
                            accumulator ^= exp[log[a] + log[b]]
                    product_row.append(accumulator)
                product.append(product_row)
        else:
            mul = self.field._mul_big
            for row in self._data:
                product_row = []
                for col in columns:
                    accumulator = 0
                    for a, b in zip(row, col):
                        if a and b:
                            accumulator ^= mul(a, b)
                    product_row.append(accumulator)
                product.append(product_row)
        return GFMatrix._trusted(self.field, product)

    def matmul(self, other: "GFMatrix") -> "GFMatrix":
        """Matrix product ``self @ other``.

        Small-degree fields hoist the log-table lookups of both shared
        operands out of the inner loop (the logs of every column of ``other``
        are precomputed once per product, the logs of each row of ``self``
        once per row pass).  Big fields route every result row through the
        stacked :meth:`vecmat` kernel of ``other``, whose cached stacked rows
        and window tables are shared across all rows of ``self``.  Identical
        values to :meth:`matmul_loop` (the frozen per-symbol oracle).

        Raises:
            MatrixError: if the inner dimensions do not agree.
        """
        self._require_same_field(other)
        if self.cols != other.rows:
            raise MatrixError(f"shape mismatch for matmul: {self.shape} @ {other.shape}")
        tables = self.field.tables()
        if tables is None:
            product = [other._vecmat_big(row) for row in self._data]
            return GFMatrix._trusted(self.field, product)
        exp, log, _ = tables
        # Hoisted log lookups: -1 marks a zero entry (log[0] is a placeholder).
        log_columns = [
            [log[entry] if entry else -1 for entry in col] for col in zip(*other._data)
        ]
        product = []
        for row in self._data:
            row_logs = [log[entry] if entry else -1 for entry in row]
            product_row = []
            for col_logs in log_columns:
                accumulator = 0
                for log_a, log_b in zip(row_logs, col_logs):
                    if log_a >= 0 and log_b >= 0:
                        accumulator ^= exp[log_a + log_b]
                product_row.append(accumulator)
            product.append(product_row)
        return GFMatrix._trusted(self.field, product)

    def __matmul__(self, other: "GFMatrix") -> "GFMatrix":
        return self.matmul(other)

    # ------------------------------------------------------- stacked kernels

    def _stacked_rows(self):
        """Each row packed into guard-spaced slot windows, built lazily.

        Matrices are immutable, so the packing (and the window tables the
        field caches for it) is computed once per matrix and shared by every
        :meth:`vecmat` / :meth:`matmul` call.  Columns are split into windows
        of at most ``field._slot_cap`` slots; returns ``(window_sizes,
        stacked)`` with ``stacked[row][window]`` the packed integer.
        """
        cached = self._stacked
        if cached is None:
            field = self.field
            stride = field._stride
            cap = field._slot_cap
            bounds = [
                (start, min(start + cap, self.cols))
                for start in range(0, self.cols, cap)
            ]
            stacked = [
                [stack_slots(row[lo:hi], stride) for lo, hi in bounds]
                for row in self._data
            ]
            cached = self._stacked = ([hi - lo for lo, hi in bounds], stacked)
        return cached

    def _vecmat_big(self, vector: Sequence[int]) -> List[int]:
        """Stacked ``vector @ self`` for big fields (no input validation).

        One *fused* windowed pass per column window: every non-zero symbol's
        byte stream is scanned in lockstep against its cached stacked-row
        table, so the wide accumulator is shifted once per byte position
        (instead of once per symbol and byte position) and the raw products
        of all rows accumulate in place; the window is then reduced with a
        single masked fold sweep.  Compare one windowed multiplication per
        (symbol, column) pair in :meth:`vecmat_loop`.
        """
        field = self.field
        kernel = field._kernel
        if kernel is not None:
            hooked = kernel.vecmat(self, vector)
            if hooked is not None:
                return hooked
        width = field._stride // 8
        sizes, stacked_rows = self._stacked_rows()
        value_bytes = (field.degree + 7) // 8
        stacked_table = field._stacked_table
        result: List[int] = []
        for index, count in enumerate(sizes):
            packed = count * width
            pairs = []
            for value, row_windows in zip(vector, stacked_rows):
                if value:
                    stacked = row_windows[index]
                    if stacked:
                        pairs.append(
                            (
                                stacked_table(stacked, packed),
                                value.to_bytes(value_bytes, "big"),
                            )
                        )
            if not pairs:
                result.extend([0] * count)
                continue
            accumulator = 0
            if len(pairs) == 1:
                table, stream = pairs[0]
                for byte in stream:
                    accumulator = (accumulator << 8) ^ table[byte]
            else:
                tables = [table for table, _stream in pairs]
                streams = [stream for _table, stream in pairs]
                for position in zip(*streams):
                    accumulator <<= 8
                    for table, byte in zip(tables, position):
                        if byte:
                            accumulator ^= table[byte]
            if accumulator:
                result.extend(field._reduce_stacked(accumulator, count))
            else:
                result.extend([0] * count)
        return result

    def vecmat_loop(self, vector: Sequence[int]) -> List[int]:
        """Per-symbol ``vector @ self``: the frozen correctness oracle.

        One field multiplication per (symbol, column) pair — the
        pre-vectorisation encode kernel, retained verbatim as the reference
        for :meth:`vecmat` and the benchmarks.  Hot paths use :meth:`vecmat`.

        Raises:
            MatrixError: if ``len(vector)`` does not equal the row count.
        """
        if len(vector) != self.rows:
            raise MatrixError(
                f"vecmat length mismatch: vector of {len(vector)} vs {self.rows} rows"
            )
        validate = self.field.validate
        for value in vector:
            validate(value)
        result = [0] * self.cols
        tables = self.field.tables()
        if tables is not None:
            exp, log, _ = tables
            for value, row in zip(vector, self._data):
                if value:
                    log_value = log[value]
                    for index, entry in enumerate(row):
                        if entry:
                            result[index] ^= exp[log_value + log[entry]]
        else:
            mul = self.field._mul_big
            for value, row in zip(vector, self._data):
                if value:
                    for index, entry in enumerate(row):
                        if entry:
                            result[index] ^= mul(value, entry)
        return result

    def vecmat(self, vector: Sequence[int]) -> List[int]:
        """Row-vector-times-matrix product ``vector @ self`` as a plain list.

        The workhorse of per-edge encoding (``Y_e = X_i C_e``): one output
        symbol per column, without building intermediate 1 x n matrices.
        Small-degree fields keep the log/exp loop (the scalar's log hoisted);
        big fields run the stacked kernel — the whole column batch moves per
        windowed pass, not per symbol.  Identical values to
        :meth:`vecmat_loop` (the frozen per-symbol oracle).

        Raises:
            MatrixError: if ``len(vector)`` does not equal the row count.
        """
        if len(vector) != self.rows:
            raise MatrixError(
                f"vecmat length mismatch: vector of {len(vector)} vs {self.rows} rows"
            )
        validate = self.field.validate
        for value in vector:
            validate(value)
        tables = self.field.tables()
        if tables is None:
            return self._vecmat_big(vector)
        exp, log, _ = tables
        result = [0] * self.cols
        for value, row in zip(vector, self._data):
            if value:
                log_value = log[value]
                for index, entry in enumerate(row):
                    if entry:
                        result[index] ^= exp[log_value + log[entry]]
        return result

    def matvec_batch(self, vectors: Sequence[Sequence[int]]) -> List[List[int]]:
        """Matrix-times-vector for a whole batch: ``[self @ x for x in vectors]``.

        Big fields stack the batch *across vectors*: for each matrix column
        ``j`` the batch's ``j``-th components are packed into one guard-spaced
        integer, its window table is built once, and every matrix entry of
        column ``j`` is folded through it — one windowed pass per (entry,
        batch window) instead of one multiplication per (entry, vector).
        Small-degree fields run the hoisted log/exp loop per vector.

        Raises:
            MatrixError: if any vector's length does not equal the column
                count.
        """
        batch = [list(vector) for vector in vectors]
        validate = self.field.validate
        for vector in batch:
            if len(vector) != self.cols:
                raise MatrixError(
                    f"matvec length mismatch: vector of {len(vector)} vs {self.cols} columns"
                )
            for value in vector:
                validate(value)
        if not batch:
            return []
        tables = self.field.tables()
        if tables is not None:
            exp, log, _ = tables
            results = []
            for vector in batch:
                vec_logs = [log[value] if value else -1 for value in vector]
                output = []
                for row in self._data:
                    accumulator = 0
                    for entry, log_b in zip(row, vec_logs):
                        if entry and log_b >= 0:
                            accumulator ^= exp[log[entry] + log_b]
                    output.append(accumulator)
                results.append(output)
            return results
        field = self.field
        stride = field._stride
        cap = field._slot_cap
        results = [[] for _ in batch]
        for start in range(0, len(batch), cap):
            window = batch[start : start + cap]
            count = len(window)
            # One stacked integer (and window table) per matrix column.
            column_tables = []
            for col in range(self.cols):
                stacked = stack_slots([vector[col] for vector in window], stride)
                column_tables.append(window_table(stacked) if stacked else None)
            reduced_rows = []
            for row in self._data:
                accumulator = 0
                for entry, table in zip(row, column_tables):
                    if entry and table is not None:
                        accumulator ^= _scan_window_table(table, entry)
                reduced_rows.append(field._reduce_stacked(accumulator, count))
            for offset in range(count):
                target = results[start + offset]
                for reduced in reduced_rows:
                    target.append(reduced[offset])
        return results

    def vecmat_batch(self, vectors: Sequence[Sequence[int]]) -> List[List[int]]:
        """Vector-times-matrix for a whole batch: ``[x @ self for x in vectors]``.

        Big fields stack the batch across vectors: the ``i``-th symbols of
        every vector pack into one guard-spaced integer whose window table is
        shared by all columns — one windowed pass per (matrix entry, batch
        window) instead of one multiplication per (entry, vector).
        Small-degree fields run the log/exp loop per vector.

        Raises:
            MatrixError: if any vector's length does not equal the row count.
        """
        batch = [list(vector) for vector in vectors]
        for vector in batch:
            if len(vector) != self.rows:
                raise MatrixError(
                    f"vecmat length mismatch: vector of {len(vector)} vs {self.rows} rows"
                )
        if not batch:
            return []
        if self.field.tables() is not None:
            return [self.vecmat(vector) for vector in batch]
        validate = self.field.validate
        for vector in batch:
            for value in vector:
                validate(value)
        field = self.field
        stride = field._stride
        cap = field._slot_cap
        results = [[] for _ in batch]
        for start in range(0, len(batch), cap):
            window = batch[start : start + cap]
            count = len(window)
            row_tables = []
            for row_index in range(self.rows):
                stacked = stack_slots([vector[row_index] for vector in window], stride)
                row_tables.append(window_table(stacked) if stacked else None)
            for col in range(self.cols):
                accumulator = 0
                for row, table in zip(self._data, row_tables):
                    entry = row[col]
                    if entry and table is not None:
                        accumulator ^= _scan_window_table(table, entry)
                reduced = field._reduce_stacked(accumulator, count)
                for offset in range(count):
                    results[start + offset].append(reduced[offset])
        return results

    def transpose(self) -> "GFMatrix":
        """The transposed matrix."""
        return GFMatrix._trusted(self.field, [list(col) for col in zip(*self._data)])

    def hstack(self, other: "GFMatrix") -> "GFMatrix":
        """Concatenate another matrix with the same row count to the right."""
        self._require_same_field(other)
        if self.rows != other.rows:
            raise MatrixError(f"hstack row mismatch: {self.rows} vs {other.rows}")
        return GFMatrix._trusted(
            self.field, [row_a + row_b for row_a, row_b in zip(self._data, other._data)]
        )

    def vstack(self, other: "GFMatrix") -> "GFMatrix":
        """Concatenate another matrix with the same column count below."""
        self._require_same_field(other)
        if self.cols != other.cols:
            raise MatrixError(f"vstack column mismatch: {self.cols} vs {other.cols}")
        return GFMatrix._trusted(
            self.field,
            [list(row) for row in self._data] + [list(row) for row in other._data],
        )

    def submatrix(self, row_indices: Iterable[int], col_indices: Iterable[int]) -> "GFMatrix":
        """Extract the submatrix with the given row and column indices."""
        row_list = list(row_indices)
        col_list = list(col_indices)
        if not row_list or not col_list:
            raise MatrixError("submatrix requires at least one row and one column index")
        data = self._data
        return GFMatrix._trusted(
            self.field, [[data[r][c] for c in col_list] for r in row_list]
        )

    # ------------------------------------------------------ Gaussian elimination

    def _eliminated(self) -> tuple[List[List[int]], List[int], int]:
        """Run Gaussian elimination; return (echelon rows, pivot columns, swaps).

        The elimination is performed over a copy; the original is unchanged.
        """
        tables = self.field.tables()
        work = [list(row) for row in self._data]
        pivot_cols: List[int] = []
        swaps = 0
        pivot_row = 0
        row_count = self.rows
        if tables is not None:
            exp, log, inv = tables
            for col in range(self.cols):
                pivot = None
                for r in range(pivot_row, row_count):
                    if work[r][col] != 0:
                        pivot = r
                        break
                if pivot is None:
                    continue
                if pivot != pivot_row:
                    work[pivot_row], work[pivot] = work[pivot], work[pivot_row]
                    swaps += 1
                pivot_value = work[pivot_row][col]
                if pivot_value != 1:
                    log_inv = log[inv[pivot_value]]
                    work[pivot_row] = [
                        exp[log_inv + log[entry]] if entry else 0
                        for entry in work[pivot_row]
                    ]
                pivot_entries = work[pivot_row]
                for r in range(row_count):
                    if r != pivot_row:
                        factor = work[r][col]
                        if factor:
                            log_factor = log[factor]
                            work[r] = [
                                entry ^ exp[log_factor + log[p]] if p else entry
                                for entry, p in zip(work[r], pivot_entries)
                            ]
                pivot_cols.append(col)
                pivot_row += 1
                if pivot_row == row_count:
                    break
        else:
            field = self.field
            for col in range(self.cols):
                pivot = None
                for r in range(pivot_row, row_count):
                    if work[r][col] != 0:
                        pivot = r
                        break
                if pivot is None:
                    continue
                if pivot != pivot_row:
                    work[pivot_row], work[pivot] = work[pivot], work[pivot_row]
                    swaps += 1
                pivot_value = work[pivot_row][col]
                inv_pivot = field.inv(pivot_value)
                work[pivot_row] = [field.mul(inv_pivot, entry) for entry in work[pivot_row]]
                for r in range(row_count):
                    if r != pivot_row and work[r][col] != 0:
                        factor = work[r][col]
                        work[r] = [
                            entry ^ field.mul(factor, pivot_entry)
                            for entry, pivot_entry in zip(work[r], work[pivot_row])
                        ]
                pivot_cols.append(col)
                pivot_row += 1
                if pivot_row == row_count:
                    break
        return work, pivot_cols, swaps

    def rank(self) -> int:
        """The rank of the matrix over the field."""
        _, pivot_cols, _ = self._eliminated()
        return len(pivot_cols)

    def determinant(self) -> int:
        """The determinant of a square matrix.

        Raises:
            MatrixError: if the matrix is not square.
        """
        if self.rows != self.cols:
            raise MatrixError(f"determinant requires a square matrix, got {self.shape}")
        tables = self.field.tables()
        work = [list(row) for row in self._data]
        det = 1
        if tables is not None:
            exp, log, inv = tables
            for col in range(self.cols):
                pivot = None
                for r in range(col, self.rows):
                    if work[r][col] != 0:
                        pivot = r
                        break
                if pivot is None:
                    return 0
                if pivot != col:
                    work[col], work[pivot] = work[pivot], work[col]
                    # In characteristic 2, swapping rows does not change the sign.
                pivot_value = work[col][col]
                det = exp[log[det] + log[pivot_value]]
                log_inv = log[inv[pivot_value]]
                pivot_entries = work[col]
                for r in range(col + 1, self.rows):
                    below = work[r][col]
                    if below:
                        log_factor = log[exp[log[below] + log_inv]]
                        work[r] = [
                            entry ^ exp[log_factor + log[p]] if p else entry
                            for entry, p in zip(work[r], pivot_entries)
                        ]
        else:
            field = self.field
            for col in range(self.cols):
                pivot = None
                for r in range(col, self.rows):
                    if work[r][col] != 0:
                        pivot = r
                        break
                if pivot is None:
                    return 0
                if pivot != col:
                    work[col], work[pivot] = work[pivot], work[col]
                pivot_value = work[col][col]
                det = field.mul(det, pivot_value)
                inv_pivot = field.inv(pivot_value)
                for r in range(col + 1, self.rows):
                    if work[r][col] != 0:
                        factor = field.mul(work[r][col], inv_pivot)
                        work[r] = [
                            entry ^ field.mul(factor, pivot_entry)
                            for entry, pivot_entry in zip(work[r], work[col])
                        ]
        return det

    def is_invertible(self) -> bool:
        """Return ``True`` iff the matrix is square with full rank."""
        return self.rows == self.cols and self.rank() == self.rows

    def inverse(self) -> "GFMatrix":
        """The matrix inverse.

        Raises:
            MatrixError: if the matrix is not square or is singular.
        """
        if self.rows != self.cols:
            raise MatrixError(f"inverse requires a square matrix, got {self.shape}")
        augmented = self.hstack(GFMatrix.identity(self.field, self.rows))
        reduced, pivot_cols, _ = augmented._eliminated()
        if pivot_cols[: self.rows] != list(range(self.rows)) or len(pivot_cols) < self.rows:
            raise MatrixError("matrix is singular and has no inverse")
        return GFMatrix._trusted(self.field, [row[self.cols :] for row in reduced])

    def solve(self, rhs: "GFMatrix") -> "GFMatrix":
        """Solve ``self @ X = rhs`` for a square, invertible ``self``.

        Raises:
            MatrixError: if shapes are incompatible or the matrix is singular.
        """
        self._require_same_field(rhs)
        if self.rows != rhs.rows:
            raise MatrixError(f"solve row mismatch: {self.rows} vs {rhs.rows}")
        return self.inverse().matmul(rhs)

    def null_space_dimension(self) -> int:
        """Dimension of the right null space (``cols - rank``)."""
        return self.cols - self.rank()

    # ------------------------------------------------------------------- dunder

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GFMatrix)
            and other.field == self.field
            and other._data == self._data
        )

    def __hash__(self) -> int:
        return hash((self.field, tuple(tuple(row) for row in self._data)))

    def __repr__(self) -> str:
        return f"GFMatrix(field={self.field!r}, shape={self.shape})"
