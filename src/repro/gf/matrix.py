"""Dense matrices over ``GF(2^m)``.

The equality-check machinery of the paper is pure linear algebra over a binary
extension field: per-edge coding matrices ``C_e``, their block expansions
``B_e`` and ``C_H``, and the rank / invertibility arguments of Appendix C.
This module provides the dense-matrix toolkit those computations need —
multiplication, transpose, horizontal/vertical stacking, Gaussian elimination
(rank, determinant, inverse, solving), and random sampling.

Matrices are stored as lists of row lists of plain integers, the same element
representation used by :class:`repro.gf.field.GF2m`.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence

from repro.exceptions import MatrixError
from repro.gf.field import GF2m


class GFMatrix:
    """A dense ``rows x cols`` matrix over a :class:`GF2m` field.

    Instances are immutable from the caller's point of view: all operations
    return new matrices.  Construction validates that every entry lies in the
    field and that the rows are rectangular.
    """

    __slots__ = ("field", "rows", "cols", "_data")

    def __init__(self, field: GF2m, data: Sequence[Sequence[int]]) -> None:
        rows = [list(row) for row in data]
        if not rows or not rows[0]:
            raise MatrixError("matrices must have at least one row and one column")
        width = len(rows[0])
        for row in rows:
            if len(row) != width:
                raise MatrixError("ragged rows: all rows must have the same length")
            for entry in row:
                field.validate(entry)
        self.field = field
        self.rows = len(rows)
        self.cols = width
        self._data = rows

    # ------------------------------------------------------------ constructors

    @classmethod
    def zeros(cls, field: GF2m, rows: int, cols: int) -> "GFMatrix":
        """An all-zero matrix of the given shape."""
        if rows < 1 or cols < 1:
            raise MatrixError(f"invalid shape ({rows}, {cols})")
        return cls(field, [[0] * cols for _ in range(rows)])

    @classmethod
    def identity(cls, field: GF2m, size: int) -> "GFMatrix":
        """The ``size x size`` identity matrix."""
        if size < 1:
            raise MatrixError(f"identity size must be >= 1, got {size}")
        return cls(field, [[1 if r == c else 0 for c in range(size)] for r in range(size)])

    @classmethod
    def from_rows(cls, field: GF2m, rows: Sequence[Sequence[int]]) -> "GFMatrix":
        """Alias of the constructor, for readability at call sites."""
        return cls(field, rows)

    @classmethod
    def row_vector(cls, field: GF2m, entries: Sequence[int]) -> "GFMatrix":
        """A ``1 x n`` matrix from a sequence of entries."""
        return cls(field, [list(entries)])

    @classmethod
    def column_vector(cls, field: GF2m, entries: Sequence[int]) -> "GFMatrix":
        """An ``n x 1`` matrix from a sequence of entries."""
        return cls(field, [[entry] for entry in entries])

    @classmethod
    def random(cls, field: GF2m, rows: int, cols: int, rng: random.Random) -> "GFMatrix":
        """A matrix whose entries are independent uniform field elements."""
        if rows < 1 or cols < 1:
            raise MatrixError(f"invalid shape ({rows}, {cols})")
        return cls(field, [[field.random_element(rng) for _ in range(cols)] for _ in range(rows)])

    # ---------------------------------------------------------------- accessors

    def entry(self, row: int, col: int) -> int:
        """Return the entry at ``(row, col)`` (0-based)."""
        return self._data[row][col]

    def row(self, index: int) -> List[int]:
        """Return a copy of row ``index``."""
        return list(self._data[index])

    def column(self, index: int) -> List[int]:
        """Return a copy of column ``index``."""
        return [row[index] for row in self._data]

    def to_lists(self) -> List[List[int]]:
        """Return the matrix contents as a list of row lists (a copy)."""
        return [list(row) for row in self._data]

    @property
    def shape(self) -> tuple[int, int]:
        """The ``(rows, cols)`` shape tuple."""
        return (self.rows, self.cols)

    def is_zero(self) -> bool:
        """Return ``True`` iff every entry is zero."""
        return all(entry == 0 for row in self._data for entry in row)

    # --------------------------------------------------------------- operations

    def _require_same_field(self, other: "GFMatrix") -> None:
        if self.field != other.field:
            raise MatrixError("matrices belong to different fields")

    def add(self, other: "GFMatrix") -> "GFMatrix":
        """Entry-wise sum (XOR) of two equal-shape matrices."""
        self._require_same_field(other)
        if self.shape != other.shape:
            raise MatrixError(f"shape mismatch for add: {self.shape} vs {other.shape}")
        return GFMatrix(
            self.field,
            [
                [a ^ b for a, b in zip(row_a, row_b)]
                for row_a, row_b in zip(self._data, other._data)
            ],
        )

    def scalar_mul(self, scalar: int) -> "GFMatrix":
        """Multiply every entry by a field scalar."""
        self.field.validate(scalar)
        mul = self.field.mul
        return GFMatrix(self.field, [[mul(scalar, entry) for entry in row] for row in self._data])

    def matmul(self, other: "GFMatrix") -> "GFMatrix":
        """Matrix product ``self @ other``.

        Raises:
            MatrixError: if the inner dimensions do not agree.
        """
        self._require_same_field(other)
        if self.cols != other.rows:
            raise MatrixError(f"shape mismatch for matmul: {self.shape} @ {other.shape}")
        mul = self.field.mul
        other_cols = [other.column(c) for c in range(other.cols)]
        product = []
        for row in self._data:
            product_row = []
            for col in other_cols:
                accumulator = 0
                for a, b in zip(row, col):
                    if a and b:
                        accumulator ^= mul(a, b)
                product_row.append(accumulator)
            product.append(product_row)
        return GFMatrix(self.field, product)

    def __matmul__(self, other: "GFMatrix") -> "GFMatrix":
        return self.matmul(other)

    def transpose(self) -> "GFMatrix":
        """The transposed matrix."""
        return GFMatrix(self.field, [self.column(c) for c in range(self.cols)])

    def hstack(self, other: "GFMatrix") -> "GFMatrix":
        """Concatenate another matrix with the same row count to the right."""
        self._require_same_field(other)
        if self.rows != other.rows:
            raise MatrixError(f"hstack row mismatch: {self.rows} vs {other.rows}")
        return GFMatrix(
            self.field, [row_a + row_b for row_a, row_b in zip(self._data, other._data)]
        )

    def vstack(self, other: "GFMatrix") -> "GFMatrix":
        """Concatenate another matrix with the same column count below."""
        self._require_same_field(other)
        if self.cols != other.cols:
            raise MatrixError(f"vstack column mismatch: {self.cols} vs {other.cols}")
        return GFMatrix(self.field, self.to_lists() + other.to_lists())

    def submatrix(self, row_indices: Iterable[int], col_indices: Iterable[int]) -> "GFMatrix":
        """Extract the submatrix with the given row and column indices."""
        row_list = list(row_indices)
        col_list = list(col_indices)
        if not row_list or not col_list:
            raise MatrixError("submatrix requires at least one row and one column index")
        return GFMatrix(
            self.field, [[self._data[r][c] for c in col_list] for r in row_list]
        )

    # ------------------------------------------------------ Gaussian elimination

    def _eliminated(self) -> tuple[List[List[int]], List[int], int]:
        """Run Gaussian elimination; return (echelon rows, pivot columns, swaps).

        The elimination is performed over a copy; the original is unchanged.
        """
        field = self.field
        work = [list(row) for row in self._data]
        pivot_cols: List[int] = []
        swaps = 0
        pivot_row = 0
        for col in range(self.cols):
            pivot = None
            for r in range(pivot_row, self.rows):
                if work[r][col] != 0:
                    pivot = r
                    break
            if pivot is None:
                continue
            if pivot != pivot_row:
                work[pivot_row], work[pivot] = work[pivot], work[pivot_row]
                swaps += 1
            pivot_value = work[pivot_row][col]
            inv_pivot = field.inv(pivot_value)
            work[pivot_row] = [field.mul(inv_pivot, entry) for entry in work[pivot_row]]
            for r in range(self.rows):
                if r != pivot_row and work[r][col] != 0:
                    factor = work[r][col]
                    work[r] = [
                        entry ^ field.mul(factor, pivot_entry)
                        for entry, pivot_entry in zip(work[r], work[pivot_row])
                    ]
            pivot_cols.append(col)
            pivot_row += 1
            if pivot_row == self.rows:
                break
        return work, pivot_cols, swaps

    def rank(self) -> int:
        """The rank of the matrix over the field."""
        _, pivot_cols, _ = self._eliminated()
        return len(pivot_cols)

    def determinant(self) -> int:
        """The determinant of a square matrix.

        Raises:
            MatrixError: if the matrix is not square.
        """
        if self.rows != self.cols:
            raise MatrixError(f"determinant requires a square matrix, got {self.shape}")
        field = self.field
        work = [list(row) for row in self._data]
        det = 1
        for col in range(self.cols):
            pivot = None
            for r in range(col, self.rows):
                if work[r][col] != 0:
                    pivot = r
                    break
            if pivot is None:
                return 0
            if pivot != col:
                work[col], work[pivot] = work[pivot], work[col]
                # In characteristic 2, swapping rows does not change the sign.
            pivot_value = work[col][col]
            det = field.mul(det, pivot_value)
            inv_pivot = field.inv(pivot_value)
            for r in range(col + 1, self.rows):
                if work[r][col] != 0:
                    factor = field.mul(work[r][col], inv_pivot)
                    work[r] = [
                        entry ^ field.mul(factor, pivot_entry)
                        for entry, pivot_entry in zip(work[r], work[col])
                    ]
        return det

    def is_invertible(self) -> bool:
        """Return ``True`` iff the matrix is square with full rank."""
        return self.rows == self.cols and self.rank() == self.rows

    def inverse(self) -> "GFMatrix":
        """The matrix inverse.

        Raises:
            MatrixError: if the matrix is not square or is singular.
        """
        if self.rows != self.cols:
            raise MatrixError(f"inverse requires a square matrix, got {self.shape}")
        augmented = self.hstack(GFMatrix.identity(self.field, self.rows))
        reduced, pivot_cols, _ = augmented._eliminated()
        if pivot_cols[: self.rows] != list(range(self.rows)) or len(pivot_cols) < self.rows:
            raise MatrixError("matrix is singular and has no inverse")
        return GFMatrix(self.field, [row[self.cols :] for row in reduced])

    def solve(self, rhs: "GFMatrix") -> "GFMatrix":
        """Solve ``self @ X = rhs`` for a square, invertible ``self``.

        Raises:
            MatrixError: if shapes are incompatible or the matrix is singular.
        """
        self._require_same_field(rhs)
        if self.rows != rhs.rows:
            raise MatrixError(f"solve row mismatch: {self.rows} vs {rhs.rows}")
        return self.inverse().matmul(rhs)

    def null_space_dimension(self) -> int:
        """Dimension of the right null space (``cols - rank``)."""
        return self.cols - self.rank()

    # ------------------------------------------------------------------- dunder

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GFMatrix)
            and other.field == self.field
            and other._data == self._data
        )

    def __hash__(self) -> int:
        return hash((self.field, tuple(tuple(row) for row in self._data)))

    def __repr__(self) -> str:
        return f"GFMatrix(field={self.field!r}, shape={self.shape})"
