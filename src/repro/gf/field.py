"""The binary extension field ``GF(2^m)``.

Elements are represented as plain Python integers in ``[0, 2^m)`` interpreted
as polynomials over GF(2) reduced modulo a fixed irreducible polynomial of
degree ``m``.  Keeping elements as bare integers (rather than wrapping each in
an object) keeps matrix algebra over the field reasonably fast in pure Python
and makes (de)serialisation to bit strings trivial, which is exactly what the
equality-check protocol needs.

Example:
    >>> field = GF2m(8)
    >>> field.mul(0x53, 0xCA)      # AES field uses a different modulus, value differs
    ... # doctest: +SKIP
    >>> field.mul(field.inv(7), 7)
    1
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence

from repro.exceptions import FieldError
from repro.gf.polynomials import (
    irreducible_polynomial,
    is_irreducible,
    poly_degree,
    poly_divmod,
    poly_mod,
    poly_mul,
)


class GF2m:
    """The finite field with ``2^m`` elements.

    Args:
        degree: The extension degree ``m >= 1``.
        modulus: Optional irreducible polynomial of degree ``m`` (encoded as an
            integer bit mask).  If omitted, a deterministic low-weight
            irreducible polynomial is used, so two ``GF2m(m)`` instances are
            always the *same* field and interoperable.

    Raises:
        FieldError: if the degree is not positive or the supplied modulus is
            not an irreducible polynomial of the requested degree.
    """

    __slots__ = ("degree", "modulus", "order", "_mask")

    def __init__(self, degree: int, modulus: int | None = None) -> None:
        if degree < 1:
            raise FieldError(f"field degree must be >= 1, got {degree}")
        if modulus is None:
            modulus = irreducible_polynomial(degree)
        else:
            if poly_degree(modulus) != degree:
                raise FieldError(
                    f"modulus degree {poly_degree(modulus)} does not match field degree {degree}"
                )
            if not is_irreducible(modulus):
                raise FieldError(f"modulus {modulus:#x} is not irreducible")
        self.degree = degree
        self.modulus = modulus
        self.order = 1 << degree
        self._mask = self.order - 1

    # ------------------------------------------------------------------ basics

    def validate(self, element: int) -> int:
        """Return ``element`` unchanged after checking it lies in the field.

        Raises:
            FieldError: if ``element`` is not an integer in ``[0, 2^m)``.
        """
        if not isinstance(element, int) or isinstance(element, bool):
            raise FieldError(f"field elements must be ints, got {type(element).__name__}")
        if element < 0 or element >= self.order:
            raise FieldError(f"element {element} outside field of order {self.order}")
        return element

    def zero(self) -> int:
        """The additive identity."""
        return 0

    def one(self) -> int:
        """The multiplicative identity."""
        return 1

    # -------------------------------------------------------------- arithmetic

    def add(self, a: int, b: int) -> int:
        """Field addition (bitwise XOR)."""
        return a ^ b

    def sub(self, a: int, b: int) -> int:
        """Field subtraction; identical to addition in characteristic 2."""
        return a ^ b

    def neg(self, a: int) -> int:
        """Additive inverse; every element is its own negative."""
        return a

    def mul(self, a: int, b: int) -> int:
        """Field multiplication: carry-less product reduced by the modulus."""
        if a == 0 or b == 0:
            return 0
        if a == 1:
            return b
        if b == 1:
            return a
        return poly_mod(poly_mul(a, b), self.modulus)

    def square(self, a: int) -> int:
        """Field squaring (a special case of :meth:`mul`)."""
        return self.mul(a, a)

    def pow(self, base: int, exponent: int) -> int:
        """Raise ``base`` to an integer ``exponent`` (which may be negative).

        Raises:
            FieldError: if the base is zero and the exponent is negative.
        """
        if exponent < 0:
            base = self.inv(base)
            exponent = -exponent
        result = 1
        base = base
        while exponent:
            if exponent & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            exponent >>= 1
        return result

    def inv(self, a: int) -> int:
        """Multiplicative inverse via the extended Euclidean algorithm.

        Raises:
            FieldError: if ``a`` is zero.
        """
        if a == 0:
            raise FieldError("zero has no multiplicative inverse")
        # Extended Euclid on polynomials: maintain r = s * a + t * modulus.
        r_prev, r_curr = self.modulus, a
        s_prev, s_curr = 0, 1
        while r_curr != 0:
            quotient, remainder = poly_divmod(r_prev, r_curr)
            r_prev, r_curr = r_curr, remainder
            s_prev, s_curr = s_curr, s_prev ^ poly_mul(quotient, s_curr)
        # r_prev is the gcd, necessarily 1 since the modulus is irreducible.
        return poly_mod(s_prev, self.modulus)

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``.

        Raises:
            FieldError: if ``b`` is zero.
        """
        return self.mul(a, self.inv(b))

    # ------------------------------------------------------------------ vectors

    def dot(self, left: Sequence[int], right: Sequence[int]) -> int:
        """Inner product of two equal-length vectors of field elements.

        Raises:
            MatrixError-like ValueError: if the lengths differ.
        """
        if len(left) != len(right):
            raise FieldError(f"dot product length mismatch: {len(left)} vs {len(right)}")
        accumulator = 0
        for a, b in zip(left, right):
            accumulator ^= self.mul(a, b)
        return accumulator

    def vector_add(self, left: Sequence[int], right: Sequence[int]) -> List[int]:
        """Component-wise sum of two equal-length vectors."""
        if len(left) != len(right):
            raise FieldError(f"vector sum length mismatch: {len(left)} vs {len(right)}")
        return [a ^ b for a, b in zip(left, right)]

    def scalar_mul(self, scalar: int, vector: Iterable[int]) -> List[int]:
        """Multiply every component of ``vector`` by ``scalar``."""
        return [self.mul(scalar, component) for component in vector]

    # ------------------------------------------------------------------ random

    def random_element(self, rng: random.Random) -> int:
        """Draw an element uniformly at random using the supplied RNG."""
        return rng.getrandbits(self.degree) & self._mask

    def random_nonzero(self, rng: random.Random) -> int:
        """Draw a uniformly random non-zero element."""
        while True:
            element = self.random_element(rng)
            if element != 0:
                return element

    def random_vector(self, length: int, rng: random.Random) -> List[int]:
        """Draw a vector of ``length`` independent uniform elements."""
        return [self.random_element(rng) for _ in range(length)]

    # ------------------------------------------------------------------ dunder

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GF2m)
            and other.degree == self.degree
            and other.modulus == self.modulus
        )

    def __hash__(self) -> int:
        return hash((self.degree, self.modulus))

    def __repr__(self) -> str:
        return f"GF2m(degree={self.degree}, modulus={self.modulus:#x})"
