"""The binary extension field ``GF(2^m)``.

Elements are represented as plain Python integers in ``[0, 2^m)`` interpreted
as polynomials over GF(2) reduced modulo a fixed irreducible polynomial of
degree ``m``.  Keeping elements as bare integers (rather than wrapping each in
an object) keeps matrix algebra over the field reasonably fast in pure Python
and makes (de)serialisation to bit strings trivial, which is exactly what the
equality-check protocol needs.

Performance notes:
    For degrees ``m <= 16`` (the symbol sizes all the hot equality-check and
    verification paths actually use), the field lazily builds discrete
    log / antilog tables on first multiplicative use, after which ``mul`` /
    ``inv`` / ``div`` / ``pow`` / ``square`` / ``dot`` are plain list lookups.
    The tables are shared process-wide through a module-level cache keyed on
    ``(degree, modulus)``, so constructing many ``GF2m(8)`` instances (one per
    NAB instance, say) pays the table build exactly once.  Larger degrees keep
    the original polynomial arithmetic, which also remains available on every
    field as the correctness oracle (:meth:`GF2m._mul_fallback`,
    :meth:`GF2m._inv_fallback`).  :func:`get_field` returns a canonical cached
    instance per ``(degree, modulus)`` for callers that construct fields in a
    loop.

Example:
    >>> field = GF2m(8)
    >>> field.mul(0x53, 0xCA)      # AES field uses a different modulus, value differs
    ... # doctest: +SKIP
    >>> field.mul(field.inv(7), 7)
    1
"""

from __future__ import annotations

import random
import sys
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.exceptions import FieldError
from repro.gf import backends as _backends
from repro.gf.polynomials import (
    ReductionTable,
    irreducible_polynomial,
    is_irreducible,
    poly_degree,
    poly_divmod,
    poly_mod,
    poly_mul,
    poly_reduce,
    poly_reduce_stacked,
    poly_square,
    reduction_table,
    stack_slots,
    stack_stride,
    unstack_slots,
    window_table,
)

#: Total memory budget (bytes, approximate) for one field's cache of per-
#: multiplicand window tables; each table holds 256 shifted multiples of one
#: element, i.e. ~``32 * degree`` bytes.
_WINDOW_CACHE_BYTES = 4 << 20

#: Memory budget for one field's cache of *stacked* window tables (tables of
#: whole packed symbol batches, e.g. a coding-matrix row); entries are
#: ``256 * packed_bytes`` each and an individual entry larger than a quarter
#: of the budget is never cached (built per call instead).
_STACK_CACHE_BYTES = 8 << 20

#: Upper bound on the packed size of one stacked window, which caps how many
#: symbols ride in a single windowed pass; the slot cap is additionally
#: clamped to 64 slots (diminishing interpreter-amortisation returns).
_STACK_WINDOW_BYTES = 1 << 16

# Largest degree for which log/antilog tables are built (2^16 entries tops).
_TABLE_MAX_DEGREE = 16

# (degree, modulus) -> (exp, log, inv) lookup tables, shared by all instances
# of the same field so the build cost is paid once per process.
_TABLE_CACHE: Dict[Tuple[int, int], Tuple[List[int], List[int], List[int]]] = {}

# (degree, modulus) -> canonical GF2m instance (see get_field).
_FIELD_CACHE: Dict[Tuple[int, int], "GF2m"] = {}


def _build_tables(degree: int, modulus: int) -> Tuple[List[int], List[int], List[int]]:
    """Build ``(exp, log, inv)`` tables for the field ``GF(2^degree)``.

    ``exp`` holds two copies of the antilog table back to back so that
    ``exp[log[a] + log[b]]`` never needs a ``% (order - 1)`` reduction.
    ``log[0]`` and ``inv[0]`` are unused placeholders (zero has neither).
    """
    order = 1 << degree
    group = order - 1
    if group == 1:
        return [1, 1], [0, 0], [0, 1]
    powers: List[int] = []
    for candidate in range(2, order):
        powers = [1]
        value = candidate
        while value != 1 and len(powers) <= group:
            powers.append(value)
            value = poly_mod(poly_mul(value, candidate), modulus)
        if len(powers) == group:
            break
    else:  # pragma: no cover - impossible for an irreducible modulus
        raise FieldError(f"no generator found for GF(2^{degree})")
    exp = powers + powers
    log = [0] * order
    for index, element in enumerate(powers):
        log[element] = index
    inv = [0] * order
    for element in range(1, order):
        inv[element] = exp[group - log[element]]
    return exp, log, inv


def get_field(
    degree: int, modulus: int | None = None, kernel_backend: str | None = None
) -> "GF2m":
    """A canonical shared :class:`GF2m` instance for ``(degree, modulus)``.

    Repeated calls with the same parameters return the *same* object, so its
    lazily built arithmetic tables (and any caller-side caches keyed on
    identity) are reused across coding schemes, instances and benchmarks.

    The kernel backend (see :mod:`repro.gf.backends`) is resolved when the
    canonical instance is first constructed and is *sticky* thereafter:
    later calls — even under a different ``REPRO_GF_BACKEND`` environment —
    return the already-built field unchanged.  Passing ``kernel_backend``
    explicitly for a field that was canonicalised with a different backend
    raises, rather than silently returning the other kernel.

    Raises:
        FieldError: on an invalid degree/modulus, an unknown or unavailable
            backend name, or a backend conflict with the cached instance.
    """
    if degree < 1:
        raise FieldError(f"field degree must be >= 1, got {degree}")
    default = modulus is None
    if default:
        # Resolve the default modulus for the cache key (a cheap cached
        # table lookup), so the None-spelling and the explicit-spelling of
        # the same field share one canonical instance regardless of call
        # order.
        modulus = irreducible_polynomial(degree)
    key = (degree, modulus)
    field = _FIELD_CACHE.get(key)
    if field is None:
        # Construct through the default path when the caller did not supply
        # a modulus: an explicit modulus is re-validated for irreducibility,
        # which is prohibitively slow for large degrees.
        if default:
            field = GF2m(degree, kernel_backend=kernel_backend)
        else:
            field = GF2m(degree, modulus, kernel_backend=kernel_backend)
        _FIELD_CACHE[key] = field
    elif kernel_backend and field._big and field.kernel_backend_name() != kernel_backend:
        raise FieldError(
            f"GF(2^{degree}) is already canonicalised with kernel backend "
            f"{field.kernel_backend_name()!r}; per-field backend selection is "
            f"sticky (requested {kernel_backend!r})"
        )
    return field


class GF2m:
    """The finite field with ``2^m`` elements.

    Args:
        degree: The extension degree ``m >= 1``.
        modulus: Optional irreducible polynomial of degree ``m`` (encoded as an
            integer bit mask).  If omitted, a deterministic low-weight
            irreducible polynomial is used, so two ``GF2m(m)`` instances are
            always the *same* field and interoperable.
        kernel_backend: Optional kernel backend name (see
            :mod:`repro.gf.backends`) for the big-field carry-less multiply;
            omitted, the ``REPRO_GF_BACKEND`` environment variable and then
            the static crossover policy decide.  Ignored for degrees <= 16,
            which run on log/antilog tables.

    Raises:
        FieldError: if the degree is not positive, the supplied modulus is
            not an irreducible polynomial of the requested degree, or the
            backend name is unknown/unavailable.
    """

    __slots__ = (
        "degree",
        "modulus",
        "order",
        "_mask",
        "_exp",
        "_log",
        "_inv_t",
        "_redtab",
        "_wtab",
        "_wtab_bytes",
        "_big",
        "_stride",
        "_slot_cap",
        "_swtab",
        "_swtab_bytes",
        "_kernel",
        "_clmul",
        "_clmul_stacked",
        "_kstats",
    )

    def __init__(
        self,
        degree: int,
        modulus: int | None = None,
        kernel_backend: str | None = None,
    ) -> None:
        if degree < 1:
            raise FieldError(f"field degree must be >= 1, got {degree}")
        if modulus is None:
            modulus = irreducible_polynomial(degree)
        else:
            if poly_degree(modulus) != degree:
                raise FieldError(
                    f"modulus degree {poly_degree(modulus)} does not match field degree {degree}"
                )
            if not is_irreducible(modulus):
                raise FieldError(f"modulus {modulus:#x} is not irreducible")
        self.degree = degree
        self.modulus = modulus
        self.order = 1 << degree
        self._mask = self.order - 1
        # Lazily populated log/antilog/inverse tables (degree <= 16 only).
        self._exp: List[int] | None = None
        self._log: List[int] | None = None
        self._inv_t: List[int] | None = None
        # Big-field kernel state (degree > 16): the precomputed chunked-
        # reduction table for the fixed modulus (``False`` when the modulus is
        # too dense, meaning reduce falls back to division) and a bounded
        # cache of per-multiplicand window tables.
        self._redtab: ReductionTable | bool | None = None
        self._wtab: Dict[int, List[int]] = {}
        self._wtab_bytes = 0
        self._big = degree > _TABLE_MAX_DEGREE
        # hits / misses / evictions for the window and stacked table caches.
        self._kstats = {"window": [0, 0, 0], "stacked": [0, 0, 0]}
        # Stacked-kernel geometry (degree > 16): slot stride wide enough for
        # one raw product (guard-spacing rule, see polynomials.stack_stride),
        # the per-window slot cap, and the stacked window-table cache.  When
        # clamping the window to the cache's per-entry budget still leaves a
        # useful batch (>= 8 slots), prefer cacheable windows so recurring
        # operands (coding-matrix rows) pay their table build once; at very
        # large degrees, where even small windows exceed the entry budget,
        # keep the wider window — the fused scan amortisation is then worth
        # more than the (impossible) caching.
        self._stride = stack_stride(degree, degree)
        width = self._stride // 8
        window_slots = max(1, _STACK_WINDOW_BYTES // width)
        cacheable_slots = (_STACK_CACHE_BYTES // 4) // (256 * width)
        if cacheable_slots >= 8:
            window_slots = min(window_slots, cacheable_slots)
        self._slot_cap = max(1, min(window_slots, 64))
        self._swtab: Dict[int, List[int]] = {}
        self._swtab_bytes = 0
        # Kernel backend (big fields only): resolved once, sticky for the
        # life of the instance; the raw-product dispatchers are bound here so
        # the hot paths pay no per-call selection logic.  The windowed
        # machinery stays on the field itself (it is also every other
        # backend's delegate below their crossover points).
        if self._big:
            self._kernel = _backends.create_backend(self, kernel_backend)
            if self._kernel.name == "windowed":
                self._clmul = self._windowed_clmul
                self._clmul_stacked = self._windowed_stacked_mul
            else:
                self._clmul = self._kernel.clmul
                self._clmul_stacked = self._kernel.clmul_stacked
        else:
            if kernel_backend:
                # Validate the name even though small fields run on tables.
                _backends.backend_class(kernel_backend)
            self._kernel = None
            self._clmul = None
            self._clmul_stacked = None

    # ------------------------------------------------------------------ tables

    def _ensure_tables(self) -> bool:
        """Build (or fetch from the shared cache) the lookup tables.

        Returns ``True`` iff tables are available for this field's degree.
        """
        if self._exp is not None:
            return True
        if self.degree > _TABLE_MAX_DEGREE:
            return False
        key = (self.degree, self.modulus)
        tables = _TABLE_CACHE.get(key)
        if tables is None:
            tables = _build_tables(self.degree, self.modulus)
            _TABLE_CACHE[key] = tables
        self._exp, self._log, self._inv_t = tables
        return True

    def tables(self) -> Tuple[List[int], List[int], List[int]] | None:
        """The ``(exp, log, inv)`` lookup tables, or ``None`` for large degrees.

        The ``exp`` table is doubled in length so ``exp[log[a] + log[b]]``
        is valid without reduction; ``log[0]`` / ``inv[0]`` are placeholders.
        Hot matrix kernels bind these lists locally to skip per-element
        method dispatch.
        """
        if self._ensure_tables():
            return self._exp, self._log, self._inv_t  # type: ignore[return-value]
        return None

    # ------------------------------------------------------------------ basics

    def validate(self, element: int) -> int:
        """Return ``element`` unchanged after checking it lies in the field.

        Raises:
            FieldError: if ``element`` is not an integer in ``[0, 2^m)``.
        """
        if not isinstance(element, int) or isinstance(element, bool):
            raise FieldError(f"field elements must be ints, got {type(element).__name__}")
        if element < 0 or element >= self.order:
            raise FieldError(f"element {element} outside field of order {self.order}")
        return element

    def zero(self) -> int:
        """The additive identity."""
        return 0

    def one(self) -> int:
        """The multiplicative identity."""
        return 1

    # -------------------------------------------------------------- arithmetic

    def add(self, a: int, b: int) -> int:
        """Field addition (bitwise XOR)."""
        return a ^ b

    def sub(self, a: int, b: int) -> int:
        """Field subtraction; identical to addition in characteristic 2."""
        return a ^ b

    def neg(self, a: int) -> int:
        """Additive inverse; every element is its own negative."""
        return a

    def mul(self, a: int, b: int) -> int:
        """Field multiplication (log/antilog lookup, or the windowed kernel)."""
        if a == 0 or b == 0:
            return 0
        if self._big:
            return self._mul_big(a, b)
        log = self._log
        if log is None:
            self._ensure_tables()
            log = self._log
        return self._exp[log[a] + log[b]]  # type: ignore[index]

    def _mul_fallback(self, a: int, b: int) -> int:
        """Bit-serial polynomial multiplication: the correctness oracle.

        This is the pre-windowing implementation, retained verbatim so the
        big-field kernels (:meth:`_mul_big`, :meth:`square`, :meth:`inv`) have
        a fixed reference to be property-tested and benchmarked against.  Hot
        paths never call it for degree > 16 anymore — they use
        :meth:`_mul_big`.
        """
        if a == 0 or b == 0:
            return 0
        if a == 1:
            return b
        if b == 1:
            return a
        return poly_mod(poly_mul(a, b), self.modulus)

    # ------------------------------------------------------- big-field kernels

    def _reduction(self) -> ReductionTable | bool:
        """The cached chunked-reduction table (``False``: modulus too dense)."""
        redtab = self._redtab
        if redtab is None:
            built = reduction_table(self.modulus)
            redtab = self._redtab = built if built is not None else False
        return redtab

    def _reduce(self, value: int) -> int:
        """Reduce a raw carry-less product modulo the field modulus."""
        redtab = self._redtab
        if redtab is None:
            redtab = self._reduction()
        if redtab is False:
            return poly_mod(value, self.modulus)
        return poly_reduce(value, redtab)  # type: ignore[arg-type]

    def _window_table_for(self, a: int) -> List[int]:
        """The 8-bit window table of ``a``, through the per-field cache.

        The cache is keyed on the multiplicand value; the equality-check
        encoding multiplies each symbol of a node's value against many coding
        matrices, so the handful of live symbols stay warm while the table
        build amortises away.  Accounting is by *actual* byte size
        (``sys.getsizeof`` summed over the table's entries, so sparse or
        short multiplicands are charged what they cost, not a degree-scaled
        estimate); the cache is dropped wholesale when the next table would
        overflow the budget.
        """
        cache = self._wtab
        stats = self._kstats["window"]
        table = cache.get(a)
        if table is None:
            stats[1] += 1
            table = window_table(a)
            cost = sys.getsizeof(table) + sum(map(sys.getsizeof, table))
            if self._wtab_bytes + cost > _WINDOW_CACHE_BYTES:
                cache.clear()
                self._wtab_bytes = 0
                stats[2] += 1
            cache[a] = table
            self._wtab_bytes += cost
        else:
            stats[0] += 1
        return table

    def _raw_mul_big(self, a: int, b: int) -> int:
        """The unreduced carry-less product behind :meth:`_mul_big`.

        Dispatches to the field's kernel backend; the default windowed
        backend binds :meth:`_windowed_clmul` here directly.  Callers that
        combine several products linearly (XOR) can defer the modular
        reduction and fold it once over the combination.
        """
        return self._clmul(a, b)

    def _windowed_clmul(self, a: int, b: int) -> int:
        """The windowed raw product: byte scan against a cached window table.

        Scans one operand byte-by-byte against the cached window table of the
        other; prefers whichever operand already has a table cached.  This is
        the ``windowed`` backend's primitive and the delegate every other
        backend falls back to below its own crossover point.
        """
        table = self._wtab.get(a)
        if table is None and b in self._wtab:
            a, b = b, a
            table = self._wtab[a]
        if table is None:
            table = self._window_table_for(a)
        else:
            self._kstats["window"][0] += 1
        product = 0
        for byte in b.to_bytes((b.bit_length() + 7) // 8, "big"):
            product = (product << 8) ^ table[byte]
        return product

    def _mul_big(self, a: int, b: int) -> int:
        """Windowed multiplication + chunked reduction (degree > 16 kernel)."""
        if a == 0 or b == 0:
            return 0
        if a == 1:
            return b
        if b == 1:
            return a
        return self._reduce(self._raw_mul_big(a, b))

    # ------------------------------------------------------- stacked kernels

    def _stacked_table(self, stacked: int, packed_bytes: int) -> List[int]:
        """The window table of a stacked operand, cached within the budget.

        Oversized tables (more than a quarter of :data:`_STACK_CACHE_BYTES`,
        judged by actual byte size) are built but not retained; cacheable
        ones evict the whole cache when the budget would overflow, mirroring
        :meth:`_window_table_for`.  ``packed_bytes`` sizes a cheap pre-check
        that skips the exact measurement for clearly oversized tables.
        """
        stats = self._kstats["stacked"]
        table = self._swtab.get(stacked)
        if table is None:
            stats[1] += 1
            table = window_table(stacked)
            if 256 * packed_bytes <= _STACK_CACHE_BYTES:
                cost = sys.getsizeof(table) + sum(map(sys.getsizeof, table))
                if cost <= _STACK_CACHE_BYTES // 4:
                    if self._swtab_bytes + cost > _STACK_CACHE_BYTES:
                        self._swtab.clear()
                        self._swtab_bytes = 0
                        stats[2] += 1
                    self._swtab[stacked] = table
                    self._swtab_bytes += cost
        else:
            stats[0] += 1
        return table

    def _stacked_raw_mul(self, stacked: int, factor: int, packed_bytes: int) -> int:
        """One fused pass multiplying a whole packed symbol batch by ``factor``.

        Dispatches to the kernel backend's stacked primitive (the windowed
        backend binds :meth:`_windowed_stacked_mul` directly); returns the
        raw stacked product (unreduced).
        """
        if factor == 0 or stacked == 0:
            return 0
        return self._clmul_stacked(stacked, factor, packed_bytes)

    def _windowed_stacked_mul(self, stacked: int, factor: int, packed_bytes: int) -> int:
        """One windowed pass over a stacked batch: the ``windowed`` primitive.

        The window table of the *stacked* operand comes from
        :meth:`_stacked_table` — cached per field (keyed on the stacked
        value) within the :data:`_STACK_CACHE_BYTES` budget, so operands
        that recur across calls — a coding-matrix row scaled by each symbol
        of many values — pay the table build once and every later call is
        just the ``factor`` byte scan.
        """
        if factor == 0 or stacked == 0:
            return 0
        table = self._stacked_table(stacked, packed_bytes)
        product = 0
        for byte in factor.to_bytes((factor.bit_length() + 7) // 8, "big"):
            product = (product << 8) ^ table[byte]
        return product

    def _reduce_stacked(self, stacked_raw: int, count: int) -> List[int]:
        """Reduce a stacked raw product and split it into ``count`` elements.

        Uses the whole-integer masked folds of
        :func:`polynomials.poly_reduce_stacked` when the modulus has a
        reduction table, amortising the fold pass across the batch; dense
        moduli fall back to per-slot Euclidean reduction.
        """
        redtab = self._redtab
        if redtab is None:
            redtab = self._reduction()
        if redtab is False:
            return [
                poly_mod(value, self.modulus)
                for value in unstack_slots(stacked_raw, self._stride, count)
            ]
        reduced = poly_reduce_stacked(stacked_raw, redtab, self._stride, count)
        return unstack_slots(reduced, self._stride, count)

    def square(self, a: int) -> int:
        """Field squaring (table lookup, or linear-time bit spreading)."""
        if a == 0:
            return 0
        if self._big:
            return self._reduce(poly_square(a))
        log = self._log
        if log is None:
            self._ensure_tables()
            log = self._log
        return self._exp[2 * log[a]]  # type: ignore[index]

    def pow(self, base: int, exponent: int) -> int:
        """Raise ``base`` to an integer ``exponent`` (which may be negative).

        Raises:
            FieldError: if the base is zero and the exponent is negative.
        """
        if base == 0:
            if exponent < 0:
                raise FieldError("zero has no multiplicative inverse")
            return 1 if exponent == 0 else 0
        if self._ensure_tables():
            # base^(order-1) = 1, so reduce the exponent mod the group order;
            # Python's % maps negative exponents into range as well.
            group = self.order - 1
            return self._exp[(self._log[base] * exponent) % group]  # type: ignore[index]
        if exponent < 0:
            base = self.inv(base)
            exponent = -exponent
        result = 1
        while exponent:
            if exponent & 1:
                result = self._mul_big(result, base)
            base = self._reduce(poly_square(base))
            exponent >>= 1
        return result

    def inv(self, a: int) -> int:
        """Multiplicative inverse (table lookup, or extended Euclid fallback).

        Raises:
            FieldError: if ``a`` is zero.
        """
        if a == 0:
            raise FieldError("zero has no multiplicative inverse")
        if self._inv_t is not None or self._ensure_tables():
            return self._inv_t[a]  # type: ignore[index]
        return self._inv_big(a)

    def _inv_big(self, a: int) -> int:
        """Extended Euclid with inlined single-shift division steps.

        Same algorithm as :meth:`_inv_fallback` but each quotient is applied
        one aligned shift at a time, avoiding the per-quotient ``poly_divmod``
        / ``poly_mul`` calls (whose bit-serial inner loops dominate at large
        degrees).  The fallback remains the correctness oracle.
        """
        r_prev, r_curr = self.modulus, a
        s_prev, s_curr = 0, 1
        deg_prev, deg_curr = self.degree, a.bit_length() - 1
        while r_curr:
            shift = deg_prev - deg_curr
            if shift < 0:
                r_prev, r_curr = r_curr, r_prev
                s_prev, s_curr = s_curr, s_prev
                deg_prev, deg_curr = deg_curr, deg_prev
                continue
            r_prev ^= r_curr << shift
            s_prev ^= s_curr << shift
            deg_prev = r_prev.bit_length() - 1
        # r_curr reached zero, so r_prev holds gcd == 1 and s_prev the inverse
        # of ``a`` up to one final reduction.
        return self._reduce(s_prev)

    def _inv_fallback(self, a: int) -> int:
        """Extended Euclidean inverse: the fallback and correctness oracle.

        Raises:
            FieldError: if ``a`` is zero.
        """
        if a == 0:
            raise FieldError("zero has no multiplicative inverse")
        # Extended Euclid on polynomials: maintain r = s * a + t * modulus.
        r_prev, r_curr = self.modulus, a
        s_prev, s_curr = 0, 1
        while r_curr != 0:
            quotient, remainder = poly_divmod(r_prev, r_curr)
            r_prev, r_curr = r_curr, remainder
            s_prev, s_curr = s_curr, s_prev ^ poly_mul(quotient, s_curr)
        # r_prev is the gcd, necessarily 1 since the modulus is irreducible.
        return poly_mod(s_prev, self.modulus)

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``.

        Raises:
            FieldError: if ``b`` is zero.
        """
        return self.mul(a, self.inv(b))

    # ------------------------------------------------------------- introspection

    def kernel_backend_name(self) -> str:
        """The kernel backend this field runs on (``"log-table"`` for m <= 16)."""
        return self._kernel.name if self._kernel is not None else "log-table"

    def kernel_cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Counters for every kernel-side cache this field holds.

        Always includes the ``window`` and ``stacked`` table caches
        (hits/misses/evictions plus byte-accurate occupancy); backends add
        their own operand caches (``spread``, ``fft_operands``, ...).
        """
        window = self._kstats["window"]
        stacked = self._kstats["stacked"]
        stats: Dict[str, Dict[str, int]] = {
            "window": {
                "entries": len(self._wtab),
                "bytes": self._wtab_bytes,
                "budget_bytes": _WINDOW_CACHE_BYTES,
                "hits": window[0],
                "misses": window[1],
                "evictions": window[2],
            },
            "stacked": {
                "entries": len(self._swtab),
                "bytes": self._swtab_bytes,
                "budget_bytes": _STACK_CACHE_BYTES,
                "hits": stacked[0],
                "misses": stacked[1],
                "evictions": stacked[2],
            },
        }
        if self._kernel is not None:
            stats.update(self._kernel.cache_stats())
        return stats

    def clear_kernel_caches(self) -> None:
        """Drop the backend's operand caches (counters are preserved).

        The window/stacked table caches are left alone — they are bounded,
        shared across topologies, and clearing them would cost warm restarts
        for nothing; the runner calls this per topology switch to bound the
        *new* per-backend operand caches the same way it bounds the structure
        caches.
        """
        if self._kernel is not None:
            self._kernel.clear_caches()

    def describe(self) -> Dict[str, object]:
        """A structured snapshot of the field's kernel configuration.

        Includes the selected backend, how it was selected, the backend's
        crossover decisions, the stacked-slot geometry and all cache
        counters; surfaced by the benchmarks as artifact extras.
        """
        info: Dict[str, object] = {
            "degree": self.degree,
            "modulus": hex(self.modulus),
            "big": self._big,
            "kernel_backend": self.kernel_backend_name(),
        }
        if self._kernel is not None:
            info["selected_by"] = getattr(self._kernel, "selected_by", "unknown")
            info["crossover"] = self._kernel.crossover()
            info["stack_stride_bits"] = self._stride
            info["stack_slot_cap"] = self._slot_cap
        info["caches"] = self.kernel_cache_stats()
        return info

    # ------------------------------------------------------------------ vectors

    def dot(self, left: Sequence[int], right: Sequence[int]) -> int:
        """Inner product of two equal-length vectors of field elements.

        Raises:
            FieldError: if the lengths differ.
        """
        if len(left) != len(right):
            raise FieldError(f"dot product length mismatch: {len(left)} vs {len(right)}")
        accumulator = 0
        tables = self.tables()
        if tables is not None:
            exp, log, _ = tables
            for a, b in zip(left, right):
                if a and b:
                    accumulator ^= exp[log[a] + log[b]]
        else:
            mul = self._mul_big
            for a, b in zip(left, right):
                if a and b:
                    accumulator ^= mul(a, b)
        return accumulator

    def vector_add(self, left: Sequence[int], right: Sequence[int]) -> List[int]:
        """Component-wise sum of two equal-length vectors."""
        if len(left) != len(right):
            raise FieldError(f"vector sum length mismatch: {len(left)} vs {len(right)}")
        return [a ^ b for a, b in zip(left, right)]

    def scalar_mul(self, scalar: int, vector: Iterable[int]) -> List[int]:
        """Multiply every component of ``vector`` by ``scalar``.

        Per-symbol loop, frozen as the correctness oracle for
        :meth:`scale_vec`; hot paths should use the vector API.
        """
        mul = self.mul
        return [mul(scalar, component) for component in vector]

    def scale_vec(self, scalar: int, vector: Sequence[int]) -> List[int]:
        """Vector-API scalar multiply: one windowed pass per symbol window.

        Small-degree fields route through the log/exp tables with the
        scalar's log hoisted out of the loop; big fields pack the vector into
        guard-spaced slots (:func:`polynomials.stack_slots`) and multiply the
        whole batch by ``scalar`` in a single windowed pass, then reduce all
        slots with one masked fold sweep.  Identical values to
        :meth:`scalar_mul` (the frozen per-symbol oracle).
        """
        values = list(vector)
        if not values:
            return []
        if scalar == 0:
            return [0] * len(values)
        if scalar == 1:
            return values
        if not self._big:
            self._ensure_tables()
            exp, log = self._exp, self._log
            log_scalar = log[scalar]  # type: ignore[index]
            return [exp[log_scalar + log[v]] if v else 0 for v in values]  # type: ignore[index]
        out: List[int] = []
        stride = self._stride
        width = stride // 8
        cap = self._slot_cap
        for start in range(0, len(values), cap):
            window = values[start : start + cap]
            stacked = stack_slots(window, stride)
            raw = self._stacked_raw_mul(stacked, scalar, len(window) * width)
            out.extend(self._reduce_stacked(raw, len(window)))
        return out

    def mul_vec(self, left: Sequence[int], right: Sequence[int]) -> List[int]:
        """Component-wise product of two equal-length vectors.

        Small-degree fields use the log/exp tables; big fields compute the
        raw windowed products pairwise and amortise the modular reduction by
        folding every raw product in one stacked sweep.

        Raises:
            FieldError: if the lengths differ.
        """
        if len(left) != len(right):
            raise FieldError(f"mul_vec length mismatch: {len(left)} vs {len(right)}")
        if not left:
            return []
        if not self._big:
            self._ensure_tables()
            exp, log = self._exp, self._log
            return [
                exp[log[a] + log[b]] if a and b else 0  # type: ignore[index]
                for a, b in zip(left, right)
            ]
        hooked = self._kernel.mul_vec(left, right)
        if hooked is not None:
            return hooked
        raw_mul = self._raw_mul_big
        raws = [raw_mul(a, b) if a and b else 0 for a, b in zip(left, right)]
        out: List[int] = []
        stride = self._stride
        cap = self._slot_cap
        for start in range(0, len(raws), cap):
            window = raws[start : start + cap]
            out.extend(self._reduce_stacked(stack_slots(window, stride), len(window)))
        return out

    def dot_vec(self, left: Sequence[int], right: Sequence[int]) -> int:
        """Vector-API inner product: raw products, one reduction at the end.

        Small-degree fields match :meth:`dot` (the frozen per-symbol oracle);
        big fields XOR the unreduced windowed products — reduction is linear
        over XOR — and reduce the accumulator once instead of per term.

        Raises:
            FieldError: if the lengths differ.
        """
        if len(left) != len(right):
            raise FieldError(f"dot_vec length mismatch: {len(left)} vs {len(right)}")
        if not self._big:
            return self.dot(left, right)
        hooked = self._kernel.dot_vec(left, right)
        if hooked is not None:
            return hooked
        raw_mul = self._raw_mul_big
        accumulator = 0
        for a, b in zip(left, right):
            if a and b:
                accumulator ^= raw_mul(a, b)
        return self._reduce(accumulator) if accumulator else 0

    # ------------------------------------------------------------------ random

    def random_element(self, rng: random.Random) -> int:
        """Draw an element uniformly at random using the supplied RNG."""
        return rng.getrandbits(self.degree) & self._mask

    def random_nonzero(self, rng: random.Random) -> int:
        """Draw a uniformly random non-zero element."""
        while True:
            element = self.random_element(rng)
            if element != 0:
                return element

    def random_vector(self, length: int, rng: random.Random) -> List[int]:
        """Draw a vector of ``length`` independent uniform elements."""
        return [self.random_element(rng) for _ in range(length)]

    # ------------------------------------------------------------------ dunder

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GF2m)
            and other.degree == self.degree
            and other.modulus == self.modulus
        )

    def __hash__(self) -> int:
        return hash((self.degree, self.modulus))

    def __repr__(self) -> str:
        return f"GF2m(degree={self.degree}, modulus={self.modulus:#x})"


def kernel_cache_stats() -> Dict[str, Dict[str, Dict[str, int]]]:
    """Kernel cache counters for every canonical field, keyed ``GF(2^m)``."""
    return {
        f"GF(2^{degree})": field.kernel_cache_stats()
        for (degree, _modulus), field in sorted(_FIELD_CACHE.items())
        if field._big
    }


def clear_kernel_caches() -> None:
    """Drop the kernel backends' operand caches on every canonical field.

    Called by the experiment runner on topology switches, alongside the
    structure caches (min-cuts, packings, relay paths, rank verdicts): the
    spread/spectrum operand caches are keyed on symbol values, which never
    recur across topologies, so this is memory hygiene, not a correctness
    concern.  Window/stacked tables and the field instances themselves stay.
    """
    for field in _FIELD_CACHE.values():
        field.clear_kernel_caches()
