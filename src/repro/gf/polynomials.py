"""Polynomials over GF(2) and irreducible-polynomial construction.

A polynomial over GF(2) is represented as a Python integer whose bit ``i`` is
the coefficient of ``x**i``; e.g. ``0b10011`` is ``x^4 + x + 1``.  The module
provides the basic polynomial ring operations (carry-less multiplication,
Euclidean division, gcd, modular exponentiation) and an irreducibility test
based on the standard criterion

    ``f`` of degree ``m`` is irreducible over GF(2)  iff
    ``x^(2^m) == x  (mod f)``  and
    ``gcd(x^(2^(m/p)) - x, f) == 1`` for every prime ``p`` dividing ``m``.

(Rabin's irreducibility test.)  A table of low-weight irreducible polynomials
for common degrees is included so that field construction is deterministic and
fast for the sizes used throughout the library; degrees not in the table fall
back to a deterministic search.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.exceptions import FieldError

# Low-weight (trinomial / pentanomial) irreducible polynomials over GF(2).
# Keys are degrees; values are the full polynomial including the leading term,
# encoded as integers.  Entries follow the standard tables (e.g. HP-HDL /
# Seroussi "Table of low-weight binary irreducible polynomials").  Exponents
# listed are those of the non-leading, non-constant terms.
_LOW_WEIGHT_EXPONENTS: Dict[int, List[int]] = {
    1: [],
    2: [1],
    3: [1],
    4: [1],
    5: [2],
    6: [1],
    7: [1],
    8: [4, 3, 1],
    9: [1],
    10: [3],
    11: [2],
    12: [3],
    13: [4, 3, 1],
    14: [5],
    15: [1],
    16: [5, 3, 1],
    17: [3],
    18: [3],
    19: [5, 2, 1],
    20: [3],
    21: [2],
    22: [1],
    23: [5],
    24: [4, 3, 1],
    25: [3],
    26: [4, 3, 1],
    27: [5, 2, 1],
    28: [1],
    29: [2],
    30: [1],
    31: [3],
    32: [7, 3, 2],
    33: [10],
    34: [7],
    35: [2],
    36: [9],
    40: [5, 4, 3],
    48: [5, 3, 2],
    56: [7, 4, 2],
    64: [4, 3, 1],
    80: [9, 4, 2],
    96: [10, 9, 6],
    128: [7, 2, 1],
    160: [5, 3, 2],
    192: [15, 11, 5],
    256: [10, 5, 2],
    512: [8, 5, 2],
    1024: [19, 6, 1],
}


def poly_degree(poly: int) -> int:
    """Return the degree of ``poly``; the zero polynomial has degree ``-1``."""
    return poly.bit_length() - 1


def poly_mul(a: int, b: int) -> int:
    """Carry-less (XOR) multiplication of two GF(2) polynomials."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def poly_divmod(a: int, b: int) -> tuple[int, int]:
    """Euclidean division of polynomial ``a`` by ``b`` over GF(2).

    Returns:
        ``(quotient, remainder)`` with ``a == quotient * b xor remainder`` and
        ``deg(remainder) < deg(b)``.

    Raises:
        FieldError: if ``b`` is the zero polynomial.
    """
    if b == 0:
        raise FieldError("polynomial division by zero")
    deg_b = poly_degree(b)
    quotient = 0
    remainder = a
    while poly_degree(remainder) >= deg_b:
        shift = poly_degree(remainder) - deg_b
        quotient ^= 1 << shift
        remainder ^= b << shift
    return quotient, remainder


def poly_mod(a: int, b: int) -> int:
    """Return ``a mod b`` in the polynomial ring over GF(2)."""
    return poly_divmod(a, b)[1]


def poly_gcd(a: int, b: int) -> int:
    """Greatest common divisor of two GF(2) polynomials (monic by nature)."""
    while b:
        a, b = b, poly_mod(a, b)
    return a


def poly_mulmod(a: int, b: int, modulus: int) -> int:
    """Return ``a * b mod modulus`` over GF(2)."""
    return poly_mod(poly_mul(a, b), modulus)


def poly_powmod(base: int, exponent: int, modulus: int) -> int:
    """Return ``base ** exponent mod modulus`` over GF(2) by square-and-multiply."""
    result = 1
    base = poly_mod(base, modulus)
    while exponent:
        if exponent & 1:
            result = poly_mulmod(result, base, modulus)
        base = poly_mulmod(base, base, modulus)
        exponent >>= 1
    return result


def _prime_factors(n: int) -> Iterable[int]:
    """Yield the distinct prime factors of ``n`` in increasing order."""
    factor = 2
    while factor * factor <= n:
        if n % factor == 0:
            yield factor
            while n % factor == 0:
                n //= factor
        factor += 1
    if n > 1:
        yield n


def is_irreducible(poly: int) -> bool:
    """Return ``True`` iff ``poly`` is irreducible over GF(2).

    Uses Rabin's irreducibility test.  Polynomials of degree 0 (constants) are
    not considered irreducible; degree-1 polynomials always are.
    """
    m = poly_degree(poly)
    if m <= 0:
        return False
    if m == 1:
        return True
    # x^(2^m) mod poly must equal x.
    x = 0b10
    power = x
    for _ in range(m):
        power = poly_mulmod(power, power, poly)
    if power != x:
        return False
    # gcd(x^(2^(m/p)) - x, poly) must be 1 for every prime p | m.
    for p in _prime_factors(m):
        power = x
        for _ in range(m // p):
            power = poly_mulmod(power, power, poly)
        if poly_gcd(power ^ x, poly) != 1:
            return False
    return True


def _poly_from_exponents(degree: int, exponents: List[int]) -> int:
    """Build ``x^degree + sum(x^e for e in exponents) + 1`` as an integer."""
    poly = (1 << degree) | 1
    for exponent in exponents:
        poly |= 1 << exponent
    return poly


def irreducible_polynomial(degree: int) -> int:
    """Return a deterministic irreducible polynomial of the given ``degree``.

    For degrees present in the built-in low-weight table the tabulated
    polynomial is returned (after a sanity irreducibility check, cached on
    first use).  Other degrees are handled by a deterministic search over
    polynomials of increasing weight, which is fast for the degrees used in
    practice (up to a few thousand bits).

    Raises:
        FieldError: if ``degree < 1``.
    """
    if degree < 1:
        raise FieldError(f"field degree must be >= 1, got {degree}")
    cached = _IRREDUCIBLE_CACHE.get(degree)
    if cached is not None:
        return cached
    if degree in _LOW_WEIGHT_EXPONENTS:
        # The tabulated entries are fixed constants; every entry (including
        # the large degrees) is verified by
        # tests/test_gf_tables.py::test_tabulated_irreducible_polynomials_are_irreducible.
        # Re-running the Rabin test here cost ~1s per process for the large
        # degrees (256, 1024) the equality check uses for big payloads.
        poly = _poly_from_exponents(degree, _LOW_WEIGHT_EXPONENTS[degree])
        _IRREDUCIBLE_CACHE[degree] = poly
        return poly
    poly = _search_irreducible(degree)
    _IRREDUCIBLE_CACHE[degree] = poly
    return poly


def _search_irreducible(degree: int) -> int:
    """Deterministically search for an irreducible polynomial of ``degree``.

    Tries trinomials ``x^degree + x^k + 1`` first, then pentanomials
    ``x^degree + x^a + x^b + x^c + 1`` in lexicographic order.  Every binary
    field of degree ``>= 2`` admits either a trinomial or pentanomial basis in
    all practically relevant cases; as a final fallback the search widens to
    arbitrary odd-weight polynomials.
    """
    for k in range(1, degree):
        poly = (1 << degree) | (1 << k) | 1
        if is_irreducible(poly):
            return poly
    for a in range(3, degree):
        for b in range(2, a):
            for c in range(1, b):
                poly = (1 << degree) | (1 << a) | (1 << b) | (1 << c) | 1
                if is_irreducible(poly):
                    return poly
    # Extremely unlikely fallback: scan all polynomials with constant term 1.
    candidate = (1 << degree) | 1
    limit = 1 << (degree + 1)
    while candidate < limit:  # pragma: no cover - never reached for real degrees
        if is_irreducible(candidate):
            return candidate
        candidate += 2
    raise FieldError(f"no irreducible polynomial of degree {degree} found")  # pragma: no cover


_IRREDUCIBLE_CACHE: Dict[int, int] = {}
