"""Polynomials over GF(2) and irreducible-polynomial construction.

A polynomial over GF(2) is represented as a Python integer whose bit ``i`` is
the coefficient of ``x**i``; e.g. ``0b10011`` is ``x^4 + x + 1``.  The module
provides the basic polynomial ring operations (carry-less multiplication,
Euclidean division, gcd, modular exponentiation) and an irreducibility test
based on the standard criterion

    ``f`` of degree ``m`` is irreducible over GF(2)  iff
    ``x^(2^m) == x  (mod f)``  and
    ``gcd(x^(2^(m/p)) - x, f) == 1`` for every prime ``p`` dividing ``m``.

(Rabin's irreducibility test.)  A table of low-weight irreducible polynomials
for common degrees is included so that field construction is deterministic and
fast for the sizes used throughout the library; degrees not in the table fall
back to a deterministic search.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.exceptions import FieldError

# Low-weight (trinomial / pentanomial) irreducible polynomials over GF(2).
# Keys are degrees; values are the full polynomial including the leading term,
# encoded as integers.  Entries follow the standard tables (e.g. HP-HDL /
# Seroussi "Table of low-weight binary irreducible polynomials").  Exponents
# listed are those of the non-leading, non-constant terms.
_LOW_WEIGHT_EXPONENTS: Dict[int, List[int]] = {
    1: [],
    2: [1],
    3: [1],
    4: [1],
    5: [2],
    6: [1],
    7: [1],
    8: [4, 3, 1],
    9: [1],
    10: [3],
    11: [2],
    12: [3],
    13: [4, 3, 1],
    14: [5],
    15: [1],
    16: [5, 3, 1],
    17: [3],
    18: [3],
    19: [5, 2, 1],
    20: [3],
    21: [2],
    22: [1],
    23: [5],
    24: [4, 3, 1],
    25: [3],
    26: [4, 3, 1],
    27: [5, 2, 1],
    28: [1],
    29: [2],
    30: [1],
    31: [3],
    32: [7, 3, 2],
    33: [10],
    34: [7],
    35: [2],
    36: [9],
    40: [5, 4, 3],
    48: [5, 3, 2],
    56: [7, 4, 2],
    64: [4, 3, 1],
    80: [9, 4, 2],
    96: [10, 9, 6],
    128: [7, 2, 1],
    160: [5, 3, 2],
    192: [15, 11, 5],
    256: [10, 5, 2],
    512: [8, 5, 2],
    1024: [19, 6, 1],
    # Degrees used by the multi-KB payload grids (the equality-check field is
    # GF(2^ceil(L / rho)); see the `large_payloads` spec).  Found with the
    # deterministic search below and verified by Rabin's test; entries of
    # degree > 4096 are spot-checked in the default test run and fully
    # re-verified under REPRO_SLOW_TESTS=1 (tests/test_gf_tables.py).
    1093: [7, 6, 1],
    2048: [19, 14, 13],
    2185: [51],
    2731: [15, 11, 2],
    4096: [27, 15, 1],
    4370: [26, 15, 11],
    5462: [15, 11, 1],
    8192: [9, 5, 2],
    8739: [28, 20, 2],
    10923: [38, 17, 10],
    16384: [43, 13, 6],
    21846: [1],
}


def poly_degree(poly: int) -> int:
    """Return the degree of ``poly``; the zero polynomial has degree ``-1``."""
    return poly.bit_length() - 1


def poly_mul(a: int, b: int) -> int:
    """Carry-less (XOR) multiplication of two GF(2) polynomials.

    Bit-serial; retained as the correctness oracle for
    :func:`poly_mul_windowed` and the table-driven field kernels.
    """
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def window_table(a: int) -> List[int]:
    """The 8-bit window table of ``a``: ``table[w] == poly_mul(a, w)``.

    Built from a 4-bit table in two strides so construction costs ~270 small
    XOR/shift operations instead of 256 incremental doublings.  The table is
    what :func:`poly_mul_windowed` scans one byte at a time;
    :class:`repro.gf.field.GF2m` additionally caches tables per multiplicand
    so repeated products against one value (the row-times-matrix pattern of
    the equality check) skip the build entirely.
    """
    low = [0] * 16
    low[1] = a
    for index in range(2, 16):
        low[index] = (low[index >> 1] << 1) ^ low[index & 1]
    high = [entry << 4 for entry in low]
    return [h ^ l for h in high for l in low]


def poly_mul_windowed(a: int, b: int) -> int:
    """Windowed carry-less multiplication: one shift/XOR per 8-bit window.

    Precomputes the window table of shifted multiples of the longer operand
    (4-bit windows combined pairwise for short operands, a full 8-bit table
    when the scan is long enough to amortise the build) and folds the other
    operand into the product byte by byte.  Identical results to
    :func:`poly_mul`, several times faster for operands beyond a few dozen
    bits, which is what makes ``GF(2^m)`` arithmetic for multi-KB payload
    symbols (degrees in the thousands) affordable.
    """
    if not a or not b:
        return 0
    if a.bit_length() < b.bit_length():
        a, b = b, a
    raw = b.to_bytes((b.bit_length() + 7) // 8, "big")
    result = 0
    if len(raw) >= 48:
        table = window_table(a)
        for byte in raw:
            result = (result << 8) ^ table[byte]
    else:
        low = [0] * 16
        low[1] = a
        for index in range(2, 16):
            low[index] = (low[index >> 1] << 1) ^ low[index & 1]
        for byte in raw:
            result = (result << 8) ^ (low[byte >> 4] << 4) ^ low[byte & 15]
    return result


def stack_stride(degree_a: int, degree_b: int) -> int:
    """Byte-aligned slot stride (bits) for stacking operands of bounded degree.

    Guard-spacing rule: a slot must hold the full carry-less product of one
    packed value (degree ``< degree_a``) with the shared factor (degree
    ``< degree_b``), i.e. ``degree_a + degree_b - 1`` bits, so neighbouring
    slots can never overlap — XOR has no carries, so guard bits are only
    needed against the product's own width, not against accumulation.  The
    stride is rounded up to a whole number of bytes so packing and splitting
    are single ``int.to_bytes`` / ``int.from_bytes`` passes.
    """
    if degree_a < 1 or degree_b < 1:
        raise FieldError("stack_stride requires positive operand degrees")
    return 8 * ((degree_a + degree_b - 1 + 7) // 8)


def stack_slots(values: List[int], stride_bits: int) -> int:
    """Pack ``values`` into one big integer, one ``stride_bits``-wide slot each.

    Slot 0 (the first value) occupies the *most significant* slot, matching
    big-endian byte order, so ``unstack_slots`` is a straight byte slice.
    The caller guarantees every value fits its slot (see :func:`stack_stride`).
    """
    if stride_bits % 8:
        raise FieldError(f"stride must be byte-aligned, got {stride_bits} bits")
    if not values:
        return 0
    width = stride_bits // 8
    return int.from_bytes(
        b"".join(value.to_bytes(width, "big") for value in values), "big"
    )


def unstack_slots(stacked: int, stride_bits: int, count: int) -> List[int]:
    """Split a stacked integer back into its ``count`` per-slot values."""
    if stride_bits % 8:
        raise FieldError(f"stride must be byte-aligned, got {stride_bits} bits")
    if count < 1:
        return []
    width = stride_bits // 8
    raw = stacked.to_bytes(count * width, "big")
    return [
        int.from_bytes(raw[index * width : (index + 1) * width], "big")
        for index in range(count)
    ]


def poly_mul_stacked(values: List[int], factor: int, stride_bits: int) -> List[int]:
    """Multiply every value by a shared ``factor`` in one windowed pass.

    The SIMD-within-a-bigint trick: carry-less multiplication distributes
    over concatenation, so ``k`` operands packed at ``stride_bits`` spacing
    (wide enough for each product, per :func:`stack_stride`) times ``factor``
    is a *single* :func:`poly_mul_windowed` call whose result splits back
    into the ``k`` raw (unreduced) products.  Equivalent to
    ``[poly_mul(v, factor) for v in values]``, against which it is
    property-tested; callers reduce the raw products afterwards (usually via
    :func:`poly_reduce_stacked` to amortise the fold pass too).
    """
    if not values:
        return []
    if factor == 0:
        return [0] * len(values)
    stacked = stack_slots(values, stride_bits)
    return unstack_slots(poly_mul_windowed(stacked, factor), stride_bits, len(values))


#: (degree, stride_bits, count) -> (low mask, high mask) for the stacked fold.
_STACK_MASK_CACHE: Dict[Tuple[int, int, int], Tuple[int, int]] = {}


def _stack_masks(degree: int, stride_bits: int, count: int) -> Tuple[int, int]:
    """Repeating per-slot masks: low ``degree`` bits and the overflow above them."""
    key = (degree, stride_bits, count)
    cached = _STACK_MASK_CACHE.get(key)
    if cached is None:
        low_slot = (1 << degree) - 1
        high_slot = ((1 << (stride_bits - degree)) - 1) << degree
        low = 0
        high = 0
        for _ in range(count):
            low = (low << stride_bits) | low_slot
            high = (high << stride_bits) | high_slot
        cached = _STACK_MASK_CACHE[key] = (low, high)
    return cached


def poly_reduce_stacked(
    stacked: int, table: ReductionTable, stride_bits: int, count: int
) -> int:
    """Reduce every slot of a stacked raw product in whole-integer folds.

    The same ``x^m == g`` folding as :func:`poly_reduce`, but applied to all
    ``count`` slots at once: one masked extraction pulls every slot's
    overflow down to its slot base, and each fold shift (``deg(g) <= m/2``,
    enforced by :func:`reduction_table`) keeps the folded bits inside their
    own slot because the stride leaves ``>= m - 1`` guard bits above the low
    ``m``.  Returns the still-stacked reduced value (every slot ``< 2^m``);
    equivalent to reducing each slot separately with :func:`poly_reduce`.
    """
    degree, _mask, exponents = table
    low_mask, high_mask = _stack_masks(degree, stride_bits, count)
    high = (stacked & high_mask) >> degree
    while high:
        stacked &= low_mask
        for exponent in exponents:
            stacked ^= high << exponent
        high = ((stacked & high_mask)) >> degree
    return stacked


def _build_square_bytes() -> List[bytes]:
    """Little-endian 16-bit bit-spreads of every byte (squaring over GF(2))."""
    table: List[bytes] = []
    for byte in range(256):
        spread = 0
        for bit in range(8):
            if byte & (1 << bit):
                spread |= 1 << (2 * bit)
        table.append(spread.to_bytes(2, "little"))
    return table


#: byte -> 2-byte spread used by :func:`poly_square` (squaring interleaves
#: each bit with a zero, so it is a per-byte table lookup, not a multiply).
_SQUARE_BYTES: List[bytes] = _build_square_bytes()


def poly_square(a: int) -> int:
    """Squaring over GF(2): spread every bit of ``a`` apart with zeros.

    Equivalent to ``poly_mul(a, a)`` but linear-time: the square of a GF(2)
    polynomial has no cross terms, so it is a pure bit interleave done here
    one byte at a time through a precomputed spread table.
    """
    if not a:
        return 0
    raw = a.to_bytes((a.bit_length() + 7) // 8, "little")
    return int.from_bytes(b"".join(map(_SQUARE_BYTES.__getitem__, raw)), "little")


# --------------------------------------------------------- bit-spread multiply
#
# Kronecker-substitution carry-less multiplication: spread each operand's bits
# ``factor`` positions apart (``factor`` a power of two, wide enough that no
# convolution coefficient can reach ``2^factor``), multiply the spread
# operands with native ``int.__mul__`` — integer-product digit ``t`` is then
# exactly the number of coefficient pairs hitting ``x^t``, carries land only
# in guard bits — and read the XOR convolution off the count parities with one
# mask-and-compact pass.  :func:`poly_square` is the ``factor == 2`` special
# case without the multiply (a square has no cross terms, so every count is 0
# or 1 and the spread *is* the product).

#: Spread factor -> byte-to-``factor``-byte little-endian spread table.  The
#: squaring table above is exactly the ``factor == 2`` entry.
_SPREAD_BYTES_CACHE: Dict[int, List[bytes]] = {2: _SQUARE_BYTES}

#: byte (with only even bits possibly set) -> its 4-bit even-bit gather; one
#: halving pass of :func:`bit_compact`.
_COMPACT_EVEN = bytes(
    ((b >> 0) & 1) | (((b >> 2) & 1) << 1) | (((b >> 4) & 1) << 2) | (((b >> 6) & 1) << 3)
    for b in range(256)
)

#: factor -> (mask, capacity_bytes): a mask keeping only bits at positions
#: ``factor * t``, grown geometrically on demand (masking with a longer mask
#: is harmless, so one cached mask per factor serves every product size).
_SPREAD_MASKS: Dict[int, Tuple[int, int]] = {}


def spread_table(factor: int) -> List[bytes]:
    """The byte-spread table for ``factor``: bit ``i`` of a byte -> bit ``factor * i``.

    Raises:
        FieldError: if ``factor`` is not a power of two ``>= 2`` (the
            compact pass gathers bits by repeated halving, so only power-of-
            two spacings can be walked back down).
    """
    table = _SPREAD_BYTES_CACHE.get(factor)
    if table is None:
        if factor < 2 or factor & (factor - 1):
            raise FieldError(f"spread factor must be a power of two >= 2, got {factor}")
        table = []
        for byte in range(256):
            spread = 0
            for bit in range(8):
                if byte & (1 << bit):
                    spread |= 1 << (factor * bit)
            table.append(spread.to_bytes(factor, "little"))
        _SPREAD_BYTES_CACHE[factor] = table
    return table


def bit_spread(a: int, factor: int) -> int:
    """Spread ``a``'s bits ``factor`` apart: bit ``i`` -> bit ``factor * i``.

    One byte-table lookup per operand byte (all C-speed ``bytes`` machinery),
    generalising the fixed 2x spread of :func:`poly_square`.
    """
    if not a:
        return 0
    table = spread_table(factor)
    raw = a.to_bytes((a.bit_length() + 7) // 8, "little")
    return int.from_bytes(b"".join(map(table.__getitem__, raw)), "little")


def bit_compact(value: int, factor: int) -> int:
    """Gather bits at positions ``factor * t`` down to ``t`` (undo :func:`bit_spread`).

    ``value`` must have set bits only at multiples of ``factor`` (callers mask
    first, see :func:`compact_spread_product`).  Each halving pass gathers the
    even-position bits of every byte through a 256-entry translation table and
    re-interleaves the nibbles, so the whole compact is ``log2(factor)``
    C-speed passes regardless of operand size.
    """
    while factor > 1:
        length = (value.bit_length() + 7) // 8
        if length & 1:
            length += 1
        raw = value.to_bytes(length, "little")
        gathered = raw.translate(_COMPACT_EVEN)
        low = int.from_bytes(gathered[0::2], "little")
        high = int.from_bytes(gathered[1::2], "little")
        value = low | (high << 4)
        factor >>= 1
    return value


def _spread_mask(factor: int, nbytes: int) -> int:
    """A mask with bits at positions ``factor * t`` covering ``>= nbytes`` bytes."""
    cached = _SPREAD_MASKS.get(factor)
    if cached is not None and cached[1] >= nbytes:
        return cached[0]
    capacity = 1024
    while capacity < nbytes:
        capacity <<= 1
    if factor >= 8:
        pattern = b"\x01" + b"\x00" * (factor // 8 - 1)
        repeats = -(-capacity // len(pattern))
    else:
        pattern = bytes([0x55 if factor == 2 else 0x11])
        repeats = capacity
    mask = int.from_bytes(pattern * repeats, "little")
    _SPREAD_MASKS[factor] = (mask, capacity)
    return mask


def spread_factor_for(min_bits: int) -> int:
    """The smallest usable spread factor for operands where one side has
    ``<= min_bits`` bits.

    Every convolution coefficient counts at most ``min(popcount(a),
    popcount(b)) <= min_bits`` pairs, so a power-of-two slot width ``s`` with
    ``2^s > min_bits`` guarantees the native integer product's carries never
    escape their guard slot.
    """
    factor = 2
    while (1 << factor) <= min_bits:
        factor <<= 1
    return factor


def compact_spread_product(product: int, factor: int) -> int:
    """Extract the carry-less product from a spread-domain integer product.

    Masks the count parities (bits at multiples of ``factor``) and compacts
    them back to unit spacing.
    """
    if not product:
        return 0
    nbytes = (product.bit_length() + 7) // 8
    return bit_compact(product & _spread_mask(factor, nbytes), factor)


def poly_mul_spread(a: int, b: int, factor: int | None = None) -> int:
    """Carry-less multiplication via bit-spreading and one native multiply.

    Identical results to :func:`poly_mul` / :func:`poly_mul_windowed` (against
    which it is property-tested).  When ``factor`` is omitted it is chosen
    from the shorter operand's bit length (:func:`spread_factor_for`).  The
    asymptotics ride CPython's native big-integer multiply; see
    :mod:`repro.gf.backends` for where this wins and loses in practice.
    """
    if not a or not b:
        return 0
    if factor is None:
        factor = spread_factor_for(min(a.bit_length(), b.bit_length()))
    return compact_spread_product(bit_spread(a, factor) * bit_spread(b, factor), factor)


#: (degree, mask, fold shift amounts): see :func:`reduction_table`.
ReductionTable = Tuple[int, int, Tuple[int, ...]]

#: Reduction tables are only built for moduli whose non-leading part is this
#: sparse; denser moduli fall back to Euclidean division.
_REDUCTION_MAX_WEIGHT = 12


def reduction_table(modulus: int) -> ReductionTable | None:
    """Precomputed chunked-reduction table for a fixed low-weight modulus.

    For ``modulus = x^m + g`` the identity ``x^m == g  (mod modulus)`` lets a
    product ``P`` be reduced by folding its overflow ``H = P >> m`` back in as
    ``(P mod x^m) xor H * g``; when ``g`` is sparse, ``H * g`` is just a few
    shifted copies of ``H``.  The returned table is ``(m, 2^m - 1, exponents
    of g)``.  Returns ``None`` when the modulus is too dense or its ``g``
    part too high-degree for the fold to converge quickly (callers then use
    :func:`poly_mod`).  All tabulated and searched irreducible polynomials in
    this module are trinomials/pentanomials, so the fast path is the norm.
    """
    degree = poly_degree(modulus)
    if degree < 1:
        return None
    tail = modulus ^ (1 << degree)
    if tail == 0 or tail.bit_count() > _REDUCTION_MAX_WEIGHT:
        return None
    if poly_degree(tail) > degree // 2:
        # Each fold must strip at least half the overflow, so reduction of a
        # full product (degree <= 2m - 2) finishes in <= 3 folds.
        return None
    exponents = []
    while tail:
        lowest = tail & -tail
        exponents.append(lowest.bit_length() - 1)
        tail ^= lowest
    return degree, (1 << degree) - 1, tuple(exponents)


def poly_reduce(value: int, table: ReductionTable) -> int:
    """Reduce ``value`` modulo the fixed modulus described by ``table``.

    Chunked reduction: repeatedly fold the overflow above ``x^m`` back into
    the low part through the precomputed shift amounts.  Identical to
    ``poly_mod(value, modulus)``; tested against it property-style.
    """
    degree, mask, exponents = table
    high = value >> degree
    while high:
        value &= mask
        for exponent in exponents:
            value ^= high << exponent
        high = value >> degree
    return value


def poly_divmod(a: int, b: int) -> tuple[int, int]:
    """Euclidean division of polynomial ``a`` by ``b`` over GF(2).

    Returns:
        ``(quotient, remainder)`` with ``a == quotient * b xor remainder`` and
        ``deg(remainder) < deg(b)``.

    Raises:
        FieldError: if ``b`` is the zero polynomial.
    """
    if b == 0:
        raise FieldError("polynomial division by zero")
    deg_b = poly_degree(b)
    quotient = 0
    remainder = a
    while poly_degree(remainder) >= deg_b:
        shift = poly_degree(remainder) - deg_b
        quotient ^= 1 << shift
        remainder ^= b << shift
    return quotient, remainder


def poly_mod(a: int, b: int) -> int:
    """Return ``a mod b`` in the polynomial ring over GF(2)."""
    return poly_divmod(a, b)[1]


def poly_gcd(a: int, b: int) -> int:
    """Greatest common divisor of two GF(2) polynomials (monic by nature)."""
    while b:
        a, b = b, poly_mod(a, b)
    return a


def poly_mulmod(a: int, b: int, modulus: int) -> int:
    """Return ``a * b mod modulus`` over GF(2).

    Uses the windowed multiply (squaring shortcut when ``a == b``) plus
    chunked reduction when the modulus is sparse enough, falling back to the
    bit-serial multiply-and-divide otherwise.
    """
    table = reduction_table(modulus)
    if table is None:
        return poly_mod(poly_mul(a, b), modulus)
    product = poly_square(a) if a == b else poly_mul_windowed(a, b)
    return poly_reduce(product, table)


def poly_powmod(base: int, exponent: int, modulus: int) -> int:
    """Return ``base ** exponent mod modulus`` over GF(2) by square-and-multiply."""
    result = 1
    base = poly_mod(base, modulus)
    while exponent:
        if exponent & 1:
            result = poly_mulmod(result, base, modulus)
        base = poly_mulmod(base, base, modulus)
        exponent >>= 1
    return result


def _prime_factors(n: int) -> Iterable[int]:
    """Yield the distinct prime factors of ``n`` in increasing order."""
    factor = 2
    while factor * factor <= n:
        if n % factor == 0:
            yield factor
            while n % factor == 0:
                n //= factor
        factor += 1
    if n > 1:
        yield n


def _sqrmod(value: int, modulus: int, table: ReductionTable | None) -> int:
    """One modular squaring step, through the fast path when available."""
    if table is not None:
        return poly_reduce(poly_square(value), table)
    return poly_mod(poly_square(value), modulus)


def is_irreducible(poly: int) -> bool:
    """Return ``True`` iff ``poly`` is irreducible over GF(2).

    Uses Rabin's irreducibility test.  Polynomials of degree 0 (constants) are
    not considered irreducible; degree-1 polynomials always are.  The repeated
    squarings ``x -> x^2 -> x^4 -> ...`` run through :func:`poly_square` and
    the chunked reduction, which keeps the test usable for the multi-thousand
    bit degrees the large-payload equality check works in.
    """
    m = poly_degree(poly)
    if m <= 0:
        return False
    if m == 1:
        return True
    table = reduction_table(poly)
    # x^(2^m) mod poly must equal x.
    x = 0b10
    power = x
    for _ in range(m):
        power = _sqrmod(power, poly, table)
    if power != x:
        return False
    # gcd(x^(2^(m/p)) - x, poly) must be 1 for every prime p | m.
    for p in _prime_factors(m):
        power = x
        for _ in range(m // p):
            power = _sqrmod(power, poly, table)
        if poly_gcd(power ^ x, poly) != 1:
            return False
    return True


def _has_small_degree_factor(poly: int, depth: int = 14) -> bool:
    """Whether ``poly`` provably has an irreducible factor of degree ``<= depth``.

    ``x^(2^k) - x`` is the product of all irreducibles whose degree divides
    ``k``; accumulating ``prod_k (x^(2^k) - x) mod poly`` for ``k`` in the
    upper half of ``1..depth`` covers every degree up to ``depth`` (each small
    ``d`` divides some ``k`` in that range) with a single gcd at the end.
    Used as a cheap pre-filter by the irreducible search: a full Rabin test
    costs ``deg(poly)`` squarings even on a reducible candidate, while ~96% of
    random candidates are rejected here after ``depth`` squarings.
    """
    m = poly_degree(poly)
    if m <= depth:
        return False
    table = reduction_table(poly)
    x = 0b10
    power = x
    product = 1
    for k in range(1, depth + 1):
        power = _sqrmod(power, poly, table)
        if 2 * k > depth:
            term = power ^ x
            if table is not None:
                product = poly_reduce(poly_mul_windowed(product, term), table)
            else:
                product = poly_mod(poly_mul_windowed(product, term), poly)
    if product == 0:
        return True
    return poly_gcd(product, poly) != 1


def _poly_from_exponents(degree: int, exponents: List[int]) -> int:
    """Build ``x^degree + sum(x^e for e in exponents) + 1`` as an integer."""
    poly = (1 << degree) | 1
    for exponent in exponents:
        poly |= 1 << exponent
    return poly


def irreducible_polynomial(degree: int) -> int:
    """Return a deterministic irreducible polynomial of the given ``degree``.

    For degrees present in the built-in low-weight table the tabulated
    polynomial is returned (after a sanity irreducibility check, cached on
    first use).  Other degrees are handled by a deterministic search over
    polynomials of increasing weight, which is fast for the degrees used in
    practice (up to a few thousand bits).

    Raises:
        FieldError: if ``degree < 1``.
    """
    if degree < 1:
        raise FieldError(f"field degree must be >= 1, got {degree}")
    cached = _IRREDUCIBLE_CACHE.get(degree)
    if cached is not None:
        return cached
    if degree in _LOW_WEIGHT_EXPONENTS:
        # The tabulated entries are fixed constants; every entry (including
        # the large degrees) is verified by
        # tests/test_gf_tables.py::test_tabulated_irreducible_polynomials_are_irreducible.
        # Re-running the Rabin test here cost ~1s per process for the large
        # degrees (256, 1024) the equality check uses for big payloads.
        poly = _poly_from_exponents(degree, _LOW_WEIGHT_EXPONENTS[degree])
        _IRREDUCIBLE_CACHE[degree] = poly
        return poly
    poly = _search_irreducible(degree)
    _IRREDUCIBLE_CACHE[degree] = poly
    return poly


def _search_irreducible(degree: int) -> int:
    """Deterministically search for an irreducible polynomial of ``degree``.

    Tries trinomials ``x^degree + x^k + 1`` first, then pentanomials
    ``x^degree + x^a + x^b + x^c + 1`` in lexicographic order.  Every binary
    field of degree ``>= 2`` admits either a trinomial or pentanomial basis in
    all practically relevant cases; as a final fallback the search widens to
    arbitrary odd-weight polynomials.  Candidates are screened with the
    small-degree-factor pre-filter before paying for a full Rabin test, which
    makes the search tractable even for degrees in the tens of thousands.
    """
    if degree % 8 != 0:
        # Swan's theorem: a trinomial whose degree is divisible by 8 has an
        # even number of irreducible factors, hence is never irreducible —
        # skip the whole trinomial scan for those degrees.
        for k in range(1, degree):
            poly = (1 << degree) | (1 << k) | 1
            if not _has_small_degree_factor(poly) and is_irreducible(poly):
                return poly
    for a in range(3, degree):
        for b in range(2, a):
            for c in range(1, b):
                poly = (1 << degree) | (1 << a) | (1 << b) | (1 << c) | 1
                if not _has_small_degree_factor(poly) and is_irreducible(poly):
                    return poly
    # Extremely unlikely fallback: scan all polynomials with constant term 1.
    candidate = (1 << degree) | 1
    limit = 1 << (degree + 1)
    while candidate < limit:  # pragma: no cover - never reached for real degrees
        if is_irreducible(candidate):
            return candidate
        candidate += 2
    raise FieldError(f"no irreducible polynomial of degree {degree} found")  # pragma: no cover


_IRREDUCIBLE_CACHE: Dict[int, int] = {}
