"""Finite-field substrate: exact arithmetic over ``GF(2^m)``.

The equality-check algorithm of the paper operates on symbols drawn from
``GF(2^(L / rho_k))`` where ``L`` is the broadcast input size in bits.  Because
``L`` can be large, the field degree is not bounded by machine-word sizes;
this package implements exact arithmetic on Python integers interpreted as
polynomials over GF(2).

Performance notes:
    Fields of degree ``m <= 16`` lazily build discrete log/antilog/inverse
    lookup tables on first multiplicative use; the tables are shared across
    all instances of the same ``(degree, modulus)`` field through a
    module-level cache, and :func:`repro.gf.field.get_field` additionally
    canonicalises the field *instances* themselves.  The dense-matrix kernels
    in :mod:`repro.gf.matrix` bind those tables to local names inside their
    inner loops and construct results through a trusted (validation-free)
    internal constructor, which makes matrix products and Gaussian
    elimination over table-backed fields an order of magnitude faster than
    the polynomial path (see ``benchmarks/bench_gf_kernels.py``).  Degrees
    above 16 run on the windowed big-field kernels: carry-less multiplication
    through cached 8-bit window tables, linear-time squaring, chunked modular
    reduction against a per-field reduction table, and an inlined
    extended-Euclid inverse (see ``benchmarks/bench_large_field.py``).  The
    original bit-serial polynomial arithmetic is retained on every field as
    the correctness oracle for tests.

Kernel backends:
    The raw carry-less multiply behind every big-field operation is pluggable
    through the registry in :mod:`repro.gf.backends`.  Four backends ship:
    ``bitserial`` (the frozen oracle), ``windowed`` (the default below degree
    4096), ``bitspread`` (guard-bit Kronecker substitution onto one native
    ``int.__mul__``) and ``numpy`` (FFT-based carry-less convolution,
    auto-selected from degree 4096 when numpy is importable).  Selection
    happens once per field at construction — explicit
    ``get_field(degree, kernel_backend=...)`` argument beats the
    ``REPRO_GF_BACKEND`` environment variable beats the degree-based
    auto-crossover — and is sticky for the cached field instance.
    ``GF2m.describe()`` reports the choice.  To add a backend, subclass
    ``KernelBackend``, implement ``clmul`` (and optionally the vector hooks),
    and call ``register_backend``; the conformance suite in
    ``tests/test_gf_backends.py`` automatically pits every registered backend
    against the bit-serial oracles.

Public surface:

* :class:`repro.gf.field.GF2m` — a field of characteristic 2 and arbitrary
  degree ``m >= 1``; :func:`repro.gf.field.get_field` — shared cached
  instances per ``(degree, modulus)``.
* :class:`repro.gf.matrix.GFMatrix` — dense matrices over such a field with
  multiplication, rank, determinant, inversion, solving, and random sampling.
* :mod:`repro.gf.polynomials` — irreducible-polynomial tables and search.
* :mod:`repro.gf.symbols` — packing of bit strings into symbol vectors and
  back, as used to split an ``L``-bit value into ``rho`` field symbols.
"""

from repro.gf.field import GF2m, get_field
from repro.gf.matrix import GFMatrix
from repro.gf.polynomials import irreducible_polynomial, is_irreducible
from repro.gf.symbols import bits_to_symbols, bytes_to_symbols, symbols_to_bytes

__all__ = [
    "GF2m",
    "get_field",
    "GFMatrix",
    "irreducible_polynomial",
    "is_irreducible",
    "bits_to_symbols",
    "bytes_to_symbols",
    "symbols_to_bytes",
]
