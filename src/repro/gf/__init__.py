"""Finite-field substrate: exact arithmetic over ``GF(2^m)``.

The equality-check algorithm of the paper operates on symbols drawn from
``GF(2^(L / rho_k))`` where ``L`` is the broadcast input size in bits.  Because
``L`` can be large, the field degree is not bounded by machine-word sizes;
this package therefore implements table-free, exact arithmetic on Python
integers interpreted as polynomials over GF(2).

Public surface:

* :class:`repro.gf.field.GF2m` — a field of characteristic 2 and arbitrary
  degree ``m >= 1``.
* :class:`repro.gf.matrix.GFMatrix` — dense matrices over such a field with
  multiplication, rank, determinant, inversion, solving, and random sampling.
* :mod:`repro.gf.polynomials` — irreducible-polynomial tables and search.
* :mod:`repro.gf.symbols` — packing of bit strings into symbol vectors and
  back, as used to split an ``L``-bit value into ``rho`` field symbols.
"""

from repro.gf.field import GF2m
from repro.gf.matrix import GFMatrix
from repro.gf.polynomials import irreducible_polynomial, is_irreducible
from repro.gf.symbols import bits_to_symbols, bytes_to_symbols, symbols_to_bytes

__all__ = [
    "GF2m",
    "GFMatrix",
    "irreducible_polynomial",
    "is_irreducible",
    "bits_to_symbols",
    "bytes_to_symbols",
    "symbols_to_bytes",
]
