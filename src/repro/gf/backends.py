"""Pluggable carry-less multiplication kernel backends for big ``GF(2^m)`` fields.

Every field of degree > 16 runs its carry-less products through a *kernel
backend* selected at construction time (:func:`create_backend`, called from
``GF2m.__init__`` / :func:`repro.gf.field.get_field`).  A backend supplies the
raw (unreduced) product primitive — scalar and stacked — and may additionally
take over whole vector/matrix operations; everything downstream (chunked
modular reduction, slot packing, the protocol) is backend-agnostic, and every
backend computes bit-identical values, so swapping backends can never change
experiment results, only their wall-clock cost.

Registered backends:

``bitserial``
    The frozen shift/XOR oracle (:func:`repro.gf.polynomials.poly_mul`).
    Never selected automatically; exists so the conformance suite and the
    benchmarks always have the reference implementation addressable by name.

``windowed``
    The PR 4/5 kernels: cached 8-bit window tables scanned byte-by-byte,
    stacked guard-spaced batches, fused vector-matrix passes.  The default
    for every big field below the numpy crossover degree.

``bitspread``
    Kronecker-substitution multiply on native big integers: both operands are
    bit-spread ``factor`` positions apart (:func:`polynomials.bit_spread`),
    multiplied with one ``int.__mul__``, and the XOR convolution read back
    with a mask-and-compact pass.  Spread operands are cached per field under
    a byte-accurate budget.  On CPython's 30-bit-digit Karatsuba bignum
    multiply the ``factor``-fold operand blowup costs ``factor**1.58`` in the
    multiply, which outweighs the windowed scan at every degree this repo
    reaches — so this backend is a correctness/portability kernel (it wins on
    GMP-class interpreter builds) and is never selected automatically here;
    the measured crossover is recorded by ``benchmarks/bench_kernel_backends``.

``numpy``
    Auto-detected.  Carry-less products as real convolutions: operands unpack
    to 0/1 float vectors, multiply under ``rfft``/``irfft``, and the product
    coefficients' parities are exact because every convolution count is at
    most ``m`` — far inside float64's 2^53 integer range.  The win is the
    batched ``vecmat`` encode: one forward FFT per symbol, a cached (budget
    permitting) or streamed spectrum per matrix row, one inverse FFT per
    column — this is what pushes the ``huge_payloads`` grid to 256 KB values.
    Selected automatically for degrees >= :data:`NUMPY_MIN_DEGREE`.

Selection precedence: an explicit ``kernel_backend=`` argument, then the
``REPRO_GF_BACKEND`` environment variable, then the static crossover policy
(:func:`auto_backend_name`).  The decision is made once per field and —
because :func:`repro.gf.field.get_field` canonicalises instances — is sticky
for the life of the process.

Adding a backend: subclass :class:`KernelBackend`, implement ``clmul`` (and
optionally ``clmul_stacked`` / ``vecmat`` / ``dot_vec`` / ``mul_vec`` /
``cache_stats`` / ``clear_caches``), then call :func:`register_backend`.  The
conformance tests in ``tests/test_gf_backends.py`` run against every
registered name, so a new backend is property-tested against the bit-serial
oracles for free.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.exceptions import FieldError
from repro.gf.polynomials import (
    bit_spread,
    compact_spread_product,
    poly_mul,
    spread_factor_for,
)

try:  # pragma: no cover - exercised implicitly by backend availability
    import numpy as _np
except Exception:  # pragma: no cover - the container always has numpy
    _np = None

#: Environment variable overriding backend selection for newly built fields.
ENV_BACKEND = "REPRO_GF_BACKEND"

#: Static crossover: degrees at/above this auto-select the ``numpy`` backend
#: (when importable).  Measured on the reference box (CPython 3.11, pocketfft)
#: by ``benchmarks/bench_kernel_backends.py``: the FFT encode overtakes the
#: stacked windowed pass between degrees 2048 and 4096 and is >= 3x from 4096.
NUMPY_MIN_DEGREE = 4096

#: Byte budget for the bitspread backend's per-field spread-operand cache.
SPREAD_CACHE_BYTES = 8 << 20

#: Byte budget for the numpy backend's per-field operand-spectrum cache.
FFT_CACHE_BYTES = 8 << 20

#: Largest per-matrix spectrum tensor (``rho x cols x K`` complex128) the
#: numpy backend will cache on a matrix; bigger encodes stream the matrix
#: spectra row-by-row instead (same values, no resident tensor).
FFT_MATRIX_CACHE_BYTES = 48 << 20

#: Degree at/above which the numpy backend computes *scalar* products by FFT;
#: below it the windowed byte scan is faster (measured) and is delegated to.
FFT_SCALAR_MIN_DEGREE = 16384


class KernelBackend:
    """Base class: the raw carry-less product primitive behind one field.

    Subclasses override :meth:`clmul` (mandatory) and any of the optional
    batched hooks.  A hook returning ``None`` means "no opinion": the caller
    falls through to the generic windowed/stacked code path.  All hooks must
    return exactly the values the frozen oracles produce.
    """

    #: Registry name; subclasses must override.
    name = "abstract"

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can run in the current environment."""
        return True

    def __init__(self, field) -> None:
        self.field = field

    # -- mandatory primitive ------------------------------------------------
    def clmul(self, a: int, b: int) -> int:
        """The raw (unreduced) carry-less product of ``a`` and ``b``."""
        raise NotImplementedError

    # -- optional batched hooks --------------------------------------------
    def clmul_stacked(self, stacked: int, factor: int, packed_bytes: int) -> int:
        """Multiply a guard-spaced stacked batch by ``factor`` (raw result).

        Carry-less multiplication distributes over slot concatenation, so the
        default is simply :meth:`clmul` on the stacked integer.
        """
        return self.clmul(stacked, factor)

    def vecmat(self, matrix, vector: Sequence[int]) -> Optional[List[int]]:
        """Reduced ``vector @ matrix`` for a big field, or ``None`` to decline."""
        return None

    def dot_vec(self, left: Sequence[int], right: Sequence[int]) -> Optional[int]:
        """Reduced inner product, or ``None`` to decline."""
        return None

    def mul_vec(self, left: Sequence[int], right: Sequence[int]) -> Optional[List[int]]:
        """Reduced component-wise product, or ``None`` to decline."""
        return None

    # -- introspection ------------------------------------------------------
    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-cache counters (hits/misses/evictions/bytes) for this backend."""
        return {}

    def clear_caches(self) -> None:
        """Drop operand caches (the runner calls this per topology switch)."""

    def crossover(self) -> Dict[str, object]:
        """The per-field kernel decisions, for ``GF2m.describe()``."""
        return {}

    def _stacked_vecmat(self, matrix, vector: Sequence[int]) -> List[int]:
        """Generic stacked ``vector @ matrix`` riding this backend's primitive.

        Mirrors the fused windowed pass' structure — per column window, XOR
        the raw stacked products of every non-zero symbol, reduce once — but
        each product goes through :meth:`clmul_stacked`, so any backend gets
        the whole vector/matrix API by implementing only the primitive.
        """
        field = self.field
        width = field._stride // 8
        sizes, stacked_rows = matrix._stacked_rows()
        stacked_mul = self.clmul_stacked
        result: List[int] = []
        for index, count in enumerate(sizes):
            packed = count * width
            accumulator = 0
            for value, row_windows in zip(vector, stacked_rows):
                if value:
                    stacked = row_windows[index]
                    if stacked:
                        accumulator ^= stacked_mul(stacked, value, packed)
            if accumulator:
                result.extend(field._reduce_stacked(accumulator, count))
            else:
                result.extend([0] * count)
        return result


class BitSerialBackend(KernelBackend):
    """The frozen shift/XOR oracle, addressable by name for conformance runs."""

    name = "bitserial"

    def clmul(self, a: int, b: int) -> int:
        return poly_mul(a, b)

    def crossover(self) -> Dict[str, object]:
        return {"policy": "oracle (never selected automatically)"}


class WindowedBackend(KernelBackend):
    """The PR 4/5 windowed kernels; the field holds the actual machinery.

    ``GF2m`` binds its own ``_windowed_clmul`` / ``_windowed_stacked_mul``
    directly when this backend is selected (no per-call indirection), and the
    fused vector-matrix scan stays in :meth:`GFMatrix._vecmat_big`; this class
    only gives the machinery its registry name and delegating methods.
    """

    name = "windowed"

    def clmul(self, a: int, b: int) -> int:
        return self.field._windowed_clmul(a, b)

    def clmul_stacked(self, stacked: int, factor: int, packed_bytes: int) -> int:
        return self.field._windowed_stacked_mul(stacked, factor, packed_bytes)

    def crossover(self) -> Dict[str, object]:
        return {"policy": f"default below degree {NUMPY_MIN_DEGREE}"}


class BitSpreadBackend(KernelBackend):
    """Carry-less multiplication on the native big-integer multiplier.

    The spread factor is fixed per field: every product this field ever forms
    has one operand of at most ``degree`` bits (the scalar side, even in the
    stacked case), so convolution counts are bounded by ``degree`` and
    :func:`spread_factor_for` picks the one power-of-two slot width that
    contains them.  Spread operands are cached per field with byte-accurate
    accounting (``sys.getsizeof``) under :data:`SPREAD_CACHE_BYTES` — the
    recurring operands are stacked coding-matrix rows, exactly the access
    pattern of the PR 4/5 window-table caches.
    """

    name = "bitspread"

    def __init__(self, field) -> None:
        super().__init__(field)
        self.factor = spread_factor_for(field.degree)
        self._spread: Dict[int, int] = {}
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def _spread_of(self, value: int) -> int:
        cached = self._spread.get(value)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        cached = bit_spread(value, self.factor)
        cost = sys.getsizeof(cached)
        if self._bytes + cost > SPREAD_CACHE_BYTES:
            self._spread.clear()
            self._bytes = 0
            self._evictions += 1
        self._spread[value] = cached
        self._bytes += cost
        return cached

    def clmul(self, a: int, b: int) -> int:
        if not a or not b:
            return 0
        return compact_spread_product(self._spread_of(a) * self._spread_of(b), self.factor)

    def vecmat(self, matrix, vector: Sequence[int]) -> Optional[List[int]]:
        return self._stacked_vecmat(matrix, vector)

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        return {
            "spread": {
                "entries": len(self._spread),
                "bytes": self._bytes,
                "budget_bytes": SPREAD_CACHE_BYTES,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }
        }

    def clear_caches(self) -> None:
        self._spread.clear()
        self._bytes = 0

    def crossover(self) -> Dict[str, object]:
        return {
            "spread_factor": self.factor,
            "policy": "explicit/env selection only (native multiply is "
            "subquadratic but not GMP-class on this interpreter)",
        }


class NumpyBackend(KernelBackend):
    """FFT convolution kernels over float64, exact by integrality of counts.

    Scalar products below :data:`FFT_SCALAR_MIN_DEGREE` delegate to the
    field's windowed scan (measured faster there); at and above it, and for
    every ``vecmat`` / ``dot_vec`` / ``mul_vec``, products are computed as
    real convolutions.  Convolution coefficients count at most ``min(len(a),
    len(b)) <= m`` bit pairs, and pocketfft's float64 roundoff at these sizes
    is orders of magnitude below the 0.5 rounding threshold, so ``rint``
    recovers the exact counts and their parities are the carry-less product.

    Caches, all per field and byte-accounted:

    * operand spectra for scalar products (:data:`FFT_CACHE_BYTES`);
    * one spectrum tensor per matrix (stored on the matrix, like its stacked
      windows) when it fits :data:`FFT_MATRIX_CACHE_BYTES` — the benchmark
      shapes do, the 256 KB ``huge_payloads`` encodes do not and stream
      row-by-row instead.
    """

    name = "numpy"

    @classmethod
    def available(cls) -> bool:
        return _np is not None

    def __init__(self, field) -> None:
        if _np is None:  # pragma: no cover - guarded by available()
            raise FieldError("numpy kernel backend requested but numpy is not importable")
        super().__init__(field)
        degree = field.degree
        self._mbytes = (degree + 7) // 8
        self._size = self._fft_size(2 * degree - 1)
        self._fcache: Dict[int, object] = {}
        self._fbytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._ctx_hits = 0
        self._ctx_misses = 0
        self._ctx_skips = 0

    @staticmethod
    def _fft_size(minimum: int) -> int:
        """Smallest transform length ``2^k`` or ``3 * 2^k`` >= ``minimum``.

        pocketfft is fast for both shapes; admitting the ``3 * 2^k`` sizes
        saves up to 25% of spectrum traffic over pure powers of two.
        """
        size = 1
        while size < minimum:
            size <<= 1
        if size >= 4 and (3 * size) // 4 >= minimum:
            return (3 * size) // 4
        return size

    # -- bit packing --------------------------------------------------------
    def _bits_of(self, value: int, length: int):
        raw = value.to_bytes((length + 7) // 8, "little")
        return _np.unpackbits(
            _np.frombuffer(raw, dtype=_np.uint8), bitorder="little"
        )[:length].astype(_np.float64)

    def _rows_bits(self, values: Sequence[int], length: int):
        """0/1 float matrix, one ``length``-bit row per value."""
        width = (length + 7) // 8
        raw = b"".join(value.to_bytes(width, "little") for value in values)
        bits = _np.unpackbits(
            _np.frombuffer(raw, dtype=_np.uint8).reshape(len(values), width),
            axis=1,
            bitorder="little",
        )
        return bits[:, :length].astype(_np.float64)

    def _parity_int(self, counts) -> int:
        bits = (counts & 1).astype(_np.uint8)
        return int.from_bytes(
            _np.packbits(bits, bitorder="little").tobytes(), "little"
        )

    # -- scalar product -----------------------------------------------------
    def _spectrum_of(self, value: int):
        cached = self._fcache.get(value)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        spectrum = _np.fft.rfft(self._bits_of(value, value.bit_length()), n=self._size)
        cost = spectrum.nbytes + 64
        if self._fbytes + cost > FFT_CACHE_BYTES:
            self._fcache.clear()
            self._fbytes = 0
            self._evictions += 1
        self._fcache[value] = spectrum
        self._fbytes += cost
        return spectrum

    def _fft_clmul(self, a: int, b: int) -> int:
        product = _np.fft.irfft(self._spectrum_of(a) * self._spectrum_of(b), n=self._size)
        counts = _np.rint(product[: a.bit_length() + b.bit_length() - 1]).astype(_np.int64)
        return self._parity_int(counts)

    def clmul(self, a: int, b: int) -> int:
        if not a or not b:
            return 0
        if self.field.degree < FFT_SCALAR_MIN_DEGREE:
            return self.field._windowed_clmul(a, b)
        return self._fft_clmul(a, b)

    def clmul_stacked(self, stacked: int, factor: int, packed_bytes: int) -> int:
        # Stacked batches keep the windowed scan: the FFT size would have to
        # cover the whole packed window, forfeiting the cached-spectrum reuse
        # that makes the scalar/batched paths win.
        return self.field._windowed_stacked_mul(stacked, factor, packed_bytes)

    # -- batched kernels ----------------------------------------------------
    def _matrix_spectra(self, matrix, size: int):
        """The cached ``(rows, cols, K)`` spectrum tensor, or ``None`` if too big.

        Stored on the matrix itself (like its stacked windows) so it lives
        and dies with the matrix; the budget check is remembered per matrix
        to avoid re-deciding every encode.
        """
        ctx = matrix._kctx
        if ctx is not None and ctx[0] == size:
            if ctx[1] is not None:
                self._ctx_hits += 1
            return ctx[1]
        rows, cols = matrix.rows, matrix.cols
        spectrum_len = size // 2 + 1
        tensor_bytes = rows * cols * spectrum_len * 16
        if tensor_bytes > FFT_MATRIX_CACHE_BYTES:
            self._ctx_skips += 1
            matrix._kctx = (size, None)
            return None
        self._ctx_misses += 1
        tensor = _np.empty((rows, cols, spectrum_len), dtype=_np.complex128)
        degree = self.field.degree
        for index, row in enumerate(matrix._data):
            tensor[index] = _np.fft.rfft(self._rows_bits(row, degree), n=size, axis=1)
        matrix._kctx = (size, tensor)
        return tensor

    def vecmat(self, matrix, vector: Sequence[int]) -> Optional[List[int]]:
        field = self.field
        degree = field.degree
        size = self._size
        cols = matrix.cols
        vf = _np.fft.rfft(self._rows_bits(vector, degree), n=size, axis=1)
        tensor = self._matrix_spectra(matrix, size)
        if tensor is not None:
            acc = _np.einsum("rk,rck->ck", vf, tensor)
        else:
            acc = _np.zeros((cols, size // 2 + 1), dtype=_np.complex128)
            for index, row in enumerate(matrix._data):
                if vector[index]:
                    spectra = _np.fft.rfft(self._rows_bits(row, degree), n=size, axis=1)
                    spectra *= vf[index]
                    acc += spectra
        convolved = _np.fft.irfft(acc, n=size, axis=1)[:, : 2 * degree - 1]
        counts = _np.rint(convolved).astype(_np.int64)
        reduce = field._reduce
        result: List[int] = []
        for column in range(cols):
            raw = self._parity_int(counts[column])
            result.append(reduce(raw) if raw else 0)
        return result

    def dot_vec(self, left: Sequence[int], right: Sequence[int]) -> Optional[int]:
        if not left:
            return 0
        degree = self.field.degree
        size = self._size
        lf = _np.fft.rfft(self._rows_bits(left, degree), n=size, axis=1)
        rf = _np.fft.rfft(self._rows_bits(right, degree), n=size, axis=1)
        acc = _np.einsum("rk,rk->k", lf, rf)
        counts = _np.rint(_np.fft.irfft(acc, n=size)[: 2 * degree - 1]).astype(_np.int64)
        raw = self._parity_int(counts)
        return self.field._reduce(raw) if raw else 0

    def mul_vec(self, left: Sequence[int], right: Sequence[int]) -> Optional[List[int]]:
        if not left:
            return []
        degree = self.field.degree
        size = self._size
        lf = _np.fft.rfft(self._rows_bits(left, degree), n=size, axis=1)
        rf = _np.fft.rfft(self._rows_bits(right, degree), n=size, axis=1)
        lf *= rf
        counts = _np.rint(_np.fft.irfft(lf, n=size, axis=1)[:, : 2 * degree - 1]).astype(_np.int64)
        reduce = self.field._reduce
        out: List[int] = []
        for index in range(len(left)):
            raw = self._parity_int(counts[index])
            out.append(reduce(raw) if raw else 0)
        return out

    # -- introspection ------------------------------------------------------
    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        return {
            "fft_operands": {
                "entries": len(self._fcache),
                "bytes": self._fbytes,
                "budget_bytes": FFT_CACHE_BYTES,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            },
            "fft_matrices": {
                "hits": self._ctx_hits,
                "misses": self._ctx_misses,
                "skips_over_budget": self._ctx_skips,
                "budget_bytes": FFT_MATRIX_CACHE_BYTES,
            },
        }

    def clear_caches(self) -> None:
        self._fcache.clear()
        self._fbytes = 0

    def crossover(self) -> Dict[str, object]:
        return {
            "auto_selected_from_degree": NUMPY_MIN_DEGREE,
            "scalar_fft_from_degree": FFT_SCALAR_MIN_DEGREE,
            "fft_size": self._size,
        }


# ---------------------------------------------------------------- registry

_REGISTRY: Dict[str, Type[KernelBackend]] = {}


def register_backend(cls: Type[KernelBackend], replace: bool = False) -> None:
    """Register a backend class under ``cls.name``.

    Raises:
        FieldError: if the name is already taken and ``replace`` is false.
    """
    name = cls.name
    if not name or name == KernelBackend.name:
        raise FieldError("kernel backends must define a distinct class-level name")
    if name in _REGISTRY and not replace:
        raise FieldError(f"kernel backend {name!r} is already registered")
    _REGISTRY[name] = cls


def backend_names() -> List[str]:
    """All registered backend names, sorted."""
    return sorted(_REGISTRY)


def available_backend_names() -> List[str]:
    """Registered backends usable in this environment, sorted."""
    return [name for name in backend_names() if _REGISTRY[name].available()]


def backend_class(name: str) -> Type[KernelBackend]:
    """Look up a registered backend class.

    Raises:
        FieldError: if the name is unknown.
    """
    cls = _REGISTRY.get(name)
    if cls is None:
        raise FieldError(
            f"unknown kernel backend {name!r}; registered: {', '.join(backend_names())}"
        )
    return cls


def auto_backend_name(degree: int) -> str:
    """The static crossover policy: windowed below, numpy at/above the threshold."""
    if degree >= NUMPY_MIN_DEGREE and NumpyBackend.available():
        return NumpyBackend.name
    return WindowedBackend.name


def resolve_backend_name(degree: int, requested: Optional[str] = None) -> Tuple[str, str]:
    """Resolve the backend name for a new field of ``degree``.

    Precedence: explicit ``requested`` argument, then the
    :data:`ENV_BACKEND` environment variable, then :func:`auto_backend_name`.

    Returns:
        ``(name, selected_by)`` with ``selected_by`` one of ``"explicit"``,
        ``"env"``, ``"auto"``.

    Raises:
        FieldError: if the requested/env name is unknown or unavailable.
    """
    if requested:
        source = "explicit"
        name = requested
    else:
        env = os.environ.get(ENV_BACKEND, "").strip()
        if env:
            source, name = "env", env
        else:
            return auto_backend_name(degree), "auto"
    cls = backend_class(name)
    if not cls.available():
        raise FieldError(
            f"kernel backend {name!r} is registered but unavailable in this "
            f"environment (selected by {source})"
        )
    return name, source


def create_backend(field, requested: Optional[str] = None) -> KernelBackend:
    """Instantiate the backend for ``field`` per the selection precedence."""
    name, source = resolve_backend_name(field.degree, requested)
    backend = backend_class(name)(field)
    backend.selected_by = source
    return backend


def measure_crossover(
    degrees: Sequence[int] = (256, 1024, 4096),
    repeats: int = 3,
) -> Dict[int, Dict[str, float]]:
    """Empirically time one scalar product per backend at each degree.

    Returns ``{degree: {backend_name: best_seconds}}`` over the *available*
    backends (``bitserial`` excluded above degree 4096 — the oracle's cost
    there would dominate the measurement for no information).  Used by
    ``benchmarks/bench_kernel_backends.py`` to record where the static
    :data:`NUMPY_MIN_DEGREE` policy sits against reality on the current box.
    """
    import random

    from repro.gf.field import GF2m

    table: Dict[int, Dict[str, float]] = {}
    for degree in degrees:
        rng = random.Random(degree)
        a = rng.getrandbits(degree) | (1 << (degree - 1))
        b = rng.getrandbits(degree) | (1 << (degree - 1))
        row: Dict[str, float] = {}
        for name in available_backend_names():
            if name == BitSerialBackend.name and degree > 4096:
                continue
            field = GF2m(degree, kernel_backend=name)
            backend = field._kernel
            backend.clmul(a, b)  # warm caches
            best = None
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                backend.clmul(a, b)
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best:
                    best = elapsed
            row[name] = best
        table[degree] = row
    return table


register_backend(BitSerialBackend)
register_backend(WindowedBackend)
register_backend(BitSpreadBackend)
register_backend(NumpyBackend)
