"""Packing of bit strings into vectors of ``GF(2^m)`` symbols and back.

The paper represents the ``L``-bit value received by node ``i`` as a vector
``X_i`` of ``rho_k`` symbols, each of ``L / rho_k`` bits, drawn from
``GF(2^(L / rho_k))``.  Equivalently, Phase 1 splits the value into
``gamma_k`` symbols of ``L / gamma_k`` bits each.  This module implements both
directions of that conversion with deterministic big-endian packing, padding
with zero bits when ``L`` is not an exact multiple of the symbol size (the
paper assumes divisibility "to simplify the presentation"; padding preserves
all the relevant properties and is made explicit here).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.exceptions import FieldError


def bits_to_symbols(value: int, total_bits: int, symbol_bits: int) -> List[int]:
    """Split an integer of ``total_bits`` bits into symbols of ``symbol_bits`` bits.

    The most significant symbol comes first.  If ``total_bits`` is not a
    multiple of ``symbol_bits`` the value is conceptually left-padded with
    zero bits so that the first symbol may be shorter.

    Args:
        value: The value to split; must satisfy ``0 <= value < 2**total_bits``.
        total_bits: Declared length of the value in bits (``>= 1``).
        symbol_bits: Size of each symbol in bits (``>= 1``).

    Returns:
        A list of ``ceil(total_bits / symbol_bits)`` integers, each in
        ``[0, 2**symbol_bits)``.

    Raises:
        FieldError: on invalid sizes or an out-of-range value.
    """
    if total_bits < 1:
        raise FieldError(f"total_bits must be >= 1, got {total_bits}")
    if symbol_bits < 1:
        raise FieldError(f"symbol_bits must be >= 1, got {symbol_bits}")
    if value < 0 or value >= (1 << total_bits):
        raise FieldError(f"value does not fit in {total_bits} bits")
    symbol_count = -(-total_bits // symbol_bits)  # ceil division
    mask = (1 << symbol_bits) - 1
    symbols = []
    for index in range(symbol_count):
        shift = (symbol_count - 1 - index) * symbol_bits
        symbols.append((value >> shift) & mask)
    return symbols


def symbols_to_bits(symbols: Sequence[int], symbol_bits: int) -> int:
    """Inverse of :func:`bits_to_symbols`: reassemble symbols into an integer."""
    if symbol_bits < 1:
        raise FieldError(f"symbol_bits must be >= 1, got {symbol_bits}")
    value = 0
    mask = (1 << symbol_bits) - 1
    for symbol in symbols:
        if symbol < 0 or symbol > mask:
            raise FieldError(f"symbol {symbol} does not fit in {symbol_bits} bits")
        value = (value << symbol_bits) | symbol
    return value


def bytes_to_symbols(payload: bytes, total_bits: int, symbol_bits: int) -> List[int]:
    """Split a byte string (big-endian) of ``total_bits`` declared bits into symbols."""
    value = int.from_bytes(payload, "big") if payload else 0
    if value >= (1 << total_bits):
        raise FieldError(
            f"payload of {len(payload)} bytes does not fit in the declared {total_bits} bits"
        )
    return bits_to_symbols(value, total_bits, symbol_bits)


def symbols_to_bytes(symbols: Sequence[int], symbol_bits: int, total_bits: int) -> bytes:
    """Reassemble symbols into a big-endian byte string of ``ceil(total_bits / 8)`` bytes."""
    value = symbols_to_bits(symbols, symbol_bits)
    symbol_count = len(symbols)
    packed_bits = symbol_count * symbol_bits
    if packed_bits < total_bits:
        raise FieldError(
            f"{symbol_count} symbols of {symbol_bits} bits cannot hold {total_bits} bits"
        )
    # Drop any left padding beyond the declared total size.
    value &= (1 << total_bits) - 1
    return value.to_bytes(-(-total_bits // 8), "big")


def symbol_size_for(total_bits: int, symbol_count: int) -> int:
    """Return the per-symbol bit size used to split ``total_bits`` into ``symbol_count`` symbols.

    This is the ceiling of the division, matching the padding convention of
    :func:`bits_to_symbols`.
    """
    if total_bits < 1:
        raise FieldError(f"total_bits must be >= 1, got {total_bits}")
    if symbol_count < 1:
        raise FieldError(f"symbol_count must be >= 1, got {symbol_count}")
    return -(-total_bits // symbol_count)
