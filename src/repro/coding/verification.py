"""Theorem 1: verifying that a set of coding matrices is *correct*.

A coding scheme is correct (property (EC)) if, whenever two fault-free nodes
hold different values, at least one fault-free node's equality check fails.
Appendix C reduces this to a linear-algebra condition per subgraph
``H`` of ``Omega_k``:  writing ``D_i = X_i - X_{n-f}`` for the per-symbol
differences and stacking the per-edge matrices ``C_e`` into the block matrix
``C_H``, the checks inside ``H`` all pass iff ``D_H C_H = 0``.  The scheme is
correct for ``H`` iff that implies ``D_H = 0``, i.e. iff ``C_H`` has full row
rank ``(|H| - 1) * rho``.  (The paper exhibits an invertible submatrix built
from undirected spanning trees; checking the rank directly is equivalent and
is what this module does.)

The module also provides the quantitative bound of Theorem 1 so benchmarks can
compare the empirical failure rate of random schemes against
``2^(-L/rho) * C(n, n-f) * (n - f - 1) * rho``.
"""

from __future__ import annotations

from fractions import Fraction
from math import comb
from typing import Dict, List, Sequence, Tuple

from repro.coding.coding_matrix import CodingScheme
from repro.exceptions import ProtocolError
from repro.gf.matrix import GFMatrix
from repro.graph.flow_cache import MinCutCache, graph_signature
from repro.graph.network_graph import NetworkGraph
from repro.types import NodeId

#: Process-wide memo of check-matrix rank verdicts.  Repeated Phase 2 / Omega
#: verifications across instances and sweeps used to re-run full Gaussian
#: elimination for structurally identical questions; the verdict is a pure
#: function of (graph structure, subgraph, scheme derivation key), so it is
#: memoised on ``(graph_signature, subgraph nodes, seed, instance, rho,
#: symbol_bits, modulus)`` — the graph signature of the *instance graph*
#: already encodes the dispute-driven edge removals.  Uses the shared
#: :class:`MinCutCache` LRU machinery (stats counters, lifetime counters).
_RANK_CACHE = MinCutCache(max_entries=4096)


def verification_cache_stats() -> Dict[str, object]:
    """Hit/miss counters of the rank-verdict cache (``MinCutCache.stats`` shape)."""
    return _RANK_CACHE.stats()


def clear_verification_cache() -> None:
    """Reset the process-wide rank-verdict cache.

    The engine runner calls this on topology switches next to the other
    structure caches; the ``lifetime_*`` counters survive, so sweeps can
    still report whole-run efficacy.
    """
    _RANK_CACHE.clear()


def build_check_matrix(
    graph: NetworkGraph,
    subgraph_nodes: Sequence[NodeId],
    scheme: CodingScheme,
) -> GFMatrix:
    """Construct ``C_H`` for the subgraph induced by ``subgraph_nodes``.

    Rows are indexed by ``(node index < |H| - 1, symbol index < rho)`` —
    i.e. by the entries of the difference vector ``D_H`` — and there is one
    column per coded symbol sent on an edge of ``H``.  For the edge
    ``e = (u, v)`` and its coding-matrix column ``c``:

    * the block of rows belonging to ``u`` receives ``c`` (unless ``u`` is the
      reference node, the last node of ``H``),
    * the block of rows belonging to ``v`` receives ``-c`` (same exception),

    which is exactly the expansion ``B_e`` of Appendix C (in characteristic 2,
    ``-c = c``).

    Raises:
        ProtocolError: if the subgraph has fewer than two nodes or contains no
            edges (then no check constrains the values at all).
    """
    nodes = sorted(subgraph_nodes)
    if len(nodes) < 2:
        raise ProtocolError("check matrix requires a subgraph with at least two nodes")
    node_index = {node: position for position, node in enumerate(nodes)}
    reference = nodes[-1]
    block_count = len(nodes) - 1
    rho = scheme.rho
    rows = block_count * rho
    subgraph = graph.induced_subgraph(nodes)
    edge_list = list(subgraph.edges())
    total_columns = sum(capacity for _tail, _head, capacity in edge_list)
    if total_columns == 0:
        raise ProtocolError("subgraph contains no edges; equality check cannot constrain it")
    # Fill C_H row-major directly (one block row per (node, symbol) pair and
    # one column per coded symbol) and hand the rows to the trusted
    # constructor — every entry comes straight out of already-validated
    # coding matrices.  Each (block row, column range) pair is written at
    # most once (column ranges are disjoint per edge and tail != head), so
    # the Appendix C XOR-accumulation collapses to whole-row slice
    # assembly: one vector move per coding-matrix row instead of a
    # per-entry loop.
    data: List[List[int]] = [[0] * total_columns for _ in range(rows)]
    base = 0
    for tail, head, capacity in edge_list:
        matrix = scheme.matrix_for((tail, head))
        if matrix.cols != capacity:
            # Slice assembly would silently resize the row on a width
            # mismatch (a hand-built scheme whose matrix disagrees with the
            # edge capacity); fail loudly instead.
            raise ProtocolError(
                f"coding matrix for edge ({tail}, {head}) has {matrix.cols} "
                f"columns but the edge capacity is {capacity}"
            )
        for offset, coding_row in enumerate(matrix.to_lists()):
            if tail != reference:
                data[node_index[tail] * rho + offset][base : base + capacity] = coding_row
            if head != reference:
                data[node_index[head] * rho + offset][base : base + capacity] = coding_row
        base += capacity
    return GFMatrix._trusted(scheme.field, data)


def subgraph_is_constrained(
    graph: NetworkGraph,
    subgraph_nodes: Sequence[NodeId],
    scheme: CodingScheme,
) -> bool:
    """Whether ``C_H`` has full row rank for the given subgraph.

    Full row rank means the only difference vector passing every check is
    zero, i.e. the equality check is sound for this potential fault-free set.
    The verdict is memoised process-wide (see :data:`_RANK_CACHE`): the
    coding matrices are a pure function of ``(seed, instance, edge)`` and the
    subgraph of the instance graph, so structurally identical verifications
    across instances and sweeps skip the Gaussian elimination entirely.
    """
    if not scheme.derived:
        # Hand-built matrices are not a function of (seed, instance); caching
        # their verdicts under the derivation key would alias unrelated
        # schemes.
        matrix = build_check_matrix(graph, subgraph_nodes, scheme)
        return matrix.rank() == matrix.rows
    key = (
        "coding-rank",
        graph_signature(graph),
        tuple(sorted(subgraph_nodes)),
        scheme.seed,
        scheme.instance,
        scheme.rho,
        scheme.symbol_bits,
        scheme.field.modulus,
    )
    cached = _RANK_CACHE.lookup(key)
    if cached is None:
        matrix = build_check_matrix(graph, subgraph_nodes, scheme)
        cached = matrix.rank() == matrix.rows
        _RANK_CACHE.store(key, cached)
    return cached


def verify_coding_scheme(
    graph: NetworkGraph,
    omega_subgraphs: Sequence[Tuple[NodeId, ...]],
    scheme: CodingScheme,
) -> Dict[Tuple[NodeId, ...], bool]:
    """Check property (EC) for every subgraph of ``Omega_k``.

    Returns:
        Mapping from subgraph node tuple to whether its check matrix has full
        rank.  The scheme is correct iff every value is ``True``.
    """
    return {
        tuple(nodes): subgraph_is_constrained(graph, nodes, scheme)
        for nodes in omega_subgraphs
    }


def scheme_is_correct(
    graph: NetworkGraph,
    omega_subgraphs: Sequence[Tuple[NodeId, ...]],
    scheme: CodingScheme,
) -> bool:
    """Whether the coding scheme satisfies property (EC) for all of ``Omega_k``."""
    return all(verify_coding_scheme(graph, omega_subgraphs, scheme).values())


def theorem1_failure_bound(
    node_count: int, max_faults: int, rho: int, symbol_bits: int
) -> Fraction:
    """The paper's upper bound on the probability that a random scheme is *not* correct.

    Theorem 1: correctness holds with probability at least
    ``1 - 2^(-L/rho) * C(n, n-f) * (n - f - 1) * rho``; this function returns
    the complementary bound (clamped to 1), i.e.
    ``min(1, C(n, n-f) * (n - f - 1) * rho / 2^symbol_bits)``.
    """
    if node_count < 1 or max_faults < 0 or rho < 1 or symbol_bits < 1:
        raise ProtocolError("invalid Theorem 1 parameters")
    bound = Fraction(
        comb(node_count, node_count - max_faults) * (node_count - max_faults - 1) * rho,
        2**symbol_bits,
    )
    return min(bound, Fraction(1))
