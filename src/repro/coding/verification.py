"""Theorem 1: verifying that a set of coding matrices is *correct*.

A coding scheme is correct (property (EC)) if, whenever two fault-free nodes
hold different values, at least one fault-free node's equality check fails.
Appendix C reduces this to a linear-algebra condition per subgraph
``H`` of ``Omega_k``:  writing ``D_i = X_i - X_{n-f}`` for the per-symbol
differences and stacking the per-edge matrices ``C_e`` into the block matrix
``C_H``, the checks inside ``H`` all pass iff ``D_H C_H = 0``.  The scheme is
correct for ``H`` iff that implies ``D_H = 0``, i.e. iff ``C_H`` has full row
rank ``(|H| - 1) * rho``.  (The paper exhibits an invertible submatrix built
from undirected spanning trees; checking the rank directly is equivalent and
is what this module does.)

The module also provides the quantitative bound of Theorem 1 so benchmarks can
compare the empirical failure rate of random schemes against
``2^(-L/rho) * C(n, n-f) * (n - f - 1) * rho``.
"""

from __future__ import annotations

from fractions import Fraction
from math import comb
from typing import Dict, List, Sequence, Tuple

from repro.coding.coding_matrix import CodingScheme
from repro.exceptions import ProtocolError
from repro.gf.matrix import GFMatrix
from repro.graph.network_graph import NetworkGraph
from repro.types import NodeId


def build_check_matrix(
    graph: NetworkGraph,
    subgraph_nodes: Sequence[NodeId],
    scheme: CodingScheme,
) -> GFMatrix:
    """Construct ``C_H`` for the subgraph induced by ``subgraph_nodes``.

    Rows are indexed by ``(node index < |H| - 1, symbol index < rho)`` —
    i.e. by the entries of the difference vector ``D_H`` — and there is one
    column per coded symbol sent on an edge of ``H``.  For the edge
    ``e = (u, v)`` and its coding-matrix column ``c``:

    * the block of rows belonging to ``u`` receives ``c`` (unless ``u`` is the
      reference node, the last node of ``H``),
    * the block of rows belonging to ``v`` receives ``-c`` (same exception),

    which is exactly the expansion ``B_e`` of Appendix C (in characteristic 2,
    ``-c = c``).

    Raises:
        ProtocolError: if the subgraph has fewer than two nodes or contains no
            edges (then no check constrains the values at all).
    """
    nodes = sorted(subgraph_nodes)
    if len(nodes) < 2:
        raise ProtocolError("check matrix requires a subgraph with at least two nodes")
    node_index = {node: position for position, node in enumerate(nodes)}
    reference = nodes[-1]
    block_count = len(nodes) - 1
    rho = scheme.rho
    rows = block_count * rho
    subgraph = graph.induced_subgraph(nodes)
    edge_list = list(subgraph.edges())
    total_columns = sum(capacity for _tail, _head, capacity in edge_list)
    if total_columns == 0:
        raise ProtocolError("subgraph contains no edges; equality check cannot constrain it")
    # Fill C_H row-major directly (one block row per (node, symbol) pair and
    # one column per coded symbol), XOR-ing each coding-matrix row into the
    # tail and head blocks, and hand the rows to the trusted constructor —
    # every entry comes straight out of already-validated coding matrices.
    data: List[List[int]] = [[0] * total_columns for _ in range(rows)]
    base = 0
    for tail, head, capacity in edge_list:
        matrix = scheme.matrix_for((tail, head))
        for offset in range(rho):
            coding_row = matrix.row(offset)
            if tail != reference:
                target = data[node_index[tail] * rho + offset]
                for column_index in range(capacity):
                    target[base + column_index] ^= coding_row[column_index]
            if head != reference:
                target = data[node_index[head] * rho + offset]
                for column_index in range(capacity):
                    target[base + column_index] ^= coding_row[column_index]
        base += capacity
    return GFMatrix._trusted(scheme.field, data)


def subgraph_is_constrained(
    graph: NetworkGraph,
    subgraph_nodes: Sequence[NodeId],
    scheme: CodingScheme,
) -> bool:
    """Whether ``C_H`` has full row rank for the given subgraph.

    Full row rank means the only difference vector passing every check is
    zero, i.e. the equality check is sound for this potential fault-free set.
    """
    matrix = build_check_matrix(graph, subgraph_nodes, scheme)
    return matrix.rank() == matrix.rows


def verify_coding_scheme(
    graph: NetworkGraph,
    omega_subgraphs: Sequence[Tuple[NodeId, ...]],
    scheme: CodingScheme,
) -> Dict[Tuple[NodeId, ...], bool]:
    """Check property (EC) for every subgraph of ``Omega_k``.

    Returns:
        Mapping from subgraph node tuple to whether its check matrix has full
        rank.  The scheme is correct iff every value is ``True``.
    """
    return {
        tuple(nodes): subgraph_is_constrained(graph, nodes, scheme)
        for nodes in omega_subgraphs
    }


def scheme_is_correct(
    graph: NetworkGraph,
    omega_subgraphs: Sequence[Tuple[NodeId, ...]],
    scheme: CodingScheme,
) -> bool:
    """Whether the coding scheme satisfies property (EC) for all of ``Omega_k``."""
    return all(verify_coding_scheme(graph, omega_subgraphs, scheme).values())


def theorem1_failure_bound(
    node_count: int, max_faults: int, rho: int, symbol_bits: int
) -> Fraction:
    """The paper's upper bound on the probability that a random scheme is *not* correct.

    Theorem 1: correctness holds with probability at least
    ``1 - 2^(-L/rho) * C(n, n-f) * (n - f - 1) * rho``; this function returns
    the complementary bound (clamped to 1), i.e.
    ``min(1, C(n, n-f) * (n - f - 1) * rho / 2^symbol_bits)``.
    """
    if node_count < 1 or max_faults < 0 or rho < 1 or symbol_bits < 1:
        raise ProtocolError("invalid Theorem 1 parameters")
    bound = Fraction(
        comb(node_count, node_count - max_faults) * (node_count - max_faults - 1) * rho,
        2**symbol_bits,
    )
    return min(bound, Fraction(1))
