"""Local linear coding: the paper's Equality Check machinery (Section 3).

The heart of NAB's efficiency is the Equality Check algorithm: every node
sends, on each outgoing link of capacity ``z_e``, ``z_e`` random linear
combinations (over ``GF(2^(L/rho_k))``) of the ``rho_k`` symbols of the value
it received in Phase 1, and every receiver checks the incoming coded symbols
against its own value.  If any two fault-free nodes hold different values,
at least one fault-free node detects a mismatch (with probability approaching
1 in the random choice of coding matrices — Theorem 1).

* :mod:`repro.coding.omega` — enumeration of the dispute-free
  ``(n - f)``-node subgraphs ``Omega_k`` and the quantity ``U_k`` that bounds
  the coding parameter ``rho_k <= U_k / 2``.
* :mod:`repro.coding.coding_matrix` — deterministic (seeded) generation of the
  per-edge coding matrices ``C_e``, which are part of the algorithm
  specification.
* :mod:`repro.coding.equality_check` — Algorithm 1 itself, run over the
  synchronous network with Byzantine hooks.
* :mod:`repro.coding.verification` — the Theorem 1 check: a coding scheme is
  *correct* iff, for every subgraph ``H`` in ``Omega_k``, the stacked check
  matrix ``C_H`` has full column-difference rank, so that only identical
  values pass all checks.
"""

from repro.coding.coding_matrix import (
    CodingScheme,
    encode_on_edges,
    encode_value,
    generate_coding_scheme,
)
from repro.coding.equality_check import EqualityCheckOutcome, run_equality_check
from repro.coding.omega import (
    compute_rho,
    compute_uk,
    dispute_free_subgraphs,
)
from repro.coding.verification import (
    build_check_matrix,
    theorem1_failure_bound,
    verify_coding_scheme,
)

__all__ = [
    "CodingScheme",
    "generate_coding_scheme",
    "encode_value",
    "encode_on_edges",
    "EqualityCheckOutcome",
    "run_equality_check",
    "dispute_free_subgraphs",
    "compute_uk",
    "compute_rho",
    "build_check_matrix",
    "verify_coding_scheme",
    "theorem1_failure_bound",
]
