"""Algorithm 1: the Equality Check with parameter ``rho_k``.

Each node ``i`` in ``G_k`` holds an ``L``-bit value ``x_i`` from Phase 1,
represented as a vector ``X_i`` of ``rho_k`` symbols over
``GF(2^(L/rho_k))``.  The check proceeds in a *single* round of communication
between adjacent nodes:

1. On each outgoing edge ``e = (i, j)`` of capacity ``z_e``, node ``i`` sends
   the ``z_e`` coded symbols ``Y_e = X_i C_e``.
2. On each incoming edge ``d = (j, i)``, node ``i`` checks whether the
   received vector equals ``X_i C_d``.
3. A node whose checks all pass sets its flag to NULL, otherwise to MISMATCH.

Because no node forwards packets for other nodes, a faulty node can send junk
to its neighbours but cannot tamper with what fault-free nodes exchange — the
"salient feature" the correctness proof leans on.  The transmission of ``z_e``
symbols of ``L / rho_k`` bits over a link of capacity ``z_e`` takes exactly
``L / rho_k`` time units, which is how the accountant will price this phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.coding.coding_matrix import CodingScheme, encode_on_edges
from repro.exceptions import ProtocolError
from repro.gf.symbols import bits_to_symbols
from repro.graph.network_graph import NetworkGraph
from repro.transport.network import SynchronousNetwork
from repro.types import Edge, NodeId


@dataclass(frozen=True)
class EqualityCheckOutcome:
    """Result of one equality-check execution.

    Attributes:
        flags: For every participating node, ``True`` if the node detected a
            mismatch (flag = MISMATCH), ``False`` otherwise.  Faulty nodes'
            entries reflect what the protocol at that node would compute; what
            they *announce* in step 2.2 is decided separately.
        sent_vectors: The coded symbol vectors actually transmitted on each
            edge (post Byzantine interference), for use by dispute control.
        expected_vectors: The vectors each receiver expected on each incoming
            edge (``X_i C_d``), also for dispute control.
    """

    flags: Dict[NodeId, bool]
    sent_vectors: Dict[Edge, Tuple[int, ...]]
    expected_vectors: Dict[Edge, Tuple[int, ...]]

    def mismatch_detected(self) -> bool:
        """Whether any node raised the MISMATCH flag."""
        return any(self.flags.values())


def value_to_symbols(value_bits: int, total_bits: int, scheme: CodingScheme) -> List[int]:
    """Split an ``L``-bit value into the ``rho`` symbols the scheme expects.

    The paper assumes ``L / rho`` is an integer; for other sizes the value is
    left-padded (see :mod:`repro.gf.symbols`), and the symbol count is clamped
    to exactly ``rho`` by padding with leading zero symbols if needed.
    """
    symbols = bits_to_symbols(value_bits, total_bits, scheme.symbol_bits)
    if len(symbols) > scheme.rho:
        raise ProtocolError(
            f"value of {total_bits} bits yields {len(symbols)} symbols of "
            f"{scheme.symbol_bits} bits, more than rho={scheme.rho}"
        )
    padding = [0] * (scheme.rho - len(symbols))
    return padding + symbols


def run_equality_check(
    network: SynchronousNetwork,
    instance_graph: NetworkGraph,
    values: Mapping[NodeId, int],
    total_bits: int,
    scheme: CodingScheme,
    instance: int = 0,
    phase: str = "phase2_equality_check",
) -> EqualityCheckOutcome:
    """Execute Algorithm 1 on the instance graph.

    Args:
        network: The transport (time accounting + fault model).  Transmissions
            are charged to ``phase``.
        instance_graph: ``G_k`` — only its edges are used for the check.
        values: The ``L``-bit value (as an integer) each node holds after
            Phase 1.  Every node of ``instance_graph`` must have an entry.
        total_bits: ``L``, the declared bit length of the values.
        scheme: The coding scheme (matrices ``C_e`` for every edge of ``G_k``).
        instance: Instance number forwarded to Byzantine strategy hooks.
        phase: Accounting phase name.

    Returns:
        The per-node flags and the transmitted/expected vectors.

    Raises:
        ProtocolError: if a node has no value or a value does not fit in
            ``total_bits`` bits.
    """
    fault_model = network.fault_model
    strategy = fault_model.strategy
    nodes = instance_graph.nodes()
    for node in nodes:
        if node not in values:
            raise ProtocolError(f"node {node} has no Phase 1 value")

    symbol_vectors: Dict[NodeId, List[int]] = {
        node: value_to_symbols(values[node], total_bits, scheme) for node in nodes
    }
    symbol_keys: Dict[NodeId, Tuple[int, ...]] = {
        node: tuple(vector) for node, vector in symbol_vectors.items()
    }

    # Per-run memo of encodings: a sender's transmission on edge e and a
    # receiver's expectation for e both encode some node's symbol vector with
    # the same C_e, and in the (common) case where the two nodes hold the same
    # value the encoding is computed once instead of twice.  A miss encodes
    # the vector over *all* of the node's still-missing incident edges in one
    # stacked pass (encode_on_edges): every incident edge's coded projection
    # is needed by the check anyway — outgoing edges for step 1, incoming
    # edges for the step 2 expectations — so the batch wastes nothing and the
    # whole per-node encode moves per windowed pass, not per symbol.
    encode_cache: Dict[Tuple[Tuple[int, ...], Edge], List[int]] = {}
    incident_edges: Dict[NodeId, Tuple[Edge, ...]] = {
        node: tuple(
            [(tail, head) for tail, head, _cap in instance_graph.out_edges(node)]
            + [(tail, head) for tail, head, _cap in instance_graph.in_edges(node)]
        )
        for node in nodes
    }

    def _coded(node: NodeId, edge: Edge) -> List[int]:
        vector_key = symbol_keys[node]
        coded = encode_cache.get((vector_key, edge))
        if coded is None:
            missing = tuple(
                incident
                for incident in incident_edges[node]
                if (vector_key, incident) not in encode_cache
            )
            for incident, vector in encode_on_edges(
                scheme, symbol_vectors[node], missing
            ).items():
                encode_cache[(vector_key, incident)] = vector
            coded = encode_cache[(vector_key, edge)]
        return coded

    sent_vectors: Dict[Edge, Tuple[int, ...]] = {}
    expected_vectors: Dict[Edge, Tuple[int, ...]] = {}
    received_vectors: Dict[Edge, Tuple[int, ...]] = {}

    # Step 1: every node transmits its coded symbols on every outgoing edge.
    for tail, head, capacity in instance_graph.edges():
        true_vector = _coded(tail, (tail, head))
        outgoing: Sequence[int] = true_vector
        if fault_model.is_faulty(tail):
            # The hook gets a copy: the true vector is cached and shared.
            outgoing = list(
                strategy.equality_check_vector(instance, tail, head, list(true_vector))
            )
            if len(outgoing) != capacity:
                raise ProtocolError(
                    f"Byzantine strategy returned {len(outgoing)} coded symbols for an "
                    f"edge of capacity {capacity}"
                )
            # Each coded symbol physically occupies symbol_bits bits on the
            # link, so adversarial symbols are truncated to the field size.
            outgoing = [symbol & (scheme.field.order - 1) for symbol in outgoing]
        message = network.send_vector(
            tail, head, outgoing, scheme.symbol_bits, phase, kind="equality_coded"
        )
        sent_vectors[(tail, head)] = message.payload
        received_vectors[(tail, head)] = message.payload

    # Step 2: every node checks each incoming edge against its own value.
    flags: Dict[NodeId, bool] = {}
    for node in nodes:
        mismatch = False
        for tail, head, _capacity in instance_graph.in_edges(node):
            expected = tuple(_coded(node, (tail, head)))
            expected_vectors[(tail, head)] = expected
            if received_vectors[(tail, head)] != expected:
                mismatch = True
        flags[node] = mismatch
    return EqualityCheckOutcome(
        flags=flags, sent_vectors=sent_vectors, expected_vectors=expected_vectors
    )
