"""The subgraph family ``Omega_k`` and the coding parameter bound ``U_k``.

Section 3 of the paper defines, for the ``k``-th NAB instance running on
``G_k``:

    ``Omega_k`` = all subgraphs of ``G_k`` induced by ``n - f`` nodes such
    that no two nodes of the subgraph have been found in dispute during the
    first ``k - 1`` instances,

and

    ``U_k`` = the minimum, over all ``H`` in ``Omega_k`` and all node pairs
    ``i, j`` of ``H``, of ``MINCUT(\\bar H, i, j)`` in the undirected
    capacity-summed view ``\\bar H``.

``Omega_k`` is non-empty because fault-free nodes are never found in dispute
with each other and there are at least ``n - f`` of them.  The equality-check
parameter must satisfy ``rho_k <= U_k / 2``; NAB uses the largest allowed
integer value so that the check finishes in ``L / rho_k`` time.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List, Sequence, Set, Tuple

from repro.exceptions import ProtocolError
from repro.graph.network_graph import NetworkGraph
from repro.graph.undirected import UndirectedView
from repro.types import NodeId, NodePair


def dispute_free_subgraphs(
    graph: NetworkGraph,
    subgraph_size: int,
    disputes: Iterable[NodePair] = (),
) -> List[Tuple[NodeId, ...]]:
    """All ``subgraph_size``-node subsets of ``graph`` containing no disputed pair.

    Args:
        graph: The instance graph ``G_k``.
        subgraph_size: ``n - f`` — the number of nodes each subgraph must have.
        disputes: Unordered node pairs found in dispute so far.

    Returns:
        Sorted list of node tuples (each sorted), one per member of ``Omega_k``.

    Raises:
        ProtocolError: if ``subgraph_size`` is not positive or exceeds the
            number of nodes in the graph (the paper's special case where more
            than ``f`` nodes have been excluded is handled by the caller
            before reaching this function).
    """
    nodes = graph.nodes()
    if subgraph_size < 1:
        raise ProtocolError(f"subgraph size must be >= 1, got {subgraph_size}")
    if subgraph_size > len(nodes):
        raise ProtocolError(
            f"cannot form {subgraph_size}-node subgraphs from a {len(nodes)}-node graph"
        )
    dispute_set: Set[NodePair] = {frozenset(pair) for pair in disputes}
    if not dispute_set:
        # Common case (no disputes yet): every subset qualifies, skip the
        # quadratic per-subset pair scan.
        return [tuple(subset) for subset in combinations(nodes, subgraph_size)]
    members: List[Tuple[NodeId, ...]] = []
    for subset in combinations(nodes, subgraph_size):
        if _contains_disputed_pair(subset, dispute_set):
            continue
        members.append(tuple(subset))
    return members


def _contains_disputed_pair(subset: Sequence[NodeId], disputes: Set[NodePair]) -> bool:
    for a_index in range(len(subset)):
        for b_index in range(a_index + 1, len(subset)):
            if frozenset((subset[a_index], subset[b_index])) in disputes:
                return True
    return False


def compute_uk(graph: NetworkGraph, subgraphs: Sequence[Tuple[NodeId, ...]]) -> int:
    """``U_k``: the minimum pairwise undirected min-cut over all ``Omega_k`` members.

    Raises:
        ProtocolError: if ``subgraphs`` is empty (``Omega_k`` is provably
            non-empty when the fault bound holds, so an empty family indicates
            the caller excluded too many nodes).
    """
    if not subgraphs:
        raise ProtocolError("Omega_k is empty; cannot compute U_k")
    minimum = None
    for nodes in subgraphs:
        view = UndirectedView(graph.induced_subgraph(nodes))
        value = view.min_pairwise_mincut()
        if minimum is None or value < minimum:
            minimum = value
    assert minimum is not None
    return minimum


def compute_rho(uk: int) -> int:
    """The equality-check parameter ``rho_k = floor(U_k / 2)``.

    Raises:
        ProtocolError: if ``U_k < 2`` — the algorithm needs ``rho_k >= 1``
            with ``rho_k <= U_k / 2``, which the paper's preconditions
            (connectivity at least ``2f + 1`` with unit-or-larger capacities)
            guarantee.
    """
    if uk < 2:
        raise ProtocolError(
            f"U_k = {uk} < 2: the equality check needs rho_k >= 1 with rho_k <= U_k / 2"
        )
    return uk // 2


def omega_and_parameters(
    graph: NetworkGraph,
    total_nodes: int,
    max_faults: int,
    disputes: Iterable[NodePair] = (),
) -> Tuple[List[Tuple[NodeId, ...]], int, int]:
    """Convenience wrapper returning ``(Omega_k, U_k, rho_k)`` for an instance graph."""
    subgraphs = dispute_free_subgraphs(graph, total_nodes - max_faults, disputes)
    uk = compute_uk(graph, subgraphs)
    return subgraphs, uk, compute_rho(uk)
