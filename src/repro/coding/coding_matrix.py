"""Per-edge coding matrices ``C_e`` (part of the algorithm specification).

Step 1 of Algorithm 1: for each directed edge ``e = (i, j)`` of capacity
``z_e``, a ``rho_k x z_e`` matrix ``C_e`` over ``GF(2^(L/rho_k))`` is
*specified as part of the algorithm*.  Node ``i`` transmits the ``z_e`` coded
symbols ``Y_e = X_i C_e``; node ``j`` checks ``Y_e`` against ``X_j C_e``.

Theorem 1 shows that drawing every entry independently and uniformly at random
yields a *correct* set of matrices with probability at least
``1 - 2^(-L/rho) * C(n, n-f) * (n - f - 1) * rho``, so for large symbol sizes
a random draw is essentially always correct.  To keep the algorithm
deterministic (a property dispute control relies on), the matrices are derived
from an explicit seed: the same ``(seed, instance, edge)`` always produces the
same matrix, and the seed is considered public knowledge (the adversary knows
the algorithm).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.exceptions import ProtocolError
from repro.gf.field import GF2m, get_field
from repro.gf.matrix import GFMatrix
from repro.graph.network_graph import NetworkGraph
from repro.types import Edge


@dataclass(frozen=True)
class CodingScheme:
    """The full coding specification for one equality-check execution.

    Attributes:
        field: The symbol field ``GF(2^(L / rho))``.
        rho: Number of symbols each node's value is split into.
        symbol_bits: Bits per symbol (``L / rho``, rounded up).
        matrices: The per-edge coding matrices, each of shape ``rho x z_e``.
        seed: The seed the matrices were derived from (for reproducibility).
        instance: The NAB instance the matrices were derived for (the other
            half of the derivation key; lets caches distinguish schemes of
            successive instances over one graph).
    """

    field: GF2m
    rho: int
    symbol_bits: int
    matrices: Dict[Edge, GFMatrix]
    seed: int
    instance: int = 0
    #: Whether the matrices were derived deterministically from
    #: ``(seed, instance, edge)`` by :func:`generate_coding_scheme`.  Only
    #: derived schemes may key process-wide caches on the derivation tuple;
    #: hand-built schemes (tests, adversarial constructions) carry arbitrary
    #: matrices under any seed and must not share cache entries.
    derived: bool = dataclass_field(default=False, compare=False)
    #: Lazily built horizontal concatenations of per-edge matrices, keyed on
    #: the edge tuple — the shared operand of batched multi-edge encodes.
    #: Mutable cache state, excluded from the dataclass value semantics.
    _combined: Dict[Tuple[Edge, ...], Tuple[GFMatrix, Tuple[int, ...]]] = dataclass_field(
        default_factory=dict, repr=False, compare=False
    )

    def matrix_for(self, edge: Edge) -> GFMatrix:
        """The coding matrix of a directed edge.

        Raises:
            ProtocolError: if the edge has no matrix in this scheme.
        """
        if edge not in self.matrices:
            raise ProtocolError(f"no coding matrix for edge {edge}")
        return self.matrices[edge]

    def edges(self) -> Iterator[Edge]:
        """Edges covered by the scheme, in sorted order."""
        return iter(sorted(self.matrices))

    def combined_matrix(self, edges: Tuple[Edge, ...]) -> Tuple[GFMatrix, Tuple[int, ...]]:
        """The column-wise concatenation of several edges' coding matrices.

        Returns the combined ``rho x sum(z_e)`` matrix plus the per-edge
        column widths, cached per edge tuple: the concatenation (and the
        stacked-row window tables the field caches for it) is the shared
        operand of every batched encode over that edge set, so repeated
        encodes of different values pay only the per-value windowed scans.

        Raises:
            ProtocolError: if the tuple is empty or any edge has no matrix.
        """
        cached = self._combined.get(edges)
        if cached is None:
            if not edges:
                raise ProtocolError("combined_matrix requires at least one edge")
            rows: List[List[int]] = [[] for _ in range(self.rho)]
            widths: List[int] = []
            for edge in edges:
                matrix = self.matrix_for(edge)
                if matrix.rows != self.rho:
                    # zip would silently drop the missing rows and hand a
                    # ragged matrix to the trusted constructor; fail loudly
                    # like the single-edge vecmat path does.
                    raise ProtocolError(
                        f"coding matrix for edge {edge} has {matrix.rows} rows "
                        f"but the scheme uses rho={self.rho}"
                    )
                widths.append(matrix.cols)
                for target, row in zip(rows, matrix.to_lists()):
                    target.extend(row)
            cached = self._combined[edges] = (
                GFMatrix._trusted(self.field, rows),
                tuple(widths),
            )
        return cached


def _edge_rng(seed: int, instance: int, edge: Edge) -> random.Random:
    """A deterministic RNG for one edge's matrix, independent across edges.

    The mixing constants are arbitrary large primes; they only need to keep
    distinct ``(seed, instance, edge)`` triples on distinct RNG streams.
    """
    mixed = (
        seed * 1_000_000_007
        + instance * 1_000_003
        + edge[0] * 10_007
        + edge[1] * 101
    )
    return random.Random(mixed)


def generate_coding_scheme(
    graph: NetworkGraph,
    rho: int,
    symbol_bits: int,
    seed: int = 0,
    instance: int = 0,
) -> CodingScheme:
    """Generate the per-edge coding matrices for an instance graph.

    Args:
        graph: The instance graph ``G_k`` whose edges need matrices.
        rho: The coding parameter ``rho_k`` (rows of each matrix).
        symbol_bits: Bits per symbol; the symbol field is ``GF(2^symbol_bits)``.
        seed: Public seed making the scheme deterministic.
        instance: NAB instance number, mixed into the per-edge seed so
            successive instances use fresh matrices.

    Raises:
        ProtocolError: if ``rho`` or ``symbol_bits`` is not positive.
    """
    if rho < 1:
        raise ProtocolError(f"rho must be >= 1, got {rho}")
    if symbol_bits < 1:
        raise ProtocolError(f"symbol_bits must be >= 1, got {symbol_bits}")
    # The shared field instance reuses the lazily built arithmetic tables
    # across instances and schemes (see repro.gf.field.get_field).
    field = get_field(symbol_bits)
    matrices: Dict[Edge, GFMatrix] = {}
    for tail, head, capacity in graph.edges():
        rng = _edge_rng(seed, instance, (tail, head))
        matrices[(tail, head)] = GFMatrix.random(field, rho, capacity, rng)
    return CodingScheme(
        field=field,
        rho=rho,
        symbol_bits=symbol_bits,
        matrices=matrices,
        seed=seed,
        instance=instance,
        derived=True,
    )


def encode_value(scheme: CodingScheme, symbols: Sequence[int], edge: Edge) -> List[int]:
    """Compute the coded symbols ``Y_e = X C_e`` a node sends on ``edge``.

    Args:
        scheme: The coding scheme in force.
        symbols: The node's value as a length-``rho`` symbol vector ``X``;
            any sequence type (list, tuple, ...) is accepted.
        edge: The outgoing directed edge.

    Returns:
        A list of ``z_e`` coded symbols.

    Raises:
        ProtocolError: if the symbol vector length does not match ``rho``.
    """
    if len(symbols) != scheme.rho:
        raise ProtocolError(
            f"value has {len(symbols)} symbols but the scheme uses rho={scheme.rho}"
        )
    return scheme.matrix_for(edge).vecmat(symbols)


def encode_on_edges(
    scheme: CodingScheme, symbols: Sequence[int], edges: Sequence[Edge]
) -> Dict[Edge, List[int]]:
    """Encode one symbol vector on several edges in a single stacked pass.

    Equivalent to ``{edge: encode_value(scheme, symbols, edge) for edge in
    edges}`` but the per-edge matrices are concatenated column-wise (cached
    per edge tuple, see :meth:`CodingScheme.combined_matrix`) so the whole
    multi-edge encode is one :meth:`GFMatrix.vecmat` — for big symbol fields
    that is one windowed pass per (symbol, column window) over the combined
    batch instead of one per-edge multiplication loop.  This is how the
    equality check and the dispute-control honesty checks batch a node's
    encodes over all of its incident edges.

    Raises:
        ProtocolError: if the symbol vector length does not match ``rho``.
    """
    if len(symbols) != scheme.rho:
        raise ProtocolError(
            f"value has {len(symbols)} symbols but the scheme uses rho={scheme.rho}"
        )
    edge_tuple = tuple(edges)
    if not edge_tuple:
        return {}
    if len(edge_tuple) == 1:
        return {edge_tuple[0]: scheme.matrix_for(edge_tuple[0]).vecmat(symbols)}
    combined, widths = scheme.combined_matrix(edge_tuple)
    coded = combined.vecmat(symbols)
    result: Dict[Edge, List[int]] = {}
    base = 0
    for edge, width in zip(edge_tuple, widths):
        result[edge] = coded[base : base + width]
        base += width
    return result
