"""Pod-style ledger forensics: accountable evidence of misbehaviour per node.

NAB's dispute-control phase already extracts *protocol-level* evidence (pairs
in dispute, DC3-identified nodes).  This module layers an after-the-fact
accountability pass over the **transport ledger** — what was actually
delivered on every link, which every fault-free node can reconstruct — in the
spirit of accountable-broadcast ("pod") designs: every accusation is backed by
a concrete, checkable contradiction, and honest nodes are *never* accused.

Evidence sources, strongest first:

1. **DC3 identification** — the agreed claims table is inconsistent with the
   deterministic algorithm (re-used verbatim from dispute control).
2. **Ledger/claims contradiction** — the node's Byzantine-broadcast claims
   about what it sent and received differ from the delivered transcript.
   Honest claims *are* the delivered transcript (see
   :func:`repro.core.phase3_dispute.honest_claims`), and the classical
   broadcast's validity preserves an honest sender's claims, so only a lying
   node can contradict the ledger.
3. **Flag forgery** — the flag a node announced in step 2.2 differs from the
   flag its delivered equality-check inputs imply.
4. **Dispute accumulation** — replaying all recorded disputes through a fresh
   :class:`repro.core.dispute_state.DisputeState` yields the over-disputed
   (``> f`` partners) and DC4-intersection nodes.

Soundness (no honest node is ever accused) is property-tested across the
whole adversary zoo; completeness is necessarily weaker — a Byzantine node
that behaves honestly is indistinguishable from an honest one — so the
guarantee is: every node that *caused* a dispute appears among the suspects,
and every accusation names a truly faulty node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.core.dispute_state import DisputeState
from repro.types import NodeId


class ForensicRecorder:
    """Collects one public-ledger evidence record per NAB instance.

    Pass an instance to :class:`repro.core.nab.NetworkAwareBroadcast` (the
    ``recorder`` argument); every instance that reaches Phase 2 calls
    :meth:`record` with a plain dict of transcripts, flags and agreed claims.
    The recorder is deliberately decoupled from the protocol core — it only
    ever receives data every fault-free node holds.
    """

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def record(self, evidence: Dict[str, Any]) -> None:
        """Store one instance's evidence record."""
        self.records.append(evidence)

    def analyze(self) -> "ForensicReport":
        """Run the accountability pass over everything recorded so far."""
        return analyze_records(self.records)


@dataclass(frozen=True)
class ForensicReport:
    """Outcome of the accountability pass.

    Attributes:
        accused: Nodes with direct evidence of misbehaviour, each with the
            (sorted) evidence descriptions backing the accusation.  Sound:
            every accused node is truly faulty.
        suspects: Endpoints of recorded disputes — for each disputed pair at
            least one endpoint is faulty, but the ledger alone cannot always
            say which, so suspects are *not* accusations.
        disputes: All disputed pairs seen across the recorded instances.
    """

    accused: Mapping[NodeId, Tuple[str, ...]]
    suspects: FrozenSet[NodeId]
    disputes: Tuple[FrozenSet[NodeId], ...]

    def accused_nodes(self) -> FrozenSet[NodeId]:
        """The accused set without the per-node evidence."""
        return frozenset(self.accused)


def _vector_map(mapping: Any) -> Dict[Any, Tuple[Any, ...]]:
    """Normalise an equality-claims mapping to tuples (lists and tuples compare unequal)."""
    if not isinstance(mapping, Mapping):
        return {}
    normalized: Dict[Any, Tuple[Any, ...]] = {}
    for key, value in mapping.items():
        try:
            normalized[key] = tuple(value)
        except TypeError:
            normalized[key] = (value,)
    return normalized


def _plain_map(mapping: Any) -> Dict[Any, Any]:
    return dict(mapping) if isinstance(mapping, Mapping) else {}


def _ledger_claims(record: Mapping[str, Any], node: NodeId) -> Dict[str, Any]:
    """Reconstruct the claims an honest ``node`` must have made, from the ledger.

    Mirrors :func:`repro.core.phase3_dispute.honest_claims` exactly, but
    sourced from the recorded delivered transcript instead of live phase
    objects — the whole point: any fault-free node can recompute this.
    """
    expected: Dict[str, Any] = {
        "phase1_sent": {},
        "phase1_received": {},
        "equality_sent": {},
        "equality_received": {},
    }
    for (tree_index, parent, child), symbol in record["phase1_sent"].items():
        if parent == node:
            expected["phase1_sent"][(tree_index, child)] = symbol
    for (tree_index, child), symbol in record["phase1_received"].items():
        if child == node:
            expected["phase1_received"][tree_index] = symbol
    for (tail, head), vector in record["equality_sent"].items():
        if tail == node:
            expected["equality_sent"][head] = tuple(vector)
        if head == node:
            expected["equality_received"][tail] = tuple(vector)
    return expected


def _claim_contradictions(
    record: Mapping[str, Any], node: NodeId, claims: Any
) -> List[str]:
    """Every field where the node's agreed claims contradict the ledger."""
    instance = record["instance"]
    if not isinstance(claims, Mapping):
        return [
            f"instance {instance}: broadcast claims are not a claims table "
            f"({type(claims).__name__})"
        ]
    expected = _ledger_claims(record, node)
    contradictions: List[str] = []
    for field in ("phase1_sent", "phase1_received"):
        if _plain_map(claims.get(field)) != expected[field]:
            contradictions.append(
                f"instance {instance}: claimed {field} contradicts the ledger"
            )
    for field in ("equality_sent", "equality_received"):
        if _vector_map(claims.get(field)) != expected[field]:
            contradictions.append(
                f"instance {instance}: claimed {field} contradicts the ledger"
            )
    return contradictions


def analyze_records(records: Sequence[Mapping[str, Any]]) -> ForensicReport:
    """The accountability pass: evidence rules 1-4 over all recorded instances."""
    accused: Dict[NodeId, List[str]] = {}
    disputes: List[FrozenSet[NodeId]] = []
    max_faults = 0
    participants: set = set()

    def accuse(node: NodeId, reason: str) -> None:
        accused.setdefault(node, []).append(reason)

    for record in records:
        instance = record["instance"]
        max_faults = max(max_faults, record["max_faults"])
        participants.update(record["participants"])
        disputes.extend(frozenset(pair) for pair in record["new_disputes"])

        # Rule 1: DC3 identification.
        for node in record["identified"]:
            accuse(node, f"instance {instance}: identified by DC3 consistency check")

        # Rule 3: flag forgery (announced flag vs the flag the delivered
        # inputs imply; the recorded true_flags are exactly that).
        true_flags = record["true_flags"]
        for node, announced in record["announced_flags"].items():
            if bool(announced) != bool(true_flags.get(node, False)):
                accuse(
                    node,
                    f"instance {instance}: announced flag {bool(announced)} "
                    f"contradicts the computed flag {bool(true_flags.get(node, False))}",
                )

        # Rule 2: ledger/claims contradictions (only when dispute control ran
        # and produced an agreed claims table).
        claims_table = record.get("claims")
        if claims_table is not None:
            for node in record["participants"]:
                if node not in claims_table:
                    continue
                for reason in _claim_contradictions(record, node, claims_table[node]):
                    accuse(node, reason)

    # Rule 4: dispute accumulation (over-disputed and DC4 intersection).
    state = DisputeState(max_faults)
    state.add_disputes(disputes)
    for node in sorted(accused):
        state.mark_faulty(node)
    for node in sorted(state.implied_faulty(participants)):
        if node not in accused:
            accuse(node, "implied faulty by accumulated disputes (DC4 / over-disputed)")

    suspects = frozenset(node for pair in disputes for node in pair)
    return ForensicReport(
        accused={node: tuple(reasons) for node, reasons in sorted(accused.items())},
        suspects=suspects,
        disputes=tuple(disputes),
    )


def audit_rows(rows: Sequence[Mapping[str, Any]]) -> List[str]:
    """Audit persisted sweep rows for accountability violations.

    For every row that executed a protocol, checks (against the row's own
    ground-truth ``faulty_nodes``) that

    * every identified-faulty node really is faulty (zero false accusations),
    * every recorded dispute touches at least one faulty node (fault-free
      pairs are never found in dispute),
    * ``agreement_ok`` is true and ``validity_ok`` is not false.

    Returns human-readable violation descriptions (empty = all clean).  The
    adversarial search driver runs this on every explored row and escalates
    any violation to a :class:`repro.exceptions.ReproductionFinding`.
    """
    violations: List[str] = []
    for row in rows:
        record = row.get("record")
        if not isinstance(record, Mapping):
            continue
        cell_id = row.get("cell_id", "<unknown cell>")
        faulty = set(row.get("faulty_nodes") or ())
        metadata = record.get("metadata") or {}
        for node in metadata.get("identified_faulty", ()):
            if node not in faulty:
                violations.append(
                    f"{cell_id}: fault-free node {node} identified as faulty"
                )
        for pair in metadata.get("disputes", ()):
            if not set(pair) & faulty:
                violations.append(
                    f"{cell_id}: dispute {sorted(pair)} between fault-free nodes"
                )
        if record.get("agreement_ok") is not True:
            violations.append(f"{cell_id}: agreement_ok is {record.get('agreement_ok')!r}")
        if record.get("validity_ok") is False:
            violations.append(f"{cell_id}: validity_ok is False")
    return violations
