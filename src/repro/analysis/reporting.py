"""Plain-text table rendering for benchmark output and EXPERIMENTS.md.

The benchmarks print the rows/series the paper's analysis implies (there are
no numeric tables in the paper itself — it is a theory paper); a fixed-width
text table keeps that output readable both on a terminal and when pasted into
Markdown documents.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Sequence


def _render_cell(value: object) -> str:
    if isinstance(value, Fraction):
        return f"{float(value):.4g}"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table with a header rule.

    Args:
        headers: Column titles.
        rows: Row values; each row must have the same length as ``headers``.

    Returns:
        The formatted table as a single string (no trailing newline).

    Raises:
        ValueError: if a row's length does not match the header count.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        cells = [_render_cell(value) for value in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but there are {len(headers)} headers"
            )
        rendered_rows.append(cells)
    widths = [len(header) for header in headers]
    for cells in rendered_rows:
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))
    header_line = " | ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    rule = "-+-".join("-" * width for width in widths)
    body = [
        " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
        for cells in rendered_rows
    ]
    return "\n".join([header_line, rule] + body)
