"""Empirical throughput measurement and amortisation analysis.

Throughput is defined exactly as in the paper: ``Q`` instances of ``L``-bit
broadcast divided by the total worst-case completion time under the link
capacity constraints.  Since the experiment-engine refactor every protocol
run is summarised by a shared :class:`repro.types.RunRecord`; the helpers
here check the Byzantine broadcast specification on a record, convert it into
a :class:`ThroughputMeasurement`, and report measured throughput next to the
analytical Eq. 6 lower bound and Theorem 2 upper bound so benchmarks can
print all three side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Union

from repro.capacity.bounds import CapacityAnalysis, analyse_network
from repro.core.nab import NABRunResult, NetworkAwareBroadcast
from repro.exceptions import AgreementViolationError, ProtocolError
from repro.graph.network_graph import NetworkGraph
from repro.transport.faults import FaultModel
from repro.types import NodeId, RunRecord


@dataclass(frozen=True)
class ThroughputMeasurement:
    """Measured throughput of a protocol run together with the analytical context.

    Attributes:
        instances: Number of instances ``Q``.
        payload_bits: Total broadcast payload (``Q * L``).
        total_time: Total elapsed time in time units.
        throughput: Measured throughput ``payload_bits / total_time``.
        dispute_control_executions: How many instances ran Phase 3.
        analysis: The network's analytical bounds (Eq. 6 and Theorem 2).
    """

    instances: int
    payload_bits: int
    total_time: Fraction
    throughput: Fraction
    dispute_control_executions: int
    analysis: CapacityAnalysis

    def fraction_of_upper_bound(self) -> Fraction:
        """Measured throughput as a fraction of the Theorem 2 capacity upper bound."""
        return self.throughput / self.analysis.capacity_upper_bound


@dataclass(frozen=True)
class PipelineGap:
    """Measured pipelined completion next to the Figure 3 closed form.

    Attributes:
        measured: Event-simulated pipelined completion time.
        analytic: ``pipelined_schedule(...)`` total at the steady-state
            parameters (``None`` when the run never reached a homogeneous
            steady state, e.g. dispute control fired).
        sequential: Measured unpipelined completion under the same
            propagation model.
        speedup: ``sequential / measured`` (``None`` if degenerate).
        exact: Whether measured equals analytic as exact rationals (``None``
            when there is no analytic schedule to compare against).
    """

    measured: Fraction
    analytic: Optional[Fraction]
    sequential: Fraction
    speedup: Optional[Fraction]
    exact: Optional[bool]

    @property
    def gap(self) -> Optional[Fraction]:
        """``measured - analytic`` (0 in the steady state; ``None`` without analytic)."""
        if self.analytic is None:
            return None
        return self.measured - self.analytic


def pipeline_gap_from_record(record: RunRecord) -> PipelineGap:
    """Extract the measured-vs-analytic pipelining comparison from a record.

    Works on any record produced by the pipelined NAB executor
    (:meth:`repro.core.nab.NetworkAwareBroadcast.run_pipelined_record` or an
    engine cell with ``execution="pipelined"``), whose metadata carries the
    analytic schedule and the sequential comparator as ``"p/q"`` strings.

    Raises:
        ProtocolError: if the record is not a pipelined-execution record.
    """
    metadata = record.metadata
    if metadata.get("execution") != "pipelined":
        raise ProtocolError(
            f"record of {record.protocol!r} is not a pipelined execution"
        )
    analytic_raw = metadata.get("analytic_total")
    analytic = None if analytic_raw is None else Fraction(str(analytic_raw))
    sequential = Fraction(str(metadata["sequential_elapsed"]))
    speedup_raw = metadata.get("speedup")
    speedup = None if speedup_raw is None else Fraction(str(speedup_raw))
    return PipelineGap(
        measured=record.elapsed,
        analytic=analytic,
        sequential=sequential,
        speedup=speedup,
        exact=None if analytic is None else record.elapsed == analytic,
    )


def check_record_spec(record: RunRecord) -> None:
    """Assert the BB specification flags of a :class:`RunRecord`.

    Raises:
        AgreementViolationError: if the record reports an agreement violation,
            or a validity violation while the source was fault-free.
    """
    if not record.agreement_ok:
        raise AgreementViolationError(
            f"{record.protocol}: fault-free nodes disagree in at least one instance"
        )
    if record.validity_ok is False:
        raise AgreementViolationError(
            f"{record.protocol}: validity violated with a fault-free source"
        )


def verify_agreement_and_validity(
    run: Union[NABRunResult, RunRecord], inputs: Sequence[bytes], source_faulty: bool
) -> None:
    """Assert the BB specification on every instance of a run.

    Accepts either a legacy :class:`NABRunResult` (converted into the shared
    record shape first) or a :class:`RunRecord` directly.

    Raises:
        AgreementViolationError: if any instance violates agreement, or
            violates validity while the source is fault-free.
    """
    if isinstance(run, NABRunResult):
        record = run.as_run_record(inputs, source_faulty)
    else:
        record = run
    check_record_spec(record)


def measurement_from_record(
    record: RunRecord, analysis: CapacityAnalysis
) -> ThroughputMeasurement:
    """Convert a protocol-agnostic :class:`RunRecord` into a measurement."""
    total_time = record.elapsed if record.elapsed > 0 else Fraction(1)
    return ThroughputMeasurement(
        instances=record.instances,
        payload_bits=record.payload_bits,
        total_time=record.elapsed,
        throughput=Fraction(record.payload_bits) / total_time,
        dispute_control_executions=record.dispute_control_executions,
        analysis=analysis,
    )


def measure_nab_throughput(
    graph: NetworkGraph,
    source: NodeId,
    max_faults: int,
    inputs: Sequence[bytes],
    fault_model: FaultModel | None = None,
    coding_seed: int = 0,
    analysis: CapacityAnalysis | None = None,
) -> ThroughputMeasurement:
    """Run NAB on ``inputs`` and return measured throughput plus analytical bounds.

    Args:
        analysis: Optional precomputed analytical bounds for ``graph``.  Pass
            this when measuring the same network repeatedly (sweeps, the
            amortisation curve) so the Gamma-family construction is not
            re-run per measurement; when omitted it is computed here.
    """
    fault_model = fault_model if fault_model is not None else FaultModel()
    nab = NetworkAwareBroadcast(
        graph, source, max_faults, fault_model=fault_model, coding_seed=coding_seed
    )
    record = nab.run_record(list(inputs))
    check_record_spec(record)
    if analysis is None:
        analysis = analyse_network(graph, source, max_faults)
    return measurement_from_record(record, analysis)


def amortization_curve(
    graph: NetworkGraph,
    source: NodeId,
    max_faults: int,
    instance_counts: Sequence[int],
    value_length: int = 8,
    fault_model: FaultModel | None = None,
) -> List[ThroughputMeasurement]:
    """Measured throughput as a function of the number of instances ``Q``.

    With a misbehaving adversary the first few instances pay for dispute
    control; as ``Q`` grows that cost is amortised and the measured throughput
    climbs toward the Eq. 6 bound — the curve the paper's amortisation
    argument predicts.
    """
    measurements = []
    analysis = analyse_network(graph, source, max_faults)
    for count in instance_counts:
        inputs = [
            bytes(((17 * index + offset) % 256) for offset in range(value_length))
            for index in range(count)
        ]
        model = fault_model if fault_model is not None else FaultModel()
        measurements.append(
            measure_nab_throughput(
                graph, source, max_faults, inputs, fault_model=model, analysis=analysis
            )
        )
    return measurements
