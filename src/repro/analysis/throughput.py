"""Empirical throughput measurement and amortisation analysis.

Throughput is defined exactly as in the paper: ``Q`` instances of ``L``-bit
broadcast divided by the total worst-case completion time under the link
capacity constraints.  The helpers here run NAB (or any protocol producing
:class:`repro.core.instance.InstanceResult`-like outputs), check the Byzantine
broadcast specification on every instance, and report measured throughput next
to the analytical Eq. 6 lower bound and Theorem 2 upper bound so benchmarks
can print all three side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Sequence

from repro.capacity.bounds import CapacityAnalysis, analyse_network
from repro.core.nab import NABRunResult, NetworkAwareBroadcast
from repro.exceptions import AgreementViolationError
from repro.graph.network_graph import NetworkGraph
from repro.transport.faults import FaultModel
from repro.types import NodeId


@dataclass(frozen=True)
class ThroughputMeasurement:
    """Measured throughput of a NAB run together with the analytical context.

    Attributes:
        instances: Number of instances ``Q``.
        payload_bits: Total broadcast payload (``Q * L``).
        total_time: Total elapsed time in time units.
        throughput: Measured throughput ``payload_bits / total_time``.
        dispute_control_executions: How many instances ran Phase 3.
        analysis: The network's analytical bounds (Eq. 6 and Theorem 2).
    """

    instances: int
    payload_bits: int
    total_time: Fraction
    throughput: Fraction
    dispute_control_executions: int
    analysis: CapacityAnalysis

    def fraction_of_upper_bound(self) -> Fraction:
        """Measured throughput as a fraction of the Theorem 2 capacity upper bound."""
        return self.throughput / self.analysis.capacity_upper_bound


def verify_agreement_and_validity(
    run: NABRunResult, inputs: Sequence[bytes], source_faulty: bool
) -> None:
    """Assert the BB specification on every instance of a run.

    Raises:
        AgreementViolationError: if any instance violates agreement, or
            violates validity while the source is fault-free.
    """
    for value, result in zip(inputs, run.instances):
        outputs = set(result.outputs.values())
        if len(outputs) != 1:
            raise AgreementViolationError(
                f"instance {result.instance}: fault-free nodes disagree ({len(outputs)} values)"
            )
        if not source_faulty:
            expected = int.from_bytes(value, "big")
            if outputs != {expected}:
                raise AgreementViolationError(
                    f"instance {result.instance}: validity violated "
                    f"(agreed {outputs.pop():#x}, expected {expected:#x})"
                )


def measure_nab_throughput(
    graph: NetworkGraph,
    source: NodeId,
    max_faults: int,
    inputs: Sequence[bytes],
    fault_model: FaultModel | None = None,
    coding_seed: int = 0,
    analysis: CapacityAnalysis | None = None,
) -> ThroughputMeasurement:
    """Run NAB on ``inputs`` and return measured throughput plus analytical bounds.

    Args:
        analysis: Optional precomputed analytical bounds for ``graph``.  Pass
            this when measuring the same network repeatedly (sweeps, the
            amortisation curve) so the Gamma-family construction is not
            re-run per measurement; when omitted it is computed here.
    """
    fault_model = fault_model if fault_model is not None else FaultModel()
    nab = NetworkAwareBroadcast(
        graph, source, max_faults, fault_model=fault_model, coding_seed=coding_seed
    )
    run = nab.run(list(inputs))
    verify_agreement_and_validity(run, inputs, fault_model.is_faulty(source))
    payload_bits = sum(8 * len(value) for value in inputs)
    if analysis is None:
        analysis = analyse_network(graph, source, max_faults)
    total_time = run.total_elapsed if run.total_elapsed > 0 else Fraction(1)
    return ThroughputMeasurement(
        instances=len(inputs),
        payload_bits=payload_bits,
        total_time=run.total_elapsed,
        throughput=Fraction(payload_bits) / total_time,
        dispute_control_executions=run.dispute_control_executions,
        analysis=analysis,
    )


def amortization_curve(
    graph: NetworkGraph,
    source: NodeId,
    max_faults: int,
    instance_counts: Sequence[int],
    value_length: int = 8,
    fault_model: FaultModel | None = None,
) -> List[ThroughputMeasurement]:
    """Measured throughput as a function of the number of instances ``Q``.

    With a misbehaving adversary the first few instances pay for dispute
    control; as ``Q`` grows that cost is amortised and the measured throughput
    climbs toward the Eq. 6 bound — the curve the paper's amortisation
    argument predicts.
    """
    measurements = []
    analysis = analyse_network(graph, source, max_faults)
    for count in instance_counts:
        inputs = [
            bytes(((17 * index + offset) % 256) for offset in range(value_length))
            for index in range(count)
        ]
        model = fault_model if fault_model is not None else FaultModel()
        measurements.append(
            measure_nab_throughput(
                graph, source, max_faults, inputs, fault_model=model, analysis=analysis
            )
        )
    return measurements
