"""Measurement and reporting utilities used by the examples and benchmarks.

* :mod:`repro.analysis.throughput` — empirical throughput of protocol runs,
  amortisation curves over the number of instances ``Q``, and comparison of
  measured throughput against the analytical bounds.
* :mod:`repro.analysis.reporting` — plain-text tables in the style of the
  figures/claims the benchmarks regenerate (also used by EXPERIMENTS.md).
* :mod:`repro.analysis.forensics` — pod-style accountability: per-node
  evidence of misbehaviour extracted from the transport ledger and dispute
  records, with zero false accusations of honest nodes.
"""

from repro.analysis.forensics import (
    ForensicRecorder,
    ForensicReport,
    analyze_records,
    audit_rows,
)
from repro.analysis.reporting import format_table
from repro.analysis.throughput import (
    PipelineGap,
    ThroughputMeasurement,
    amortization_curve,
    check_record_spec,
    measure_nab_throughput,
    measurement_from_record,
    pipeline_gap_from_record,
    verify_agreement_and_validity,
)

__all__ = [
    "ThroughputMeasurement",
    "PipelineGap",
    "pipeline_gap_from_record",
    "measure_nab_throughput",
    "measurement_from_record",
    "check_record_spec",
    "amortization_curve",
    "verify_agreement_and_validity",
    "format_table",
    "ForensicRecorder",
    "ForensicReport",
    "analyze_records",
    "audit_rows",
]
