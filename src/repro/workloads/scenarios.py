"""End-to-end scenario builders: network + fault model + input stream.

A :class:`Scenario` bundles everything needed to run an experiment so that
examples and benchmarks stay declarative: which topology, who is faulty and
with what strategy, how many instances of how many bytes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.adversary.strategies import (
    DisputeLiarStrategy,
    EqualityGarbageStrategy,
    EquivocatingSourceStrategy,
    FalseFlagStrategy,
    Phase1CorruptingRelayStrategy,
    RandomizedChaosStrategy,
)
from repro.exceptions import ConfigurationError
from repro.graph.network_graph import NetworkGraph
from repro.transport.faults import ByzantineStrategy, FaultModel
from repro.types import NodeId
from repro.workloads.topologies import topology

_STRATEGIES = {
    "phase1-relay": Phase1CorruptingRelayStrategy,
    "equivocating-source": EquivocatingSourceStrategy,
    "equality-garbage": EqualityGarbageStrategy,
    "false-flag": FalseFlagStrategy,
    "dispute-liar": DisputeLiarStrategy,
    "chaos": RandomizedChaosStrategy,
}


@dataclass(frozen=True)
class Scenario:
    """A fully specified broadcast experiment.

    Attributes:
        name: Human-readable scenario name.
        graph: The capacitated network.
        source: Broadcasting node.
        max_faults: Resilience parameter ``f``.
        fault_model: Which nodes are Byzantine and their strategy.
        inputs: The values to broadcast, one per instance.
    """

    name: str
    graph: NetworkGraph
    source: NodeId
    max_faults: int
    fault_model: FaultModel
    inputs: Sequence[bytes]


def _make_inputs(instances: int, value_bytes: int, seed: int) -> List[bytes]:
    rng = random.Random(seed)
    return [bytes(rng.randrange(256) for _ in range(value_bytes)) for _ in range(instances)]


def fault_free_scenario(
    topology_name: str = "k4-fast",
    instances: int = 5,
    value_bytes: int = 8,
    max_faults: int = 1,
    seed: int = 0,
) -> Scenario:
    """A scenario with no Byzantine nodes (the common case in steady state)."""
    graph = topology(topology_name)
    return Scenario(
        name=f"fault-free/{topology_name}",
        graph=graph,
        source=1,
        max_faults=max_faults,
        fault_model=FaultModel(),
        inputs=_make_inputs(instances, value_bytes, seed),
    )


def adversarial_scenario(
    topology_name: str = "k4-fast",
    strategy_name: str = "equality-garbage",
    faulty_nodes: Sequence[NodeId] = (3,),
    instances: int = 5,
    value_bytes: int = 8,
    max_faults: int = 1,
    seed: int = 0,
    strategy: Optional[ByzantineStrategy] = None,
) -> Scenario:
    """A scenario with Byzantine nodes following a named (or custom) strategy.

    Raises:
        ConfigurationError: if the strategy name is unknown.
    """
    if strategy is None:
        if strategy_name not in _STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {strategy_name!r}; available: {', '.join(sorted(_STRATEGIES))}"
            )
        strategy = _STRATEGIES[strategy_name]()
    graph = topology(topology_name)
    return Scenario(
        name=f"{strategy.name}/{topology_name}",
        graph=graph,
        source=1,
        max_faults=max_faults,
        fault_model=FaultModel(faulty_nodes, strategy),
        inputs=_make_inputs(instances, value_bytes, seed),
    )
