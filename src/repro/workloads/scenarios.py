"""End-to-end scenario builders: network + fault model + input stream.

A :class:`Scenario` bundles everything needed to run an experiment so that
examples and benchmarks stay declarative: which topology, who is faulty and
with what strategy, how many instances of how many bytes.

All randomness is threaded through explicit :class:`random.Random` instances
derived from the scenario seed — never the module-level :mod:`random` state —
so scenarios are bit-for-bit reproducible even when many experiment-engine
cells are generated concurrently across worker processes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.adversary.strategies import (
    CrashStrategy,
    DisputeLiarStrategy,
    EqualityGarbageStrategy,
    EquivocatingSourceStrategy,
    FalseFlagStrategy,
    Phase1CorruptingRelayStrategy,
    RandomizedChaosStrategy,
    SubBroadcastLiarStrategy,
)
from repro.exceptions import ConfigurationError
from repro.graph.network_graph import NetworkGraph
from repro.transport.faults import ByzantineStrategy, FaultModel
from repro.types import NodeId
from repro.workloads.topologies import topology

#: Factories keyed by public strategy name.  Each factory takes the scenario
#: seed; deterministic strategies ignore it, seeded ones (chaos) consume it.
_STRATEGY_FACTORIES: Dict[str, Callable[[int], ByzantineStrategy]] = {
    "phase1-relay": lambda seed: Phase1CorruptingRelayStrategy(),
    "equivocating-source": lambda seed: EquivocatingSourceStrategy(),
    "equality-garbage": lambda seed: EqualityGarbageStrategy(),
    "false-flag": lambda seed: FalseFlagStrategy(),
    "dispute-liar": lambda seed: DisputeLiarStrategy(),
    "chaos": lambda seed: RandomizedChaosStrategy(seed=seed),
    "crash": lambda seed: CrashStrategy(),
    "sub-broadcast-liar": lambda seed: SubBroadcastLiarStrategy(),
}


def named_strategies() -> List[str]:
    """All available adversary strategy names, sorted."""
    return sorted(_STRATEGY_FACTORIES)


def make_strategy(name: str, seed: int = 0) -> ByzantineStrategy:
    """Instantiate the named adversary strategy.

    Args:
        name: One of :func:`named_strategies`.
        seed: Determinism seed for strategies with random behaviour (chaos);
            deterministic strategies ignore it.

    Raises:
        ConfigurationError: if the strategy name is unknown.
    """
    if name not in _STRATEGY_FACTORIES:
        raise ConfigurationError(
            f"unknown strategy {name!r}; available: {', '.join(named_strategies())}"
        )
    return _STRATEGY_FACTORIES[name](seed)


@dataclass(frozen=True)
class Scenario:
    """A fully specified broadcast experiment.

    Attributes:
        name: Human-readable scenario name.
        graph: The capacitated network.
        source: Broadcasting node.
        max_faults: Resilience parameter ``f``.
        fault_model: Which nodes are Byzantine and their strategy.
        inputs: The values to broadcast, one per instance.
        seed: The seed the input stream (and any seeded strategy) was derived
            from, so the scenario can be regenerated exactly.
    """

    name: str
    graph: NetworkGraph
    source: NodeId
    max_faults: int
    fault_model: FaultModel
    inputs: Sequence[bytes]
    seed: int = 0


def input_stream(rng: random.Random, instances: int, value_bytes: int) -> List[bytes]:
    """Generate ``instances`` random values of ``value_bytes`` bytes each.

    The caller owns the :class:`random.Random` instance, so the stream is a
    pure function of that generator's state — independent of the module-level
    :mod:`random` state and of whatever other scenarios are being built in the
    same process.
    """
    return [
        bytes(rng.randrange(256) for _ in range(value_bytes)) for _ in range(instances)
    ]


def _make_inputs(instances: int, value_bytes: int, seed: int) -> List[bytes]:
    return input_stream(random.Random(seed), instances, value_bytes)


def fault_free_scenario(
    topology_name: str = "k4-fast",
    instances: int = 5,
    value_bytes: int = 8,
    max_faults: int = 1,
    seed: int = 0,
    source: NodeId = 1,
) -> Scenario:
    """A scenario with no Byzantine nodes (the common case in steady state)."""
    graph = topology(topology_name)
    return Scenario(
        name=f"fault-free/{topology_name}",
        graph=graph,
        source=source,
        max_faults=max_faults,
        fault_model=FaultModel(),
        inputs=_make_inputs(instances, value_bytes, seed),
        seed=seed,
    )


def adversarial_scenario(
    topology_name: str = "k4-fast",
    strategy_name: str = "equality-garbage",
    faulty_nodes: Sequence[NodeId] = (3,),
    instances: int = 5,
    value_bytes: int = 8,
    max_faults: int = 1,
    seed: int = 0,
    strategy: Optional[ByzantineStrategy] = None,
    source: NodeId = 1,
) -> Scenario:
    """A scenario with Byzantine nodes following a named (or custom) strategy.

    Raises:
        ConfigurationError: if the strategy name is unknown.
    """
    if strategy is None:
        strategy = make_strategy(strategy_name, seed)
    graph = topology(topology_name)
    return Scenario(
        name=f"{strategy.name}/{topology_name}",
        graph=graph,
        source=source,
        max_faults=max_faults,
        fault_model=FaultModel(faulty_nodes, strategy),
        inputs=_make_inputs(instances, value_bytes, seed),
        seed=seed,
    )
