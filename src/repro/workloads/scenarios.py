"""End-to-end scenario builders: network + fault model + input stream.

A :class:`Scenario` bundles everything needed to run an experiment so that
examples and benchmarks stay declarative: which topology, who is faulty and
with what strategy, how many instances of how many bytes.

All randomness is threaded through explicit :class:`random.Random` instances
derived from the scenario seed — never the module-level :mod:`random` state —
so scenarios are bit-for-bit reproducible even when many experiment-engine
cells are generated concurrently across worker processes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.adversary.strategies import (
    CrashStrategy,
    DisputeLiarStrategy,
    EqualityGarbageStrategy,
    EquivocatingSourceStrategy,
    FalseFlagStrategy,
    Phase1CorruptingRelayStrategy,
    RandomizedChaosStrategy,
    SubBroadcastLiarStrategy,
)
from repro.adversary.zoo import zoo_strategy_factories
from repro.exceptions import ConfigurationError
from repro.graph.network_graph import NetworkGraph
from repro.transport.faults import ByzantineStrategy, FaultModel
from repro.types import NodeId
from repro.workloads.topologies import topology


def _options(params: Optional[Mapping[str, object]], *allowed: str) -> Dict[str, object]:
    """Validate a strategy's parameter mapping against its accepted keys."""
    options = dict(params or {})
    unknown = set(options) - set(allowed)
    if unknown:
        raise ConfigurationError(
            f"unknown strategy parameter(s): {sorted(unknown)}; accepted: {sorted(allowed) or 'none'}"
        )
    return options


#: Factories keyed by public strategy name.  Each factory takes the scenario
#: seed plus an optional parameter mapping; the seed is threaded into every
#: strategy (deterministic strategies store it without changing behaviour,
#: seeded ones — chaos and the zoo — consume it).
_STRATEGY_FACTORIES: Dict[str, Callable[..., ByzantineStrategy]] = {
    "phase1-relay": lambda seed, params=None: Phase1CorruptingRelayStrategy(
        seed=seed, **_options(params, "flip_mask")
    ),
    "equivocating-source": lambda seed, params=None: EquivocatingSourceStrategy(
        seed=seed, **_options(params, "flip_mask")
    ),
    "equality-garbage": lambda seed, params=None: EqualityGarbageStrategy(
        seed=seed, **_options(params, "offset")
    ),
    "false-flag": lambda seed, params=None: FalseFlagStrategy(
        seed=seed, **_options(params)
    ),
    "dispute-liar": lambda seed, params=None: DisputeLiarStrategy(
        seed=seed, **_options(params, "flip_mask")
    ),
    "chaos": lambda seed, params=None: RandomizedChaosStrategy(
        seed=seed, **_options(params)
    ),
    "crash": lambda seed, params=None: CrashStrategy(seed=seed, **_options(params)),
    "sub-broadcast-liar": lambda seed, params=None: SubBroadcastLiarStrategy(
        seed=seed, **_options(params)
    ),
}
_STRATEGY_FACTORIES.update(zoo_strategy_factories())


def named_strategies() -> List[str]:
    """All available adversary strategy names (hand-written and zoo), sorted."""
    return sorted(_STRATEGY_FACTORIES)


def strategy_attacks_source(name: str) -> bool:
    """Whether the named strategy requires the *source* to be faulty.

    Experiment specs use this to place the faulty set: a source-attacking
    strategy puts the adversary at the source (so validity is unconstrained),
    every other strategy corrupts relays/participants away from it.
    """
    return name == "equivocating-source"


def make_strategy(
    name: str,
    seed: int = 0,
    params: Optional[Mapping[str, object]] = None,
) -> ByzantineStrategy:
    """Instantiate the named adversary strategy.

    Args:
        name: One of :func:`named_strategies`.
        seed: Determinism seed, threaded into every strategy; strategies with
            random behaviour (chaos, the zoo) consume it.
        params: Optional strategy-specific parameters (the ``strategy_params``
            of a spec cell), e.g. ``{"targets": 1}`` for ``adaptive-dodger``
            or a full composition for ``composed``.

    Raises:
        ConfigurationError: if the strategy name or a parameter is unknown.
    """
    if name not in _STRATEGY_FACTORIES:
        raise ConfigurationError(
            f"unknown strategy {name!r}; available: {', '.join(named_strategies())}"
        )
    return _STRATEGY_FACTORIES[name](seed, params)


@dataclass(frozen=True)
class Scenario:
    """A fully specified broadcast experiment.

    Attributes:
        name: Human-readable scenario name.
        graph: The capacitated network.
        source: Broadcasting node.
        max_faults: Resilience parameter ``f``.
        fault_model: Which nodes are Byzantine and their strategy.
        inputs: The values to broadcast, one per instance.
        seed: The seed the input stream (and any seeded strategy) was derived
            from, so the scenario can be regenerated exactly.
    """

    name: str
    graph: NetworkGraph
    source: NodeId
    max_faults: int
    fault_model: FaultModel
    inputs: Sequence[bytes]
    seed: int = 0


def input_stream(rng: random.Random, instances: int, value_bytes: int) -> List[bytes]:
    """Generate ``instances`` random values of ``value_bytes`` bytes each.

    The caller owns the :class:`random.Random` instance, so the stream is a
    pure function of that generator's state — independent of the module-level
    :mod:`random` state and of whatever other scenarios are being built in the
    same process.
    """
    return [
        bytes(rng.randrange(256) for _ in range(value_bytes)) for _ in range(instances)
    ]


def _make_inputs(instances: int, value_bytes: int, seed: int) -> List[bytes]:
    return input_stream(random.Random(seed), instances, value_bytes)


def fault_free_scenario(
    topology_name: str = "k4-fast",
    instances: int = 5,
    value_bytes: int = 8,
    max_faults: int = 1,
    seed: int = 0,
    source: NodeId = 1,
) -> Scenario:
    """A scenario with no Byzantine nodes (the common case in steady state)."""
    graph = topology(topology_name)
    return Scenario(
        name=f"fault-free/{topology_name}",
        graph=graph,
        source=source,
        max_faults=max_faults,
        fault_model=FaultModel(),
        inputs=_make_inputs(instances, value_bytes, seed),
        seed=seed,
    )


def adversarial_scenario(
    topology_name: str = "k4-fast",
    strategy_name: str = "equality-garbage",
    faulty_nodes: Sequence[NodeId] = (3,),
    instances: int = 5,
    value_bytes: int = 8,
    max_faults: int = 1,
    seed: int = 0,
    strategy: Optional[ByzantineStrategy] = None,
    source: NodeId = 1,
    strategy_params: Optional[Mapping[str, object]] = None,
) -> Scenario:
    """A scenario with Byzantine nodes following a named (or custom) strategy.

    Raises:
        ConfigurationError: if the strategy name or a strategy parameter is
            unknown.
    """
    if strategy is None:
        strategy = make_strategy(strategy_name, seed, strategy_params)
    graph = topology(topology_name)
    return Scenario(
        name=f"{strategy.name}/{topology_name}",
        graph=graph,
        source=source,
        max_faults=max_faults,
        fault_model=FaultModel(faulty_nodes, strategy),
        inputs=_make_inputs(instances, value_bytes, seed),
        seed=seed,
    )
