"""Workload construction: named topologies and end-to-end scenarios.

These helpers give the examples and benchmarks a single place to obtain
reproducible experiment setups: a capacitated network, a Byzantine fault
model, a resilience parameter and a stream of inputs to broadcast.
"""

from repro.workloads.scenarios import (
    Scenario,
    adversarial_scenario,
    fault_free_scenario,
    input_stream,
    make_strategy,
    named_strategies,
)
from repro.workloads.topologies import named_topologies, topology

__all__ = [
    "topology",
    "named_topologies",
    "Scenario",
    "fault_free_scenario",
    "adversarial_scenario",
    "input_stream",
    "make_strategy",
    "named_strategies",
]
