"""Named topologies used by examples, tests and benchmarks.

Each topology is referenced by a short string so benchmark parameter sweeps
can list them declaratively.  The paper's example graphs (Figures 1 and 2) are
included alongside synthetic families.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from repro.exceptions import ConfigurationError
from repro.graph import generators
from repro.graph.network_graph import NetworkGraph

_TOPOLOGY_BUILDERS: Dict[str, Callable[[], NetworkGraph]] = {
    "figure1a": generators.figure1a,
    "figure1b": generators.figure1b,
    "figure2a": generators.figure2a,
    "k4-unit": lambda: generators.complete_graph(4, capacity=1),
    "k4-fast": lambda: generators.complete_graph(4, capacity=4),
    # "-hbd" marks capacity-rich fabrics in the InfiniteHBD/Octopus regime
    # (PAPERS.md): per-link capacity scaled so megabyte-class payloads keep
    # their per-symbol field degree inside the tabulated irreducible set.
    "k4-hbd": lambda: generators.complete_graph(4, capacity=64),
    "k5-unit": lambda: generators.complete_graph(5, capacity=1),
    "k5-hbd": lambda: generators.complete_graph(5, capacity=32),
    "k7-unit": lambda: generators.complete_graph(7, capacity=1),
    "k7-fast": lambda: generators.complete_graph(7, capacity=3),
    "ring7-chords": lambda: generators.ring_with_chords(7, chord_span=2, capacity=2),
    "bottleneck4": lambda: generators.heterogeneous_bottleneck(
        4, fast_capacity=8, slow_capacity=1
    ),
    "bottleneck5": lambda: generators.heterogeneous_bottleneck(
        5, fast_capacity=8, slow_capacity=1
    ),
    "pipeline-3x3": lambda: generators.layered_pipeline(3, 3, capacity=1),
    "pipeline-4x3": lambda: generators.layered_pipeline(4, 3, capacity=1),
    "pipeline-5x3": lambda: generators.layered_pipeline(5, 3, capacity=1),
    "pipeline-4x3-fast": lambda: generators.layered_pipeline(4, 3, capacity=4),
    "random6": lambda: generators.random_connected_network(
        6, 3, random.Random(1), max_capacity=4
    ),
    "random7": lambda: generators.random_connected_network(
        7, 3, random.Random(2), max_capacity=4
    ),
    # Datacenter-scale families (PR 8): deterministic symmetric fabrics at
    # 64-1024 nodes, analysed bounds-only via the datacenter_scale spec.
    # fat-tree-k has 5k^2/4 nodes and connectivity k/2; torus RxC has RC
    # nodes and connectivity 4; ring-of-rings and octopus fabrics use 3
    # uplinks / spine width 3 so the 64-node members stay f = 1 feasible.
    "fat-tree-8": lambda: generators.fat_tree(8, capacity=4),
    "fat-tree-16": lambda: generators.fat_tree(16, capacity=4),
    "torus-8x8": lambda: generators.torus_2d(8, 8, capacity=2),
    "torus-16x16": lambda: generators.torus_2d(16, 16, capacity=2),
    "torus-32x32": lambda: generators.torus_2d(32, 32, capacity=2),
    "ring-rings-8x8": lambda: generators.ring_of_rings(8, 8, uplinks=3),
    "ring-rings-16x16": lambda: generators.ring_of_rings(16, 16, uplinks=3),
    "ring-rings-32x32": lambda: generators.ring_of_rings(32, 32, uplinks=3),
    "octopus-8x8": lambda: generators.octopus_pods(8, 8, spine_width=3),
    "octopus-16x16": lambda: generators.octopus_pods(16, 16, spine_width=3),
    "octopus-32x32": lambda: generators.octopus_pods(32, 32, spine_width=3),
}


def named_topologies() -> List[str]:
    """All available topology names, sorted."""
    return sorted(_TOPOLOGY_BUILDERS)


def topology(name: str) -> NetworkGraph:
    """Build the named topology (a fresh graph each call).

    Raises:
        ConfigurationError: if the name is unknown.
    """
    if name not in _TOPOLOGY_BUILDERS:
        raise ConfigurationError(
            f"unknown topology {name!r}; available: {', '.join(named_topologies())}"
        )
    return _TOPOLOGY_BUILDERS[name]()
