"""Named topologies used by examples, tests and benchmarks.

Each topology is referenced by a short string so benchmark parameter sweeps
can list them declaratively.  The paper's example graphs (Figures 1 and 2) are
included alongside synthetic families.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from repro.exceptions import ConfigurationError
from repro.graph import generators
from repro.graph.network_graph import NetworkGraph

_TOPOLOGY_BUILDERS: Dict[str, Callable[[], NetworkGraph]] = {
    "figure1a": generators.figure1a,
    "figure1b": generators.figure1b,
    "figure2a": generators.figure2a,
    "k4-unit": lambda: generators.complete_graph(4, capacity=1),
    "k4-fast": lambda: generators.complete_graph(4, capacity=4),
    # "-hbd" marks capacity-rich fabrics in the InfiniteHBD/Octopus regime
    # (PAPERS.md): per-link capacity scaled so megabyte-class payloads keep
    # their per-symbol field degree inside the tabulated irreducible set.
    "k4-hbd": lambda: generators.complete_graph(4, capacity=64),
    "k5-unit": lambda: generators.complete_graph(5, capacity=1),
    "k5-hbd": lambda: generators.complete_graph(5, capacity=32),
    "k7-unit": lambda: generators.complete_graph(7, capacity=1),
    "k7-fast": lambda: generators.complete_graph(7, capacity=3),
    "ring7-chords": lambda: generators.ring_with_chords(7, chord_span=2, capacity=2),
    "bottleneck4": lambda: generators.heterogeneous_bottleneck(
        4, fast_capacity=8, slow_capacity=1
    ),
    "bottleneck5": lambda: generators.heterogeneous_bottleneck(
        5, fast_capacity=8, slow_capacity=1
    ),
    "pipeline-3x3": lambda: generators.layered_pipeline(3, 3, capacity=1),
    "pipeline-4x3": lambda: generators.layered_pipeline(4, 3, capacity=1),
    "pipeline-5x3": lambda: generators.layered_pipeline(5, 3, capacity=1),
    "pipeline-4x3-fast": lambda: generators.layered_pipeline(4, 3, capacity=4),
    "random6": lambda: generators.random_connected_network(
        6, 3, random.Random(1), max_capacity=4
    ),
    "random7": lambda: generators.random_connected_network(
        7, 3, random.Random(2), max_capacity=4
    ),
}


def named_topologies() -> List[str]:
    """All available topology names, sorted."""
    return sorted(_TOPOLOGY_BUILDERS)


def topology(name: str) -> NetworkGraph:
    """Build the named topology (a fresh graph each call).

    Raises:
        ConfigurationError: if the name is unknown.
    """
    if name not in _TOPOLOGY_BUILDERS:
        raise ConfigurationError(
            f"unknown topology {name!r}; available: {', '.join(named_topologies())}"
        )
    return _TOPOLOGY_BUILDERS[name]()
