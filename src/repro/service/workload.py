"""Deterministic session workload generation for benchmarks and chaos runs.

A workload is a pure function of its arguments: session ``i`` gets the
``i``-th topology/strategy of the given cycles, a stable human-readable id and
a SHA-256-derived private seed, so two processes generating the same workload
agree on every session byte for byte — the premise of the chaos harness's
"restart with the same arguments and resume" contract.

Faulty-set placement mirrors the experiment grid
(:meth:`repro.engine.spec.ExperimentSpec._faulty_nodes`): source-attacking
strategies corrupt the source itself, every other strategy corrupts the ``f``
highest-numbered non-source nodes, fault-free sessions corrupt nobody.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.service.session import FAULT_FREE, SessionSpec, session_seed
from repro.types import NodeId
from repro.workloads.scenarios import named_strategies, strategy_attacks_source
from repro.workloads.topologies import topology
from repro.exceptions import ConfigurationError


def _placement(
    strategy: str, topology_name: str, source: NodeId, max_faults: int
) -> Tuple[NodeId, ...]:
    """Deterministic faulty-set placement (the experiment grid's rule)."""
    if strategy == FAULT_FREE:
        return ()
    nodes = sorted(topology(topology_name).nodes())
    non_source = [node for node in nodes if node != source]
    if strategy_attacks_source(strategy):
        extras = sorted(non_source, reverse=True)[: max_faults - 1]
        return tuple(sorted([source] + extras))
    return tuple(sorted(sorted(non_source, reverse=True)[:max_faults]))


def generate_sessions(
    count: int,
    topologies: Sequence[str] = ("k7-unit",),
    strategies: Sequence[str] = (FAULT_FREE,),
    payload_bytes: int = 2,
    instances: int = 1,
    max_faults: int = 1,
    seed: int = 0,
    service: str = "service",
    source: NodeId = 1,
) -> List[SessionSpec]:
    """``count`` deterministic sessions cycling the topology/strategy axes.

    Session ``i`` uses ``topologies[i % len]`` and ``strategies[i % len]``;
    its id is ``{service}/{i:06d}/{topology}/{strategy}`` and its seed is
    derived from ``seed`` and that id, so disjoint workloads never share
    randomness and identical calls reproduce identical specs.

    Raises:
        ConfigurationError: if an axis is empty or a strategy is unknown.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    if not topologies or not strategies:
        raise ConfigurationError("topologies and strategies must be non-empty")
    known = set(named_strategies()) | {FAULT_FREE}
    for name in strategies:
        if name not in known:
            raise ConfigurationError(
                f"unknown strategy {name!r}; available: {sorted(known)}"
            )
    sessions: List[SessionSpec] = []
    for index in range(count):
        topology_name = topologies[index % len(topologies)]
        strategy = strategies[index % len(strategies)]
        session_id = f"{service}/{index:06d}/{topology_name}/{strategy}"
        sessions.append(
            SessionSpec(
                service=service,
                session_id=session_id,
                topology=topology_name,
                strategy=strategy,
                faulty_nodes=_placement(strategy, topology_name, source, max_faults),
                payload_bytes=payload_bytes,
                instances=instances,
                max_faults=max_faults,
                seed=session_seed(seed, session_id),
                source=source,
            )
        )
    return sessions
