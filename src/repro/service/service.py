"""The session-service orchestrator: resume, run, compact, report.

:class:`BroadcastSessionService` ties the pieces together.  A run:

1. **Resumes** from the output file (completed rows are reused, exactly the
   engine runner's contract: well-formed, schema-matching, error-free rows
   keyed by session id) and from the write-ahead log (the latest snapshot per
   in-flight session becomes that session's resume point; shed notices stay
   sticky).
2. **Executes** the pending sessions on the supervised pool
   (:func:`repro.service.pool.run_pool`), streaming one JSONL row per
   completed session to the output file and every checkpoint to the WAL.
3. **Compacts** the output into canonical submission order with the
   tmp+fsync+atomic-replace contract, settles the WAL (snapshots of settled
   sessions are dropped; shed notices are kept), writes the quarantine file,
   and persists the ops metrics to ``<out>.status.json``.

Because session rows are pure functions of their spec and checkpoints restore
exactly, a run that was SIGKILLed anywhere — worker, driver, mid-write — and
rerun with the same arguments produces a byte-identical output file.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.service.metrics import ServiceMetrics
from repro.service.pool import AdmissionController, PoolTask, run_pool
from repro.service.session import SESSION_SCHEMA_VERSION, SessionSpec
from repro.service.wal import WriteAheadLog, load_wal, write_rows_atomically
from repro.engine.runner import dump_row


@dataclass(frozen=True)
class ServiceConfig:
    """Operating parameters of one service run.

    Attributes:
        name: Service name; rows from other services are never reused.
        out_path: The sessions JSONL file (WAL, quarantine and status files
            live next to it as ``<out>.wal.jsonl``, ``<out>.quarantine.jsonl``
            and ``<out>.status.json``).
        workers: Pool size; ``1`` runs serially in-process.
        queue_depth: Bound of each worker's dispatch queue.
        checkpoint_every: Instances between WAL checkpoints within a session.
        fsync_every: WAL fsync cadence (1 = every checkpoint).
        max_session_retries: Crash-retry budget per session.
        retry_backoff: Base seconds of the crash-retry exponential backoff.
        admission_seed: Seed of the deterministic shed lattice.
        shed_soft_limit: Queued-session level where shedding starts
            (``None`` disables shedding — the byte-identity configuration).
        shed_hard_limit: Queued-session level where the dispatcher
            backpressures instead of enqueueing.
    """

    name: str = "service"
    out_path: Optional[str] = None
    workers: int = 1
    queue_depth: int = 32
    checkpoint_every: int = 1
    fsync_every: int = 1
    max_session_retries: int = 2
    retry_backoff: float = 0.5
    admission_seed: int = 0
    shed_soft_limit: Optional[int] = None
    shed_hard_limit: int = 1 << 30


@dataclass(frozen=True)
class ServiceSummary:
    """Outcome of one :meth:`BroadcastSessionService.run` invocation.

    Attributes:
        service: The service name.
        rows: All session rows available at the end, in submission order.
        computed_sessions: Sessions actually executed this run.
        skipped_sessions: Rows reused from the existing output file.
        shed_sessions: Sessions refused by load shedding (absent from
            ``rows``; their notices live in the WAL).
        total_sessions: Size of the submitted workload.
        out_path: The output file, or ``None`` for in-memory runs.
        discarded_rows: Output/WAL lines dropped during resume.
        retried_sessions: Distinct sessions retried after worker deaths.
        quarantined_sessions: Sessions abandoned after the retry budget.
        quarantine_path: The quarantine file, or ``None`` when empty.
        stale_quarantined_sessions: Sessions a *prior* run quarantined that
            this run neither completed nor re-quarantined — the file is left
            in place and must not be silently ignored.
        status_path: The persisted ops-metrics file, or ``None``.
        metrics: The run's ops counters.
    """

    service: str
    rows: List[Dict[str, object]]
    computed_sessions: int
    skipped_sessions: int
    shed_sessions: int
    total_sessions: int
    out_path: Optional[str]
    discarded_rows: int = 0
    retried_sessions: int = 0
    quarantined_sessions: int = 0
    quarantine_path: Optional[str] = None
    stale_quarantined_sessions: int = 0
    status_path: Optional[str] = None
    metrics: ServiceMetrics = field(default_factory=ServiceMetrics)


def wal_path_for(out_path: str) -> str:
    """The write-ahead log next to an output file."""
    return out_path + ".wal.jsonl"


def quarantine_path_for(out_path: str) -> str:
    """The quarantine file next to an output file."""
    return out_path + ".quarantine.jsonl"


def status_path_for(out_path: str) -> str:
    """The ops-metrics file next to an output file."""
    return out_path + ".status.json"


def _load_completed_rows(
    path: str, service: str, sessions: Sequence[SessionSpec]
) -> Tuple[Dict[str, Dict[str, object]], int]:
    """Reusable completed rows keyed by session id, plus discarded line count.

    The engine runner's resume contract: malformed lines (a truncated tail
    after a kill), rows of another service/seed and errored rows (retried
    rather than frozen in) are counted and dropped.
    """
    expected = {spec.session_id: spec for spec in sessions}
    completed: Dict[str, Dict[str, object]] = {}
    discarded = 0
    if not os.path.exists(path):
        return completed, discarded
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                discarded += 1
                continue
            if not isinstance(row, dict):
                discarded += 1
                continue
            spec = expected.get(row.get("session_id"))
            if (
                spec is not None
                and row.get("schema") == SESSION_SCHEMA_VERSION
                and row.get("service") == service
                and row.get("seed") == spec.seed
                and row.get("error") is None
            ):
                completed[spec.session_id] = row
            else:
                discarded += 1
    return completed, discarded


def _ends_with_newline(path: str) -> bool:
    """Whether the file's last byte is a newline (vacuously true when empty)."""
    try:
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() == 0:
                return True
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) == b"\n"
    except OSError:
        return True


def _write_status_atomically(path: str, payload: Dict[str, object]) -> None:
    """Persist the ops metrics with the tmp+replace contract (ops data only)."""
    tmp_path = path + ".tmp"
    try:
        with open(tmp_path, "w", encoding="utf-8") as tmp:
            json.dump(payload, tmp, indent=2, sort_keys=True)
            tmp.write("\n")
            tmp.flush()
            os.fsync(tmp.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


class BroadcastSessionService:
    """A resumable, crash-tolerant run of many broadcast sessions."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config

    def run(
        self, sessions: Sequence[SessionSpec], resume: bool = True
    ) -> ServiceSummary:
        """Run (or resume) the workload; one canonical JSONL row per session.

        Args:
            sessions: The workload, in submission order (the canonical order
                of the compacted output file).
            resume: Reuse completed rows and WAL snapshots from a prior run.
                ``False`` ignores and overwrites any existing files.

        Returns:
            A :class:`ServiceSummary`; when the run settled every session,
            ``rows`` matches the persisted file line for line.
        """
        config = self.config
        metrics = ServiceMetrics()
        metrics.sessions_submitted = len(sessions)
        out_path = config.out_path

        completed: Dict[str, Dict[str, object]] = {}
        discarded = 0
        snapshots: Dict[str, Dict[str, object]] = {}
        shed_ids: Set[str] = set()
        if out_path:
            directory = os.path.dirname(os.path.abspath(out_path))
            os.makedirs(directory, exist_ok=True)
            if resume:
                completed, discarded = _load_completed_rows(
                    out_path, config.name, sessions
                )
                snapshots, shed_ids, wal_discarded = load_wal(
                    wal_path_for(out_path), schema=SESSION_SCHEMA_VERSION
                )
                discarded += wal_discarded
            else:
                for stale in (wal_path_for(out_path),):
                    try:
                        os.remove(stale)
                    except FileNotFoundError:
                        pass
        metrics.sessions_resumed_from_output = len(completed)
        metrics.sessions_shed = len(shed_ids)

        tasks: List[PoolTask] = []
        for spec in sessions:
            if spec.session_id in completed or spec.session_id in shed_ids:
                continue
            snapshot = snapshots.get(spec.session_id)
            if snapshot is not None:
                metrics.sessions_restored += 1
            tasks.append(PoolTask(spec=spec, snapshot=snapshot))

        handle = None
        wal = None
        computed: Dict[str, Dict[str, object]] = {}
        retried = 0
        quarantine_rows: List[Dict[str, object]] = []
        started = time.perf_counter()
        try:
            if out_path:
                if resume and completed and (
                    discarded or not _ends_with_newline(out_path)
                ):
                    # The file held lines we are not reusing or a partial
                    # tail: rewrite only the good rows before appending, so
                    # new rows never glue onto a broken line.
                    write_rows_atomically(
                        out_path,
                        [
                            completed[spec.session_id]
                            for spec in sessions
                            if spec.session_id in completed
                        ],
                    )
                handle = open(
                    out_path, "a" if (resume and completed) else "w", encoding="utf-8"
                )
                wal = WriteAheadLog(
                    wal_path_for(out_path), fsync_every=config.fsync_every
                )

            def emit(row: Dict[str, object], task: PoolTask) -> None:
                computed[task.spec.session_id] = row
                if handle is not None:
                    handle.write(dump_row(row) + "\n")
                    handle.flush()

            def wal_append(row: Dict[str, object]) -> None:
                if wal is not None:
                    wal.append(row)

            def on_shed(spec: SessionSpec) -> None:
                shed_ids.add(spec.session_id)
                notice: Dict[str, object] = {
                    "kind": "shed",
                    "schema": SESSION_SCHEMA_VERSION,
                }
                notice.update(spec.to_jsonable())
                wal_append(notice)

            if tasks:
                retried, quarantine_rows = run_pool(
                    tasks,
                    workers=config.workers,
                    emit=emit,
                    wal_append=wal_append,
                    metrics=metrics,
                    queue_depth=config.queue_depth,
                    checkpoint_every=config.checkpoint_every,
                    max_session_retries=config.max_session_retries,
                    retry_backoff=config.retry_backoff,
                    admission=AdmissionController(
                        seed=config.admission_seed,
                        soft_limit=config.shed_soft_limit,
                        hard_limit=config.shed_hard_limit,
                    ),
                    on_shed=on_shed,
                )
            else:
                metrics.capture_cache_stats()
        finally:
            if handle is not None:
                handle.close()
            if wal is not None:
                wal.close()
        metrics.wall_seconds = time.perf_counter() - started
        metrics.sessions_retried = retried

        available = dict(completed)
        available.update(computed)
        rows = [
            available[spec.session_id]
            for spec in sessions
            if spec.session_id in available
        ]

        quarantine_path = None
        stale_quarantined = 0
        status_path = None
        if out_path:
            # Compact to canonical submission order: fresh and resumed runs
            # of the same workload produce byte-identical files.
            write_rows_atomically(out_path, rows)
            # Settle the WAL: snapshots of settled sessions are obsolete;
            # shed notices survive so shed decisions stay sticky.
            if shed_ids:
                notices: List[Dict[str, object]] = []
                for spec in sessions:
                    if spec.session_id in shed_ids:
                        notice = {
                            "kind": "shed",
                            "schema": SESSION_SCHEMA_VERSION,
                        }
                        notice.update(spec.to_jsonable())
                        notices.append(notice)
                write_rows_atomically(wal_path_for(out_path), notices)
            else:
                try:
                    os.remove(wal_path_for(out_path))
                except FileNotFoundError:
                    pass

            candidate = quarantine_path_for(out_path)
            if quarantine_rows:
                write_rows_atomically(candidate, quarantine_rows)
                quarantine_path = candidate
            elif os.path.exists(candidate):
                stale_quarantined = self._settle_stale_quarantine(
                    candidate, available
                )
                if stale_quarantined:
                    quarantine_path = candidate

            status_path = status_path_for(out_path)
            _write_status_atomically(
                status_path,
                {
                    "service": config.name,
                    "out_path": out_path,
                    "total_sessions": len(sessions),
                    "settled_sessions": len(rows),
                    "quarantine_path": quarantine_path,
                    "stale_quarantined_sessions": stale_quarantined,
                    "metrics": metrics.to_jsonable(),
                },
            )

        return ServiceSummary(
            service=config.name,
            rows=rows,
            computed_sessions=len(computed),
            skipped_sessions=len(completed),
            shed_sessions=len(shed_ids),
            total_sessions=len(sessions),
            out_path=out_path,
            discarded_rows=discarded,
            retried_sessions=retried,
            quarantined_sessions=len(quarantine_rows),
            quarantine_path=quarantine_path,
            stale_quarantined_sessions=stale_quarantined,
            status_path=status_path,
            metrics=metrics,
        )

    @staticmethod
    def _settle_stale_quarantine(
        candidate: str, available: Dict[str, Dict[str, object]]
    ) -> int:
        """Handle a quarantine file left by a *prior* run.

        Sessions it names that are now completed are vindicated; if every one
        is, the file is removed.  Any session still unaccounted for keeps the
        file in place and is counted, so stale quarantines are reported, never
        silently ignored.
        """
        stale = 0
        try:
            with open(candidate, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        row = json.loads(line)
                    except json.JSONDecodeError:
                        stale += 1
                        continue
                    if not isinstance(row, dict):
                        stale += 1
                        continue
                    if row.get("session_id") not in available:
                        stale += 1
        except OSError:
            return 0
        if stale == 0:
            try:
                os.remove(candidate)
            except FileNotFoundError:
                pass
        return stale
