"""The supervised session pool: persistent workers, affinity, degradation.

This generalises the engine runner's crash-tolerant pool (PR 6) from one-shot
sweep workers to a long-lived service:

* **Persistent workers.**  Each worker owns a private duplex pipe and serves
  many sessions, keeping its per-topology contexts and budgeted kernel /
  structure caches warm across sessions — the latency win a long-running
  service exists for.  Death (pipe EOF) is still attributable to exactly one
  in-flight session.
* **Snapshot streaming.**  While executing, a worker streams checkpoint rows
  (``("snapshot", row)``) back through its pipe before the final
  ``("done", row)``; the single-threaded supervisor appends them to the
  write-ahead log.  A worker SIGKILLed mid-session therefore leaves its
  latest checkpoint durable, and the retry resumes from it instead of
  starting over.
* **Topology-affine dispatch with work stealing.**  Sessions are enqueued on
  the worker whose last session shared their topology (bounded per-worker
  queues); an idle worker with an empty queue steals from the longest queue,
  so affinity never causes starvation.
* **Graceful degradation.**  When every queue is full the dispatcher waits
  (a backpressure counter records it); under configured overload the
  :class:`AdmissionController` sheds sessions *deterministically* — a
  SHA-256 lattice point derived from the session id decides, so which
  sessions are sheddable is a pure function of identity, not of scheduling
  noise.  Sessions whose worker died are retried with exponential backoff and
  quarantined after ``max_session_retries`` retries: one poisoned session
  never stalls the pool.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
from collections import deque
from dataclasses import dataclass, field
from fractions import Fraction
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.service.metrics import ServiceMetrics, process_cache_sample
from repro.service.session import SESSION_SCHEMA_VERSION, SessionSpec, run_session

#: Resolution of the admission lattice: the shed decision quantises the
#: overload fraction to ``1 / ADMISSION_STEPS`` (same grid as the link-fault
#: lattice, so rates that are lattice multiples are realised exactly).
ADMISSION_STEPS = 1 << 16


def admission_point(seed: int, session_id: str) -> Fraction:
    """The session's fixed lattice point in ``[0, 1)`` for shed decisions.

    Deterministic per ``(seed, session_id)``: a session keeps the same shed
    priority however often it is offered, and two runs of the same workload
    agree on which sessions are shed at any given overload level.
    """
    digest = hashlib.sha256(f"admission|{seed}|{session_id}".encode()).digest()
    return Fraction(int.from_bytes(digest[:4], "big") % ADMISSION_STEPS, ADMISSION_STEPS)


@dataclass(frozen=True)
class AdmissionController:
    """Deterministic seeded-lattice load shedding over a soft/hard band.

    Below ``soft_limit`` queued sessions everything is admitted.  Between the
    limits, the shed fraction ramps linearly from 0 to 1: a session is shed
    iff its :func:`admission_point` falls below the ramp.  At or above
    ``hard_limit`` the dispatcher stops offering (backpressure) rather than
    shedding blindly, so the hard bound is never exceeded.

    ``soft_limit=None`` disables shedding entirely — the configuration the
    byte-identity paths (chaos harness, benchmarks) run with.
    """

    seed: int = 0
    soft_limit: Optional[int] = None
    hard_limit: int = 1 << 30

    def shed_fraction(self, queued: int) -> Fraction:
        """How much of the lattice is shed at ``queued`` enqueued sessions."""
        if self.soft_limit is None or queued < self.soft_limit:
            return Fraction(0)
        if queued >= self.hard_limit or self.hard_limit <= self.soft_limit:
            return Fraction(1)
        return Fraction(queued - self.soft_limit, self.hard_limit - self.soft_limit)

    def admits(self, session_id: str, queued: int) -> bool:
        """Whether to admit ``session_id`` with ``queued`` sessions enqueued."""
        fraction = self.shed_fraction(queued)
        if fraction == 0:
            return True
        return admission_point(self.seed, session_id) >= fraction


@dataclass
class PoolTask:
    """One session's journey through the pool."""

    spec: SessionSpec
    snapshot: Optional[Dict[str, object]] = None
    attempts: int = 0
    exitcodes: List[Optional[int]] = field(default_factory=list)
    submitted_at: float = 0.0


def quarantine_row(task: PoolTask) -> Dict[str, object]:
    """The JSONL row describing a quarantined session (PR 6 idiom)."""
    row: Dict[str, object] = {"schema": SESSION_SCHEMA_VERSION}
    row.update(task.spec.to_jsonable())
    row["attempts"] = task.attempts
    row["worker_exitcodes"] = list(task.exitcodes)
    row["error"] = (
        f"WorkerCrash: worker process died {task.attempts} time(s) "
        "executing this session"
    )
    return row


def execute_session(
    spec: SessionSpec,
    snapshot: Optional[Dict[str, object]],
    checkpoint: Optional[Callable[[Dict[str, object]], None]],
    checkpoint_every: int,
) -> Dict[str, object]:
    """Run one session, folding deterministic failures into an error row.

    Only process death is a pool-level event; a session that raises (bad
    topology, protocol violation) yields a row with its ``error`` field set,
    exactly like the engine runner's cells, so the pool keeps draining.
    """
    try:
        return run_session(
            spec,
            snapshot=snapshot,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
        )
    except Exception as exc:  # noqa: BLE001 - services must survive bad sessions
        row: Dict[str, object] = {"schema": SESSION_SCHEMA_VERSION}
        row.update(spec.to_jsonable())
        row["record"] = None
        row["error"] = f"{type(exc).__name__}: {exc}"
        return row


def _service_worker_main(conn: Connection, checkpoint_every: int) -> None:
    """Persistent-worker child: serve sessions off ``conn`` until told to stop.

    Request: ``(spec_jsonable, snapshot_or_None)``.  Response stream: zero or
    more ``("snapshot", row)`` checkpoints followed by one ``("done", row)``.
    A ``None`` request is the shutdown signal, answered with one
    ``("stats", sample)`` — the worker's warm-cache and RSS sample for the
    ops surface — before exiting.  Warm caches (topology contexts, kernel
    operand caches, structure caches) live for the worker's whole life —
    that is the point of persistence; every one of them is budget- or
    entry-bounded, so memory stays flat.
    """
    try:
        while True:
            try:
                request = conn.recv()
            except (EOFError, OSError):
                return
            if request is None:
                try:
                    conn.send(("stats", process_cache_sample()))
                except (OSError, ValueError):
                    pass
                return
            spec_data, snapshot = request
            spec = SessionSpec.from_jsonable(spec_data)
            row = execute_session(
                spec,
                snapshot,
                checkpoint=lambda row: conn.send(("snapshot", row)),
                checkpoint_every=checkpoint_every,
            )
            conn.send(("done", row))
    finally:
        conn.close()


class _WorkerSlot:
    """Supervisor-side state of one persistent worker."""

    def __init__(self, queue_depth: int) -> None:
        self.conn: Optional[Connection] = None
        self.process = None
        self.queue: Deque[PoolTask] = deque()
        self.queue_depth = queue_depth
        self.busy: Optional[PoolTask] = None
        self.last_topology: Optional[str] = None

    def has_room(self) -> bool:
        return len(self.queue) < self.queue_depth


def run_pool(
    tasks: Sequence[PoolTask],
    workers: int,
    emit: Callable[[Dict[str, object], PoolTask], None],
    wal_append: Callable[[Dict[str, object]], None],
    metrics: ServiceMetrics,
    queue_depth: int = 32,
    checkpoint_every: int = 1,
    max_session_retries: int = 2,
    retry_backoff: float = 0.5,
    admission: Optional[AdmissionController] = None,
    on_shed: Optional[Callable[[SessionSpec], None]] = None,
) -> Tuple[int, List[Dict[str, object]]]:
    """Drain ``tasks`` through the supervised persistent-worker pool.

    Args:
        tasks: The sessions to run (with any resume snapshots attached).
        workers: Pool size; ``<= 1`` runs serially in-process (checkpoints
            still stream to the WAL, so a killed *driver* resumes too).
        emit: Called with each completed row and its task (single-threaded).
        wal_append: Called with each streamed snapshot row (single-threaded).
        metrics: Counters updated in place.
        queue_depth: Bound of each worker's supervisor-side queue.
        checkpoint_every: Instances between checkpoints within a session.
        max_session_retries: Crash-retry budget per session before quarantine.
        retry_backoff: Base seconds before a crashed session's retry
            (doubled per subsequent crash); ``0`` retries immediately.
        admission: Load-shedding policy; ``None`` admits everything.
        on_shed: Called with each shed session's spec.

    Returns:
        ``(retried_session_count, quarantine_rows)``.
    """
    if admission is None:
        admission = AdmissionController()
    pool_started = time.perf_counter()

    def shed(task: PoolTask) -> None:
        metrics.sessions_shed += 1
        if on_shed is not None:
            on_shed(task.spec)

    if workers <= 1:
        return _run_serial(tasks, emit, wal_append, metrics, checkpoint_every)

    ctx = multiprocessing.get_context()
    slots = [_WorkerSlot(queue_depth) for _ in range(workers)]

    def spawn(slot: _WorkerSlot) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_service_worker_main,
            args=(child_conn, checkpoint_every),
            daemon=True,
        )
        process.start()
        child_conn.close()
        slot.conn = parent_conn
        slot.process = process

    def reap(slot: _WorkerSlot) -> Optional[int]:
        process, conn = slot.process, slot.conn
        slot.process, slot.conn = None, None
        if conn is not None:
            conn.close()
        if process is None:
            return None
        process.join()
        return process.exitcode

    for slot in slots:
        spawn(slot)

    offered: Deque[PoolTask] = deque(tasks)
    retried: set = set()
    quarantined: List[Dict[str, object]] = []
    #: Latest streamed snapshot per in-flight session: the resume point a
    #: crash retry uses (strictly newer than anything loaded from the WAL).
    latest_snapshot: Dict[str, Dict[str, object]] = {}

    def total_queued() -> int:
        return sum(len(slot.queue) for slot in slots) + sum(
            1 for slot in slots if slot.busy is not None
        )

    def enqueue_ready() -> None:
        """Admit/shed offered sessions into bounded queues until full."""
        stalled = False
        while offered:
            queued = total_queued()
            if queued >= admission.hard_limit:
                stalled = True
                break
            task = offered[0]
            if task.attempts == 0 and not admission.admits(
                task.spec.session_id, queued
            ):
                offered.popleft()
                shed(task)
                continue
            preferred = None
            for slot in slots:
                if slot.has_room() and slot.last_topology == task.spec.topology:
                    preferred = slot
                    break
            if preferred is None:
                with_room = [slot for slot in slots if slot.has_room()]
                if not with_room:
                    stalled = True
                    break
                preferred = min(with_room, key=lambda slot: len(slot.queue))
            offered.popleft()
            task.submitted_at = time.perf_counter()
            preferred.queue.append(task)
        if stalled and any(slot.busy is not None for slot in slots):
            metrics.backpressure_waits += 1

    def next_task_for(slot: _WorkerSlot) -> Optional[PoolTask]:
        """The slot's own queue first; else steal from the longest queue."""
        if slot.queue:
            return slot.queue.popleft()
        victim = max(slots, key=lambda other: len(other.queue))
        if victim.queue:
            metrics.work_steals += 1
            # Steal from the tail: the head preserves the victim's affinity.
            return victim.queue.pop()
        return None

    def dispatch() -> None:
        for slot in slots:
            while slot.busy is None:
                task = next_task_for(slot)
                if task is None:
                    break
                snapshot = latest_snapshot.get(task.spec.session_id, task.snapshot)
                try:
                    slot.conn.send((task.spec.to_jsonable(), snapshot))
                except (OSError, ValueError):
                    # Died while idle: the session was never attempted, so it
                    # goes back unharmed and the worker is replaced.
                    slot.queue.appendleft(task)
                    reap(slot)
                    spawn(slot)
                    continue
                slot.busy = task
                slot.last_topology = task.spec.topology

    try:
        while offered or any(slot.queue for slot in slots) or any(
            slot.busy is not None for slot in slots
        ):
            enqueue_ready()
            dispatch()
            busy_conns = {slot.conn: slot for slot in slots if slot.busy is not None}
            if not busy_conns:
                continue
            for conn in _connection_wait(list(busy_conns)):
                slot = busy_conns[conn]
                task = slot.busy
                try:
                    kind, row = conn.recv()
                except (EOFError, OSError):
                    # Death mid-session (OOM kill, SIGKILL, segfault): the
                    # streamed checkpoints are already in the WAL, so the
                    # retry resumes from the latest one instead of replaying
                    # the whole session.
                    slot.busy = None
                    task.attempts += 1
                    task.exitcodes.append(reap(slot))
                    spawn(slot)
                    if task.attempts > max_session_retries:
                        quarantined.append(quarantine_row(task))
                        metrics.sessions_quarantined += 1
                        latest_snapshot.pop(task.spec.session_id, None)
                    else:
                        retried.add(task.spec.session_id)
                        metrics.sessions_retried = len(retried)
                        if retry_backoff > 0:
                            time.sleep(retry_backoff * 2 ** (task.attempts - 1))
                        if task.spec.session_id in latest_snapshot:
                            metrics.sessions_restored += 1
                        offered.append(task)
                    continue
                if kind == "snapshot":
                    latest_snapshot[task.spec.session_id] = row
                    wal_append(row)
                    metrics.snapshots_written += 1
                    continue
                slot.busy = None
                latest_snapshot.pop(task.spec.session_id, None)
                metrics.record_latency(time.perf_counter() - task.submitted_at)
                _account_completion(metrics, row, task)
                emit(row, task)
    finally:
        metrics.queue_depths = [len(slot.queue) for slot in slots]
        worker_samples: List[Dict[str, object]] = []
        for slot in slots:
            if slot.conn is not None:
                try:
                    slot.conn.send(None)
                    if slot.conn.poll(5):
                        kind, sample = slot.conn.recv()
                        if kind == "stats":
                            worker_samples.append(sample)
                except (OSError, ValueError, EOFError):
                    pass
                slot.conn.close()
            if slot.process is not None:
                slot.process.join(timeout=5)
                if slot.process.is_alive():
                    slot.process.terminate()
                    slot.process.join()
        metrics.capture_cache_stats(worker_samples)
        metrics.wall_seconds = time.perf_counter() - pool_started
    return len(retried), quarantined


def _account_completion(metrics, row, task) -> None:
    """Settle the completion counters for one finished session row."""
    metrics.sessions_completed += 1
    if row.get("error") is not None:
        metrics.sessions_failed += 1
    else:
        metrics.instances_executed += task.spec.instances


def _run_serial(
    tasks: Sequence[PoolTask],
    emit: Callable[[Dict[str, object], PoolTask], None],
    wal_append: Callable[[Dict[str, object]], None],
    metrics: ServiceMetrics,
    checkpoint_every: int,
) -> Tuple[int, List[Dict[str, object]]]:
    """In-process execution: no worker crashes, but driver kills still resume."""
    serial_started = time.perf_counter()

    def checkpoint(row: Dict[str, object]) -> None:
        wal_append(row)
        metrics.snapshots_written += 1

    for task in tasks:
        task.submitted_at = time.perf_counter()
        row = execute_session(
            task.spec, task.snapshot, checkpoint, checkpoint_every
        )
        metrics.record_latency(time.perf_counter() - task.submitted_at)
        _account_completion(metrics, row, task)
        emit(row, task)
    metrics.queue_depths = [0]
    metrics.capture_cache_stats()
    metrics.wall_seconds = time.perf_counter() - serial_started
    return 0, []
