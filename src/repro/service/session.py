"""One broadcast session: spec, warm topology context, checkpointed execution.

A :class:`SessionSpec` is the unit of work the service multiplexes: ``Q``
NAB instances on one topology under one adversary, all derived
deterministically from the spec (inputs from its seed, the faulty set from
its placement).  Executing a session is a pure function of the spec, which is
what makes checkpoint/restore exact: the snapshot taken after instance ``k``
(dispute state, instance index, the ``k`` completed results, the pending
inputs) plus the spec determines instances ``k+1 .. Q-1`` bit for bit, so a
resumed session's final row equals the uninterrupted run's byte for byte.

Persistent workers keep a *warm topology context* per ``(topology, source,
max_faults)``: the frozen graph with its connectivity precondition already
verified, so repeat sessions skip the vertex-connectivity check (the dominant
per-session setup cost on small graphs) by constructing
:class:`NetworkAwareBroadcast` with ``validate_connectivity=False``.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.instance import InstanceResult, instance_result_from_jsonable
from repro.core.nab import NABRunResult, NetworkAwareBroadcast
from repro.exceptions import ProtocolError
from repro.graph.connectivity import meets_connectivity_requirement
from repro.graph.network_graph import NetworkGraph
from repro.transport.faults import FaultModel
from repro.types import NodeId
from repro.workloads.scenarios import make_strategy, input_stream
from repro.workloads.topologies import topology

#: Version stamp of the persisted session-row and snapshot-row layouts; bump
#: on breaking changes so resume never mixes incompatible rows.
SESSION_SCHEMA_VERSION = 1

#: Fault-free sessions carry this strategy name (mirrors the spec grid).
FAULT_FREE = "fault-free"


def session_seed(base_seed: int, session_id: str) -> int:
    """Derive a session's private seed from the service seed and its identity.

    Same construction as the engine's ``cell_seed``: a SHA-256 digest, so
    sessions are statistically independent yet exactly reproducible.
    """
    digest = hashlib.sha256(f"{base_seed}|{session_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class SessionSpec:
    """Everything that determines one broadcast session.

    Attributes:
        service: Name of the owning service run (partitions output files).
        session_id: Unique, stable identity within the service run.
        topology: Registered topology name.
        strategy: Adversary strategy name, or :data:`FAULT_FREE`.
        faulty_nodes: The Byzantine set (empty when fault-free).
        payload_bytes: Bytes per broadcast value.
        instances: Number of NAB instances (``Q``).
        max_faults: Resilience parameter ``f``.
        seed: The session's private seed (inputs and seeded strategies).
        source: Broadcasting node.
    """

    service: str
    session_id: str
    topology: str
    strategy: str
    faulty_nodes: Tuple[NodeId, ...]
    payload_bytes: int
    instances: int
    max_faults: int
    seed: int
    source: NodeId = 1

    def inputs(self) -> List[bytes]:
        """The session's broadcast values, derived from its seed."""
        return input_stream(random.Random(self.seed), self.instances, self.payload_bytes)

    def fault_model(self) -> FaultModel:
        """A fresh fault model for this session.

        Strategies are stateless across instances (every random draw is keyed
        per instance), so a fresh model replays a resumed session exactly.
        """
        if self.strategy == FAULT_FREE:
            return FaultModel()
        return FaultModel(self.faulty_nodes, make_strategy(self.strategy, self.seed))

    def to_jsonable(self) -> Dict[str, object]:
        """JSON-safe rendering (the identity block of session and WAL rows)."""
        return {
            "service": self.service,
            "session_id": self.session_id,
            "topology": self.topology,
            "strategy": self.strategy,
            "faulty_nodes": list(self.faulty_nodes),
            "payload_bytes": self.payload_bytes,
            "instances": self.instances,
            "max_faults": self.max_faults,
            "seed": self.seed,
            "source": self.source,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "SessionSpec":
        """Rebuild a spec previously rendered by :meth:`to_jsonable`."""
        return cls(
            service=str(data["service"]),
            session_id=str(data["session_id"]),
            topology=str(data["topology"]),
            strategy=str(data["strategy"]),
            faulty_nodes=tuple(int(node) for node in data["faulty_nodes"]),
            payload_bytes=int(data["payload_bytes"]),
            instances=int(data["instances"]),
            max_faults=int(data["max_faults"]),
            seed=int(data["seed"]),
            source=int(data["source"]),
        )


# --------------------------------------------------------------- warm context

#: Per-process warm topology contexts keyed ``(topology, source, max_faults)``:
#: the frozen graph with preconditions already checked.  Persistent workers
#: keep these across sessions — the whole point of a long-running pool.
_TOPOLOGY_CONTEXTS: Dict[Tuple[str, NodeId, int], NetworkGraph] = {}
_CONTEXT_HITS = 0
_CONTEXT_MISSES = 0


def warm_graph(topology_name: str, source: NodeId, max_faults: int) -> NetworkGraph:
    """The frozen, precondition-checked graph for a session's parameters.

    The first session on a ``(topology, source, f)`` triple pays the
    vertex-connectivity check; every later one reuses the verified graph and
    skips it.

    Raises:
        ProtocolError: if the topology violates ``n >= 3f + 1`` or
            connectivity ``>= 2f + 1`` (checked once, on the miss).
    """
    global _CONTEXT_HITS, _CONTEXT_MISSES
    key = (topology_name, source, max_faults)
    graph = _TOPOLOGY_CONTEXTS.get(key)
    if graph is not None:
        _CONTEXT_HITS += 1
        return graph
    _CONTEXT_MISSES += 1
    graph = topology(topology_name)
    if not graph.has_node(source):
        raise ProtocolError(f"source {source} is not a node of {topology_name}")
    if graph.node_count() < 3 * max_faults + 1:
        raise ProtocolError(
            f"{topology_name}: n={graph.node_count()} violates n >= 3f + 1 "
            f"for f={max_faults}"
        )
    if not meets_connectivity_requirement(graph, max_faults):
        raise ProtocolError(
            f"{topology_name}: connectivity below 2f + 1 = {2 * max_faults + 1}"
        )
    graph = graph if graph.is_frozen else graph.copy().freeze()
    _TOPOLOGY_CONTEXTS[key] = graph
    return graph


def topology_context_stats() -> Dict[str, int]:
    """``{"entries", "hits", "misses"}`` of the warm topology context cache."""
    return {
        "entries": len(_TOPOLOGY_CONTEXTS),
        "hits": _CONTEXT_HITS,
        "misses": _CONTEXT_MISSES,
    }


def clear_topology_contexts() -> None:
    """Drop every warm context (memory hygiene / test isolation)."""
    global _CONTEXT_HITS, _CONTEXT_MISSES
    _TOPOLOGY_CONTEXTS.clear()
    _CONTEXT_HITS = 0
    _CONTEXT_MISSES = 0


# ----------------------------------------------------------------- execution


def snapshot_row(
    spec: SessionSpec,
    nab: NetworkAwareBroadcast,
    results: Sequence[InstanceResult],
    pending_inputs: Sequence[bytes],
) -> Dict[str, object]:
    """The WAL row capturing a session's state after ``len(results)`` instances.

    Carries the spec identity, the protocol's cross-instance state
    (:meth:`NetworkAwareBroadcast.snapshot_state`), the completed per-instance
    results and the pending inputs — everything a fresh process needs to
    finish the session byte-identically.
    """
    row: Dict[str, object] = {"kind": "snapshot", "schema": SESSION_SCHEMA_VERSION}
    row.update(spec.to_jsonable())
    row["state"] = nab.snapshot_state()
    row["results"] = [result.to_jsonable() for result in results]
    row["pending_inputs"] = [value.hex() for value in pending_inputs]
    return row


def session_row(spec: SessionSpec, run: NABRunResult, inputs: Sequence[bytes]) -> Dict[str, object]:
    """The canonical output row of one completed session.

    Deterministic (no timestamps, no host information), so fresh and resumed
    service runs persist byte-identical files.
    """
    record = run.as_run_record(inputs, spec.fault_model().is_faulty(spec.source))
    row: Dict[str, object] = {"schema": SESSION_SCHEMA_VERSION}
    row.update(spec.to_jsonable())
    row["record"] = record.to_jsonable()
    row["error"] = None
    return row


def run_session(
    spec: SessionSpec,
    snapshot: Optional[Dict[str, object]] = None,
    checkpoint: Optional[Callable[[Dict[str, object]], None]] = None,
    checkpoint_every: int = 1,
) -> Dict[str, object]:
    """Execute one session (possibly resuming mid-flight) and return its row.

    Args:
        spec: The session to run.
        snapshot: A prior :func:`snapshot_row` of the same session to resume
            from; ``None`` starts fresh.
        checkpoint: Called with a :func:`snapshot_row` after every
            ``checkpoint_every`` completed instances (and never for the final
            instance, whose completion is recorded by the session row itself).
        checkpoint_every: Checkpoint cadence in instances.

    Returns:
        The canonical session row.  Whether the session ran uninterrupted or
        was resumed from any snapshot, the row is byte-identical — the
        property the chaos harness pins down end to end.

    Raises:
        ProtocolError: if ``snapshot`` belongs to a different session or is
            inconsistent with the spec.
    """
    inputs = spec.inputs()
    graph = warm_graph(spec.topology, spec.source, spec.max_faults)
    nab = NetworkAwareBroadcast(
        graph,
        spec.source,
        spec.max_faults,
        fault_model=spec.fault_model(),
        coding_seed=spec.seed,
        validate_connectivity=False,
    )
    results: List[InstanceResult] = []
    pending: List[bytes] = list(inputs)
    if snapshot is not None:
        if snapshot.get("session_id") != spec.session_id:
            raise ProtocolError(
                f"snapshot belongs to session {snapshot.get('session_id')!r}, "
                f"not {spec.session_id!r}"
            )
        nab.restore_state(dict(snapshot["state"]))
        results = [
            instance_result_from_jsonable(data) for data in snapshot["results"]
        ]
        if nab.instances_run != len(results):
            raise ProtocolError(
                f"snapshot of {spec.session_id!r} is inconsistent: state says "
                f"{nab.instances_run} instance(s) ran, {len(results)} result(s) stored"
            )
        pending = [bytes.fromhex(value) for value in snapshot["pending_inputs"]]
    since_checkpoint = 0
    while pending:
        value = pending.pop(0)
        results.append(nab.run_instance(value))
        since_checkpoint += 1
        if pending and checkpoint is not None and since_checkpoint >= checkpoint_every:
            checkpoint(snapshot_row(spec, nab, results, pending))
            since_checkpoint = 0
    total_elapsed = sum((result.elapsed for result in results), Fraction(0))
    total_bits = sum(result.bits_sent for result in results)
    if total_elapsed > 0:
        payload_bits = sum(8 * len(value) for value in inputs)
        throughput: Fraction | None = Fraction(payload_bits) / total_elapsed
    else:
        throughput = None
    run = NABRunResult(
        instances=tuple(results),
        total_elapsed=total_elapsed,
        total_bits=total_bits,
        throughput=throughput,
        dispute_control_executions=sum(
            1 for result in results if result.dispute_control_ran
        ),
    )
    return session_row(spec, run, inputs)
