"""The long-running broadcast session service (ROADMAP open item 3).

One sweep at a time (:mod:`repro.engine`) is the experiment posture; a
production deployment serves *thousands of concurrent NAB sessions* from one
long-lived process.  This package is that service layer:

* :mod:`repro.service.session` — one session = one :class:`SessionSpec`
  executed instance by instance, checkpointing its cross-instance state
  (dispute knowledge, instance index, completed results, pending inputs)
  after every instance.  Sessions are pure functions of their spec, so a
  checkpoint plus the spec determines the rest of the run exactly.
* :mod:`repro.service.wal` — the crash-safe write-ahead log those checkpoints
  land in (append + fsync cadence; tmp+fsync+atomic-replace compaction, the
  PR 6 contract).
* :mod:`repro.service.pool` — a supervised pool of *persistent* workers with
  warm per-topology caches, topology-affine dispatch with work stealing,
  bounded queues with deterministic seeded-lattice load shedding, retry with
  exponential backoff, and quarantine of poisoned sessions.
* :mod:`repro.service.service` — the orchestrator: resume from the output
  file and the WAL, run the pool, compact canonically.  A SIGKILLed worker or
  driver resumes every session mid-flight and the completed output file is
  byte-identical to an uninterrupted run.
* :mod:`repro.service.metrics` — the ops surface: throughput/latency
  counters, queue depths, cache hit rates, snapshot/restore counts, exported
  as ``<out>.status.json`` and via ``python -m repro.service --status``.
* :mod:`repro.service.workload` — deterministic session workload generation
  (mixed topologies and adversaries) for benchmarks and the chaos harness.
"""

from repro.service.metrics import ServiceMetrics
from repro.service.service import BroadcastSessionService, ServiceConfig, ServiceSummary
from repro.service.session import SessionSpec, run_session
from repro.service.wal import WriteAheadLog, load_wal
from repro.service.workload import generate_sessions

__all__ = [
    "BroadcastSessionService",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceSummary",
    "SessionSpec",
    "WriteAheadLog",
    "generate_sessions",
    "load_wal",
    "run_session",
]
