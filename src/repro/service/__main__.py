"""Command-line entry point: ``python -m repro.service``.

Run a deterministic session workload through the crash-tolerant service::

    python -m repro.service --out results/sessions.jsonl \
        --sessions 200 --topologies k7-unit --workers 4

Rerunning the same command resumes: completed sessions are reused, sessions
that were mid-flight when the previous driver died are restored from their
latest write-ahead-log checkpoint, and the compacted output is byte-identical
to an uninterrupted run.

Health check (reads ``<out>.status.json`` and the quarantine file)::

    python -m repro.service --status --out results/sessions.jsonl

Exit code 0 means healthy; 1 means degraded (quarantined or stale-quarantined
sessions); 2 means the status file is missing or unreadable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.exceptions import ConfigurationError
from repro.service.service import (
    BroadcastSessionService,
    ServiceConfig,
    quarantine_path_for,
    status_path_for,
)
from repro.service.session import FAULT_FREE
from repro.service.workload import generate_sessions


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run or inspect the crash-tolerant broadcast session service.",
    )
    parser.add_argument(
        "--status", action="store_true",
        help="print the service health summary from <out>.status.json and exit",
    )
    parser.add_argument(
        "--out", default=os.path.join("results", "sessions.jsonl"),
        help="sessions JSONL path (default: results/sessions.jsonl); the WAL, "
             "quarantine and status files live next to it",
    )
    parser.add_argument("--name", default="service", help="service name (default: service)")
    parser.add_argument(
        "--sessions", type=int, default=100,
        help="number of sessions in the workload (default: 100)",
    )
    parser.add_argument(
        "--topologies", default="k7-unit",
        help="comma-separated topology cycle (default: k7-unit)",
    )
    parser.add_argument(
        "--strategies", default=FAULT_FREE,
        help=f"comma-separated strategy cycle (default: {FAULT_FREE})",
    )
    parser.add_argument(
        "--payload-bytes", type=int, default=2,
        help="bytes per broadcast value (default: 2)",
    )
    parser.add_argument(
        "--instances", type=int, default=1,
        help="NAB instances per session (default: 1)",
    )
    parser.add_argument(
        "--max-faults", type=int, default=1,
        help="resilience parameter f (default: 1)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed (default: 0)")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial, default)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=32,
        help="per-worker dispatch queue bound (default: 32)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=1,
        help="instances between WAL checkpoints within a session (default: 1)",
    )
    parser.add_argument(
        "--fsync-every", type=int, default=1,
        help="WAL fsync cadence in checkpoints (default: 1)",
    )
    parser.add_argument(
        "--max-session-retries", type=int, default=2,
        help="crash retries per session before quarantine (default: 2)",
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=0.5,
        help="base seconds of the crash-retry exponential backoff (default: 0.5)",
    )
    parser.add_argument(
        "--shed-soft-limit", type=int, default=None,
        help="queued-session level where deterministic load shedding starts "
             "(default: shedding disabled)",
    )
    parser.add_argument(
        "--shed-hard-limit", type=int, default=1 << 30,
        help="queued-session level where the dispatcher backpressures",
    )
    parser.add_argument(
        "--fresh", action="store_true",
        help="ignore existing results and WAL; recompute every session",
    )
    return parser


def _print_status(out_path: str) -> int:
    status_path = status_path_for(out_path)
    try:
        with open(status_path, "r", encoding="utf-8") as handle:
            status = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {status_path}: {exc}", file=sys.stderr)
        return 2
    metrics = status.get("metrics", {})
    sessions = metrics.get("sessions", {})
    throughput = metrics.get("throughput", {})
    latency = metrics.get("latency", {})
    degradation = metrics.get("degradation", {})
    print(f"service: {status.get('service')}  ({status.get('out_path')})")
    print(
        f"sessions: {status.get('settled_sessions')}/{status.get('total_sessions')} settled"
        f"  completed={sessions.get('completed')}  failed={sessions.get('failed')}"
        f"  shed={sessions.get('shed')}  quarantined={sessions.get('quarantined')}"
    )
    print(
        f"resume: {sessions.get('resumed_from_output')} from output,"
        f" {sessions.get('restored_from_snapshot')} from snapshots,"
        f" {metrics.get('snapshots', {}).get('written')} snapshot(s) written"
    )
    rate = throughput.get("sessions_per_minute")
    rate_text = f"{rate:.0f}/min" if isinstance(rate, (int, float)) else "n/a"
    mean = latency.get("mean_seconds")
    mean_text = f"{mean * 1000:.1f}ms" if isinstance(mean, (int, float)) else "n/a"
    print(
        f"throughput: {rate_text}  mean latency: {mean_text}"
        f"  backpressure waits: {degradation.get('backpressure_waits')}"
        f"  steals: {degradation.get('work_steals')}"
    )
    degraded = bool(sessions.get("quarantined")) or bool(
        status.get("stale_quarantined_sessions")
    )
    quarantine = quarantine_path_for(out_path)
    if status.get("stale_quarantined_sessions"):
        print(
            f"STALE QUARANTINE: {status['stale_quarantined_sessions']} session(s) "
            f"from a prior run still unresolved -> {quarantine}"
        )
    elif sessions.get("quarantined"):
        print(f"QUARANTINE: {sessions['quarantined']} session(s) -> {quarantine}")
    elif os.path.exists(quarantine):
        print(f"QUARANTINE file present -> {quarantine}")
        degraded = True
    print("health: " + ("DEGRADED" if degraded else "ok"))
    return 1 if degraded else 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.status:
        return _print_status(args.out)

    try:
        sessions = generate_sessions(
            count=args.sessions,
            topologies=tuple(name for name in args.topologies.split(",") if name),
            strategies=tuple(name for name in args.strategies.split(",") if name),
            payload_bytes=args.payload_bytes,
            instances=args.instances,
            max_faults=args.max_faults,
            seed=args.seed,
            service=args.name,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    config = ServiceConfig(
        name=args.name,
        out_path=args.out,
        workers=args.workers,
        queue_depth=args.queue_depth,
        checkpoint_every=args.checkpoint_every,
        fsync_every=args.fsync_every,
        max_session_retries=args.max_session_retries,
        retry_backoff=args.retry_backoff,
        admission_seed=args.seed,
        shed_soft_limit=args.shed_soft_limit,
        shed_hard_limit=args.shed_hard_limit,
    )
    summary = BroadcastSessionService(config).run(sessions, resume=not args.fresh)

    resumed = f"{summary.skipped_sessions} resumed"
    if summary.discarded_rows:
        resumed += f" ({summary.discarded_rows} line(s) not reused)"
    restored = summary.metrics.sessions_restored
    print(
        f"service {summary.service}: {summary.computed_sessions} session(s) computed, "
        f"{resumed}, {restored} restored mid-flight, "
        f"{summary.total_sessions} submitted "
        f"({summary.metrics.wall_seconds:.2f}s wall)"
    )
    print(f"results: {summary.out_path}")
    if summary.shed_sessions:
        print(f"load shedding: {summary.shed_sessions} session(s) shed")
    if summary.retried_sessions or summary.quarantined_sessions:
        line = f"worker crashes: {summary.retried_sessions} session(s) retried"
        if summary.quarantined_sessions:
            line += (
                f", {summary.quarantined_sessions} quarantined"
                f" -> {summary.quarantine_path}"
            )
        print(line)
    if summary.stale_quarantined_sessions:
        print(
            f"stale quarantine: {summary.stale_quarantined_sessions} session(s) "
            f"from a prior run still unresolved -> {summary.quarantine_path}"
        )
    rate = summary.metrics.sessions_per_minute()
    if rate is not None:
        print(f"throughput: {rate:.0f} sessions/minute")
    if summary.status_path:
        print(f"status: {summary.status_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
