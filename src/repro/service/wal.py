"""The service's crash-safe write-ahead log.

Checkpoints (and shed notices) are appended as one canonical JSON line each —
``json.dumps(..., sort_keys=True, separators=(",", ":"))``, the engine
runner's row serialisation — with a configurable fsync cadence, so a SIGKILL
at any instant loses at most the un-fsynced tail and never corrupts earlier
rows.  Loading tolerates exactly that tail: malformed or truncated lines are
counted and dropped, never fatal.

The latest snapshot per session wins (the log is append-only, so later lines
supersede earlier ones), mirroring how the engine runner's resume keeps the
last well-formed row per cell.  Atomic full-file replacement follows the
PR 6 compaction contract: write a temp file, fsync it, ``os.replace``, then
best-effort fsync the directory.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.engine.runner import dump_row


def write_rows_atomically(path: str, rows: Sequence[Dict[str, object]]) -> None:
    """Replace ``path`` with one canonical JSON line per row, crash-safely.

    A kill at any instant leaves either the old file or the complete new one,
    never a truncated mix; a failed write cleans up its temp file.
    """
    tmp_path = path + ".tmp"
    try:
        with open(tmp_path, "w", encoding="utf-8") as tmp:
            for row in rows:
                tmp.write(dump_row(row) + "\n")
            tmp.flush()
            os.fsync(tmp.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(os.path.dirname(os.path.abspath(path)), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


class WriteAheadLog:
    """Append-only JSONL log with a bounded-loss fsync cadence.

    Args:
        path: The log file; created (with parents) on first append.
        fsync_every: Force the rows to stable storage every this many
            appends.  ``1`` fsyncs every row (maximum durability); larger
            values trade a bounded window of re-executable work for fewer
            synchronous writes.  Every append is *flushed* regardless, so
            only an OS crash — not a process kill — can lose the window.
    """

    def __init__(self, path: str, fsync_every: int = 1) -> None:
        if fsync_every < 1:
            raise ValueError(f"fsync_every must be >= 1, got {fsync_every}")
        self.path = path
        self.fsync_every = fsync_every
        self._handle = None
        self._since_fsync = 0
        self.appended = 0

    def append(self, row: Dict[str, object]) -> None:
        """Append one row, flushing always and fsyncing on the cadence."""
        if self._handle is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(dump_row(row) + "\n")
        self._handle.flush()
        self.appended += 1
        self._since_fsync += 1
        if self._since_fsync >= self.fsync_every:
            os.fsync(self._handle.fileno())
            self._since_fsync = 0

    def close(self) -> None:
        """Flush, fsync and close the log (idempotent)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
            self._since_fsync = 0

    def remove(self) -> None:
        """Close and delete the log — every session it covered is settled."""
        self.close()
        try:
            os.remove(self.path)
        except FileNotFoundError:
            pass

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def load_wal(
    path: str, schema: Optional[int] = None
) -> Tuple[Dict[str, Dict[str, object]], Set[str], int]:
    """Read a WAL back: the latest snapshot per session, shed ids, discards.

    Args:
        path: The log file (missing is fine: an empty log).
        schema: When given, rows with a different ``"schema"`` are discarded.

    Returns:
        ``(snapshots, shed_ids, discarded)`` — ``snapshots`` maps session id
        to its *latest* well-formed snapshot row; ``shed_ids`` holds the ids
        of sessions recorded as load-shed (shedding is sticky across resumes:
        a shed session stays shed rather than flapping back in); ``discarded``
        counts dropped lines (truncated tails, malformed rows, schema
        mismatches).
    """
    snapshots: Dict[str, Dict[str, object]] = {}
    shed_ids: Set[str] = set()
    discarded = 0
    if not os.path.exists(path):
        return snapshots, shed_ids, discarded
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                discarded += 1
                continue
            if not isinstance(row, dict):
                discarded += 1
                continue
            if schema is not None and row.get("schema") != schema:
                discarded += 1
                continue
            kind = row.get("kind")
            session_id = row.get("session_id")
            if kind == "snapshot" and isinstance(session_id, str):
                snapshots[session_id] = row
            elif kind == "shed" and isinstance(session_id, str):
                shed_ids.add(session_id)
            else:
                discarded += 1
    return snapshots, shed_ids, discarded
