"""The service's ops surface: counters, gauges and cache statistics.

Everything an operator needs to judge a long-running deployment at a glance:
admission and completion counters, retry/quarantine tallies, snapshot and
restore counts, queue depths, work-steal counts, per-session latency
aggregates, and the hit rates of every warm cache (topology contexts, min-cut
structure cache, GF kernel operand caches with their byte budgets).

:meth:`ServiceMetrics.to_jsonable` is the schema persisted to
``<out>.status.json`` and printed by ``python -m repro.service --status``;
it is *operational* data — wall-clock rates live here, never in the
canonical session rows, which must stay byte-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


def rss_bytes() -> Optional[int]:
    """This process's resident set size, or ``None`` where unreadable."""
    try:
        with open("/proc/self/status", "r", encoding="utf-8") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return None


def process_cache_sample() -> Dict[str, object]:
    """One process's warm-cache and memory sample (worker or serial driver).

    Imported lazily so metrics stay constructible in processes that never
    touched the protocol stack.  ``kernels`` carries each budgeted cache's
    ``budget_bytes`` alongside its occupancy — the numbers the flat-memory
    regression pins.
    """
    from repro.core.parameters import instance_parameter_cache_stats
    from repro.gf.field import kernel_cache_stats
    from repro.graph.flow_cache import cache_stats as mincut_cache_stats
    from repro.service.session import topology_context_stats

    return {
        "topology_contexts": topology_context_stats(),
        "instance_parameters": instance_parameter_cache_stats(),
        "mincut": mincut_cache_stats(),
        "kernels": kernel_cache_stats(),
        "rss_bytes": rss_bytes(),
    }


@dataclass
class ServiceMetrics:
    """Mutable counters of one service run (single-threaded: the supervisor).

    Attributes:
        sessions_submitted: Sessions offered to the service.
        sessions_resumed_from_output: Completed rows reused from a prior run.
        sessions_restored: Sessions resumed mid-flight from a WAL snapshot.
        sessions_completed: Sessions that produced a row this run.
        sessions_failed: Completed rows whose ``error`` field is set.
        sessions_shed: Sessions refused by deterministic load shedding.
        sessions_retried: Distinct sessions retried after a worker death.
        sessions_quarantined: Sessions abandoned after the retry budget.
        snapshots_written: WAL snapshot rows appended.
        backpressure_waits: Times the dispatcher found every queue full and
            had to wait for capacity.
        work_steals: Sessions a worker took from another worker's queue.
        instances_executed: NAB instances run across all sessions this run.
        wall_seconds: Wall-clock duration of the run's execution phase.
        latency_seconds_total / latency_seconds_max / latency_count:
            Per-session wall latency aggregate (submission to row).
        queue_depths: Final per-worker queue depths (index = worker).
        cache_stats: Warm-cache statistics captured at the end of the run
            (topology contexts, min-cut cache, kernel caches with budgets).
    """

    sessions_submitted: int = 0
    sessions_resumed_from_output: int = 0
    sessions_restored: int = 0
    sessions_completed: int = 0
    sessions_failed: int = 0
    sessions_shed: int = 0
    sessions_retried: int = 0
    sessions_quarantined: int = 0
    snapshots_written: int = 0
    backpressure_waits: int = 0
    work_steals: int = 0
    instances_executed: int = 0
    wall_seconds: float = 0.0
    latency_seconds_total: float = 0.0
    latency_seconds_max: float = 0.0
    latency_count: int = 0
    queue_depths: List[int] = field(default_factory=list)
    cache_stats: Dict[str, object] = field(default_factory=dict)

    def record_latency(self, seconds: float) -> None:
        """Fold one session's submission-to-completion latency in."""
        self.latency_seconds_total += seconds
        self.latency_count += 1
        if seconds > self.latency_seconds_max:
            self.latency_seconds_max = seconds

    def sessions_per_minute(self) -> Optional[float]:
        """Completed-session throughput, ``None`` before any wall time."""
        if self.wall_seconds <= 0:
            return None
        return self.sessions_completed * 60.0 / self.wall_seconds

    def mean_latency_seconds(self) -> Optional[float]:
        """Mean per-session latency, ``None`` before any completion."""
        if not self.latency_count:
            return None
        return self.latency_seconds_total / self.latency_count

    def capture_cache_stats(
        self, worker_samples: Optional[List[Dict[str, object]]] = None
    ) -> None:
        """Sample this process's warm caches into :attr:`cache_stats`.

        ``worker_samples`` — the per-worker samples persistent workers report
        on shutdown — are attached under ``"workers"``; in pooled mode the
        warm caches live *there*, not in the supervisor.
        """
        self.cache_stats = process_cache_sample()
        if worker_samples is not None:
            self.cache_stats["workers"] = list(worker_samples)

    def to_jsonable(self) -> Dict[str, object]:
        """The ops-metrics schema written to ``<out>.status.json``."""
        return {
            "sessions": {
                "submitted": self.sessions_submitted,
                "resumed_from_output": self.sessions_resumed_from_output,
                "restored_from_snapshot": self.sessions_restored,
                "completed": self.sessions_completed,
                "failed": self.sessions_failed,
                "shed": self.sessions_shed,
                "retried": self.sessions_retried,
                "quarantined": self.sessions_quarantined,
            },
            "snapshots": {"written": self.snapshots_written},
            "degradation": {
                "backpressure_waits": self.backpressure_waits,
                "work_steals": self.work_steals,
                "queue_depths": list(self.queue_depths),
            },
            "throughput": {
                "instances_executed": self.instances_executed,
                "wall_seconds": self.wall_seconds,
                "sessions_per_minute": self.sessions_per_minute(),
            },
            "latency": {
                "count": self.latency_count,
                "mean_seconds": self.mean_latency_seconds(),
                "max_seconds": self.latency_seconds_max,
            },
            "caches": self.cache_stats,
        }
