"""Composable adversary zoo: stage-timed, colluding, adaptive and relay-tampering attacks.

The hand-written strategies in :mod:`repro.adversary.strategies` each hammer
one hook unconditionally.  The zoo builds *structured* adversaries out of
reusable parts:

* :class:`StageTimedStrategy` gates any inner strategy on pipeline stages
  ``(q, h)`` — fire only in instance ``q`` during phase ``h`` — modelling the
  paper's adversary choosing *when* to strike, not just where;
* :class:`ColludingRotationStrategy` rotates a coalition so exactly one
  member misbehaves per instance, spreading evidence thin;
* :class:`AdaptiveDisputeDodgerStrategy` reads the agreed dispute state and
  retargets corruption onto neighbours it is *not yet* in dispute with,
  lying truthfully enough during dispute control to survive the DC3
  consistency check — the strategy that drives dispute control towards its
  ``f (f + 1)`` worst case;
* :class:`RelayTamperStrategy` corrupts values it forwards on disjoint-path
  relays, defeating the clean-path batching fast path.

All randomness flows through :class:`AdversaryLattice`, the sha256 lattice of
the link-fault layer (:mod:`repro.sched.faults`): a hash of the seed and the
decision's identity picks one of ``FAULT_STEPS`` points in ``[0, 1)``.  The
lattice doubles as the coalition's *coordination channel* — every colluding
node can recompute every other member's decisions from the shared seed alone,
with no messages exchanged — and makes every zoo strategy bit-for-bit
reproducible across processes and hook interleavings.

:func:`build_composed` assembles all of the above from a plain JSON-able
parameter mapping, which is what the adversarial search driver
(:mod:`repro.adversary.search`) mutates and what ``strategy_params`` cells in
experiment specs commit.
"""

from __future__ import annotations

import hashlib
from fractions import Fraction
from typing import Any, Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.adversary.strategies import (
    CrashStrategy,
    DisputeLiarStrategy,
    EqualityGarbageStrategy,
    FalseFlagStrategy,
    Phase1CorruptingRelayStrategy,
    RandomizedChaosStrategy,
    SubBroadcastLiarStrategy,
)
from repro.exceptions import ConfigurationError
from repro.sched.faults import FAULT_STEPS
from repro.transport.faults import ByzantineStrategy
from repro.types import NodeId

#: Pipeline stage identifiers used by :class:`StageTimedStrategy`: ``h = 1``
#: is the Phase 1 broadcast, ``h = 2`` the Equality Check (coded symbols and
#: flag agreement), ``h = 3`` dispute control.
STAGE_PHASE1 = 1
STAGE_EQUALITY = 2
STAGE_DISPUTE = 3

#: Wildcard instance index: the stage fires in every instance.
ANY_INSTANCE = "*"


class AdversaryLattice:
    """Deterministic decision source shared by the zoo (PR 3/6 sha256 idiom).

    Hashing ``(namespace, seed, decision key)`` with SHA-256 yields a lattice
    point in ``[0, 1)`` at ``1 / FAULT_STEPS`` granularity, raw bits, or an
    index into a sequence.  Identical seeds replay identical decisions in any
    process and any call order, and a coalition sharing the seed can
    recompute each member's decisions without communicating.
    """

    def __init__(self, seed: int, namespace: str = "zoo") -> None:
        self.seed = seed
        self.namespace = namespace

    def _digest(self, key: Tuple[Any, ...]) -> bytes:
        material = "|".join(
            [self.namespace, str(self.seed)] + [repr(part) for part in key]
        )
        return hashlib.sha256(material.encode("utf-8")).digest()

    def point(self, *key: Any) -> Fraction:
        """A lattice point in ``[0, 1)`` for this decision."""
        value = int.from_bytes(self._digest(key)[:8], "big")
        return Fraction(value % FAULT_STEPS, FAULT_STEPS)

    def randbits(self, bits: int, *key: Any) -> int:
        """``bits`` deterministic pseudo-random bits for this decision."""
        if bits < 1 or bits > 128:
            raise ConfigurationError(f"randbits supports 1..128 bits, got {bits}")
        value = int.from_bytes(self._digest(key)[:16], "big")
        return value & ((1 << bits) - 1)

    def choice(self, options: Sequence[Any], *key: Any) -> Any:
        """A deterministic choice among ``options`` for this decision."""
        if not options:
            raise ConfigurationError("cannot choose from an empty sequence")
        index = int.from_bytes(self._digest(key)[:8], "big") % len(options)
        return options[index]


# --------------------------------------------------------------------- wrappers


class ComposedStrategy(ByzantineStrategy):
    """Folds every hook through a sequence of component strategies.

    Component ``i + 1`` sees component ``i``'s output as its "true" value, so
    corruptions stack left to right; observation hooks fan out to every
    component.
    """

    name = "composed"

    def __init__(self, components: Sequence[ByzantineStrategy]) -> None:
        if not components:
            raise ConfigurationError("a composed strategy needs at least one component")
        self.components = tuple(components)

    def phase1_source_symbol(self, instance, tree_index, child, true_symbol):
        value = true_symbol
        for component in self.components:
            value = component.phase1_source_symbol(instance, tree_index, child, value)
        return value

    def phase1_forward_symbol(self, instance, node, tree_index, child, true_symbol):
        value = true_symbol
        for component in self.components:
            value = component.phase1_forward_symbol(
                instance, node, tree_index, child, value
            )
        return value

    def equality_check_vector(self, instance, node, neighbor, true_vector):
        value = true_vector
        for component in self.components:
            value = component.equality_check_vector(instance, node, neighbor, value)
        return value

    def equality_check_flag(self, instance, node, true_flag):
        value = true_flag
        for component in self.components:
            value = component.equality_check_flag(instance, node, value)
        return value

    def broadcast_value(self, instance, node, receiver, context, true_value):
        value = true_value
        for component in self.components:
            value = component.broadcast_value(instance, node, receiver, context, value)
        return value

    def relay_value(self, instance, node, path, receiver, true_value):
        value = true_value
        for component in self.components:
            value = component.relay_value(instance, node, path, receiver, value)
        return value

    def dispute_claims(self, instance, node, true_claims):
        value = true_claims
        for component in self.components:
            value = component.dispute_claims(instance, node, value)
        return value

    def observe_faulty_nodes(self, faulty):
        for component in self.components:
            component.observe_faulty_nodes(faulty)

    def observe_instance(self, instance, graph, instance_graph, source, max_faults, dispute_state):
        for component in self.components:
            component.observe_instance(
                instance, graph, instance_graph, source, max_faults, dispute_state
            )


def _normalize_stages(stages: Sequence[Sequence[Any]]) -> FrozenSet[Tuple[Any, int]]:
    normalized = set()
    for entry in stages:
        entry = tuple(entry)
        if len(entry) != 2:
            raise ConfigurationError(f"a stage is a (instance, phase) pair, got {entry!r}")
        q, h = entry
        if h not in (STAGE_PHASE1, STAGE_EQUALITY, STAGE_DISPUTE):
            raise ConfigurationError(f"stage phase must be 1, 2 or 3, got {h!r}")
        if q != ANY_INSTANCE and (
            isinstance(q, bool) or not isinstance(q, int) or q < 0
        ):
            raise ConfigurationError(
                f"stage instance must be a non-negative int or {ANY_INSTANCE!r}, got {q!r}"
            )
        normalized.add((q, int(h)))
    if not normalized:
        raise ConfigurationError("a stage-timed strategy needs at least one stage")
    return frozenset(normalized)


class StageTimedStrategy(ByzantineStrategy):
    """Fires an inner strategy only at chosen pipeline stages ``(q, h)``.

    ``q`` is an instance index (or :data:`ANY_INSTANCE` for "every instance"),
    ``h`` one of the three phases.  Outside the active stages every hook is
    honest.  Broadcast hooks infer their phase from the sub-protocol context
    string ("equality_flag..." is Phase 2 flag agreement, everything else is
    dispute control); relay hooks fire whenever Phase 2 or 3 is active, since
    disjoint-path relays carry both.
    """

    def __init__(
        self,
        inner: ByzantineStrategy,
        stages: Sequence[Sequence[Any]] = ((ANY_INSTANCE, STAGE_PHASE1),),
        name: Optional[str] = None,
    ) -> None:
        self.inner = inner
        self.stages = _normalize_stages(stages)
        self.name = name if name is not None else f"stage-timed({inner.name})"

    def _active(self, instance: int, stage: int) -> bool:
        return (instance, stage) in self.stages or (ANY_INSTANCE, stage) in self.stages

    def phase1_source_symbol(self, instance, tree_index, child, true_symbol):
        if self._active(instance, STAGE_PHASE1):
            return self.inner.phase1_source_symbol(instance, tree_index, child, true_symbol)
        return true_symbol

    def phase1_forward_symbol(self, instance, node, tree_index, child, true_symbol):
        if self._active(instance, STAGE_PHASE1):
            return self.inner.phase1_forward_symbol(
                instance, node, tree_index, child, true_symbol
            )
        return true_symbol

    def equality_check_vector(self, instance, node, neighbor, true_vector):
        if self._active(instance, STAGE_EQUALITY):
            return self.inner.equality_check_vector(instance, node, neighbor, true_vector)
        return true_vector

    def equality_check_flag(self, instance, node, true_flag):
        if self._active(instance, STAGE_EQUALITY):
            return self.inner.equality_check_flag(instance, node, true_flag)
        return true_flag

    def broadcast_value(self, instance, node, receiver, context, true_value):
        stage = (
            STAGE_EQUALITY
            if str(context).startswith("equality_flag")
            else STAGE_DISPUTE
        )
        if self._active(instance, stage):
            return self.inner.broadcast_value(instance, node, receiver, context, true_value)
        return true_value

    def relay_value(self, instance, node, path, receiver, true_value):
        if self._active(instance, STAGE_EQUALITY) or self._active(instance, STAGE_DISPUTE):
            return self.inner.relay_value(instance, node, path, receiver, true_value)
        return true_value

    def dispute_claims(self, instance, node, true_claims):
        if self._active(instance, STAGE_DISPUTE):
            return self.inner.dispute_claims(instance, node, true_claims)
        return true_claims

    def observe_faulty_nodes(self, faulty):
        self.inner.observe_faulty_nodes(faulty)

    def observe_instance(self, instance, graph, instance_graph, source, max_faults, dispute_state):
        self.inner.observe_instance(
            instance, graph, instance_graph, source, max_faults, dispute_state
        )


class ColludingRotationStrategy(ByzantineStrategy):
    """A coalition that designates exactly one misbehaving member per instance.

    The rotation order is a deterministic function of the shared seed (the
    lattice is the coalition's silent coordination channel), so every member
    knows whose turn it is without any communication.  Non-designated members
    behave honestly, spreading the evidence across the coalition: each
    dispute-control execution incriminates a different node.
    """

    def __init__(
        self,
        inner: ByzantineStrategy,
        seed: int = 0,
        name: Optional[str] = None,
    ) -> None:
        self.inner = inner
        self.seed = seed
        self.lattice = AdversaryLattice(seed, namespace="colluding-rotator")
        self.name = name if name is not None else "colluding-rotator"
        self._members: Tuple[NodeId, ...] = ()
        self._sources: Dict[int, NodeId] = {}

    def observe_faulty_nodes(self, faulty):
        self._members = tuple(sorted(faulty))
        self.inner.observe_faulty_nodes(faulty)

    def observe_instance(self, instance, graph, instance_graph, source, max_faults, dispute_state):
        self._sources[instance] = source
        self.inner.observe_instance(
            instance, graph, instance_graph, source, max_faults, dispute_state
        )

    def aggressor(self, instance: int) -> Optional[NodeId]:
        """The coalition member designated to misbehave in ``instance``."""
        if not self._members:
            return None
        offset = self.lattice.randbits(16, "rotation-offset") % len(self._members)
        return self._members[(instance + offset) % len(self._members)]

    def _acts(self, instance: int, node: NodeId) -> bool:
        return node == self.aggressor(instance)

    def phase1_source_symbol(self, instance, tree_index, child, true_symbol):
        # The acting node here is the source itself (only a faulty source is
        # ever asked); defer to the rotation like any other member.
        source = self._sources.get(instance)
        if source is not None and self._acts(instance, source):
            return self.inner.phase1_source_symbol(instance, tree_index, child, true_symbol)
        return true_symbol

    def phase1_forward_symbol(self, instance, node, tree_index, child, true_symbol):
        if self._acts(instance, node):
            return self.inner.phase1_forward_symbol(
                instance, node, tree_index, child, true_symbol
            )
        return true_symbol

    def equality_check_vector(self, instance, node, neighbor, true_vector):
        if self._acts(instance, node):
            return self.inner.equality_check_vector(instance, node, neighbor, true_vector)
        return true_vector

    def equality_check_flag(self, instance, node, true_flag):
        if self._acts(instance, node):
            return self.inner.equality_check_flag(instance, node, true_flag)
        return true_flag

    def broadcast_value(self, instance, node, receiver, context, true_value):
        if self._acts(instance, node):
            return self.inner.broadcast_value(instance, node, receiver, context, true_value)
        return true_value

    def relay_value(self, instance, node, path, receiver, true_value):
        if self._acts(instance, node):
            return self.inner.relay_value(instance, node, path, receiver, true_value)
        return true_value

    def dispute_claims(self, instance, node, true_claims):
        if self._acts(instance, node):
            return self.inner.dispute_claims(instance, node, true_claims)
        return true_claims


# ------------------------------------------------------------- leaf strategies


class RelayEquivocatorStrategy(ByzantineStrategy):
    """Relay-level equivocation: forwards a *different* corrupted symbol per child.

    Unlike :class:`Phase1CorruptingRelayStrategy` (one fixed flip mask), each
    ``(instance, node, tree, child)`` gets its own lattice-drawn non-zero
    mask, so downstream subtrees disagree with each other — Phase 1 outcome
    (iv) induced by a relay rather than the source.  Equality-check vectors
    are equivocated the same way per neighbour.
    """

    name = "relay-equivocator"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.lattice = AdversaryLattice(seed, namespace="relay-equivocator")

    def phase1_forward_symbol(self, instance, node, tree_index, child, true_symbol):
        mask = self.lattice.randbits(8, "p1", instance, node, tree_index, child) | 1
        return true_symbol ^ mask

    def equality_check_vector(self, instance, node, neighbor, true_vector):
        return [
            symbol ^ (self.lattice.randbits(4, "eq", instance, node, neighbor, i) | 1)
            for i, symbol in enumerate(true_vector)
        ]


class AdaptiveDisputeDodgerStrategy(ByzantineStrategy):
    """Reads the dispute state and corrupts only towards *fresh* victims.

    Per instance, each active faulty node picks up to ``targets`` honest
    neighbours it is not yet in dispute with (disputed links have been removed
    from ``G_k`` anyway) and sends them corrupted equality-check vectors.
    During dispute control it lies *minimally*: its claims are the honest
    transcript except that the corrupted sends are replaced by the values an
    honest node would have sent.  That passes the DC3 consistency check —
    the claims describe a perfectly honest execution — so dispute control
    can conclude nothing beyond one new dispute per victim (DC2 sees the
    victim's truthful "received garbage" against the dodger's "sent the right
    thing").  With ``targets=1`` and ``aggressors=1`` this walks dispute
    control towards its ``f (f + 1)`` worst case.

    Args:
        seed: Lattice seed (victim rotation).
        targets: Fresh victims corrupted per active node per instance.
        aggressors: How many coalition members act simultaneously
            (``0`` = all of them).
    """

    name = "adaptive-dodger"

    def __init__(self, seed: int = 0, targets: int = 2, aggressors: int = 0) -> None:
        if targets < 1:
            raise ConfigurationError(f"targets must be >= 1, got {targets}")
        if aggressors < 0:
            raise ConfigurationError(f"aggressors must be >= 0, got {aggressors}")
        self.seed = seed
        self.targets = targets
        self.aggressors = aggressors
        self.lattice = AdversaryLattice(seed, namespace="adaptive-dodger")
        self._members: Tuple[NodeId, ...] = ()
        self._victims: Dict[Tuple[int, NodeId], Tuple[NodeId, ...]] = {}
        self._true_vectors: Dict[Tuple[int, NodeId, NodeId], Tuple[int, ...]] = {}

    def observe_faulty_nodes(self, faulty):
        self._members = tuple(sorted(faulty))

    def observe_instance(self, instance, graph, instance_graph, source, max_faults, dispute_state):
        identified = dispute_state.implied_faulty(graph.nodes())
        alive = [
            member
            for member in self._members
            if member not in identified and instance_graph.has_node(member)
        ]
        active = alive if self.aggressors == 0 else alive[: self.aggressors]
        coalition = set(self._members)
        for member in active:
            neighbors = sorted(
                {head for _tail, head, _cap in instance_graph.out_edges(member)}
            )
            fresh = [
                neighbor
                for neighbor in neighbors
                if neighbor not in coalition
                and not dispute_state.is_disputed(member, neighbor)
            ]
            if not fresh:
                continue
            offset = self.lattice.randbits(16, "victims", instance, member) % len(fresh)
            rotated = fresh[offset:] + fresh[:offset]
            self._victims[(instance, member)] = tuple(rotated[: self.targets])

    def equality_check_vector(self, instance, node, neighbor, true_vector):
        self._true_vectors[(instance, node, neighbor)] = tuple(true_vector)
        if neighbor in self._victims.get((instance, node), ()):
            return [
                symbol
                ^ (self.lattice.randbits(4, "corrupt", instance, node, neighbor, i) | 1)
                for i, symbol in enumerate(true_vector)
            ]
        return true_vector

    def dispute_claims(self, instance, node, true_claims):
        victims = self._victims.get((instance, node), ())
        if not victims:
            return true_claims
        claims = {
            key: dict(value) if isinstance(value, dict) else value
            for key, value in true_claims.items()
        }
        equality_sent = dict(claims.get("equality_sent", {}))
        for victim in victims:
            true_vector = self._true_vectors.get((instance, node, victim))
            if true_vector is not None:
                equality_sent[victim] = true_vector
        claims["equality_sent"] = equality_sent
        return claims


class RelayTamperStrategy(ByzantineStrategy):
    """Corrupts values it forwards as an intermediate on disjoint-path relays.

    A faulty node on a relay path already forces the transport off the
    clean-path batching fast path; this strategy makes the slow path earn its
    keep by actually tampering with a lattice-chosen fraction of forwards.
    Majority decoding over ``2f + 1`` disjoint paths absorbs the damage.
    """

    name = "relay-tamper"

    def __init__(self, seed: int = 0, rate: Fraction = Fraction(1, 2)) -> None:
        rate = Fraction(rate)
        if rate < 0 or rate > 1:
            raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
        self.seed = seed
        self.rate = rate
        self.lattice = AdversaryLattice(seed, namespace="relay-tamper")

    def relay_value(self, instance, node, path, receiver, true_value):
        key = ("relay", instance, node, tuple(path), receiver)
        if self.lattice.point(*key) < self.rate:
            return ("tampered", self.lattice.randbits(8, "bits", *key))
        return true_value


# --------------------------------------------------------------- composition


def _component_seed(seed: int, index: int, kind: str) -> int:
    """A per-component sub-seed so stacked components draw independent streams."""
    material = f"component|{seed}|{index}|{kind}"
    return int.from_bytes(
        hashlib.sha256(material.encode("utf-8")).digest()[:8], "big"
    )


def _take(config: Dict[str, Any], kind: str, **defaults: Any) -> Dict[str, Any]:
    """Pop the allowed keys (with defaults) and reject anything left over."""
    taken = {key: config.pop(key, default) for key, default in defaults.items()}
    if config:
        raise ConfigurationError(
            f"unknown parameter(s) for component {kind!r}: {sorted(config)}"
        )
    return taken


def _build_component(kind: str, seed: int, config: Mapping[str, Any]) -> ByzantineStrategy:
    config = dict(config)
    if kind == "relay-equivocator":
        _take(config, kind)
        return RelayEquivocatorStrategy(seed=seed)
    if kind == "adaptive-dodger":
        options = _take(config, kind, targets=2, aggressors=0)
        return AdaptiveDisputeDodgerStrategy(seed=seed, **options)
    if kind == "relay-tamper":
        options = _take(config, kind, rate=(1, 2))
        numerator, denominator = options["rate"]
        return RelayTamperStrategy(seed=seed, rate=Fraction(numerator, denominator))
    if kind == "phase1-relay":
        options = _take(config, kind, flip_mask=1)
        return Phase1CorruptingRelayStrategy(seed=seed, **options)
    if kind == "equality-garbage":
        options = _take(config, kind, offset=1)
        return EqualityGarbageStrategy(seed=seed, **options)
    if kind == "false-flag":
        _take(config, kind)
        return FalseFlagStrategy(seed=seed)
    if kind == "dispute-liar":
        options = _take(config, kind, flip_mask=1)
        return DisputeLiarStrategy(seed=seed, **options)
    if kind == "sub-broadcast-liar":
        _take(config, kind)
        return SubBroadcastLiarStrategy(seed=seed)
    if kind == "crash":
        _take(config, kind)
        return CrashStrategy(seed=seed)
    if kind == "chaos":
        _take(config, kind)
        return RandomizedChaosStrategy(seed=seed)
    raise ConfigurationError(
        f"unknown component kind {kind!r}; available: {', '.join(sorted(COMPONENT_KINDS))}"
    )


#: Component kinds :func:`build_composed` understands.
COMPONENT_KINDS = frozenset(
    {
        "relay-equivocator",
        "adaptive-dodger",
        "relay-tamper",
        "phase1-relay",
        "equality-garbage",
        "false-flag",
        "dispute-liar",
        "sub-broadcast-liar",
        "crash",
        "chaos",
    }
)


def build_composed(seed: int, params: Optional[Mapping[str, Any]] = None) -> ByzantineStrategy:
    """Assemble a zoo strategy from a JSON-able parameter mapping.

    Schema::

        {
          "components": [{"kind": "<kind>", ...kind options...}, ...],
          "stages":     [[q, h], ...],   # optional StageTimedStrategy gate
          "rotate":     true|false,      # optional coalition rotation wrapper
        }

    The mapping round-trips through canonical JSON unchanged, which is how
    the search driver mutates candidates and how found worst cases are
    committed as ``strategy_params`` on spec cells.
    """
    params = dict(params or {})
    unknown = set(params) - {"components", "stages", "rotate"}
    if unknown:
        raise ConfigurationError(
            f"unknown composed-strategy parameter(s): {sorted(unknown)}"
        )
    specs = params.get("components") or [{"kind": "equality-garbage"}]
    components: List[ByzantineStrategy] = []
    for index, config in enumerate(specs):
        config = dict(config)
        kind = config.pop("kind", None)
        if not isinstance(kind, str):
            raise ConfigurationError(f"component {index} is missing a 'kind' string")
        components.append(
            _build_component(kind, _component_seed(seed, index, kind), config)
        )
    strategy: ByzantineStrategy
    if len(components) == 1:
        strategy = components[0]
    else:
        strategy = ComposedStrategy(components)
    stages = params.get("stages")
    if stages:
        strategy = StageTimedStrategy(strategy, tuple(tuple(stage) for stage in stages))
    if params.get("rotate"):
        strategy = ColludingRotationStrategy(strategy, seed=seed)
    strategy.name = "composed"
    return strategy


# ------------------------------------------------------------------- registry


def _build_stage_equivocator(seed: int, params: Optional[Mapping[str, Any]] = None) -> ByzantineStrategy:
    params = dict(params or {})
    options = _take(params, "stage-equivocator", stages=((0, 1), (2, 1), (4, 2), (6, 2)))
    return StageTimedStrategy(
        RelayEquivocatorStrategy(seed=seed),
        tuple(tuple(stage) for stage in options["stages"]),
        name="stage-equivocator",
    )


def _build_colluding_rotator(seed: int, params: Optional[Mapping[str, Any]] = None) -> ByzantineStrategy:
    params = dict(params or {})
    options = _take(params, "colluding-rotator", inner="equality-garbage")
    inner = _build_component(options["inner"], _component_seed(seed, 0, options["inner"]), {})
    return ColludingRotationStrategy(inner, seed=seed)


def _build_adaptive_dodger(seed: int, params: Optional[Mapping[str, Any]] = None) -> ByzantineStrategy:
    params = dict(params or {})
    options = _take(params, "adaptive-dodger", targets=2, aggressors=0)
    return AdaptiveDisputeDodgerStrategy(seed=seed, **options)


def _build_relay_tamper(seed: int, params: Optional[Mapping[str, Any]] = None) -> ByzantineStrategy:
    params = dict(params or {})
    options = _take(params, "relay-tamper", rate=(1, 2))
    numerator, denominator = options["rate"]
    return RelayTamperStrategy(seed=seed, rate=Fraction(numerator, denominator))


def zoo_strategy_factories() -> Dict[str, Callable[..., ByzantineStrategy]]:
    """Factories ``(seed, params) -> strategy`` for the zoo's registered names.

    Merged into the scenario-level strategy registry
    (:func:`repro.workloads.scenarios.named_strategies`), so zoo strategies
    are available everywhere hand-written ones are: specs, the CLI, the
    search driver and property tests.
    """
    return {
        "stage-equivocator": _build_stage_equivocator,
        "colluding-rotator": _build_colluding_rotator,
        "adaptive-dodger": _build_adaptive_dodger,
        "relay-tamper": _build_relay_tamper,
        "composed": build_composed,
    }
