"""Adversarial search: explore strategy compositions, placements and timings.

The driver walks the product space (composed-strategy parameters ×
faulty-node placement × stage timing) looking for worst cases under a
pluggable objective — dispute-control executions forced, or throughput
degradation relative to the Theorem 2 upper bound.  Candidates are evaluated
through the experiment engine's own :func:`repro.engine.runner.run_cell`, so
every explored point is an ordinary persisted row: deterministic, resumable
and auditable.

Search is seeded random sampling plus greedy/annealed mutation of the current
candidate.  Every decision — sample vs mutate, which mutation, accept a worse
candidate — is a sha256-lattice draw keyed by the iteration
(:class:`repro.adversary.zoo.AdversaryLattice`), and the acceptance state is
a pure fold over the rows in iteration order.  Killing the driver at any
point and resuming from its JSONL therefore reproduces the exact same
trajectory, and the final output file is byte-identical to an uninterrupted
run's (the crash-tolerant runner idiom).

Every evaluated row passes through the forensic audit
(:func:`repro.analysis.forensics.audit_rows`).  Any violation — an
``agreement_ok``/``validity_ok`` flip at ``f <= max_faults``, a fault-free
node identified as faulty, a dispute between fault-free nodes — is a
reproduction-level finding: the offending row is persisted first, then
:class:`repro.exceptions.ReproductionFinding` aborts the search loudly.
Worst cases that merely cost (many dispute controls, low throughput) are the
*expected* output and get committed as ``adversary_zoo`` spec cells.
"""

from __future__ import annotations

import argparse
import json
import os
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.adversary.zoo import AdversaryLattice
from repro.analysis.forensics import audit_rows
from repro.engine.runner import (
    ROW_SCHEMA_VERSION,
    _write_rows_atomically,
    dump_row,
    run_cell,
)
from repro.engine.spec import SEQUENTIAL, Cell, canonical_params, cell_seed
from repro.exceptions import ConfigurationError, ReproductionFinding
from repro.workloads.topologies import topology

#: Spec name stamped on every search row (no registered grid — the "spec" is
#: the search trajectory itself).
SEARCH_SPEC = "adversary_search"

#: Component kinds the sampler draws from (a subset of
#: :data:`repro.adversary.zoo.COMPONENT_KINDS` that excludes the pure-noise
#: kinds which never beat their structured counterparts).
SAMPLER_KINDS = (
    "adaptive-dodger",
    "relay-equivocator",
    "equality-garbage",
    "dispute-liar",
    "false-flag",
    "relay-tamper",
    "phase1-relay",
    "chaos",
)


# ------------------------------------------------------------------ objectives


def _score_dispute_control(row: Mapping[str, Any]) -> Fraction:
    record = row.get("record")
    if not isinstance(record, Mapping):
        return Fraction(-1)
    return Fraction(int(record["dispute_control_executions"]))


def _score_throughput_degradation(row: Mapping[str, Any]) -> Fraction:
    record = row.get("record")
    bounds = row.get("bounds")
    if not isinstance(record, Mapping) or not isinstance(bounds, Mapping):
        return Fraction(-1)
    throughput = record.get("throughput")
    if throughput is None:
        return Fraction(0)
    upper = Fraction(str(bounds["capacity_upper_bound"]))
    if upper <= 0:
        return Fraction(0)
    return 1 - Fraction(str(throughput)) / upper


#: Pluggable objectives: name -> scorer (bigger = worse for the protocol).
OBJECTIVES: Dict[str, Callable[[Mapping[str, Any]], Fraction]] = {
    "dispute-control": _score_dispute_control,
    "throughput-degradation": _score_throughput_degradation,
}


# ------------------------------------------------------------------ candidates


@dataclass(frozen=True)
class Candidate:
    """One point of the search space.

    Attributes:
        params: ``composed``-strategy parameters (JSON-able; see
            :func:`repro.adversary.zoo.build_composed`).
        faulty_nodes: The adversary's placement.
    """

    params: Mapping[str, Any]
    faulty_nodes: Tuple[int, ...]


def _sample_component(lattice: AdversaryLattice, iteration: int, slot: int) -> Dict[str, Any]:
    kind = lattice.choice(SAMPLER_KINDS, "kind", iteration, slot)
    component: Dict[str, Any] = {"kind": kind}
    if kind == "adaptive-dodger":
        component["targets"] = 1 + lattice.randbits(1, "targets", iteration, slot)
        component["aggressors"] = lattice.randbits(2, "aggr", iteration, slot) % 3
    elif kind == "equality-garbage":
        component["offset"] = lattice.choice((1, 3, 5), "offset", iteration, slot)
    elif kind == "relay-tamper":
        component["rate"] = list(lattice.choice(((1, 2), (1, 4), (1, 1)), "rate", iteration, slot))
    elif kind in ("dispute-liar", "phase1-relay"):
        component["flip_mask"] = lattice.choice((1, 2, 3), "mask", iteration, slot)
    return component


def _sample_faulty(
    lattice: AdversaryLattice, iteration: int, nodes: Sequence[int], source: int, count: int
) -> Tuple[int, ...]:
    pool = [node for node in sorted(nodes) if node != source]
    chosen: List[int] = []
    for slot in range(min(count, len(pool))):
        pick = lattice.choice(pool, "fault", iteration, slot)
        pool.remove(pick)
        chosen.append(pick)
    return tuple(sorted(chosen))


def _sample_candidate(
    lattice: AdversaryLattice,
    iteration: int,
    nodes: Sequence[int],
    source: int,
    max_faults: int,
    instances: int,
) -> Candidate:
    components = [_sample_component(lattice, iteration, 0)]
    if lattice.point("two-components", iteration) < Fraction(1, 4):
        components.append(_sample_component(lattice, iteration, 1))
    params: Dict[str, Any] = {"components": components}
    if lattice.point("rotate", iteration) < Fraction(1, 3):
        params["rotate"] = True
    if lattice.point("staged", iteration) < Fraction(1, 5):
        phase = 1 + lattice.randbits(2, "stage-phase", iteration) % 3
        fire_at = lattice.randbits(8, "stage-q", iteration) % max(1, instances)
        params["stages"] = [[fire_at, phase], ["*", phase]]
    return Candidate(
        params=params,
        faulty_nodes=_sample_faulty(lattice, iteration, nodes, source, max_faults),
    )


def _mutate_candidate(
    lattice: AdversaryLattice,
    iteration: int,
    current: Candidate,
    nodes: Sequence[int],
    source: int,
    max_faults: int,
    instances: int,
) -> Candidate:
    params: Dict[str, Any] = json.loads(canonical_params(current.params))
    components: List[Dict[str, Any]] = [dict(c) for c in params.get("components", [])]
    faulty = list(current.faulty_nodes)
    ops = ["toggle-rotate", "swap-component", "move-fault", "resample-fault"]
    if any(c.get("kind") == "adaptive-dodger" for c in components):
        ops += ["tweak-targets", "tweak-aggressors"]
    if "stages" in params:
        ops.append("drop-stages")
    if len(components) > 1:
        ops.append("drop-component")
    else:
        ops.append("add-component")
    op = lattice.choice(sorted(ops), "op", iteration)
    if op == "toggle-rotate":
        if params.get("rotate"):
            params.pop("rotate", None)
        else:
            params["rotate"] = True
    elif op == "swap-component":
        slot = lattice.randbits(8, "swap-slot", iteration) % len(components)
        components[slot] = _sample_component(lattice, iteration, slot)
    elif op == "add-component":
        components.append(_sample_component(lattice, iteration, len(components)))
    elif op == "drop-component":
        slot = lattice.randbits(8, "drop-slot", iteration) % len(components)
        components.pop(slot)
    elif op == "tweak-targets":
        for component in components:
            if component.get("kind") == "adaptive-dodger":
                component["targets"] = 1 + lattice.randbits(1, "new-targets", iteration)
    elif op == "tweak-aggressors":
        for component in components:
            if component.get("kind") == "adaptive-dodger":
                component["aggressors"] = lattice.randbits(2, "new-aggr", iteration) % 3
    elif op == "drop-stages":
        params.pop("stages", None)
    elif op == "move-fault" and faulty:
        candidates = [
            node for node in sorted(nodes) if node != source and node not in faulty
        ]
        if candidates:
            slot = lattice.randbits(8, "fault-slot", iteration) % len(faulty)
            faulty[slot] = lattice.choice(candidates, "fault-new", iteration)
    elif op == "resample-fault":
        faulty = list(_sample_faulty(lattice, iteration, nodes, source, max_faults))
    params["components"] = components
    return Candidate(params=params, faulty_nodes=tuple(sorted(faulty)))


# -------------------------------------------------------------------- driver


@dataclass(frozen=True)
class SearchSummary:
    """Outcome of one :func:`run_search` invocation."""

    topology: str
    objective: str
    rows: List[Dict[str, Any]]
    best_row: Optional[Dict[str, Any]]
    best_score: Optional[Fraction]
    iterations: int
    resumed_rows: int
    out_path: Optional[str]

    @property
    def best_candidate(self) -> Optional[Candidate]:
        """The best explored candidate, reconstructed from its row."""
        if self.best_row is None:
            return None
        return _row_candidate(self.best_row)


def _row_candidate(row: Mapping[str, Any]) -> Candidate:
    params = json.loads(row["strategy_params"]) if row.get("strategy_params") else {}
    return Candidate(params=params, faulty_nodes=tuple(row.get("faulty_nodes") or ()))


def _search_cell(
    topology_name: str,
    candidate: Candidate,
    iteration: int,
    base_seed: int,
    instances: int,
    payload_bytes: int,
    max_faults: int,
    source: int,
) -> Cell:
    params_json = canonical_params(candidate.params)
    cell_id = (
        f"search|nab|{topology_name}|composed|f={max_faults}|L={payload_bytes}"
        f"|Q={instances}|src={source}|i={iteration}|sp={params_json}"
    )
    return Cell(
        spec_name=SEARCH_SPEC,
        cell_id=cell_id,
        topology=topology_name,
        strategy="composed",
        payload_bytes=payload_bytes,
        instances=instances,
        max_faults=max_faults,
        protocol="nab",
        source=source,
        seed=cell_seed(base_seed, cell_id),
        faulty_nodes=tuple(candidate.faulty_nodes),
        execution=SEQUENTIAL,
        strategy_params=params_json,
    )


def _load_rows(path: str, topology_name: str, base_seed: int) -> List[Dict[str, Any]]:
    """Rows of a previous run of the *same* search, in iteration order.

    Rows are kept only while they form the contiguous prefix 0..k of verified
    iterations (matching schema, spec, topology and re-derived seed) — the
    fold that rebuilds the acceptance state needs every prior step.
    """
    if not os.path.exists(path):
        return []
    by_iteration: Dict[int, Dict[str, Any]] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(row, dict):
                continue
            iteration = row.get("iteration")
            if (
                row.get("schema") == ROW_SCHEMA_VERSION
                and row.get("spec") == SEARCH_SPEC
                and row.get("topology") == topology_name
                and isinstance(iteration, int)
                and not isinstance(iteration, bool)
                and row.get("seed") == cell_seed(base_seed, str(row.get("cell_id")))
                and row.get("error") is None
            ):
                by_iteration.setdefault(iteration, row)
    rows: List[Dict[str, Any]] = []
    for iteration in range(len(by_iteration)):
        row = by_iteration.get(iteration)
        if row is None:
            break
        rows.append(row)
    return rows


def run_search(
    topology_name: str,
    objective: str = "dispute-control",
    budget: int = 32,
    seed: int = 0,
    out_path: Optional[str] = None,
    instances: int = 8,
    payload_bytes: int = 8,
    max_faults: int = 2,
    source: int = 1,
    resume: bool = True,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> SearchSummary:
    """Explore ``budget`` candidates and return the trajectory plus the best.

    Raises:
        ReproductionFinding: if any explored row violates agreement, validity
            or forensic soundness (persisted before raising).
        ConfigurationError: for an unknown objective.
    """
    if objective not in OBJECTIVES:
        raise ConfigurationError(
            f"unknown objective {objective!r}; available: {', '.join(sorted(OBJECTIVES))}"
        )
    scorer = OBJECTIVES[objective]
    lattice = AdversaryLattice(seed, namespace=f"adversary-search|{objective}")
    nodes = topology(topology_name).nodes()

    rows: List[Dict[str, Any]] = []
    if out_path and resume:
        rows = _load_rows(out_path, topology_name, seed)
    resumed = len(rows)

    # Rebuild the acceptance state by folding the prior rows in order; the
    # fold below is the only place the state advances, so resumed and fresh
    # runs walk the identical trajectory.
    current: Optional[Candidate] = None
    current_score: Optional[Fraction] = None
    best_row: Optional[Dict[str, Any]] = None
    best_score: Optional[Fraction] = None

    def fold(row: Dict[str, Any], iteration: int) -> None:
        nonlocal current, current_score, best_row, best_score
        score = scorer(row)
        candidate = _row_candidate(row)
        if best_score is None or score > best_score:
            best_row, best_score = row, score
        accept_worse = lattice.point("anneal", iteration) < Fraction(
            1, 2 + iteration // 4
        )
        if current_score is None or score >= current_score or accept_worse:
            current, current_score = candidate, score

    for iteration, row in enumerate(rows):
        fold(row, iteration)

    handle = None
    if out_path:
        directory = os.path.dirname(os.path.abspath(out_path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        mode = "a" if (resume and rows) else "w"
        if resume and rows:
            # Drop any lines past the verified prefix (truncated tails, rows
            # from other searches) before appending.
            _write_rows_atomically(out_path, rows)
        handle = open(out_path, mode, encoding="utf-8")

    try:
        for iteration in range(len(rows), budget):
            if current is None or lattice.point("explore", iteration) < Fraction(1, 3):
                candidate = _sample_candidate(
                    lattice, iteration, nodes, source, max_faults, instances
                )
            else:
                candidate = _mutate_candidate(
                    lattice, iteration, current, nodes, source, max_faults, instances
                )
            cell = _search_cell(
                topology_name,
                candidate,
                iteration,
                seed,
                instances,
                payload_bytes,
                max_faults,
                source,
            )
            row = run_cell(cell)
            row["iteration"] = iteration
            row["objective"] = objective
            row["objective_value"] = str(scorer(row))
            rows.append(row)
            if handle is not None:
                handle.write(dump_row(row) + "\n")
                handle.flush()
            if progress is not None:
                progress(row)
            violations = audit_rows([row])
            if violations:
                # A reproduction-level finding: the row is already persisted;
                # abort loudly instead of folding it into the objective.
                raise ReproductionFinding(
                    "adversarial search found a specification violation: "
                    + "; ".join(violations)
                )
            fold(row, iteration)
    finally:
        if handle is not None:
            handle.close()
        if out_path and rows:
            # Compact: a killed-and-resumed run and a fresh run of the same
            # (seed, budget) produce byte-identical files.
            _write_rows_atomically(out_path, rows)

    return SearchSummary(
        topology=topology_name,
        objective=objective,
        rows=rows,
        best_row=best_row,
        best_score=best_score,
        iterations=len(rows),
        resumed_rows=resumed,
        out_path=out_path,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: ``python -m repro.adversary.search --topology k7-unit --budget 32``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.adversary.search",
        description="Adversarial search for NAB worst cases.",
    )
    parser.add_argument("--topology", default="k7-unit", help="named topology to attack")
    parser.add_argument(
        "--objective",
        default="dispute-control",
        choices=sorted(OBJECTIVES),
        help="what to maximise",
    )
    parser.add_argument("--budget", type=int, default=32, help="candidates to explore")
    parser.add_argument("--seed", type=int, default=0, help="search seed")
    parser.add_argument("--out", default=None, help="JSONL trajectory file (resumable)")
    parser.add_argument("--instances", type=int, default=8, help="instances per candidate (Q)")
    parser.add_argument("--payload-bytes", type=int, default=8, help="payload size (L/8)")
    parser.add_argument("--max-faults", type=int, default=2, help="resilience parameter f")
    parser.add_argument("--source", type=int, default=1, help="broadcasting node")
    parser.add_argument(
        "--no-resume", action="store_true", help="ignore any existing trajectory file"
    )
    args = parser.parse_args(argv)
    summary = run_search(
        args.topology,
        objective=args.objective,
        budget=args.budget,
        seed=args.seed,
        out_path=args.out,
        instances=args.instances,
        payload_bytes=args.payload_bytes,
        max_faults=args.max_faults,
        source=args.source,
        resume=not args.no_resume,
    )
    print(
        f"{summary.iterations} candidate(s) explored on {summary.topology} "
        f"({summary.resumed_rows} resumed), objective {summary.objective}"
    )
    if summary.best_row is not None:
        print(f"best score: {summary.best_score}")
        print(f"best faulty_nodes: {summary.best_row.get('faulty_nodes')}")
        print(f"best strategy_params: {summary.best_row.get('strategy_params')}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
