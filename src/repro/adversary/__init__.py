"""Concrete Byzantine attack strategies used in tests, examples and benchmarks.

The paper's adversary is all-powerful within its budget of ``f`` nodes; NAB's
correctness is proved against *every* behaviour.  The strategies here cover
the attack surfaces the paper's analysis distinguishes: corrupting the
unreliable Phase 1 broadcast (as a relay or as an equivocating source),
sending garbage during the Equality Check, announcing false flags to force
needless dispute control, lying during dispute control, and corrupting the
classical sub-broadcasts.  They are all deterministic (optionally seeded) so
experiments are reproducible.
"""

from repro.adversary.strategies import (
    CrashStrategy,
    DisputeLiarStrategy,
    EqualityGarbageStrategy,
    EquivocatingSourceStrategy,
    FalseFlagStrategy,
    Phase1CorruptingRelayStrategy,
    RandomizedChaosStrategy,
    SubBroadcastLiarStrategy,
)

__all__ = [
    "CrashStrategy",
    "EquivocatingSourceStrategy",
    "Phase1CorruptingRelayStrategy",
    "EqualityGarbageStrategy",
    "FalseFlagStrategy",
    "DisputeLiarStrategy",
    "SubBroadcastLiarStrategy",
    "RandomizedChaosStrategy",
]
