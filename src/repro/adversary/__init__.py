"""Concrete Byzantine attack strategies used in tests, examples and benchmarks.

The paper's adversary is all-powerful within its budget of ``f`` nodes; NAB's
correctness is proved against *every* behaviour.  The strategies here cover
the attack surfaces the paper's analysis distinguishes: corrupting the
unreliable Phase 1 broadcast (as a relay or as an equivocating source),
sending garbage during the Equality Check, announcing false flags to force
needless dispute control, lying during dispute control, and corrupting the
classical sub-broadcasts.  They are all deterministic (optionally seeded) so
experiments are reproducible.

:mod:`repro.adversary.zoo` builds structured adversaries out of composable
parts (stage timing, coalition rotation, dispute-state-adaptive targeting,
relay tampering), and :mod:`repro.adversary.search` explores the product of
strategy compositions, faulty placements and timing parameters for worst
cases.
"""

from repro.adversary.strategies import (
    CrashStrategy,
    DisputeLiarStrategy,
    EqualityGarbageStrategy,
    EquivocatingSourceStrategy,
    FalseFlagStrategy,
    Phase1CorruptingRelayStrategy,
    RandomizedChaosStrategy,
    SubBroadcastLiarStrategy,
    chaos_stream,
)
from repro.adversary.zoo import (
    AdaptiveDisputeDodgerStrategy,
    AdversaryLattice,
    ColludingRotationStrategy,
    ComposedStrategy,
    RelayEquivocatorStrategy,
    RelayTamperStrategy,
    StageTimedStrategy,
    build_composed,
    zoo_strategy_factories,
)

__all__ = [
    "CrashStrategy",
    "EquivocatingSourceStrategy",
    "Phase1CorruptingRelayStrategy",
    "EqualityGarbageStrategy",
    "FalseFlagStrategy",
    "DisputeLiarStrategy",
    "SubBroadcastLiarStrategy",
    "RandomizedChaosStrategy",
    "chaos_stream",
    "AdversaryLattice",
    "ComposedStrategy",
    "StageTimedStrategy",
    "ColludingRotationStrategy",
    "RelayEquivocatorStrategy",
    "AdaptiveDisputeDodgerStrategy",
    "RelayTamperStrategy",
    "build_composed",
    "zoo_strategy_factories",
]
